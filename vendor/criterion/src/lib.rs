//! Offline shim for the subset of the `criterion` 0.5 API this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal timing harness with the same call surface:
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId` and `Bencher::iter`.
//! There is no statistical analysis — each benchmark is warmed up once and
//! then timed over a fixed batch, printing mean wall-clock time per
//! iteration. Under `cargo test` (which runs `harness = false` bench
//! targets with `--test`) each benchmark body executes exactly once, so
//! benches double as smoke tests.

use std::fmt;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Times `f`, running it `iters` times after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.last_ns = elapsed.as_nanos() as f64 / self.iters.max(1) as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count (accepted for API
    /// compatibility; the shim uses it directly as the batch size).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with an explicit input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnOnce(&mut Bencher, &I),
    {
        let iters = self.iters();
        let mut bencher = Bencher {
            iters,
            last_ns: 0.0,
        };
        f(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = id.into();
        let iters = self.iters();
        let mut bencher = Bencher {
            iters,
            last_ns: 0.0,
        };
        f(&mut bencher);
        self.report(&id.label, &bencher);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}

    fn iters(&self) -> u64 {
        if self.criterion.test_mode {
            1
        } else {
            self.sample_size.max(1) as u64
        }
    }

    fn report(&self, label: &str, bencher: &Bencher) {
        if self.criterion.test_mode {
            println!("test {}/{label} ... ok", self.name);
        } else {
            println!(
                "{}/{label}: {:.1} ns/iter ({} iters)",
                self.name, bencher.last_ns, bencher.iters
            );
        }
    }
}

/// The benchmark manager handed to `criterion_group!` functions.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Cargo runs `harness = false` bench targets with `--test` under
        // `cargo test`; run each body once there and skip timing noise.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_round_trips() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0;
        group.bench_function("plain", |b| b.iter(|| ran += 1));
        let input = 21u32;
        group.bench_with_input(BenchmarkId::new("with_input", 21), &input, |b, &i| {
            b.iter(|| assert_eq!(i * 2, 42))
        });
        group.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("alg", "c880").to_string(), "alg/c880");
        assert_eq!(BenchmarkId::from_parameter(400).to_string(), "400");
    }
}
