//! Offline shim for the subset of the `proptest` 1.x API this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a deterministic stand-in: strategies are plain
//! seeded generators (no shrinking), and the `proptest!` macro runs the
//! configured number of cases with a fixed per-case seed, reporting the
//! generated input on failure. The supported surface is exactly what the
//! repo's tests exercise: integer/float range strategies, tuples,
//! `prop_map`, `prop_recursive`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::sample::Index`, `any`, `ProptestConfig::with_cases`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Like the real crate, the macro honors a `<file>.proptest-regressions`
//! file next to the test source: each `cc <hex>` line is replayed *before*
//! any fresh cases, and a failing fresh case appends one. Because the shim
//! has no shrinking, a `cc` token encodes the failing case's RNG seed in
//! its first 16 hex digits (replaying the seed regenerates the exact
//! input) rather than a serialized shrunk value; tokens written by the
//! real proptest are still consumed seed-wise, which keeps the replay
//! deterministic even if it no longer reproduces the original input. The
//! regression path resolves relative to the test binary's working
//! directory (the package root under `cargo test`), so persistence is
//! best-effort: an unwritable path is reported, never fatal.

pub mod strategy {
    //! Strategy trait and combinators.

    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates the leaves and
        /// `recurse` wraps an inner strategy into a branch strategy.
        /// `depth` bounds the recursion; the size hints are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(current).boxed();
                let leaf = leaf.clone();
                current = FnStrategy(Rc::new(move |rng: &mut TestRng| {
                    // Each level flips between recursing and bottoming out,
                    // so generated trees have varied depth up to the bound.
                    if rng.next_u64() & 1 == 0 {
                        branch.generate(rng)
                    } else {
                        leaf.generate(rng)
                    }
                }))
                .boxed();
            }
            current
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A cheaply clonable, type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Closure-backed strategy used internally.
    pub struct FnStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for FnStrategy<T> {
        fn clone(&self) -> FnStrategy<T> {
            FnStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for FnStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among alternatives (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                    (self.start as u64).wrapping_add(hi) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    if start as u64 == 0 && end as u64 == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                    (start as u64).wrapping_add(hi) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical strategy, reachable through [`any`].
    pub trait Arbitrary: Sized {
        /// The canonical strategy for the type.
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<bool> {
            FnStrategy(Rc::new(|rng: &mut TestRng| rng.next_u64() & 1 == 1)).boxed()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<$t> {
                    FnStrategy(Rc::new(|rng: &mut TestRng| rng.next_u64() as $t)).boxed()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> BoxedStrategy<A> {
        A::arbitrary()
    }
}

pub mod test_runner {
    //! The case runner behind the `proptest!` macro.

    use std::io::Write as _;
    use std::path::{Path, PathBuf};

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    use crate::strategy::Strategy;

    /// The RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// Seeds a case RNG.
        pub fn seed_from_u64(seed: u64) -> TestRng {
            TestRng(SmallRng::seed_from_u64(seed))
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each `proptest!` test runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Runs `f` on `config.cases` generated inputs. On panic, reports the
    /// case number, seed and generated input, then re-raises.
    pub fn run<S, F>(config: &ProptestConfig, strategy: &S, mut f: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: FnMut(S::Value),
    {
        for case in 0..config.cases {
            run_case(
                case_seed(case),
                &format!("case {case}"),
                strategy,
                &mut f,
                None,
            );
        }
    }

    /// [`run`] with regression persistence — what the `proptest!` macro
    /// expands to. Seeds recorded in `source_file`'s paired
    /// `.proptest-regressions` file replay before any fresh case, and a
    /// failing fresh case appends its seed there before the panic
    /// propagates.
    pub fn run_persisted<S, F>(config: &ProptestConfig, strategy: &S, source_file: &str, mut f: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: FnMut(S::Value),
    {
        let path = regression_path(source_file);
        for (i, seed) in load_regression_seeds(&path).into_iter().enumerate() {
            run_case(seed, &format!("regression {i}"), strategy, &mut f, None);
        }
        for case in 0..config.cases {
            run_case(
                case_seed(case),
                &format!("case {case}"),
                strategy,
                &mut f,
                Some(&path),
            );
        }
    }

    /// The fixed, seed-stable per-case stream that keeps failures
    /// reproducible across runs and hosts.
    fn case_seed(case: u32) -> u64 {
        0x5EED_0000_0000_0000u64 ^ u64::from(case).wrapping_mul(0x9E37_79B9)
    }

    fn run_case<S, F>(seed: u64, label: &str, strategy: &S, f: &mut F, persist_to: Option<&Path>)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: FnMut(S::Value),
    {
        let mut rng = TestRng::seed_from_u64(seed);
        let value = strategy.generate(&mut rng);
        let header = format!("proptest {label} (seed {seed:#x}): {value:?}");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(value)));
        if let Err(panic) = result {
            eprintln!("failing {header}");
            if let Some(path) = persist_to {
                persist_regression_seed(path, seed, &header);
            }
            std::panic::resume_unwind(panic);
        }
    }

    /// The regression file paired with a source file — proptest's
    /// convention: `tests/foo.rs` → `tests/foo.proptest-regressions`.
    pub fn regression_path(source_file: &str) -> PathBuf {
        Path::new(source_file).with_extension("proptest-regressions")
    }

    /// Parses the replay seeds out of a regression file: every `cc <hex>`
    /// line contributes the u64 encoded by its first 16 hex digits.
    /// Comments, blank lines and an unreadable file yield nothing.
    pub fn load_regression_seeds(path: &Path) -> Vec<u64> {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Vec::new();
        };
        let mut seeds = Vec::new();
        for line in text.lines() {
            let Some(rest) = line.trim_start().strip_prefix("cc ") else {
                continue;
            };
            let token: String = rest
                .trim_start()
                .chars()
                .take_while(char::is_ascii_hexdigit)
                .collect();
            if token.len() >= 16 {
                if let Ok(seed) = u64::from_str_radix(&token[..16], 16) {
                    seeds.push(seed);
                }
            }
        }
        seeds
    }

    fn persist_regression_seed(path: &Path, seed: u64, header: &str) {
        let preamble = if path.exists() {
            ""
        } else {
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases.\n"
        };
        // Pad the seed to the real crate's 64-hex-digit token width so the
        // two formats stay interchangeable (only the first 16 digits carry
        // replay information here).
        let line = format!("{preamble}cc {seed:016x}{:0<48} # {header}\n", "");
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut fh| fh.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!(
                "proptest: could not persist regression seed to {}: {e}",
                path.display()
            );
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::rc::Rc;

    use crate::strategy::{BoxedStrategy, FnStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// Size specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty size range");
            let span = self.end() - self.start() + 1;
            self.start() + (rng.next_u64() % span as u64) as usize
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S, Z>(element: S, size: Z) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        Z: SizeRange + 'static,
    {
        FnStrategy(Rc::new(move |rng: &mut TestRng| {
            let len = size.pick(rng);
            (0..len).map(|_| element.generate(rng)).collect()
        }))
        .boxed()
    }
}

pub mod sample {
    //! Sampling helpers.

    use std::rc::Rc;

    use crate::strategy::{Arbitrary, BoxedStrategy, FnStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// A deferred index into a collection of then-unknown length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a collection of length `len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            ((u128::from(self.0) * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary() -> BoxedStrategy<Index> {
            FnStrategy(Rc::new(|rng: &mut TestRng| Index(rng.next_u64()))).boxed()
        }
    }
}

/// The `prop::` namespace (`prop::collection`, `prop::sample`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The test-definition macro: each `fn name(pat in strategy, ...)` body
/// runs over generated inputs under the optional block-level
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strategy,)+);
            $crate::test_runner::run_persisted(&config, &strategy, file!(), |($($pat,)+)| $body);
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(1);
        let strat = (0u8..7, 2usize..8, 0.0f64..1.0);
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 7);
            assert!((2..8).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn vec_and_index_compose() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(2);
        let strat = prop::collection::vec(any::<prop::sample::Index>(), 1..10);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..10).contains(&v.len()));
            for ix in &v {
                assert!(ix.index(13) < 13);
            }
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..16)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 24, 3, |inner| {
                prop::collection::vec(inner, 2..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 5, "depth bound violated: {t:?}");
        }
    }

    #[test]
    fn regression_parsing_takes_the_first_16_hex_digits() {
        use crate::test_runner::{load_regression_seeds, regression_path};
        let path = regression_path("tests/properties.rs");
        assert_eq!(
            path,
            std::path::PathBuf::from("tests/properties.proptest-regressions")
        );

        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("parse.proptest-regressions");
        std::fs::write(
            &file,
            "# comment line\n\
             \n\
             cc 906fdeb07f0d79f084a5dca23dee6e1908fa96433e5174e56b19c000ea6c7ab9 # shrinks to x\n\
             cc deadbeef # too short to carry a seed\n\
             not a cc line\n\
             cc 0000000000000010 # minimal 16-digit token\n",
        )
        .unwrap();
        assert_eq!(
            load_regression_seeds(&file),
            vec![0x906f_deb0_7f0d_79f0, 0x10]
        );
        assert!(load_regression_seeds(&dir.join("absent.proptest-regressions")).is_empty());
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn failing_case_persists_its_seed_and_replays_first() {
        use crate::test_runner::{load_regression_seeds, run_persisted, ProptestConfig};

        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp");
        std::fs::create_dir_all(&dir).unwrap();
        let source = dir.join("persist.rs");
        let file = dir.join("persist.proptest-regressions");
        let _ = std::fs::remove_file(&file);

        // Every case fails: the runner must persist the first seed before
        // re-raising the panic.
        let config = ProptestConfig::with_cases(4);
        let strategy = (0u64..1 << 60,);
        let outcome = std::panic::catch_unwind(|| {
            run_persisted(&config, &strategy, source.to_str().unwrap(), |(_x,)| {
                panic!("always fails")
            });
        });
        assert!(outcome.is_err());
        let seeds = load_regression_seeds(&file);
        assert_eq!(seeds, vec![0x5EED_0000_0000_0000]);

        // The recorded case replays before fresh cases and regenerates the
        // exact same input.
        let expected = {
            let mut rng = crate::test_runner::TestRng::seed_from_u64(seeds[0]);
            strategy.generate(&mut rng)
        };
        let mut replayed = Vec::new();
        run_persisted(&config, &strategy, source.to_str().unwrap(), |(x,)| {
            replayed.push(x);
        });
        assert_eq!(replayed.len(), 4 + 1);
        assert_eq!(replayed[0], expected.0);
        // Passing runs never grow the file.
        assert_eq!(load_regression_seeds(&file), seeds);
        std::fs::remove_file(&file).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires patterns, strategies and assertions together.
        #[test]
        fn macro_roundtrip(x in 0u64..100, flag in any::<bool>(), v in prop::collection::vec(0u8..4, 1..5)) {
            prop_assert!(x < 100);
            prop_assert_eq!(flag, flag);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn oneof_picks_every_arm(x in prop_oneof![0u32..10, 100u32..110]) {
            prop_assert!(x < 10 || (100..110).contains(&x));
        }
    }
}
