//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a deterministic, dependency-free stand-in. Only the
//! surface actually exercised in-repo is provided: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_bool` and `gen_range` over the primitive types the crates sample.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for test-vector generation, and deterministic per seed, which is
//! all the callers rely on. The streams differ from upstream `rand`'s
//! `SmallRng`, so seeded expectations must be derived from *this*
//! implementation (the repo's tests already are).

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG (the shim's stand-in
/// for `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); the slight bias
                // over u64-sized spans is irrelevant at the spans used here.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start as u64 == 0 && end as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (start as u64).wrapping_add(hi) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The generators the shim provides.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, as upstream rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(0..7);
            assert!((0..7).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn floats_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
