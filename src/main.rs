//! The `soi-domino` command-line tool: map BLIF netlists or built-in
//! benchmarks to SOI domino logic, inspect the result, and stress-test it
//! on the floating-body simulator.
//!
//! ```text
//! soi-domino list
//! soi-domino map <circuit> [--algorithm soi|rs|domino] [--objective area|depth]
//!                          [--clock-weight K] [--duplicate] [--emit counts|netlist|dot|timing]
//! soi-domino compare <circuit>
//! soi-domino stress <circuit> [--cycles N] [--strip]
//! ```
//!
//! `<circuit>` is either a registered benchmark name (see `list`) or a path
//! to a BLIF file.

use std::error::Error;
use std::process::ExitCode;

use soi_domino::circuits::registry;
use soi_domino::domino::timing::{analyze, TechParams};
use soi_domino::domino::{export, GateId};
use soi_domino::mapper::{Algorithm, MapConfig, Mapper, Objective};
use soi_domino::netlist::{blif, dot, Network};
use soi_domino::pbe::bodysim::{BodySimConfig, BodySimulator};
use soi_domino::pbe::hazard;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  soi-domino list
  soi-domino map <circuit> [--algorithm soi|rs|domino] [--objective area|depth]
                           [--clock-weight K] [--duplicate]
                           [--emit counts|netlist|dot|timing]
  soi-domino compare <circuit>
  soi-domino stress <circuit> [--cycles N] [--strip]

<circuit> is a registered benchmark name (see `list`) or a BLIF file path.";

fn run(args: &[String]) -> Result<(), Box<dyn Error>> {
    match args.first().map(String::as_str) {
        Some("list") => {
            for name in registry::names() {
                let n = registry::benchmark(name).expect("registered");
                println!("{name:8} {}", n.stats());
            }
            Ok(())
        }
        Some("map") => cmd_map(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("stress") => cmd_stress(&args[1..]),
        _ => Err("missing or unknown subcommand".into()),
    }
}

fn load_circuit(spec: &str) -> Result<Network, Box<dyn Error>> {
    if let Some(network) = registry::benchmark(spec) {
        return Ok(network);
    }
    let path = std::path::Path::new(spec);
    if path.exists() {
        let text = std::fs::read_to_string(path)?;
        return Ok(blif::parse(&text)?);
    }
    Err(format!("`{spec}` is neither a registered benchmark nor a readable file").into())
}

struct Flags {
    algorithm: Algorithm,
    config: MapConfig,
    emit: String,
    cycles: usize,
    strip: bool,
}

fn parse_flags(args: &[String]) -> Result<Flags, Box<dyn Error>> {
    let mut flags = Flags {
        algorithm: Algorithm::SoiDominoMap,
        config: MapConfig::default(),
        emit: "counts".to_string(),
        cycles: 64,
        strip: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, Box<dyn Error>> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value").into())
        };
        match arg.as_str() {
            "--algorithm" => {
                flags.algorithm = match value("--algorithm")?.as_str() {
                    "soi" => Algorithm::SoiDominoMap,
                    "rs" => Algorithm::RsMap,
                    "domino" => Algorithm::DominoMap,
                    other => return Err(format!("unknown algorithm `{other}`").into()),
                }
            }
            "--objective" => {
                flags.config.objective = match value("--objective")?.as_str() {
                    "area" => Objective::Area,
                    "depth" => Objective::Depth,
                    other => return Err(format!("unknown objective `{other}`").into()),
                }
            }
            "--clock-weight" => flags.config.clock_weight = value("--clock-weight")?.parse()?,
            "--duplicate" => flags.config.allow_duplication = true,
            "--emit" => flags.emit = value("--emit")?,
            "--cycles" => flags.cycles = value("--cycles")?.parse()?,
            "--strip" => flags.strip = true,
            other => return Err(format!("unknown flag `{other}`").into()),
        }
    }
    Ok(flags)
}

fn mapper_for(flags: &Flags) -> Mapper {
    match flags.algorithm {
        Algorithm::SoiDominoMap => Mapper::soi(flags.config),
        Algorithm::RsMap => Mapper::rearrange_stacks(flags.config),
        Algorithm::DominoMap => Mapper::baseline(flags.config),
    }
}

fn cmd_map(args: &[String]) -> Result<(), Box<dyn Error>> {
    let spec = args.first().ok_or("map needs a circuit")?;
    let flags = parse_flags(&args[1..])?;
    let network = load_circuit(spec)?;
    let result = mapper_for(&flags).run(&network)?;
    match flags.emit.as_str() {
        "counts" => {
            println!("{result}");
            println!("pbe-safe: {}", hazard::is_safe(&result.circuit));
        }
        "netlist" => print!("{}", export::netlist(&result.circuit)),
        "dot" => print!("{}", dot::render(&network)),
        "timing" => {
            let report = analyze(&result.circuit, &TechParams::soi());
            println!("{result}");
            println!("critical path (SOI params): {:.1}", report.critical);
            println!(
                "critical path (bulk params): {:.1}",
                analyze(&result.circuit, &TechParams::bulk()).critical
            );
        }
        other => return Err(format!("unknown emit mode `{other}`").into()),
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), Box<dyn Error>> {
    let spec = args.first().ok_or("compare needs a circuit")?;
    let network = load_circuit(spec)?;
    println!("{}: {}", network.name(), network.stats());
    for mapper in [
        Mapper::baseline(MapConfig::default()),
        Mapper::rearrange_stacks(MapConfig::default()),
        Mapper::soi(MapConfig::default()),
    ] {
        let result = mapper.run(&network)?;
        let timing = analyze(&result.circuit, &TechParams::soi());
        println!("  {result}  delay={:.1}", timing.critical);
    }
    Ok(())
}

fn cmd_stress(args: &[String]) -> Result<(), Box<dyn Error>> {
    let spec = args.first().ok_or("stress needs a circuit")?;
    let flags = parse_flags(&args[1..])?;
    let network = load_circuit(spec)?;
    let mut result = mapper_for(&flags).run(&network)?;
    if flags.strip {
        for idx in 0..result.circuit.gate_count() {
            result
                .circuit
                .gate_mut(GateId::from_index(idx))
                .set_discharge(Vec::new());
        }
        println!("(protection stripped)");
    }
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(0xCAFE);
    let mut sim = BodySimulator::new(&result.circuit, BodySimConfig::default())?;
    let inputs = result.circuit.input_names().len();
    let mut events = 0usize;
    let mut bad_cycles = 0usize;
    let mut held: Vec<bool> = vec![false; inputs];
    for cycle in 0..flags.cycles {
        if cycle % 5 == 0 {
            held = (0..inputs).map(|_| rng.gen_bool(0.4)).collect();
        }
        let report = sim.step(&held)?;
        events += report.pbe_events.len();
        bad_cycles += usize::from(report.misevaluated());
    }
    println!(
        "{} cycles: {} bipolar events, {} mis-evaluated cycles, hysteresis exposure {}",
        flags.cycles,
        events,
        bad_cycles,
        sim.hysteresis_exposure()
    );
    Ok(())
}
