//! # soi-domino
//!
//! A reproduction of *"Technology Mapping for SOI Domino Logic Incorporating
//! Solutions for the Parasitic Bipolar Effect"* (Karandikar & Sapatnekar,
//! DAC 2001) as a Rust workspace. This facade crate re-exports the public
//! API of every subsystem:
//!
//! * [`netlist`] — gate-level logic networks (the mapper's input),
//! * [`circuits`] — parametric benchmark circuit generators,
//! * [`unate`] — binate-to-unate conversion by bubble pushing,
//! * [`domino`] — the transistor-level domino circuit model,
//! * [`pbe`] — parasitic-bipolar-effect analysis and body-state simulation,
//! * [`cec`] — scale-proof verification: bit-parallel word simulation, a
//!   self-contained CDCL SAT solver, miter-based equivalence checking of
//!   mapped circuits, and SAT-formulated PBE-safety proofs,
//! * [`mapper`] — the `Domino_Map`, `RS_Map` and `SOI_Domino_Map` algorithms,
//! * [`guard`] — the hardened staged pipeline, cross-stage audit, and
//!   fault-injection harness,
//! * [`trace`] — zero-cost-when-disabled instrumentation: stage spans,
//!   typed counters, per-worker scheduler stats, and pluggable sinks.
//!
//! # Quickstart
//!
//! ```rust
//! use soi_domino::netlist::Network;
//! use soi_domino::mapper::{MapConfig, Mapper};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // f = (a + b + c) * d — the paper's running example.
//! let mut n = Network::new("example");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let c = n.add_input("c");
//! let d = n.add_input("d");
//! let t1 = n.or2(a, b);
//! let t2 = n.or2(t1, c);
//! let f = n.and2(t2, d);
//! n.add_output("f", f);
//!
//! let soi = Mapper::soi(MapConfig::default()).run(&n)?;
//! assert!(soi.circuit.counts().total >= 1);
//! # Ok(())
//! # }
//! ```

pub use soi_cec as cec;
pub use soi_circuits as circuits;
pub use soi_domino_ir as domino;
pub use soi_guard as guard;
pub use soi_mapper as mapper;
pub use soi_netlist as netlist;
pub use soi_pbe as pbe;
pub use soi_trace as trace;
pub use soi_unate as unate;
