//! Nothing the pipeline *returns* may depend on hash values or map
//! iteration order.
//!
//! The hot-path crates hash through `soi_netlist::fx` (an FxHash-style
//! mixer with a process-wide test seed). Perturbing that seed reshuffles
//! the bucket iteration order of every subsequently created map —
//! builder strashing, BLIF signal resolution, unate memoization, cone
//! keying — wholesale. If any of those orders leaks into an output, the
//! exported netlist changes with the seed; this test maps the whole
//! registry under two far-apart seeds and requires byte-identical
//! exports.
//!
//! Everything lives in one `#[test]` because the seed is process-global
//! and the harness runs `#[test]` functions concurrently: two tests
//! flipping the seed under each other would race.

use soi_domino::circuits::registry;
use soi_domino::domino::export;
use soi_domino::mapper::{MapConfig, Mapper};
use soi_domino::netlist::{fx, restructure};

/// Seeds far apart in every bit pattern; the first is the production
/// default, so the sweep also covers the shipped configuration.
const SEEDS: [u64; 2] = [0, 0x9e37_79b9_7f4a_7c15];

fn registry_names() -> Vec<&'static str> {
    let mut names = registry::TABLE2.to_vec();
    for name in registry::TABLE1 {
        if !names.contains(name) {
            names.push(name);
        }
    }
    names
}

/// Builds and maps every registry circuit under `seed`, returning the
/// exported netlist text per circuit. The build happens *inside* the
/// seeded region on purpose: construction-side maps (strashing, signal
/// resolution) must not leak their iteration order into node numbering
/// any more than the mapper's maps may leak into the result.
fn map_registry(seed: u64) -> Vec<(String, String)> {
    fx::set_global_seed(seed);
    let rows = registry_names()
        .into_iter()
        .map(|name| {
            let network = registry::benchmark(name).expect("registered benchmark");
            let result = Mapper::soi(MapConfig::default())
                .run(&network)
                .expect("registry circuit maps");
            (name.to_string(), export::netlist(&result.circuit))
        })
        .collect();
    fx::set_global_seed(0);
    rows
}

#[test]
fn results_are_hash_seed_independent() {
    // 1. Construction: the same generator must produce the same network
    //    (node for node, id for id) under any hasher seed — shuffled
    //    bucket orders in the build-side maps included. `reassociate`
    //    rides along because its sweep rebuilds the network through
    //    map-backed cone tracing.
    for name in ["b9", "c880", "frg1"] {
        let builds: Vec<_> = SEEDS
            .iter()
            .map(|&seed| {
                fx::set_global_seed(seed);
                let network = registry::benchmark(name).expect("registered benchmark");
                let shuffled = restructure::reassociate(&network, 7);
                fx::set_global_seed(0);
                (network, shuffled)
            })
            .collect();
        assert_eq!(
            builds[0].0, builds[1].0,
            "{name}: built network depends on the hasher seed"
        );
        assert_eq!(
            builds[0].1, builds[1].1,
            "{name}: reassociated network depends on the hasher seed"
        );
        assert_eq!(
            restructure::shape_digest(&builds[0].0),
            restructure::shape_digest(&builds[1].0),
            "{name}: shape digest depends on the hasher seed"
        );
    }

    // 2. Mapping: every registry circuit, both seeds, byte-identical
    //    exported netlists.
    let baseline = map_registry(SEEDS[0]);
    let perturbed = map_registry(SEEDS[1]);
    assert_eq!(baseline.len(), perturbed.len());
    for ((name, netlist_a), (name_b, netlist_b)) in baseline.iter().zip(&perturbed) {
        assert_eq!(name, name_b);
        assert!(
            netlist_a == netlist_b,
            "{name}: mapped netlist differs across hasher seeds — a map's iteration \
             order leaked into the result"
        );
    }
}
