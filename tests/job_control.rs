//! PR 6 job-control guarantees, checked end to end:
//!
//! * every interrupt — a tripped [`CancelToken`], an expired wall-clock
//!   deadline, a contained worker panic — surfaces as a **typed**
//!   [`MapError`] variant carrying a [`PartialMapping`], never a hang and
//!   never an abort;
//! * the salvaged partial is internally consistent
//!   ([`check_partial`]) and **resumable**: attaching its cache to a fresh
//!   mapper and re-running maps the network bit-identically to an
//!   uninterrupted run (counts, degraded nodes, candidate high-water mark,
//!   combine steps);
//! * the cone cache's size gate (`cone_cache_min_gates`) keeps per-run
//!   caches off for small circuits while attached caches always bypass it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use soi_domino::circuits::misc::random::{generate, RandomSpec};
use soi_domino::circuits::registry;
use soi_domino::guard::check_partial;
use soi_domino::mapper::{
    CancelToken, ConeCache, Limits, MapConfig, MapError, Mapper, MappingResult, Parallelism,
    PartialMapping,
};
use soi_domino::netlist::Network;
use soi_domino::unate::{convert, Options};

const SCHEDULES: [Parallelism; 2] = [Parallelism::Serial, Parallelism::Threads(2)];

/// Audits the salvage, clears every interrupt knob, re-runs with the
/// salvaged cache attached, and requires the resumed result to be
/// bit-identical to `clean`. Returns the resumed result for further
/// inspection.
fn assert_resume_matches(
    clean: &MappingResult,
    partial: &PartialMapping,
    interrupted: MapConfig,
    network: &Network,
    what: &str,
) -> MappingResult {
    if let Err(e) = check_partial(partial) {
        panic!("{what}: salvaged partial fails its audit: {e}");
    }
    let config = MapConfig {
        poison_node: None,
        limits: Limits {
            deadline: None,
            cancel: CancelToken::none(),
            cancel_after_steps: None,
            ..interrupted.limits
        },
        ..interrupted
    };
    let resumed = Mapper::soi(config)
        .with_cone_cache(partial.cache())
        .run(network)
        .unwrap_or_else(|e| panic!("{what}: resume fails: {e}"));
    assert_eq!(clean.counts, resumed.counts, "{what}: counts diverge");
    assert_eq!(
        clean.degraded_nodes, resumed.degraded_nodes,
        "{what}: degraded nodes diverge"
    );
    assert_eq!(
        clean.peak_candidates, resumed.peak_candidates,
        "{what}: peak candidates diverge"
    );
    assert_eq!(
        clean.combine_steps, resumed.combine_steps,
        "{what}: combine steps diverge"
    );
    resumed
}

/// A token tripped before the run starts cancels at the first boundary
/// check: zero units complete, zero steps are charged, and the frontier
/// is exactly the partition's dependency-free units — on every schedule.
#[test]
fn pre_tripped_token_cancels_before_any_work() {
    let network = generate(&RandomSpec::control("jc-token", 14, 6, 90, 7));
    let clean = Mapper::soi(MapConfig::default())
        .run(&network)
        .expect("clean maps");
    let token = CancelToken::new();
    token.cancel();
    for parallelism in SCHEDULES {
        let config = MapConfig {
            parallelism,
            limits: Limits {
                cancel: token,
                ..Limits::default()
            },
            ..MapConfig::default()
        };
        let err = Mapper::soi(config)
            .run(&network)
            .expect_err("a tripped token must cancel the run");
        let MapError::Cancelled { what, partial } = err else {
            panic!("expected Cancelled, got {err:?}");
        };
        assert!(what.contains("token"), "{what}");
        let partial = partial.expect("interrupts carry salvage");
        assert!(partial.is_empty());
        assert_eq!(partial.completed_units(), 0);
        assert_eq!(partial.salvaged_units(), 0);
        assert_eq!(partial.combine_steps(), 0);

        let unate = convert(
            &network,
            &Options {
                output_phase: config.output_phase,
            },
        )
        .expect("converts");
        let partition = unate.cone_partition();
        assert_eq!(partial.total_units(), partition.units().len());
        let dep_free: Vec<usize> = partition
            .units()
            .iter()
            .enumerate()
            .filter(|(_, u)| u.deps().is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(partial.frontier(), &dep_free[..]);

        assert_resume_matches(&clean, &partial, config, &network, "tripped token");
    }
}

/// An expired deadline surfaces as `DeadlineExceeded` with the elapsed
/// time and the allowance, plus a resumable salvage. The allowance is
/// calibrated against the machine: fractions of the measured clean wall
/// time, largest first (fullest partial), with a zero deadline as the
/// guaranteed-trip fallback.
#[test]
fn deadline_trips_to_a_typed_error_with_salvage() {
    let network = generate(&RandomSpec::control("jc-deadline", 16, 8, 4000, 11));
    let base = MapConfig::default();
    let t0 = Instant::now();
    let clean = Mapper::soi(base).run(&network).expect("clean maps");
    let clean_wall = t0.elapsed();

    let mut allowances: Vec<Duration> = [2u32, 4, 8, 16, 64]
        .iter()
        .map(|d| clean_wall / *d)
        .collect();
    allowances.push(Duration::ZERO);
    let mut tripped = None;
    for allowance in allowances {
        let config = MapConfig {
            limits: Limits {
                deadline: Some(allowance),
                ..base.limits
            },
            ..base
        };
        match Mapper::soi(config).run(&network) {
            // The machine outran this allowance; tighten and retry.
            Ok(_) => continue,
            Err(e) => {
                tripped = Some((e, config));
                break;
            }
        }
    }
    let (err, config) = tripped.expect("a zero deadline always trips");
    let MapError::DeadlineExceeded {
        elapsed,
        deadline,
        partial,
    } = err
    else {
        panic!("expected DeadlineExceeded, got {err:?}");
    };
    assert!(elapsed >= deadline);
    let partial = partial.expect("interrupts carry salvage");
    // Only the zero-allowance fallback may legitimately salvage nothing.
    assert!(
        !partial.is_empty() || deadline == Duration::ZERO,
        "{partial}"
    );
    assert_resume_matches(&clean, &partial, config, &network, "deadline");
}

/// A poisoned cone unit panics its worker; the panic is contained as a
/// typed `WorkerPanicked` naming the unit, the other workers drain
/// cleanly, and the completed units resume bit-identically — on every
/// schedule.
#[test]
fn poisoned_unit_is_contained_and_salvaged() {
    let network = generate(&RandomSpec::control("jc-poison", 14, 6, 120, 3));
    let base = MapConfig::default();
    let clean = Mapper::soi(base).run(&network).expect("clean maps");
    let unate = convert(
        &network,
        &Options {
            output_phase: base.output_phase,
        },
    )
    .expect("converts");
    let partition = unate.cone_partition();
    // Poison the last unit that has dependencies: its deps complete before
    // it is scheduled, so the salvage is non-empty under every schedule.
    let (target, unit) = partition
        .units()
        .iter()
        .enumerate()
        .rev()
        .find(|(_, u)| !u.deps().is_empty())
        .expect("a 120-gate network has dependent cone units");
    for parallelism in SCHEDULES {
        let config = MapConfig {
            parallelism,
            poison_node: Some(unit.root().index() as u32),
            ..base
        };
        let err = Mapper::soi(config)
            .run(&network)
            .expect_err("a poisoned unit must fail the run");
        let MapError::WorkerPanicked {
            unit: failed,
            payload,
            partial,
        } = err
        else {
            panic!("expected WorkerPanicked, got {err:?}");
        };
        assert_eq!(failed, target, "the poisoned unit is the one that fails");
        assert!(payload.contains("injected fault"), "{payload}");
        let partial = partial.expect("contained panics carry salvage");
        assert!(!partial.is_empty(), "{partial}");
        assert!(partial.completed_units() < partial.total_units());
        assert_resume_matches(&clean, &partial, config, &network, "poison");
    }
}

/// Registry sweep: cancel each circuit halfway through its combine-step
/// budget, then resume from the salvage. The resumed run rebinds every
/// salvaged unit (cache hits ≥ salvaged count) and lands bit-identical.
#[test]
fn registry_circuits_cancel_and_resume_bit_identically() {
    for name in ["cm150", "mux", "z4ml", "cordic", "frg1", "b9"] {
        let network = registry::benchmark(name).expect("registered benchmark");
        let base = MapConfig {
            parallelism: Parallelism::Serial,
            ..MapConfig::default()
        };
        let clean = Mapper::soi(base).run(&network).expect("clean maps");
        assert!(clean.combine_steps > 0, "{name}: no DP work to interrupt");
        let config = MapConfig {
            limits: Limits {
                cancel_after_steps: Some((clean.combine_steps / 2).max(1)),
                ..base.limits
            },
            ..base
        };
        let err = Mapper::soi(config)
            .run(&network)
            .expect_err("the halfway trip must fire");
        let MapError::Cancelled { partial, .. } = err else {
            panic!("{name}: expected Cancelled, got {err:?}");
        };
        let partial = partial.expect("interrupts carry salvage");
        assert!(partial.combine_steps() <= clean.combine_steps, "{name}");
        let resumed = assert_resume_matches(&clean, &partial, config, &network, name);
        assert!(
            resumed.cone_cache_hits >= partial.salvaged_units() as u64,
            "{name}: every salvaged unit must rebind on resume \
             ({} hits, {} salvaged)",
            resumed.cone_cache_hits,
            partial.salvaged_units()
        );
    }
}

/// The production default keeps per-run caches off below the gate
/// threshold; forcing the threshold to zero builds one; an *attached*
/// cache bypasses the gate entirely. All three modes map bit-identically.
#[test]
fn cache_threshold_gates_small_runs_but_not_attached_caches() {
    let network = registry::benchmark("cm150").expect("registered benchmark");
    let base = MapConfig::default();
    let gated = Mapper::soi(base).run(&network).expect("maps");
    assert_eq!(
        gated.cone_cache_hits + gated.cone_cache_misses,
        0,
        "below cone_cache_min_gates no per-run cache is built"
    );
    let forced = Mapper::soi(MapConfig {
        cone_cache_min_gates: 0,
        ..base
    })
    .run(&network)
    .expect("maps");
    assert!(forced.cone_cache_misses > 0, "a forced cache is exercised");
    let attached = Mapper::soi(base)
        .with_cone_cache(Arc::new(ConeCache::new()))
        .run(&network)
        .expect("maps");
    assert!(
        attached.cone_cache_hits + attached.cone_cache_misses > 0,
        "attached caches bypass the size gate"
    );
    for (what, run) in [("forced", &forced), ("attached", &attached)] {
        assert_eq!(gated.counts, run.counts, "{what}: counts diverge");
        assert_eq!(
            gated.degraded_nodes, run.degraded_nodes,
            "{what}: degraded nodes diverge"
        );
        assert_eq!(
            gated.peak_candidates, run.peak_candidates,
            "{what}: peak candidates diverge"
        );
        assert_eq!(
            gated.combine_steps, run.combine_steps,
            "{what}: combine steps diverge"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized sweep: cancelling at a random fraction of the clean
    /// run's combine-step budget — under serial, parallel and cached
    /// schedules — always yields a salvage whose resume is bit-identical
    /// to the uninterrupted run.
    #[test]
    fn prop_cancel_salvage_resumes_bit_identically(
        seed in 0u64..10_000,
        gates in 20usize..140,
        frac in 10u64..90,
    ) {
        let network = generate(&RandomSpec::control("jc-prop", 12, 4, gates, seed));
        let base = MapConfig::default();
        let clean = Mapper::soi(base).run(&network).expect("clean maps");
        let trip_at = (clean.combine_steps * frac / 100).max(1);
        let schedules = [
            (Parallelism::Serial, base.cone_cache_min_gates),
            (Parallelism::Threads(2), base.cone_cache_min_gates),
            (Parallelism::Threads(2), 0),
        ];
        for (parallelism, cone_cache_min_gates) in schedules {
            let config = MapConfig {
                parallelism,
                cone_cache_min_gates,
                limits: Limits {
                    cancel_after_steps: Some(trip_at),
                    ..base.limits
                },
                ..base
            };
            // The trip point is at or below the total budget, so the run
            // can never finish: the crossing charge observes the trip.
            let err = match Mapper::soi(config).run(&network) {
                Err(e) => e,
                Ok(_) => {
                    prop_assert!(false, "trip at {trip_at} of {} did not fire", clean.combine_steps);
                    unreachable!()
                }
            };
            prop_assert!(matches!(err, MapError::Cancelled { .. }), "{err:?}");
            let partial = err.partial().expect("interrupts carry salvage");
            assert_resume_matches(&clean, partial, config, &network, "prop");
        }
    }
}
