//! Dynamic PBE validation: the body-state simulator must show unprotected
//! baseline circuits mis-evaluating under adversarial input sequences, and
//! every properly mapped circuit running clean under the same stress.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use soi_domino::circuits::registry;
use soi_domino::domino::{DominoCircuit, GateId};
use soi_domino::mapper::{MapConfig, Mapper};
use soi_domino::pbe::bodysim::{BodySimConfig, BodySimulator};

/// Strips every pre-discharge transistor from a circuit (the "what if we
/// shipped the bulk mapping unprotected" scenario).
fn strip_protection(circuit: &DominoCircuit) -> DominoCircuit {
    let mut stripped = circuit.clone();
    for idx in 0..stripped.gate_count() {
        stripped
            .gate_mut(GateId::from_index(idx))
            .set_discharge(Vec::new());
    }
    stripped
}

/// Drives a circuit with an adversarial pattern: hold each vector for
/// several cycles (letting bodies charge), drop everything low, then fire
/// a fresh vector. Returns whether any cycle mis-evaluated.
fn stress(circuit: &DominoCircuit, seed: u64, rounds: usize) -> (bool, usize) {
    let mut sim = BodySimulator::new(circuit, BodySimConfig::default()).expect("valid circuit");
    let inputs = circuit.input_names().len();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut misevaluated = false;
    let mut events = 0;
    for _ in 0..rounds {
        let hold: Vec<bool> = (0..inputs).map(|_| rng.gen_bool(0.4)).collect();
        for _ in 0..4 {
            let r = sim.step(&hold).expect("arity");
            misevaluated |= r.misevaluated();
            events += r.pbe_events.len();
        }
        let quiet: Vec<bool> = vec![false; inputs];
        let r = sim.step(&quiet).expect("arity");
        misevaluated |= r.misevaluated();
        events += r.pbe_events.len();
        let fire: Vec<bool> = (0..inputs).map(|_| rng.gen_bool(0.5)).collect();
        let r = sim.step(&fire).expect("arity");
        misevaluated |= r.misevaluated();
        events += r.pbe_events.len();
    }
    (misevaluated, events)
}

#[test]
fn unprotected_baseline_fails_somewhere() {
    // Over a handful of circuits and seeds, the stripped baseline must
    // show at least one bipolar event — otherwise the simulator (or the
    // hazard model) is vacuous.
    let mut total_events = 0;
    let mut any_misevaluation = false;
    for (name, seed) in [("cm150", 11u64), ("frg1", 12), ("b9", 13), ("c432", 14)] {
        let network = registry::benchmark(name).expect("registered");
        let mapped = Mapper::baseline(MapConfig::default())
            .run(&network)
            .expect("maps");
        let stripped = strip_protection(&mapped.circuit);
        let (bad, events) = stress(&stripped, seed, 12);
        total_events += events;
        any_misevaluation |= bad;
    }
    assert!(
        total_events > 0,
        "no bipolar events on any stripped circuit"
    );
    assert!(
        any_misevaluation,
        "bipolar events fired but never corrupted an output"
    );
}

#[test]
fn protected_circuits_run_clean() {
    for (name, seed) in [("cm150", 21u64), ("frg1", 22), ("b9", 23), ("c432", 24)] {
        let network = registry::benchmark(name).expect("registered");
        for mapper in [
            Mapper::baseline(MapConfig::default()),
            Mapper::rearrange_stacks(MapConfig::default()),
            Mapper::soi(MapConfig::default()),
        ] {
            let mapped = mapper.run(&network).expect("maps");
            let (bad, events) = stress(&mapped.circuit, seed, 12);
            assert!(
                !bad && events == 0,
                "{:?} on {name}: {events} events, misevaluated={bad}",
                mapper.algorithm()
            );
        }
    }
}

#[test]
fn protection_reduces_hysteresis_exposure() {
    // §III-A / §I: keeping body voltages low also narrows the timing
    // hysteresis. Measure cumulative charged-body phases under identical
    // stress, protected vs stripped.
    let network = registry::benchmark("frg1").expect("registered");
    let mapped = Mapper::baseline(MapConfig::default())
        .run(&network)
        .expect("maps");
    let stripped = strip_protection(&mapped.circuit);

    let exposure = |circuit: &DominoCircuit| -> u64 {
        let mut sim = BodySimulator::new(circuit, BodySimConfig::default()).expect("valid circuit");
        let mut rng = SmallRng::seed_from_u64(77);
        let inputs = circuit.input_names().len();
        for _ in 0..30 {
            let hold: Vec<bool> = (0..inputs).map(|_| rng.gen_bool(0.4)).collect();
            for _ in 0..4 {
                sim.step(&hold).expect("arity");
            }
        }
        sim.hysteresis_exposure()
    };

    let protected = exposure(&mapped.circuit);
    let unprotected = exposure(&stripped);
    assert!(
        protected < unprotected,
        "discharge transistors should reduce charged-body time: {protected} !< {unprotected}"
    );
}

#[test]
fn fewer_discharge_transistors_same_protection() {
    // The SOI mapping protects with far fewer clock-loading devices; the
    // simulator confirms the protection is equivalent under stress.
    let network = registry::benchmark("b9").expect("registered");
    let base = Mapper::baseline(MapConfig::default())
        .run(&network)
        .unwrap();
    let soi = Mapper::soi(MapConfig::default()).run(&network).unwrap();
    assert!(soi.counts.discharge < base.counts.discharge);
    let (bad_base, ev_base) = stress(&base.circuit, 31, 10);
    let (bad_soi, ev_soi) = stress(&soi.circuit, 31, 10);
    assert!(!bad_base && ev_base == 0);
    assert!(!bad_soi && ev_soi == 0);
}
