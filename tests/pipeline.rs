//! End-to-end pipeline tests: network → unate conversion → mapping →
//! functional equivalence, PBE safety, and accounting consistency, across
//! all three algorithms and a spread of benchmark circuits.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use soi_domino::circuits::registry;
use soi_domino::mapper::{Algorithm, MapConfig, Mapper};
use soi_domino::netlist::Network;
use soi_domino::pbe::hazard;

fn mappers() -> [Mapper; 3] {
    [
        Mapper::baseline(MapConfig::default()),
        Mapper::rearrange_stacks(MapConfig::default()),
        Mapper::soi(MapConfig::default()),
    ]
}

/// Random-vector equivalence between a source network and its mapped
/// domino circuit.
fn check_equivalent(network: &Network, mapper: &Mapper, vectors: usize, seed: u64) {
    let result = mapper.run(network).expect("mapping succeeds");
    result.circuit.validate().expect("valid circuit");
    let mut rng = SmallRng::seed_from_u64(seed);
    let inputs = network.inputs().len();
    for round in 0..vectors {
        let v: Vec<bool> = (0..inputs).map(|_| rng.gen()).collect();
        let want = network.simulate(&v).expect("source simulates");
        let got = result.circuit.evaluate(&v).expect("circuit evaluates");
        assert_eq!(
            got,
            want,
            "{:?} on {} mismatches at round {round}",
            mapper.algorithm(),
            network.name()
        );
    }
}

#[test]
fn small_benchmarks_map_equivalently_under_all_algorithms() {
    for name in [
        "cm150", "mux", "z4ml", "cordic", "frg1", "b9", "9symml", "c432",
    ] {
        let network = registry::benchmark(name).expect("registered");
        for mapper in mappers() {
            check_equivalent(&network, &mapper, 40, 0xE0 + name.len() as u64);
        }
    }
}

#[test]
fn medium_benchmarks_map_equivalently_under_soi() {
    for name in ["c880", "c1355", "count", "f51m", "rot"] {
        let network = registry::benchmark(name).expect("registered");
        check_equivalent(&network, &Mapper::soi(MapConfig::default()), 20, 0x5E5);
    }
}

#[test]
fn every_algorithm_produces_pbe_safe_circuits() {
    for name in ["cm150", "z4ml", "frg1", "b9", "c432", "9symml", "cordic"] {
        let network = registry::benchmark(name).expect("registered");
        for mapper in mappers() {
            let result = mapper.run(&network).expect("maps");
            let hazards = hazard::check(&result.circuit);
            assert!(
                hazards.is_empty(),
                "{:?} on {name}: {} hazards, first: {}",
                mapper.algorithm(),
                hazards.len(),
                hazards[0]
            );
        }
    }
}

#[test]
fn soi_never_overprotects() {
    for name in ["cm150", "b9", "c432", "frg1"] {
        let network = registry::benchmark(name).expect("registered");
        let result = Mapper::soi(MapConfig::default())
            .run(&network)
            .expect("maps");
        assert!(
            hazard::redundant_discharge(&result.circuit).is_empty(),
            "{name}: SOI attached unnecessary discharge transistors"
        );
    }
}

#[test]
fn counts_are_internally_consistent() {
    for name in ["cm150", "b9", "c880"] {
        let network = registry::benchmark(name).expect("registered");
        for mapper in mappers() {
            let result = mapper.run(&network).expect("maps");
            let counts = result.counts;
            assert_eq!(counts.total, counts.logic + counts.discharge);
            assert_eq!(counts.gates as usize, result.circuit.gate_count());
            assert_eq!(counts.levels, result.circuit.levels());
            // Recount from the circuit itself.
            assert_eq!(counts, result.circuit.counts());
        }
    }
}

#[test]
fn ordering_of_algorithms_on_discharge() {
    for name in ["cm150", "z4ml", "frg1", "b9", "apex7", "c432"] {
        let network = registry::benchmark(name).expect("registered");
        let base = Mapper::baseline(MapConfig::default())
            .run(&network)
            .unwrap();
        let rs = Mapper::rearrange_stacks(MapConfig::default())
            .run(&network)
            .unwrap();
        let soi = Mapper::soi(MapConfig::default()).run(&network).unwrap();
        assert!(
            rs.counts.discharge <= base.counts.discharge,
            "{name}: RS should not add discharge transistors"
        );
        assert!(
            soi.counts.total <= base.counts.total,
            "{name}: SOI total must not exceed the blind baseline"
        );
        assert_eq!(base.algorithm, Algorithm::DominoMap);
        assert_eq!(rs.algorithm, Algorithm::RsMap);
        assert_eq!(soi.algorithm, Algorithm::SoiDominoMap);
    }
}

#[test]
fn depth_objective_levels_do_not_exceed_area_levels_much() {
    for name in ["cm150", "b9", "c432"] {
        let network = registry::benchmark(name).expect("registered");
        let area = Mapper::soi(MapConfig::default()).run(&network).unwrap();
        let depth = Mapper::soi(MapConfig::depth()).run(&network).unwrap();
        assert!(
            depth.counts.levels <= area.counts.levels,
            "{name}: depth objective produced more levels ({}) than area ({})",
            depth.counts.levels,
            area.counts.levels
        );
    }
}

#[test]
fn clock_weighting_only_reduces_clock_transistors() {
    for name in ["b9", "c432", "9symml"] {
        let network = registry::benchmark(name).expect("registered");
        let k1 = Mapper::soi(MapConfig::with_clock_weight(1))
            .run(&network)
            .unwrap();
        let k4 = Mapper::soi(MapConfig::with_clock_weight(4))
            .run(&network)
            .unwrap();
        assert!(
            k4.counts.clock <= k1.counts.clock,
            "{name}: heavier clock weight increased T_clock ({} > {})",
            k4.counts.clock,
            k1.counts.clock
        );
    }
}

#[test]
fn blif_roundtrip_through_the_full_flow() {
    // The BLIF writer expands XOR gates into covers that the reader
    // re-synthesizes as AND/OR/INV logic, so the parsed network is
    // structurally different (but equivalent); it must still map to a
    // functionally identical, PBE-safe circuit of comparable size.
    let network = registry::benchmark("z4ml").expect("registered");
    let text = soi_domino::netlist::blif::write(&network);
    let parsed = soi_domino::netlist::blif::parse(&text).expect("parses");
    assert!(soi_domino::netlist::sim::random_equivalent(&network, &parsed, 16, 5).unwrap());
    let via_blif = Mapper::soi(MapConfig::default()).run(&parsed).unwrap();
    assert!(hazard::is_safe(&via_blif.circuit));
    check_equivalent(&parsed, &Mapper::soi(MapConfig::default()), 32, 0xB11F);
    let direct = Mapper::soi(MapConfig::default()).run(&network).unwrap();
    let (a, b) = (direct.counts.total as f64, via_blif.counts.total as f64);
    assert!((a - b).abs() / a < 0.5, "sizes diverged: {a} vs {b}");
}
