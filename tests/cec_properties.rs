//! Property-based round-trip for the Tseitin CNF encoder: a random
//! network is encoded, the solver is run with every primary input forced
//! through assumptions, and the decoded output literals must equal the
//! scalar simulator's verdicts. This pins the encoder's gate semantics
//! (all eight kinds, constants, strashed sharing) against the one source
//! of truth everything else in the workspace trusts: `Network::simulate`.

use proptest::prelude::*;
use soi_domino::cec::{Encoder, SatResult};
use soi_domino::netlist::{BinOp, Network, NodeId};

/// A recipe for one random gate: operation selector and two fanin picks
/// (the same shape as `tests/properties.rs`, plus constant nodes so the
/// encoder's folding paths get exercised).
#[derive(Debug, Clone)]
struct GateRecipe {
    op: u8,
    a: prop::sample::Index,
    b: prop::sample::Index,
}

fn gate_recipe() -> impl Strategy<Value = GateRecipe> {
    (
        0u8..9,
        any::<prop::sample::Index>(),
        any::<prop::sample::Index>(),
    )
        .prop_map(|(op, a, b)| GateRecipe { op, a, b })
}

fn build_network(inputs: usize, recipes: &[GateRecipe], outputs: usize) -> Network {
    let mut n = Network::new("cec-prop");
    let mut pool: Vec<NodeId> = (0..inputs).map(|i| n.add_input(format!("i{i}"))).collect();
    for r in recipes {
        let a = pool[r.a.index(pool.len())];
        let b = pool[r.b.index(pool.len())];
        let id = match r.op {
            0 => n.binary(BinOp::And, a, b),
            1 => n.binary(BinOp::Or, a, b),
            2 => n.binary(BinOp::Nand, a, b),
            3 => n.binary(BinOp::Nor, a, b),
            4 => n.binary(BinOp::Xor, a, b),
            5 => n.binary(BinOp::Xnor, a, b),
            6 => n.inv(a),
            7 => n.add_const(r.b.index(2) == 1),
            _ => n.buf(a),
        };
        pool.push(id);
    }
    for k in 0..outputs {
        let driver = pool[pool.len() - 1 - (k * 3) % pool.len().min(17)];
        n.add_output(format!("o{k}"), driver);
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Encode → force every PI by assumption → decoded outputs equal the
    /// scalar simulation, on every assignment of a small input space.
    #[test]
    fn cnf_encoding_round_trips_through_the_solver(
        recipes in prop::collection::vec(gate_recipe(), 1..40),
        inputs in 1usize..6,
    ) {
        let network = build_network(inputs, &recipes, 2);
        let mut enc = Encoder::new();
        let in_lits: Vec<_> = (0..inputs).map(|_| enc.fresh()).collect();
        let lits = enc.encode_network(&network, &in_lits).expect("encodes");

        for bits in 0u32..(1 << inputs) {
            let vals: Vec<bool> = (0..inputs).map(|k| bits >> k & 1 == 1).collect();
            let assumptions: Vec<_> = in_lits
                .iter()
                .zip(&vals)
                .map(|(&l, &v)| l.xor_sign(!v))
                .collect();
            // The formula is a pure function of the PIs: with every PI
            // pinned it must be satisfiable, in exactly one way on the
            // output literals.
            let verdict = enc.solve(&assumptions, 1_000_000);
            prop_assert_eq!(verdict, SatResult::Sat, "inputs {:?} unexpectedly unsat", vals);
            let expect = network.simulate(&vals).expect("simulates");
            for (o, &lit) in lits.outputs.iter().enumerate() {
                prop_assert_eq!(
                    enc.model_value(lit),
                    expect[o],
                    "output {} differs on inputs {:?}",
                    o,
                    vals
                );
            }
        }
    }

    /// The dual direction: constraining an output to the *wrong* value
    /// while all PIs are pinned must be unsatisfiable — the encoding has
    /// no slack assignments.
    #[test]
    fn forced_miscompares_are_unsatisfiable(
        recipes in prop::collection::vec(gate_recipe(), 1..30),
        inputs in 1usize..6,
        bits in any::<u32>(),
    ) {
        let network = build_network(inputs, &recipes, 1);
        let mut enc = Encoder::new();
        let in_lits: Vec<_> = (0..inputs).map(|_| enc.fresh()).collect();
        let lits = enc.encode_network(&network, &in_lits).expect("encodes");

        let vals: Vec<bool> = (0..inputs).map(|k| bits >> k & 1 == 1).collect();
        let expect = network.simulate(&vals).expect("simulates");
        let mut assumptions: Vec<_> = in_lits
            .iter()
            .zip(&vals)
            .map(|(&l, &v)| l.xor_sign(!v))
            .collect();
        // Assume the output at the complement of its true value.
        assumptions.push(lits.outputs[0].xor_sign(expect[0]));
        prop_assert_eq!(enc.solve(&assumptions, 1_000_000), SatResult::Unsat);
    }
}
