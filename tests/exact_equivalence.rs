//! Exact (BDD-based) verification of the flow on the benchmarks whose
//! functions stay tractable — a stronger statement than the random-vector
//! checks used elsewhere.

use soi_domino::cec::lower::circuit_to_network;
use soi_domino::circuits::registry;
use soi_domino::mapper::{MapConfig, Mapper};
use soi_domino::netlist::bdd;
use soi_domino::unate::{convert, Options};

#[test]
fn unate_conversion_is_exactly_equivalent() {
    for name in ["cm150", "mux", "z4ml", "9symml", "frg1", "c432"] {
        let network = registry::benchmark(name).expect("registered");
        let unate = convert(&network, &Options::default()).expect("converts");
        let lowered = unate.to_network();
        match bdd::equivalent(&network, &lowered, 1 << 21) {
            Ok(eq) => assert!(eq, "{name}: unate conversion changed the function"),
            Err(overflow) => panic!("{name}: unexpected BDD overflow ({overflow})"),
        }
    }
}

#[test]
fn mapped_circuits_are_exactly_equivalent() {
    for name in ["cm150", "z4ml", "9symml", "c432"] {
        let network = registry::benchmark(name).expect("registered");
        for mapper in [
            Mapper::baseline(MapConfig::default()),
            Mapper::rearrange_stacks(MapConfig::default()),
            Mapper::soi(MapConfig::default()),
        ] {
            let result = mapper.run(&network).expect("maps");
            let lowered = circuit_to_network(&result.circuit);
            match bdd::equivalent(&network, &lowered, 1 << 21) {
                Ok(eq) => assert!(
                    eq,
                    "{name}: {:?} mapping changed the function",
                    mapper.algorithm()
                ),
                Err(overflow) => panic!("{name}: unexpected BDD overflow ({overflow})"),
            }
        }
    }
}

#[test]
fn duplication_is_exactly_equivalent() {
    let network = registry::benchmark("cm150").expect("registered");
    let config = MapConfig {
        allow_duplication: true,
        ..MapConfig::default()
    };
    let result = Mapper::soi(config).run(&network).expect("maps");
    let lowered = circuit_to_network(&result.circuit);
    assert!(bdd::equivalent(&network, &lowered, 1 << 21).expect("tractable"));
}
