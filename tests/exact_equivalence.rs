//! Exact (BDD-based) verification of the flow on the benchmarks whose
//! functions stay tractable — a stronger statement than the random-vector
//! checks used elsewhere.

use soi_domino::circuits::registry;
use soi_domino::domino::{DominoCircuit, Signal};
use soi_domino::mapper::{MapConfig, Mapper};
use soi_domino::netlist::{bdd, Network};
use soi_domino::unate::{convert, Options};

/// Lowers a mapped domino circuit back into a plain logic network so its
/// BDD can be compared against the source's.
fn circuit_to_network(circuit: &DominoCircuit) -> Network {
    let mut n = Network::new("lowered");
    let inputs: Vec<_> = circuit
        .input_names()
        .iter()
        .map(|name| n.add_input(name.clone()))
        .collect();
    let mut neg: Vec<Option<soi_domino::netlist::NodeId>> = vec![None; inputs.len()];
    let mut gate_out = Vec::with_capacity(circuit.gate_count());
    for (_, gate) in circuit.iter() {
        let root = lower_pdn(gate.pdn(), &mut n, &inputs, &mut neg, &gate_out);
        gate_out.push(root);
    }
    for binding in circuit.outputs() {
        let driver = gate_out[binding.gate.index()];
        let driver = if binding.inverted {
            n.inv(driver)
        } else {
            driver
        };
        n.add_output(binding.name.clone(), driver);
    }
    n
}

fn lower_pdn(
    pdn: &soi_domino::domino::Pdn,
    n: &mut Network,
    inputs: &[soi_domino::netlist::NodeId],
    neg: &mut Vec<Option<soi_domino::netlist::NodeId>>,
    gate_out: &[soi_domino::netlist::NodeId],
) -> soi_domino::netlist::NodeId {
    use soi_domino::domino::{Pdn, Phase};
    match pdn {
        Pdn::Transistor(sig) => match *sig {
            Signal::Input { index, phase } => match phase {
                Phase::Pos => inputs[index],
                Phase::Neg => *neg[index].get_or_insert_with(|| n.inv(inputs[index])),
            },
            Signal::Gate(g) => gate_out[g.index()],
        },
        Pdn::Series(children) => {
            let parts: Vec<_> = children
                .iter()
                .map(|c| lower_pdn(c, n, inputs, neg, gate_out))
                .collect();
            n.and_tree(&parts)
        }
        Pdn::Parallel(children) => {
            let parts: Vec<_> = children
                .iter()
                .map(|c| lower_pdn(c, n, inputs, neg, gate_out))
                .collect();
            n.or_tree(&parts)
        }
    }
}

#[test]
fn unate_conversion_is_exactly_equivalent() {
    for name in ["cm150", "mux", "z4ml", "9symml", "frg1", "c432"] {
        let network = registry::benchmark(name).expect("registered");
        let unate = convert(&network, &Options::default()).expect("converts");
        let lowered = unate.to_network();
        match bdd::equivalent(&network, &lowered, 1 << 21) {
            Ok(eq) => assert!(eq, "{name}: unate conversion changed the function"),
            Err(overflow) => panic!("{name}: unexpected BDD overflow ({overflow})"),
        }
    }
}

#[test]
fn mapped_circuits_are_exactly_equivalent() {
    for name in ["cm150", "z4ml", "9symml", "c432"] {
        let network = registry::benchmark(name).expect("registered");
        for mapper in [
            Mapper::baseline(MapConfig::default()),
            Mapper::rearrange_stacks(MapConfig::default()),
            Mapper::soi(MapConfig::default()),
        ] {
            let result = mapper.run(&network).expect("maps");
            let lowered = circuit_to_network(&result.circuit);
            match bdd::equivalent(&network, &lowered, 1 << 21) {
                Ok(eq) => assert!(
                    eq,
                    "{name}: {:?} mapping changed the function",
                    mapper.algorithm()
                ),
                Err(overflow) => panic!("{name}: unexpected BDD overflow ({overflow})"),
            }
        }
    }
}

#[test]
fn duplication_is_exactly_equivalent() {
    let network = registry::benchmark("cm150").expect("registered");
    let config = MapConfig {
        allow_duplication: true,
        ..MapConfig::default()
    };
    let result = Mapper::soi(config).run(&network).expect("maps");
    let lowered = circuit_to_network(&result.circuit);
    assert!(bdd::equivalent(&network, &lowered, 1 << 21).expect("tractable"));
}
