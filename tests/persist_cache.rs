//! PR 8 guarantees for the persistent cone-cache store, checked end to end:
//! a store written by [`ConeCache::save`] and reloaded by [`ConeCache::load`]
//! is a pure warm-start — it changes wall-clock, never results.
//!
//! * **Round trip** — map, save, load into a fresh cache, re-map: the warm
//!   run is bit-identical to a cold-cache reference and reports
//!   `persist_hits > 0`, and the reloaded cache holds exactly the entry
//!   counts the store advertised.
//! * **Determinism** — two saves of the same cache produce identical bytes
//!   (entries are emitted in sorted key order).
//! * **Corruption** — every single-byte flip and every truncation of a
//!   valid store either surfaces a typed [`MapError::CacheCorrupt`] /
//!   [`MapError::Io`] or loads with the damaged entries *skipped*; it never
//!   panics, and whatever survives still maps bit-identically to the cold
//!   reference (checksummed frames make damaged payloads detectable).

use std::sync::Arc;

use soi_domino::circuits::registry;
use soi_domino::mapper::{ConeCache, MapConfig, MapError, Mapper, MappingResult, Parallelism};
use soi_domino::netlist::Network;
use soi_domino::trace::{Counter, Recorder};

/// Serial, cache-eligible configuration: integration circuits sit below the
/// production size gate, so the gate is lowered to make the cache real.
fn cached_config() -> MapConfig {
    MapConfig {
        parallelism: Parallelism::Serial,
        cone_cache: true,
        cone_cache_min_gates: 0,
        ..MapConfig::default()
    }
}

fn cold_config() -> MapConfig {
    MapConfig {
        cone_cache: false,
        ..cached_config()
    }
}

fn assert_identical(reference: &MappingResult, got: &MappingResult, what: &str) {
    assert_eq!(reference.counts, got.counts, "{what}: counts diverge");
    assert_eq!(
        reference.circuit, got.circuit,
        "{what}: materialized netlists diverge"
    );
    assert_eq!(
        reference.degraded_nodes, got.degraded_nodes,
        "{what}: degraded nodes diverge"
    );
    assert_eq!(
        reference.peak_candidates, got.peak_candidates,
        "{what}: peak candidates diverge"
    );
    assert_eq!(
        reference.combine_steps, got.combine_steps,
        "{what}: combine steps diverge"
    );
}

/// Maps `network` once through a fresh cache and returns the store bytes
/// alongside the cold reference and the populated cache's entry counts.
fn populated_store(network: &Network) -> (Vec<u8>, MappingResult, usize, usize) {
    let reference = Mapper::soi(cold_config())
        .run(network)
        .expect("cold reference maps");
    let cache = Arc::new(ConeCache::new());
    let warm = Mapper::soi(cached_config())
        .with_cone_cache(Arc::clone(&cache))
        .run(network)
        .expect("cache-building run maps");
    assert_identical(&reference, &warm, "cache-building run");
    let mut bytes = Vec::new();
    cache
        .save_to(&mut bytes)
        .expect("save_to a Vec cannot fail");
    (bytes, reference, cache.cone_entries(), cache.node_entries())
}

#[test]
fn store_round_trips_and_serves_persisted_hits() {
    let network = registry::benchmark("c880").expect("registered");
    let (bytes, reference, cone_entries, node_entries) = populated_store(&network);

    // Saves are byte-deterministic: entries are written in sorted key order.
    let rebuilt = Arc::new(ConeCache::new());
    let stats = rebuilt.load_from(&bytes[..]).expect("pristine store loads");
    assert_eq!(
        stats.cone_entries, cone_entries,
        "cone entry count diverges"
    );
    assert_eq!(
        stats.node_entries, node_entries,
        "node entry count diverges"
    );
    assert_eq!(stats.skipped_entries, 0, "pristine store skipped entries");
    assert_eq!(rebuilt.cone_entries(), cone_entries);
    assert_eq!(rebuilt.node_entries(), node_entries);
    let mut again = Vec::new();
    rebuilt
        .save_to(&mut again)
        .expect("save_to a Vec cannot fail");
    assert_eq!(bytes, again, "save is not byte-deterministic");

    // A warm run against the reloaded cache is bit-identical and every hit
    // it takes is accounted as a persisted hit.
    let (rec, trace) = Recorder::install();
    rec.reset();
    let warm = Mapper::soi(MapConfig {
        trace,
        ..cached_config()
    })
    .with_cone_cache(rebuilt)
    .run(&network)
    .expect("warm run maps");
    assert_identical(&reference, &warm, "warm persistent run");
    let persist_hits = rec.counter(Counter::PersistHits);
    assert!(
        persist_hits > 0,
        "reloaded store served no persisted hits on an identical circuit"
    );
    assert_eq!(
        persist_hits, warm.cone_cache_hits,
        "every warm-run hit should come from the persisted store"
    );
}

#[test]
fn store_round_trips_through_the_filesystem() {
    let network = registry::benchmark("frg1").expect("registered");
    let (bytes, reference, cone_entries, node_entries) = populated_store(&network);

    let path = std::env::temp_dir().join(format!(
        "soi-persist-{}-{:x}.cch",
        std::process::id(),
        bytes.len()
    ));
    let cache = Arc::new(ConeCache::new());
    cache.load_from(&bytes[..]).expect("pristine store loads");
    cache.save(&path).expect("save to temp file");
    let reloaded = ConeCache::new();
    let stats = reloaded.load(&path).expect("load from temp file");
    std::fs::remove_file(&path).ok();
    assert_eq!(stats.cone_entries, cone_entries);
    assert_eq!(stats.node_entries, node_entries);
    assert_eq!(stats.skipped_entries, 0);

    let warm = Mapper::soi(cached_config())
        .with_cone_cache(Arc::new(reloaded))
        .run(&network)
        .expect("warm run maps");
    assert_identical(&reference, &warm, "file round trip");

    // A missing store is a typed I/O error, not a panic or a silent no-op.
    let missing = ConeCache::new().load(&path);
    assert!(
        matches!(missing, Err(MapError::Io { .. })),
        "missing store should be MapError::Io, got {missing:?}"
    );
}

#[test]
fn header_damage_is_a_typed_corruption_error() {
    let network = registry::benchmark("frg1").expect("registered");
    let (bytes, _, _, _) = populated_store(&network);

    // Magic (bytes 0..8), version (8..12) and the two entry counts
    // (12..28) are all structural: any flip there must be rejected whole.
    for offset in 0..12 {
        let mut damaged = bytes.clone();
        damaged[offset] ^= 0x5a;
        let got = ConeCache::new().load_from(&damaged[..]);
        assert!(
            matches!(got, Err(MapError::CacheCorrupt { .. })),
            "flip at header byte {offset} should be CacheCorrupt, got {got:?}"
        );
    }
}

#[test]
fn byte_flips_are_skipped_or_rejected_never_believed() {
    let network = registry::benchmark("frg1").expect("registered");
    let (bytes, reference, cone_entries, node_entries) = populated_store(&network);
    let total = cone_entries + node_entries;

    // Seeded single-byte flips across the whole store body. Each must
    // either fail typed (framing damage) or load with the damaged entry
    // skipped — and whatever loaded must still map bit-identically.
    let mut skipped_at_least_once = false;
    let mut offset = 28; // first byte past the fixed header
    while offset < bytes.len() {
        let mut damaged = bytes.clone();
        damaged[offset] ^= 0xa5;
        let cache = Arc::new(ConeCache::new());
        match cache.load_from(&damaged[..]) {
            Err(MapError::CacheCorrupt { .. }) => {}
            Err(e) => panic!("flip at byte {offset}: unexpected error {e:?}"),
            Ok(stats) => {
                assert!(
                    stats.skipped_entries > 0,
                    "flip at byte {offset} loaded cleanly — checksum missed it"
                );
                assert_eq!(
                    stats.cone_entries + stats.node_entries + stats.skipped_entries,
                    total,
                    "flip at byte {offset}: entries lost without being counted"
                );
                skipped_at_least_once = true;
                let warm = Mapper::soi(cached_config())
                    .with_cone_cache(cache)
                    .run(&network)
                    .expect("partially loaded cache maps");
                assert_identical(&reference, &warm, "partially loaded cache");
            }
        }
        offset += 131; // prime stride: covers keys, lengths, checksums, payloads
    }
    assert!(
        skipped_at_least_once,
        "no flip exercised the per-entry skip path; widen the stride"
    );
}

#[test]
fn truncations_never_panic() {
    let network = registry::benchmark("frg1").expect("registered");
    let (bytes, reference, _, _) = populated_store(&network);

    let mut len = 0;
    while len < bytes.len() {
        let cache = Arc::new(ConeCache::new());
        match cache.load_from(&bytes[..len]) {
            Err(MapError::CacheCorrupt { .. }) => {}
            Err(e) => panic!("truncation at {len}: unexpected error {e:?}"),
            Ok(_) => {
                let warm = Mapper::soi(cached_config())
                    .with_cone_cache(cache)
                    .run(&network)
                    .expect("truncated-store cache maps");
                assert_identical(&reference, &warm, "truncated store");
            }
        }
        len += 97; // prime stride: lands mid-header, mid-frame, mid-payload
    }
}
