//! PR 4 guarantees, checked end to end: the structural cone cache is a
//! pure scheduling optimization.
//!
//! * Mapping with the cone cache on is **bit-identical** to mapping with
//!   it off — same transistor/discharge counts, same materialized domino
//!   netlist, same degraded-node list, same `peak_candidates` high-water
//!   mark — on seeded random networks, guard-mutated networks (where the
//!   mutation still yields a mappable graph, both modes map it the same;
//!   where it doesn't, both fail with the same error), and registry
//!   circuits.
//! * Repetitive circuits actually hit: the des rounds and the array
//!   multiplier resolve more than half their cones from the cache.
//! * A cache shared across runs via `Mapper::with_cone_cache` serves the
//!   second identical run entirely from memory, without changing results.

use std::sync::Arc;

use proptest::prelude::*;
use soi_domino::circuits::misc::random::{generate, RandomSpec};
use soi_domino::circuits::registry;
use soi_domino::guard::inject;
use soi_domino::mapper::{ConeCache, MapConfig, Mapper, MappingResult};
use soi_domino::netlist::Network;

/// The three mapper constructors under test.
const MAPPERS: [fn(MapConfig) -> Mapper; 3] =
    [Mapper::baseline, Mapper::rearrange_stacks, Mapper::soi];

fn spec(seed: u64) -> RandomSpec {
    RandomSpec::control(&format!("cc{seed}"), 14, 6, 90, seed)
}

fn with_cache(cone_cache: bool, base: MapConfig) -> MapConfig {
    MapConfig {
        cone_cache,
        // These suites exercise circuits below the production size gate
        // (`cone_cache_min_gates`); "cache on" must actually build one.
        cone_cache_min_gates: 0,
        ..base
    }
}

fn assert_same_mapping(on: &MappingResult, off: &MappingResult, what: &str) {
    assert_eq!(on.counts, off.counts, "{what}: counts diverge");
    assert_eq!(
        on.circuit, off.circuit,
        "{what}: materialized netlists diverge"
    );
    assert_eq!(
        on.degraded_nodes, off.degraded_nodes,
        "{what}: degraded nodes diverge"
    );
    assert_eq!(
        on.peak_candidates, off.peak_candidates,
        "{what}: peak candidates diverge"
    );
}

fn assert_cache_invisible(network: &Network, base: MapConfig, what: &str) {
    for make in MAPPERS {
        let on = make(with_cache(true, base)).run(network);
        let off = make(with_cache(false, base)).run(network);
        match (on, off) {
            (Ok(on), Ok(off)) => assert_same_mapping(&on, &off, what),
            (Err(e_on), Err(e_off)) => assert_eq!(
                e_on.to_string(),
                e_off.to_string(),
                "{what}: cache on/off fail differently"
            ),
            (on, off) => panic!(
                "{what}: cache on/off disagree on mappability (on: {}, off: {})",
                on.is_ok(),
                off.is_ok()
            ),
        }
    }
}

/// Twenty seeded random networks: every mapper, cache on vs off.
#[test]
fn cone_cache_is_bit_identical_on_seeded_networks() {
    for seed in 0..20u64 {
        let network = generate(&spec(seed));
        assert_cache_invisible(&network, MapConfig::default(), &format!("seed {seed}"));
    }
}

/// The same identity after guard-crate network mutators: whatever a
/// corruption does to mappability, the cache must not change it. (Most
/// mutants are rejected upstream of the DP — the point is that cache-on
/// and cache-off agree on *every* outcome, not just clean ones.)
#[test]
fn cone_cache_is_bit_identical_on_guard_mutants() {
    for seed in 0..20u64 {
        let network = generate(&spec(seed));
        let mutants = [
            ("dangling_fanin", inject::dangling_fanin(&network, seed)),
            ("forward_fanin", inject::forward_fanin(&network, seed)),
            ("dangling_output", inject::dangling_output(&network, seed)),
            ("break_topo_order", inject::break_topo_order(&network, seed)),
            (
                "duplicate_input_name",
                inject::duplicate_input_name(&network, seed),
            ),
        ];
        for (mutator, mutant) in mutants {
            let Some(mutant) = mutant else { continue };
            assert_cache_invisible(
                &mutant,
                MapConfig::default(),
                &format!("seed {seed}, mutator {mutator}"),
            );
        }
    }
}

/// Registry circuits under both objectives, including the repetitive ones
/// where the cache actually fires.
#[test]
fn cone_cache_is_bit_identical_on_registry_circuits() {
    for name in ["cm150", "z4ml", "f51m", "b9", "c880", "des"] {
        let network = registry::benchmark(name).expect("registered");
        assert_cache_invisible(&network, MapConfig::default(), name);
        assert_cache_invisible(&network, MapConfig::depth(), &format!("{name} (depth)"));
    }
}

/// Repetitive structure pays off: the des rounds and the 3-bit array
/// multiplier resolve more than half their cone units from the cache.
#[test]
fn repetitive_circuits_hit_the_cache() {
    for name in ["des", "f51m"] {
        let network = registry::benchmark(name).expect("registered");
        let result = Mapper::soi(MapConfig {
            cone_cache_min_gates: 0,
            ..MapConfig::default()
        })
        .run(&network)
        .expect("maps");
        let rate = result
            .cone_cache_hit_rate()
            .expect("cache forced on, units exist");
        assert!(
            rate > 0.5,
            "{name}: cone-cache hit rate {:.1}% (hits {}, misses {})",
            rate * 100.0,
            result.cone_cache_hits,
            result.cone_cache_misses
        );
    }
}

/// A cache shared across runs warms up: the second identical run misses
/// nothing and still produces the identical circuit.
#[test]
fn shared_cache_serves_identical_rerun_entirely_from_memory() {
    let network = registry::benchmark("z4ml").expect("registered");
    let cache = Arc::new(ConeCache::new());
    let mapper = Mapper::soi(MapConfig::default()).with_cone_cache(Arc::clone(&cache));
    let first = mapper.run(&network).expect("first run maps");
    assert!(first.cone_cache_misses > 0, "first run must fill the cache");
    let second = mapper.run(&network).expect("second run maps");
    assert_eq!(
        second.cone_cache_misses, 0,
        "identical rerun should hit on every cone (hits {})",
        second.cone_cache_hits
    );
    assert_same_mapping(&second, &first, "shared-cache rerun");
    assert!(cache.hits() >= second.cone_cache_hits);
    assert!(!cache.is_empty());
}

/// An attached cache overrides `cone_cache: false` and stays coherent
/// across *different* mappers sharing it (distinct config fingerprints
/// must never cross-contaminate).
#[test]
fn shared_cache_isolates_config_fingerprints() {
    let network = registry::benchmark("cm150").expect("registered");
    let cache = Arc::new(ConeCache::new());
    let area =
        Mapper::soi(with_cache(false, MapConfig::default())).with_cone_cache(Arc::clone(&cache));
    let depth =
        Mapper::soi(with_cache(false, MapConfig::depth())).with_cone_cache(Arc::clone(&cache));
    let area_result = area.run(&network).expect("area maps");
    let depth_result = depth.run(&network).expect("depth maps");
    // Attached cache overrides the disabled flag: the runs went through it.
    assert!(area_result.cone_cache_misses > 0);
    // The depth run may only reuse entries keyed under its own fingerprint
    // — results must match plain uncached runs exactly.
    let plain_depth = Mapper::soi(with_cache(false, MapConfig::depth()))
        .run(&network)
        .expect("plain depth maps");
    assert_same_mapping(&depth_result, &plain_depth, "fingerprint isolation");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized sweep over size, seed, shape limits and duplication:
    /// cache on and off stay bit-identical, including under degraded
    /// (relaxed-limit) mappings, and `peak_candidates` is invariant.
    #[test]
    fn prop_cone_cache_invariants(
        seed in 0u64..10_000,
        gates in 20usize..140,
        w_max in 3u32..6,
        h_max in 4u32..9,
        allow_duplication in any::<bool>(),
    ) {
        let network = generate(&RandomSpec::control("ccprop", 12, 4, gates, seed));
        let config = MapConfig {
            w_max,
            h_max,
            degrade_unmappable: true,
            allow_duplication,
            ..MapConfig::default()
        };
        let on = Mapper::soi(with_cache(true, config))
            .run(&network)
            .expect("cached maps");
        let off = Mapper::soi(with_cache(false, config))
            .run(&network)
            .expect("uncached maps");
        prop_assert_eq!(on.counts, off.counts);
        prop_assert_eq!(&on.circuit, &off.circuit);
        prop_assert_eq!(&on.degraded_nodes, &off.degraded_nodes);
        prop_assert_eq!(on.peak_candidates, off.peak_candidates);
    }
}
