//! Excitability pruning (the §VII future-work extension) applied to fully
//! mapped benchmark circuits.

use soi_domino::circuits::registry;
use soi_domino::mapper::{MapConfig, Mapper};
use soi_domino::pbe::excite::{prune_discharge, verify_safe, ExciteConfig, InputConstraints};

#[test]
fn tied_off_enable_prunes_everything_behind_it() {
    // cm150 is a 16:1 mux with an enable pin. If the design guarantees
    // `en` stays low (a disabled sub-block), no path from the dynamic node
    // through the enable can ever charge an internal junction of the
    // gated cone.
    let network = registry::benchmark("cm150").expect("registered");
    let mapped = Mapper::baseline(MapConfig::default())
        .run(&network)
        .unwrap();
    let mut circuit = mapped.circuit;
    let before = circuit.counts().discharge;
    assert!(before > 0, "baseline cm150 should need protection");

    let en_index = circuit
        .input_names()
        .iter()
        .position(|n| n == "en")
        .expect("cm150 has an enable input");
    let constraints = InputConstraints::none().with_fixed(en_index, false);
    let config = ExciteConfig::default();
    let removed = prune_discharge(&mut circuit, &constraints, &config);
    let after = circuit.counts().discharge;
    assert_eq!(after, before - removed);
    assert!(verify_safe(&circuit, &constraints, &config));
}

#[test]
fn unconstrained_pruning_never_removes_needed_protection() {
    for name in ["cm150", "z4ml", "frg1", "c432"] {
        let network = registry::benchmark(name).expect("registered");
        for mapper in [
            Mapper::baseline(MapConfig::default()),
            Mapper::soi(MapConfig::default()),
        ] {
            let mapped = mapper.run(&network).unwrap();
            let mut circuit = mapped.circuit;
            let before = circuit.counts().discharge;
            let removed = prune_discharge(
                &mut circuit,
                &InputConstraints::none(),
                &ExciteConfig::default(),
            );
            // Worst-case committed points are excitable by construction;
            // pruning without knowledge must be a no-op.
            assert_eq!(removed, 0, "{name}: pruned {removed} of {before}");
        }
    }
}

#[test]
fn pruned_circuit_still_computes_the_function() {
    let network = registry::benchmark("cm150").expect("registered");
    let mapped = Mapper::baseline(MapConfig::default())
        .run(&network)
        .unwrap();
    let mut circuit = mapped.circuit;
    let en_index = circuit
        .input_names()
        .iter()
        .position(|n| n == "en")
        .expect("enable input");
    prune_discharge(
        &mut circuit,
        &InputConstraints::none().with_fixed(en_index, false),
        &ExciteConfig::default(),
    );
    circuit.validate().unwrap();
    // Discharge devices never affect the boolean function.
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(404);
    for _ in 0..32 {
        let v: Vec<bool> = (0..network.inputs().len()).map(|_| rng.gen()).collect();
        assert_eq!(circuit.evaluate(&v).unwrap(), network.simulate(&v).unwrap());
    }
}
