//! Property-based tests over the whole flow: random networks are converted,
//! mapped and verified; random pull-down structures obey the
//! discharge-point algebra's invariants.

use proptest::prelude::*;
use soi_domino::domino::{Pdn, Signal};
use soi_domino::mapper::{AndOrder, MapConfig, Mapper};
use soi_domino::netlist::{BinOp, Network, NodeId};
use soi_domino::pbe::{hazard, points, rearrange};
use soi_domino::unate::{convert, verify, Options};

/// A recipe for one random gate: operation selector and two fanin picks.
#[derive(Debug, Clone)]
struct GateRecipe {
    op: u8,
    a: prop::sample::Index,
    b: prop::sample::Index,
}

fn gate_recipe() -> impl Strategy<Value = GateRecipe> {
    (
        0u8..7,
        any::<prop::sample::Index>(),
        any::<prop::sample::Index>(),
    )
        .prop_map(|(op, a, b)| GateRecipe { op, a, b })
}

fn build_network(inputs: usize, recipes: &[GateRecipe], outputs: usize) -> Network {
    let mut n = Network::new("prop");
    let mut pool: Vec<NodeId> = (0..inputs).map(|i| n.add_input(format!("i{i}"))).collect();
    for r in recipes {
        let a = pool[r.a.index(pool.len())];
        let b = pool[r.b.index(pool.len())];
        let id = match r.op {
            0 => n.binary(BinOp::And, a, b),
            1 => n.binary(BinOp::Or, a, b),
            2 => n.binary(BinOp::Nand, a, b),
            3 => n.binary(BinOp::Nor, a, b),
            4 => n.binary(BinOp::Xor, a, b),
            5 => n.binary(BinOp::Xnor, a, b),
            _ => n.inv(a),
        };
        pool.push(id);
    }
    for k in 0..outputs {
        let driver = pool[pool.len() - 1 - (k * 3) % pool.len().min(17)];
        n.add_output(format!("o{k}"), driver);
    }
    n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The unate conversion is always inverter-free and functionally
    /// equivalent to the source network.
    #[test]
    fn unate_conversion_is_sound(
        recipes in prop::collection::vec(gate_recipe(), 1..60),
        inputs in 2usize..8,
        outputs in 1usize..4,
    ) {
        let n = build_network(inputs, &recipes, outputs);
        let u = convert(&n, &Options::default()).expect("converts");
        prop_assert!(u.is_inverter_free());
        prop_assert!(verify::equivalent(&n, &u, 4, 99).expect("simulates"));
    }

    /// Every mapper produces a PBE-safe circuit that computes the same
    /// function as the source network.
    #[test]
    fn mapping_is_sound(
        recipes in prop::collection::vec(gate_recipe(), 1..40),
        inputs in 2usize..7,
        algorithm in 0u8..3,
        seed in any::<u64>(),
    ) {
        let n = build_network(inputs, &recipes, 2);
        let mapper = match algorithm {
            0 => Mapper::baseline(MapConfig::default()),
            1 => Mapper::rearrange_stacks(MapConfig::default()),
            _ => Mapper::soi(MapConfig::default()),
        };
        let result = mapper.run(&n).expect("maps");
        prop_assert!(hazard::is_safe(&result.circuit));
        result.circuit.validate().expect("valid");

        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for _ in 0..16 {
            let v: Vec<bool> = (0..inputs).map(|_| rng.gen()).collect();
            prop_assert_eq!(
                result.circuit.evaluate(&v).expect("evaluates"),
                n.simulate(&v).expect("simulates")
            );
        }
    }

    /// With an uncapped Pareto set, the exhaustive AND order never does
    /// worse than the paper heuristic (its candidate sets are supersets at
    /// every node; a finite cap can break this, which is why the cap is an
    /// ablation knob).
    #[test]
    fn exhaustive_order_dominates_heuristic(
        recipes in prop::collection::vec(gate_recipe(), 1..30),
        inputs in 2usize..6,
    ) {
        let n = build_network(inputs, &recipes, 1);
        let roomy = MapConfig {
            max_candidates: usize::MAX,
            ..MapConfig::default()
        };
        let heuristic = Mapper::soi(roomy).run(&n).expect("maps");
        let exhaustive = Mapper::soi(MapConfig {
            and_order: AndOrder::Exhaustive,
            ..roomy
        })
        .run(&n)
        .expect("maps");
        prop_assert!(exhaustive.counts.total <= heuristic.counts.total);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The BDD equivalence oracle and the bit-parallel simulator agree on
    /// random network pairs (identical pairs and perturbed pairs).
    #[test]
    fn bdd_agrees_with_simulation(
        recipes in prop::collection::vec(gate_recipe(), 1..40),
        inputs in 2usize..6,
        flip in any::<bool>(),
    ) {
        use soi_domino::netlist::{bdd, sim};
        let a = build_network(inputs, &recipes, 1);
        let b = if flip {
            // Perturb: same structure with the output inverted. Dead
            // inputs are preserved by rebuilding rather than cone
            // extraction, keeping the interfaces aligned.
            let mut n = build_network(inputs, &recipes, 1);
            let driver = n.outputs()[0].driver;
            let inverted = n.inv(driver);
            let mut flipped = Network::new("flipped");
            let mut mapped = Vec::with_capacity(n.len());
            for (_, node) in n.iter() {
                use soi_domino::netlist::Node;
                let id = match node {
                    Node::Input { name } => flipped.add_input(name.clone()),
                    Node::Const { value } => flipped.add_const(*value),
                    Node::Unary { op, a } => flipped.unary(*op, mapped[a.index()]),
                    Node::Binary { op, a, b } => {
                        flipped.binary(*op, mapped[a.index()], mapped[b.index()])
                    }
                };
                mapped.push(id);
            }
            flipped.add_output("o0", mapped[inverted.index()]);
            flipped
        } else {
            build_network(inputs, &recipes, 1)
        };
        if a.outputs().len() == b.outputs().len() {
            let exact = bdd::equivalent(&a, &b, 1 << 18);
            if let Ok(exact) = exact {
                let sampled = sim::random_equivalent(&a, &b, 8, 42).expect("same arity");
                if exact {
                    prop_assert!(sampled, "BDD says equal, simulation disagrees");
                } else if sampled {
                    // Random sampling may miss a discrepancy; exhaustively
                    // confirm the BDD on small input counts.
                    let mut diff = false;
                    for bits in 0..(1u32 << inputs) {
                        let v: Vec<bool> = (0..inputs).map(|k| bits >> k & 1 == 1).collect();
                        if a.simulate(&v).unwrap() != b.simulate(&v).unwrap() {
                            diff = true;
                            break;
                        }
                    }
                    prop_assert!(diff, "BDD says different, exhaustive sim agrees");
                }
            }
        }
    }

    /// Restructuring rewrites preserve the function on random networks.
    #[test]
    fn restructure_preserves_function(
        recipes in prop::collection::vec(gate_recipe(), 1..50),
        inputs in 2usize..7,
        seed in any::<u64>(),
        probability in 0.0f64..1.0,
    ) {
        use soi_domino::netlist::{restructure, sim};
        let n = build_network(inputs, &recipes, 2);
        let r = restructure::reassociate(&n, seed);
        prop_assert!(sim::random_equivalent(&n, &r, 4, seed).expect("arity"));
        let d = restructure::distribute(&n, probability, seed);
        prop_assert!(sim::random_equivalent(&n, &d, 4, seed ^ 1).expect("arity"));
        let s = restructure::synthesize_like(&n, probability, seed);
        prop_assert!(sim::random_equivalent(&n, &s, 4, seed ^ 2).expect("arity"));
    }
}

/// Strategy for random pull-down trees.
fn pdn_strategy() -> impl Strategy<Value = Pdn> {
    let leaf = (0usize..6).prop_map(|i| Pdn::transistor(Signal::input(i)));
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Pdn::series),
            prop::collection::vec(inner, 2..4).prop_map(Pdn::parallel),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Committed and potential points always partition the internal
    /// junction nets of a PDN.
    #[test]
    fn discharge_points_partition_junctions(pdn in pdn_strategy()) {
        let analysis = points::analyze(&pdn);
        let graph = pdn.flatten();
        let junctions = graph.junctions().count();
        prop_assert_eq!(
            analysis.committed.len() + analysis.potential.len(),
            junctions
        );
        for j in analysis.committed.iter().chain(&analysis.potential) {
            prop_assert!(graph.junction_net(j).is_some());
        }
    }

    /// Stack rearrangement never increases the grounded discharge count
    /// and preserves the boolean function.
    #[test]
    fn rearrange_is_sound(pdn in pdn_strategy(), bits in 0u64..64) {
        let before = points::analyze(&pdn).grounded_count();
        let better = rearrange::rearrange_pdn(&pdn, true);
        let after = points::analyze(&better).grounded_count();
        prop_assert!(after <= before);

        let value = |s: Signal| match s {
            Signal::Input { index, phase } => phase.apply(bits & (1 << index) != 0),
            Signal::Gate(_) => unreachable!(),
        };
        prop_assert_eq!(pdn.conducts(&value), better.conducts(&value));
    }

    /// Width, height and transistor count are invariant under
    /// rearrangement.
    #[test]
    fn rearrange_preserves_shape_metrics(pdn in pdn_strategy()) {
        let better = rearrange::rearrange_pdn(&pdn, true);
        prop_assert_eq!(pdn.transistor_count(), better.transistor_count());
        prop_assert_eq!(pdn.width(), better.width());
        prop_assert_eq!(pdn.height(), better.height());
    }

    /// `conducts` on the tree agrees with path connectivity on the
    /// flattened graph.
    #[test]
    fn flatten_preserves_conduction(pdn in pdn_strategy(), bits in 0u64..64) {
        let value = |s: Signal| match s {
            Signal::Input { index, phase } => phase.apply(bits & (1 << index) != 0),
            Signal::Gate(_) => unreachable!(),
        };
        let tree = pdn.conducts(&value);

        // Union-find over conducting devices on the flattened graph.
        let graph = pdn.flatten();
        let nets = graph.net_count();
        let mut parent: Vec<usize> = (0..nets).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for t in &graph.transistors {
            if value(t.signal) {
                let a = find(&mut parent, t.upper.index());
                let b = find(&mut parent, t.lower.index());
                parent[a.max(b)] = a.min(b);
            }
        }
        let connected = find(&mut parent, 0) == find(&mut parent, 1);
        prop_assert_eq!(tree, connected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Seeded byte- and line-level mutations of a well-formed BLIF file
    /// never panic the parser, and whenever the parser still says `Ok`,
    /// the network it hands back passes validation. (The same mutators are
    /// exercised deterministically in `tests/guard_injection.rs`; here the
    /// *inputs* are also randomized.)
    #[test]
    fn blif_parser_survives_mutation(
        inputs in 2usize..6,
        recipes in prop::collection::vec(gate_recipe(), 1..24),
        seed in any::<u64>(),
        mode in 0u8..4,
    ) {
        use soi_domino::guard::inject;
        use soi_domino::netlist::blif;

        let n = build_network(inputs, &recipes, 2);
        let bytes = blif::write(&n).into_bytes();
        let mutated = match mode {
            0 => inject::truncate_blif(&bytes, seed),
            1 => inject::garble_blif(&bytes, seed),
            2 => inject::drop_blif_line(&bytes, seed),
            _ => inject::swap_blif_lines(&bytes, seed),
        };
        if let Some(m) = mutated {
            prop_assert_ne!(&m, &bytes, "a mutator must change the bytes");
            let text = String::from_utf8_lossy(&m);
            if let Ok(parsed) = blif::parse(&text) {
                prop_assert!(parsed.validate().is_ok(),
                    "an Ok parse must be a valid network");
            }
        }
    }
}
