//! The observability layer's self-checking suite: every counter the
//! instrumentation emits is an *oracle* that must balance against the
//! mapper's own reported accounting, and attaching a recorder must never
//! change a mapping result.
//!
//! For every registry benchmark and twenty seeded random networks, the SOI
//! mapper runs four ways — untraced serial (the reference), traced serial,
//! traced forced-2-thread, and traced 2-thread + cone cache — and the
//! suite asserts:
//!
//! * **bit-identity**: counts, degraded-node lists, peak candidates and
//!   combine steps agree across all four runs (tracing is observational,
//!   scheduling and memoization are pure scheduling concerns);
//! * **candidate balance**: `candidates_generated ==
//!   candidates_pruned + candidates_exported` — the bare-tuple funnel
//!   loses nothing silently;
//! * **cache balance**: `node_tier_probes == node_tier_hits +
//!   node_tier_misses`, `cone_tier_gate_hits + node_tier_hits ==
//!   MappingResult::cone_cache_hits`, `node_tier_misses ==
//!   MappingResult::cone_cache_misses` — every gate solve is counted
//!   exactly once;
//! * **scheduler conservation**: per-worker unit counts sum to the cone
//!   partition's unit count, and the aggregate steal/wakeup/park counters
//!   equal the per-worker sums;
//! * **discharge accounting**: `discharges_inserted` equals the circuit's
//!   `TransistorCounts::discharge` for all three algorithms;
//! * **gauges**: `peak_candidates` and `threads_used` read back exactly.

use soi_domino::circuits::misc::random::{generate, RandomSpec};
use soi_domino::circuits::registry;
use soi_domino::mapper::{Limits, MapConfig, MapError, Mapper, MappingResult, Parallelism};
use soi_domino::netlist::Network;
use soi_domino::trace::{Counter, Gauge, Recorder, Stage, TraceHandle};
use soi_domino::unate;

/// The three mapper constructors.
const MAPPERS: [fn(MapConfig) -> Mapper; 3] =
    [Mapper::baseline, Mapper::rearrange_stacks, Mapper::soi];

fn base_config() -> MapConfig {
    MapConfig {
        parallelism: Parallelism::Serial,
        cone_cache: false,
        ..MapConfig::default()
    }
}

fn assert_identical(reference: &MappingResult, got: &MappingResult, what: &str, mode: &str) {
    assert_eq!(
        reference.counts, got.counts,
        "{what}: {mode} counts diverge"
    );
    assert_eq!(
        reference.degraded_nodes, got.degraded_nodes,
        "{what}: {mode} degraded nodes diverge"
    );
    assert_eq!(
        reference.peak_candidates, got.peak_candidates,
        "{what}: {mode} peak candidates diverge"
    );
    assert_eq!(
        reference.combine_steps, got.combine_steps,
        "{what}: {mode} combine steps diverge"
    );
}

/// The per-run oracles every traced mode must satisfy.
fn assert_run_oracles(rec: &Recorder, result: &MappingResult, what: &str, mode: &str) {
    let generated = rec.counter(Counter::CandidatesGenerated);
    let pruned = rec.counter(Counter::CandidatesPruned);
    let exported = rec.counter(Counter::CandidatesExported);
    assert_eq!(
        generated,
        pruned + exported,
        "{what}: {mode} candidate funnel leaks ({generated} generated, {pruned} pruned, \
         {exported} exported)"
    );
    assert_eq!(
        rec.counter(Counter::CombineSteps),
        result.combine_steps,
        "{what}: {mode} combine-step counter disagrees with the result"
    );
    assert_eq!(
        rec.gauge(Gauge::PeakCandidates),
        result.peak_candidates as u64,
        "{what}: {mode} peak-candidates gauge disagrees with the result"
    );
    assert_eq!(
        rec.gauge(Gauge::ThreadsUsed),
        result.threads_used as u64,
        "{what}: {mode} threads-used gauge disagrees with the result"
    );
    assert_eq!(
        rec.counter(Counter::DegradedNodes),
        result.degraded_nodes.len() as u64,
        "{what}: {mode} degraded-node counter disagrees with the result"
    );
    assert_eq!(
        rec.counter(Counter::DischargesInserted),
        u64::from(result.counts.discharge),
        "{what}: {mode} discharge counter disagrees with the transistor accounting"
    );
    // Cache tiers: probes split exactly into hits and misses, and the two
    // tiers together account for the result's hit/miss totals.
    let probes = rec.counter(Counter::NodeTierProbes);
    let node_hits = rec.counter(Counter::NodeTierHits);
    let node_misses = rec.counter(Counter::NodeTierMisses);
    assert_eq!(
        probes,
        node_hits + node_misses,
        "{what}: {mode} node-tier probes don't split into hits + misses"
    );
    assert_eq!(
        rec.counter(Counter::ConeTierGateHits) + node_hits,
        result.cone_cache_hits,
        "{what}: {mode} tier hits don't add up to the result's cache hits"
    );
    assert_eq!(
        node_misses, result.cone_cache_misses,
        "{what}: {mode} node-tier misses disagree with the result's cache misses"
    );
    // Job control: a run that completed never observed an interrupt,
    // contained a panic, or salvaged anything.
    for quiet in [
        Counter::CancelsObserved,
        Counter::PanicsContained,
        Counter::UnitsSalvaged,
    ] {
        assert_eq!(
            rec.counter(quiet),
            0,
            "{what}: {mode} successful run recorded {quiet:?}"
        );
    }
}

/// Runs the four modes on one network and checks every oracle.
fn check_network(rec: &'static Recorder, trace: TraceHandle, network: &Network, what: &str) {
    let base = base_config();
    let reference = Mapper::soi(base)
        .run(network)
        .expect("untraced serial maps");

    // Traced serial: oracles + bit-identity with the untraced reference.
    rec.reset();
    let serial = Mapper::soi(MapConfig { trace, ..base })
        .run(network)
        .expect("traced serial maps");
    assert_identical(&reference, &serial, what, "traced serial");
    assert_run_oracles(rec, &serial, what, "traced serial");
    assert!(
        rec.stage_nanos(Stage::ConePartition).is_some()
            && rec.stage_nanos(Stage::Dp).is_some()
            && rec.stage_nanos(Stage::Reconstruct).is_some(),
        "{what}: traced serial run is missing a pipeline span"
    );
    // Serial, cache off: no scheduler or cache activity may be recorded.
    for quiet in [
        Counter::SchedSteals,
        Counter::SchedWakeups,
        Counter::SchedParks,
        Counter::NodeTierProbes,
        Counter::ConeTierHits,
    ] {
        assert_eq!(
            rec.counter(quiet),
            0,
            "{what}: serial uncached run recorded {quiet:?}"
        );
    }

    // Traced forced-2-thread: scheduler conservation on top.
    rec.reset();
    let parallel = Mapper::soi(MapConfig {
        trace,
        parallelism: Parallelism::Threads(2),
        ..base
    })
    .run(network)
    .expect("traced parallel maps");
    assert_identical(&reference, &parallel, what, "traced parallel");
    assert_run_oracles(rec, &parallel, what, "traced parallel");
    let workers = rec.workers();
    if parallel.threads_used > 1 {
        assert_eq!(
            workers.len(),
            parallel.threads_used,
            "{what}: worker stats don't cover every worker"
        );
        let unit_count = unate::convert(network, &unate::Options::default())
            .expect("unate converts")
            .cone_partition()
            .units()
            .len() as u64;
        assert_eq!(
            workers.iter().map(|w| w.units).sum::<u64>(),
            unit_count,
            "{what}: per-worker unit counts don't sum to the cone partition"
        );
        for (aggregate, per_worker) in [
            (Counter::SchedSteals, workers.iter().map(|w| w.steals).sum()),
            (
                Counter::SchedWakeups,
                workers.iter().map(|w| w.wakeups).sum(),
            ),
            (Counter::SchedParks, workers.iter().map(|w| w.parks).sum()),
        ] {
            let sum: u64 = per_worker;
            assert_eq!(
                rec.counter(aggregate),
                sum,
                "{what}: aggregate {aggregate:?} disagrees with per-worker sums"
            );
        }
    }

    // Traced 2-thread + cone cache: the memo tiers join the balance.
    rec.reset();
    let cached = Mapper::soi(MapConfig {
        trace,
        parallelism: Parallelism::Threads(2),
        cone_cache: true,
        // Every oracle circuit sits below the production size gate; force
        // the cache on so the memo tiers are actually exercised.
        cone_cache_min_gates: 0,
        ..base
    })
    .run(network)
    .expect("traced cached maps");
    assert_identical(&reference, &cached, what, "traced cached");
    assert_run_oracles(rec, &cached, what, "traced cached");
}

#[test]
fn registry_circuits_satisfy_every_metric_oracle() {
    let (rec, trace) = Recorder::install();
    for name in registry::names() {
        let network = registry::benchmark(name).expect("registered benchmark");
        check_network(rec, trace, &network, name);
    }
}

#[test]
fn seeded_random_networks_satisfy_every_metric_oracle() {
    let (rec, trace) = Recorder::install();
    for seed in 0..20u64 {
        let spec = RandomSpec::control(&format!("ti{seed}"), 14, 6, 90, seed);
        let network = generate(&spec);
        check_network(rec, trace, &network, &format!("seed {seed}"));
    }
}

/// The discharge and candidate balances hold for all three algorithms —
/// the baselines count through the PBE post-processing pass, the SOI
/// mapper through gate materialization.
#[test]
fn all_algorithms_balance_candidates_and_discharges() {
    let (rec, trace) = Recorder::install();
    let circuits: Vec<(String, Network)> = ["cm150", "b9", "9symml", "c432"]
        .iter()
        .map(|&n| (n.to_string(), registry::benchmark(n).expect("registered")))
        .chain((0..6u64).map(|seed| {
            let spec = RandomSpec::control(&format!("alg{seed}"), 12, 4, 70, seed);
            (format!("seed {seed}"), generate(&spec))
        }))
        .collect();
    for (what, network) in &circuits {
        for make in MAPPERS {
            rec.reset();
            let result = make(MapConfig {
                trace,
                ..base_config()
            })
            .run(network)
            .expect("maps");
            let generated = rec.counter(Counter::CandidatesGenerated);
            let pruned = rec.counter(Counter::CandidatesPruned);
            let exported = rec.counter(Counter::CandidatesExported);
            assert_eq!(
                generated,
                pruned + exported,
                "{what} ({:?}): candidate funnel leaks",
                result.algorithm
            );
            assert_eq!(
                rec.counter(Counter::DischargesInserted),
                u64::from(result.counts.discharge),
                "{what} ({:?}): discharge counter disagrees with the accounting",
                result.algorithm
            );
            assert!(
                rec.stage_nanos(Stage::Dp).is_some()
                    && rec.stage_nanos(Stage::Reconstruct).is_some(),
                "{what} ({:?}): missing pipeline span",
                result.algorithm
            );
        }
    }
}

/// A shared cone cache across runs keeps the balances honest when the
/// second run is served almost entirely from the cache.
#[test]
fn warm_cache_reruns_keep_the_balances() {
    let (rec, trace) = Recorder::install();
    let network = registry::benchmark("c880").expect("registered");
    let cache = std::sync::Arc::new(soi_domino::mapper::ConeCache::new());
    let config = MapConfig {
        trace,
        parallelism: Parallelism::Serial,
        cone_cache: true,
        ..MapConfig::default()
    };
    let mut last = None;
    for pass in 0..2 {
        rec.reset();
        let result = Mapper::soi(config)
            .with_cone_cache(std::sync::Arc::clone(&cache))
            .run(&network)
            .expect("maps");
        assert_run_oracles(rec, &result, "c880", &format!("warm pass {pass}"));
        if let Some(prev) = &last {
            assert_identical(prev, &result, "c880", "warm rerun");
        }
        last = Some(result);
    }
    let warm = last.expect("two passes ran");
    assert!(
        warm.cone_cache_hits > 0,
        "second pass should hit the shared cache"
    );
}

/// Interrupted runs balance the job-control counters: the trip is latched
/// (exactly one `cancels_observed` no matter how many workers see it),
/// `units_salvaged` equals the partial's salvage count, and a contained
/// panic records exactly one `panics_contained` — plus a drain span when
/// workers had to be drained.
#[test]
fn interrupted_runs_balance_the_job_control_counters() {
    let (rec, trace) = Recorder::install();
    let network = registry::benchmark("frg1").expect("registered");
    let base = MapConfig {
        trace,
        ..base_config()
    };
    let clean = Mapper::soi(base).run(&network).expect("maps");

    // Deterministic halfway trip, serial and parallel.
    for parallelism in [Parallelism::Serial, Parallelism::Threads(2)] {
        rec.reset();
        let config = MapConfig {
            parallelism,
            limits: Limits {
                cancel_after_steps: Some((clean.combine_steps / 2).max(1)),
                ..base.limits
            },
            ..base
        };
        let err = Mapper::soi(config)
            .run(&network)
            .expect_err("the halfway trip must fire");
        assert!(matches!(err, MapError::Cancelled { .. }), "{err:?}");
        let partial = err.partial().expect("interrupts carry salvage");
        assert_eq!(
            rec.counter(Counter::CancelsObserved),
            1,
            "{parallelism:?}: the trip must be latched exactly once"
        );
        assert_eq!(rec.counter(Counter::PanicsContained), 0);
        assert_eq!(
            rec.counter(Counter::UnitsSalvaged),
            partial.salvaged_units() as u64,
            "{parallelism:?}: salvage counter disagrees with the partial"
        );
    }

    // A poisoned cone unit, serial and parallel: contained exactly once,
    // never misreported as a cancellation, drain span in parallel mode.
    let partition_net = unate::convert(&network, &unate::Options::default()).expect("converts");
    let partition = partition_net.cone_partition();
    let (target, unit) = partition
        .units()
        .iter()
        .enumerate()
        .rev()
        .find(|(_, u)| !u.deps().is_empty())
        .expect("frg1 has dependent cone units");
    for parallelism in [Parallelism::Serial, Parallelism::Threads(2)] {
        rec.reset();
        let config = MapConfig {
            parallelism,
            poison_node: Some(unit.root().index() as u32),
            ..base
        };
        let err = Mapper::soi(config)
            .run(&network)
            .expect_err("the poisoned unit must fail the run");
        let MapError::WorkerPanicked {
            unit: failed,
            partial,
            ..
        } = err
        else {
            panic!("expected WorkerPanicked, got {err:?}");
        };
        assert_eq!(failed, target);
        let partial = partial.expect("contained panics carry salvage");
        assert_eq!(
            rec.counter(Counter::PanicsContained),
            1,
            "{parallelism:?}: the panic must be contained exactly once"
        );
        assert_eq!(
            rec.counter(Counter::CancelsObserved),
            0,
            "{parallelism:?}: a contained panic is not a cancellation"
        );
        assert_eq!(
            rec.counter(Counter::UnitsSalvaged),
            partial.salvaged_units() as u64,
            "{parallelism:?}: salvage counter disagrees with the partial"
        );
        if matches!(parallelism, Parallelism::Threads(_)) {
            assert!(
                rec.stage_nanos(Stage::Drain).is_some(),
                "parallel containment must record a drain span"
            );
        }
    }
}
