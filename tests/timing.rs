//! Post-mapping timing checks: the Elmore model must agree with the
//! paper's qualitative delay arguments across whole mapped circuits.

use soi_domino::circuits::registry;
use soi_domino::domino::timing::{analyze, TechParams};
use soi_domino::mapper::{MapConfig, Mapper};

#[test]
fn soi_parameters_make_mapped_circuits_faster_than_bulk() {
    for name in ["cm150", "b9", "c432"] {
        let network = registry::benchmark(name).expect("registered");
        let mapped = Mapper::soi(MapConfig::default()).run(&network).unwrap();
        let soi = analyze(&mapped.circuit, &TechParams::soi()).critical;
        let bulk = analyze(&mapped.circuit, &TechParams::bulk()).critical;
        assert!(
            soi < bulk,
            "{name}: SOI junction caps must shorten the critical path ({soi} !< {bulk})"
        );
    }
}

#[test]
fn depth_objective_shortens_the_critical_path() {
    for name in ["b9", "frg1", "apex7"] {
        let network = registry::benchmark(name).expect("registered");
        let area = Mapper::soi(MapConfig::default()).run(&network).unwrap();
        let depth = Mapper::soi(MapConfig::depth()).run(&network).unwrap();
        let t_area = analyze(&area.circuit, &TechParams::soi()).critical;
        let t_depth = analyze(&depth.circuit, &TechParams::soi()).critical;
        // Level minimization is a proxy; it should not *hurt* by more than
        // a small factor and usually helps.
        assert!(
            t_depth <= t_area * 1.15,
            "{name}: depth mapping slower than area mapping ({t_depth} vs {t_area})"
        );
    }
}

#[test]
fn fewer_discharge_devices_means_less_delay_at_equal_structure() {
    // Baseline and RS_Map share gate structures up to stack order; the
    // discharge savings of RS must show up as (weakly) shorter delays.
    for name in ["cm150", "frg1", "c432"] {
        let network = registry::benchmark(name).expect("registered");
        let base = Mapper::baseline(MapConfig::default())
            .run(&network)
            .unwrap();
        let rs = Mapper::rearrange_stacks(MapConfig::default())
            .run(&network)
            .unwrap();
        assert!(rs.counts.discharge <= base.counts.discharge);
        let t_base = analyze(&base.circuit, &TechParams::soi()).critical;
        let t_rs = analyze(&rs.circuit, &TechParams::soi()).critical;
        assert!(
            t_rs <= t_base * 1.05,
            "{name}: RS mapping slower despite fewer discharge devices ({t_rs} vs {t_base})"
        );
    }
}

#[test]
fn report_is_complete_and_positive() {
    let network = registry::benchmark("z4ml").expect("registered");
    let mapped = Mapper::soi(MapConfig::default()).run(&network).unwrap();
    let report = analyze(&mapped.circuit, &TechParams::soi());
    assert_eq!(report.gate_delay.len(), mapped.circuit.gate_count());
    assert!(report.gate_delay.iter().all(|&d| d > 0.0));
    assert!(report.critical > 0.0);
    // Arrival is monotone along the topological order's dependencies.
    for (i, arrival) in report.arrival.iter().enumerate() {
        assert!(*arrival >= report.gate_delay[i]);
    }
}
