//! The fault-injection suite: seeded corruption of every representation in
//! the flow — netlist graphs, BLIF byte streams, mapped domino circuits —
//! across a spread of registry benchmarks and seeds. The property under
//! test is uniform: **every effective corruption is caught by a typed error
//! or by the cross-stage audit; nothing panics; nothing passes silently.**

use soi_domino::circuits::registry;
use soi_domino::guard::{
    check_partial, check_pipeline, inject, AuditConfig, AuditError, Pipeline, Stage,
};
use soi_domino::mapper::{MapConfig, MapError, Mapper, MappingResult, Parallelism};
use soi_domino::netlist::blif;
use soi_domino::pbe::bodysim::{BodySimConfig, BodySimulator};
use soi_domino::pbe::hazard;
use soi_domino::unate::{convert, Options, UnateNetwork};

/// Registry circuits exercised by every mutator (≥ 5 as required).
const CIRCUITS: &[&str] = &["cm150", "mux", "z4ml", "cordic", "frg1", "b9"];
/// Seeds per mutator per circuit (≥ 20 as required).
const SEEDS: u64 = 20;

#[test]
fn corrupted_networks_are_rejected_by_the_validate_stage() {
    let pipeline = Pipeline::new(Mapper::soi(MapConfig::default()));
    let mut injected = 0u32;
    for &name in CIRCUITS {
        let network = registry::benchmark(name).expect("registered benchmark");
        for seed in 0..SEEDS {
            let mutants = [
                ("dangling_fanin", inject::dangling_fanin(&network, seed)),
                ("forward_fanin", inject::forward_fanin(&network, seed)),
                ("dangling_output", inject::dangling_output(&network, seed)),
                ("break_topo_order", inject::break_topo_order(&network, seed)),
                (
                    "duplicate_input_name",
                    inject::duplicate_input_name(&network, seed),
                ),
            ];
            for (mutator, mutated) in mutants {
                let Some(m) = mutated else { continue };
                injected += 1;
                let err = pipeline
                    .run(&m)
                    .expect_err("a corrupted netlist must not map");
                assert_eq!(
                    err.stage,
                    Stage::NetlistValidate,
                    "{name} seed {seed} {mutator}: wrong stage"
                );
            }
        }
    }
    // Every circuit admits every mutator: 6 circuits x 20 seeds x 5 faults.
    assert_eq!(injected, 600);
}

#[test]
fn mutated_blif_never_panics_the_parser() {
    let mut parses_survived = 0u32;
    for &name in CIRCUITS {
        let network = registry::benchmark(name).expect("registered benchmark");
        let bytes = blif::write(&network).into_bytes();
        for seed in 0..SEEDS {
            let mutants = [
                inject::truncate_blif(&bytes, seed),
                inject::garble_blif(&bytes, seed),
                inject::drop_blif_line(&bytes, seed),
                inject::swap_blif_lines(&bytes, seed),
            ];
            for mutated in mutants.into_iter().flatten() {
                parses_survived += 1;
                let text = String::from_utf8_lossy(&mutated);
                // Must not panic; an Ok parse must be a valid network.
                if let Ok(parsed) = blif::parse(&text) {
                    parsed
                        .validate()
                        .expect("the parser must only produce valid networks");
                }
            }
        }
    }
    assert_eq!(parses_survived, 480); // 6 circuits x 20 seeds x 4 mutators
}

/// Swaps a mutated circuit into a mapping result, keeping the originally
/// reported counts (a tamperer would not fix the books).
fn with_circuit(
    result: &MappingResult,
    circuit: soi_domino::domino::DominoCircuit,
) -> MappingResult {
    let mut tampered = result.clone();
    tampered.circuit = circuit;
    tampered
}

#[test]
fn corrupted_circuits_are_caught_by_audit_or_validation() {
    let audit_cfg = AuditConfig::default();
    let mut injected = 0u32;
    for &name in CIRCUITS {
        let network = registry::benchmark(name).expect("registered benchmark");
        let unate: UnateNetwork =
            convert(&network, &Options::default()).expect("registry circuits convert");
        for mapper in [
            Mapper::baseline(MapConfig::default()),
            Mapper::soi(MapConfig::default()),
        ] {
            let result = mapper.run_unate(&unate).expect("registry circuits map");
            assert!(
                check_pipeline(&network, &unate, &result, &audit_cfg).is_ok(),
                "{name}: the untampered mapping must pass its own audit"
            );
            for seed in 0..SEEDS {
                if let Some(m) = inject::drop_discharge(&result.circuit, seed) {
                    injected += 1;
                    let verdict =
                        check_pipeline(&network, &unate, &with_circuit(&result, m), &audit_cfg);
                    assert!(
                        matches!(verdict, Err(AuditError::Hazards { .. })),
                        "{name} seed {seed} drop_discharge: {verdict:?}"
                    );
                }
                if let Some(m) = inject::retarget_discharge(&result.circuit, seed) {
                    injected += 1;
                    let verdict =
                        check_pipeline(&network, &unate, &with_circuit(&result, m), &audit_cfg);
                    assert!(
                        matches!(verdict, Err(AuditError::CircuitInvalid(_))),
                        "{name} seed {seed} retarget_discharge: {verdict:?}"
                    );
                }
                if let Some(m) = inject::flip_pdn_junction(&result.circuit, seed) {
                    injected += 1;
                    let verdict =
                        check_pipeline(&network, &unate, &with_circuit(&result, m), &audit_cfg);
                    assert!(
                        matches!(
                            verdict,
                            Err(AuditError::Hazards { .. }) | Err(AuditError::CircuitInvalid(_))
                        ),
                        "{name} seed {seed} flip_pdn_junction: {verdict:?}"
                    );
                }
                if let Some((m, witness)) = inject::retarget_fanin(&result.circuit, seed) {
                    injected += 1;
                    // The mutator hands back the distinguishing vector: the
                    // differential oracle (source network vs mapped circuit)
                    // catches the wrong-wire fault on it deterministically.
                    let expected = network.simulate(&witness).expect("simulates");
                    let got = m.evaluate(&witness).expect("evaluates");
                    assert_ne!(
                        expected, got,
                        "{name} seed {seed} retarget_fanin went unnoticed"
                    );
                }
            }
            if let Some(m) = inject::strip_protection(&result.circuit) {
                injected += 1;
                let verdict =
                    check_pipeline(&network, &unate, &with_circuit(&result, m), &audit_cfg);
                assert!(
                    matches!(verdict, Err(AuditError::Hazards { .. })),
                    "{name} strip_protection: {verdict:?}"
                );
            }
        }
    }
    // Not every circuit admits every fault (the SOI mapper often needs no
    // discharge transistors at all), but the harness must have exercised a
    // substantial population.
    assert!(injected >= 200, "only {injected} circuit faults injected");
}

/// The mapper-level fault injection: a seeded poisoned cone unit always
/// surfaces as a contained, typed `WorkerPanicked` naming exactly that
/// unit — on serial and parallel schedules alike — with an auditable
/// salvage whose resume maps bit-identically to a clean run. Never a
/// hang, never an abort, never a silent pass.
#[test]
fn poisoned_cone_units_are_contained_on_every_schedule() {
    let mut injected = 0u32;
    for &name in CIRCUITS {
        let network = registry::benchmark(name).expect("registered benchmark");
        let base = MapConfig::default();
        let clean = Mapper::soi(base).run(&network).expect("clean maps");
        for seed in 0..SEEDS {
            let Some((poisoned, unit)) = inject::poison_unit(&base, &network, seed) else {
                continue;
            };
            injected += 1;
            for parallelism in [Parallelism::Serial, Parallelism::Threads(2)] {
                let config = MapConfig {
                    parallelism,
                    ..poisoned
                };
                let err = Mapper::soi(config)
                    .run(&network)
                    .expect_err("a poisoned unit must fail the run");
                let MapError::WorkerPanicked {
                    unit: failed,
                    payload,
                    partial,
                } = err
                else {
                    panic!("{name} seed {seed}: expected WorkerPanicked, got {err:?}");
                };
                assert_eq!(failed, unit, "{name} seed {seed}: wrong unit blamed");
                assert!(payload.contains("injected fault"), "{payload}");
                let partial = partial.expect("contained panics carry salvage");
                if let Err(e) = check_partial(&partial) {
                    panic!("{name} seed {seed}: salvage fails its audit: {e}");
                }
                assert!(partial.completed_units() < partial.total_units());

                let resumed = Mapper::soi(MapConfig {
                    poison_node: None,
                    ..config
                })
                .with_cone_cache(partial.cache())
                .run(&network)
                .expect("the resumed run maps");
                assert_eq!(clean.counts, resumed.counts, "{name} seed {seed}");
                assert_eq!(
                    clean.degraded_nodes, resumed.degraded_nodes,
                    "{name} seed {seed}"
                );
                assert_eq!(
                    clean.peak_candidates, resumed.peak_candidates,
                    "{name} seed {seed}"
                );
                assert_eq!(
                    clean.combine_steps, resumed.combine_steps,
                    "{name} seed {seed}"
                );
            }
        }
    }
    // Every registry circuit has cone units to poison.
    assert_eq!(injected, 120); // 6 circuits x 20 seeds
}

#[test]
fn degradation_recovers_tight_limits_and_passes_the_audit() {
    // H_max = 1 forbids every AND stack: strictly unmappable.
    let cramped = MapConfig {
        w_max: 2,
        h_max: 1,
        ..MapConfig::default()
    };
    for &name in &["cm150", "z4ml", "b9"] {
        let network = registry::benchmark(name).expect("registered benchmark");
        let strict = Pipeline::new(Mapper::soi(cramped));
        let err = strict.run(&network).expect_err("H_max = 1 cannot map ANDs");
        assert_eq!(err.stage, Stage::Map, "{name}");
        assert!(matches!(
            err.failure,
            soi_domino::guard::StageFailure::Map(MapError::Unmappable { .. })
        ));

        let report = strict
            .with_degradation(true)
            .run(&network)
            .expect("degradation must recover the flow");
        assert!(report.degraded, "{name}: degradation must be recorded");
        assert!(report.result.is_degraded());
        // The audit ran inside the pipeline: functional equivalence,
        // PBE-safety and accounting all hold for the degraded mapping.
        assert!(report.audit.is_some(), "{name}");
    }
}

#[test]
fn stripped_protection_misevaluates_under_bodysim() {
    // The paper's running example (a+b+c)*d through Domino_Map: the
    // bulk-typical stack orientation plus a post-inserted pre-discharge
    // transistor (Fig. 2). Stripping that transistor must (1) be flagged
    // statically by the hazard checker and (2) demonstrably mis-evaluate
    // under the §III-B body-state scenario, while the protected mapping
    // runs clean — the differential oracle.
    let mut n = soi_domino::netlist::Network::new("fig2a");
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let d = n.add_input("d");
    let t1 = n.or2(a, b);
    let t2 = n.or2(t1, c);
    let f = n.and2(t2, d);
    n.add_output("f", f);

    let result = Mapper::baseline(MapConfig::default())
        .run(&n)
        .expect("maps");
    assert!(
        result.counts.discharge > 0,
        "the bulk-typical mapping needs protection"
    );
    assert!(hazard::is_safe(&result.circuit));

    let stripped = inject::strip_protection(&result.circuit).expect("protection is load-bearing");
    assert!(!hazard::is_safe(&stripped), "static checker must flag it");

    // §III-B drive: hold A high with D low (charges the parallel bodies),
    // drop A (the junction floats high), then fire D.
    let scenario: Vec<Vec<bool>> = vec![
        vec![true, false, false, false],
        vec![true, false, false, false],
        vec![true, false, false, false],
        vec![false, false, false, false],
        vec![false, false, false, true],
    ];

    let mut sim = BodySimulator::new(&result.circuit, BodySimConfig::default()).expect("valid");
    let protected_reports = sim.run(&scenario).expect("simulates");
    assert!(
        protected_reports.iter().all(|r| !r.misevaluated()),
        "the protected mapping must run clean"
    );

    let mut sim = BodySimulator::new(&stripped, BodySimConfig::default()).expect("valid");
    let stripped_reports = sim.run(&scenario).expect("simulates");
    let last = stripped_reports.last().unwrap();
    assert!(
        !last.pbe_events.is_empty(),
        "the parasitic device must conduct"
    );
    assert!(
        last.misevaluated(),
        "the stripped circuit must produce the wrong output"
    );
}
