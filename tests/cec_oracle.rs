//! Differential oracles for the `soi-cec` foundations: the CDCL solver
//! against exhaustive enumeration on random CNFs, and the 64-lane word
//! simulator against the scalar simulator on seeded random networks.
//! Every verdict, model, and lane value must agree — the solver and the
//! word evaluator are the two components everything in the equivalence
//! checker ultimately trusts.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use soi_domino::cec::{wordsim, Lit, SatResult, Solver};
use soi_domino::circuits::misc::random::{generate, RandomSpec};

/// A random CNF: `clauses[i]` is a list of `(variable, negated)` pairs.
struct RandomCnf {
    vars: usize,
    clauses: Vec<Vec<(usize, bool)>>,
}

fn random_cnf(rng: &mut SmallRng) -> RandomCnf {
    let vars = rng.gen_range(3..=12usize);
    // Around the satisfiability threshold for mixed-width clauses, so the
    // sample contains plenty of both verdicts.
    let nclauses = rng.gen_range(1..=(4 * vars));
    let clauses = (0..nclauses)
        .map(|_| {
            let width = rng.gen_range(1..=4usize);
            (0..width)
                .map(|_| (rng.gen_range(0..vars), rng.gen_bool(0.5)))
                .collect()
        })
        .collect();
    RandomCnf { vars, clauses }
}

fn clause_satisfied(clause: &[(usize, bool)], bits: u64) -> bool {
    clause.iter().any(|&(v, neg)| (bits >> v & 1 == 1) != neg)
}

/// Exhaustive satisfiability under an assumption mask: `Some(bits)` for
/// the first satisfying assignment, `None` if unsat.
fn enumerate(cnf: &RandomCnf, forced: &[(usize, bool)]) -> Option<u64> {
    'assign: for bits in 0..(1u64 << cnf.vars) {
        for &(v, value) in forced {
            if (bits >> v & 1 == 1) != value {
                continue 'assign;
            }
        }
        if cnf.clauses.iter().all(|c| clause_satisfied(c, bits)) {
            return Some(bits);
        }
    }
    None
}

#[test]
fn solver_matches_exhaustive_enumeration_on_random_cnfs() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF);
    let mut sat_seen = 0;
    let mut unsat_seen = 0;
    for case in 0..300 {
        let cnf = random_cnf(&mut rng);
        let mut solver = Solver::new();
        let lits: Vec<Lit> = (0..cnf.vars)
            .map(|_| Lit::positive(solver.new_var()))
            .collect();
        for clause in &cnf.clauses {
            let cl: Vec<Lit> = clause
                .iter()
                .map(|&(v, neg)| lits[v].xor_sign(neg))
                .collect();
            solver.add_clause(&cl);
        }
        let expect = enumerate(&cnf, &[]);
        let verdict = solver.solve(&[], 1_000_000);
        match (expect, verdict) {
            (Some(_), SatResult::Sat) => {
                sat_seen += 1;
                // The model must satisfy every clause — not merely agree
                // on the verdict.
                let bits: u64 = (0..cnf.vars)
                    .map(|v| u64::from(solver.model_value(lits[v])) << v)
                    .sum();
                for (i, clause) in cnf.clauses.iter().enumerate() {
                    assert!(
                        clause_satisfied(clause, bits),
                        "case {case}: model violates clause {i}"
                    );
                }
            }
            (None, SatResult::Unsat) => unsat_seen += 1,
            (e, v) => panic!("case {case}: enumeration {e:?} but solver {v:?}"),
        }
    }
    assert!(sat_seen > 20, "sample too easy: {sat_seen} sat");
    assert!(unsat_seen > 20, "sample too easy: {unsat_seen} unsat");
}

#[test]
fn assumption_queries_match_enumeration_and_stay_clean() {
    let mut rng = SmallRng::seed_from_u64(0xA55);
    for case in 0..150 {
        let cnf = random_cnf(&mut rng);
        let mut solver = Solver::new();
        let lits: Vec<Lit> = (0..cnf.vars)
            .map(|_| Lit::positive(solver.new_var()))
            .collect();
        for clause in &cnf.clauses {
            let cl: Vec<Lit> = clause
                .iter()
                .map(|&(v, neg)| lits[v].xor_sign(neg))
                .collect();
            solver.add_clause(&cl);
        }
        let base = enumerate(&cnf, &[]);
        // Several assumption sets against the same solver instance: the
        // incremental usage pattern of the sweep.
        for round in 0..4 {
            let nforce = rng.gen_range(0..=cnf.vars.min(4));
            let forced: Vec<(usize, bool)> = (0..nforce)
                .map(|_| (rng.gen_range(0..cnf.vars), rng.gen_bool(0.5)))
                .collect();
            let assumptions: Vec<Lit> = forced
                .iter()
                .map(|&(v, value)| lits[v].xor_sign(!value))
                .collect();
            let expect = enumerate(&cnf, &forced);
            let verdict = solver.solve(&assumptions, 1_000_000);
            match (expect, verdict) {
                (Some(_), SatResult::Sat) => {
                    for &(v, value) in &forced {
                        assert_eq!(
                            solver.model_value(lits[v]),
                            value,
                            "case {case} round {round}: assumption not honored"
                        );
                    }
                }
                (None, SatResult::Unsat) => {}
                (e, v) => panic!("case {case} round {round}: enumeration {e:?}, solver {v:?}"),
            }
        }
        // Assumption queries must not have polluted the clause database.
        let verdict = solver.solve(&[], 1_000_000);
        assert_eq!(
            verdict,
            if base.is_some() {
                SatResult::Sat
            } else {
                SatResult::Unsat
            },
            "case {case}: base verdict drifted after assumption rounds"
        );
    }
}

#[test]
fn word_simulation_matches_scalar_on_seeded_networks() {
    for seed in 0..20u64 {
        let spec = RandomSpec::control(&format!("cec-oracle-{seed}"), 12, 5, 80, seed);
        let network = generate(&spec);
        let batches = wordsim::batches(network.inputs().len(), 4, seed ^ 0xBEEF);
        let sigs = wordsim::node_signatures(&network, &batches).expect("simulates");
        let rounds = batches.len();
        for (r, batch) in batches.iter().enumerate() {
            for lane in 0..64u32 {
                let vals = wordsim::lane_assignment(batch, lane);
                let expect = network.simulate(&vals).expect("scalar simulates");
                for (o, port) in network.outputs().iter().enumerate() {
                    let word = sigs[port.driver.index() * rounds + r];
                    assert_eq!(
                        word >> lane & 1 == 1,
                        expect[o],
                        "seed {seed} round {r} lane {lane} output {o}"
                    );
                }
            }
        }
    }
}

/// Internal nodes too, not only outputs — the signature classes the
/// sweep builds pair *internal* cones.
#[test]
fn internal_node_signatures_match_scalar_evaluation() {
    use soi_domino::netlist::Node;
    for seed in [3u64, 11, 17] {
        let spec = RandomSpec::control(&format!("cec-internal-{seed}"), 8, 3, 40, seed);
        let network = generate(&spec);
        let batches = wordsim::batches(network.inputs().len(), 2, seed);
        let sigs = wordsim::node_signatures(&network, &batches).expect("simulates");
        let rounds = batches.len();
        for (r, batch) in batches.iter().enumerate() {
            for lane in (0..64u32).step_by(7) {
                let vals = wordsim::lane_assignment(batch, lane);
                // Recompute every node scalar-style in topological order.
                let mut scalar: Vec<bool> = Vec::with_capacity(network.len());
                let mut next_input = 0;
                for (_, node) in network.iter() {
                    let v = match node {
                        Node::Input { .. } => {
                            let v = vals[next_input];
                            next_input += 1;
                            v
                        }
                        Node::Const { value } => *value,
                        Node::Unary { op, a } => op.eval(scalar[a.index()]),
                        Node::Binary { op, a, b } => op.eval(scalar[a.index()], scalar[b.index()]),
                    };
                    scalar.push(v);
                }
                for id in 0..network.len() {
                    let word = sigs[id * rounds + r];
                    assert_eq!(
                        word >> lane & 1 == 1,
                        scalar[id],
                        "seed {seed} round {r} lane {lane} node {id}"
                    );
                }
            }
        }
    }
}
