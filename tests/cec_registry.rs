//! Registry-wide equivalence sweeps and mutation-kill checks for the
//! `soi-cec` equivalence checker.
//!
//! Three claims, each over the whole `soi-circuits` registry:
//!
//! 1. every mapped circuit is SAT-provably equivalent to its source
//!    network, under the serial, parallel and cone-cached schedules;
//! 2. every structural netlist corruption from `guard::inject` is either
//!    rejected by the checker with a typed error, refuted with a
//!    confirmed counterexample, or proven a functional no-op — never
//!    silently accepted;
//! 3. the SAT formulation of PBE excitability agrees with the `pbe`
//!    crate's exact enumeration on every committed junction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use soi_domino::cec::{
    check_mapped, check_networks, junction_excitability_sat, verify_safe_sat, CecOptions,
    CecVerdict,
};
use soi_domino::circuits::registry;
use soi_domino::domino::DominoCircuit;
use soi_domino::guard::inject;
use soi_domino::mapper::{MapConfig, Mapper, Parallelism};
use soi_domino::netlist::Network;
use soi_domino::pbe::excite::{
    junction_excitability, Excitability, ExciteConfig, InputConstraints,
};
use soi_domino::pbe::points;

fn schedules() -> [(&'static str, MapConfig); 3] {
    let base = MapConfig::default();
    [
        (
            "serial",
            MapConfig {
                parallelism: Parallelism::Serial,
                ..base
            },
        ),
        (
            "parallel",
            MapConfig {
                parallelism: Parallelism::Threads(2),
                ..base
            },
        ),
        (
            "cached",
            MapConfig {
                parallelism: Parallelism::Threads(2),
                cone_cache: true,
                cone_cache_min_gates: 0,
                ..base
            },
        ),
    ]
}

/// Every registry circuit, mapped under every schedule, SAT-proves
/// equivalent to its source network with no unproven miters.
#[test]
fn registry_sweep_proves_mapped_equivalence_across_schedules() {
    let opts = CecOptions::default();
    for name in registry::names() {
        let network = registry::benchmark(name).expect("registry circuit exists");
        for (schedule, config) in schedules() {
            let result = Mapper::soi(config)
                .run(&network)
                .unwrap_or_else(|e| panic!("{name} maps under {schedule}: {e}"));
            let report = check_mapped(&network, &result.circuit, &opts)
                .unwrap_or_else(|e| panic!("{name} ({schedule}) checks: {e}"));
            assert!(
                report.is_equivalent(),
                "{name} ({schedule}): {:?}",
                report.verdict
            );
            assert_eq!(report.unproven(), 0, "{name} ({schedule}): unproven miters");
            assert_eq!(
                report.outputs_proved, report.outputs_total,
                "{name} ({schedule}): outputs not all proved"
            );
        }
    }
}

type NetMutator = fn(&Network, u64) -> Option<Network>;

const NET_MUTATORS: [(&str, NetMutator); 5] = [
    ("dangling_fanin", inject::dangling_fanin),
    ("forward_fanin", inject::forward_fanin),
    ("dangling_output", inject::dangling_output),
    ("break_topo_order", inject::break_topo_order),
    ("duplicate_input_name", inject::duplicate_input_name),
];

/// Random input vectors for functional no-op proofs on circuits too wide
/// to enumerate.
fn sample_vectors(inputs: usize, samples: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..samples)
        .map(|_| (0..inputs).map(|_| rng.gen_bool(0.5)).collect())
        .collect()
}

/// Every netlist mutator's output is caught: by a typed validation error
/// from the checker, or by a confirmed counterexample — or, if the
/// checker calls it equivalent, the mutation is proven a functional
/// no-op by simulation. Silent acceptance of a real change is the only
/// losing outcome.
#[test]
fn netlist_mutations_are_caught_or_proven_noop() {
    let opts = CecOptions::default();
    let sources = ["count", "c8", "f51m", "9symml"];
    for source in sources {
        let network = registry::benchmark(source).expect("registry circuit exists");
        for (mutator_name, mutator) in NET_MUTATORS {
            let mut produced = 0;
            for seed in 0..8u64 {
                let Some(mutated) = mutator(&network, seed) else {
                    continue;
                };
                produced += 1;
                // The structural mutators all guarantee `validate()`
                // rejects their output, so the checker must refuse the
                // comparison rather than crash or mis-verdict.
                match check_networks(&network, &mutated, &opts) {
                    Err(_) => {}
                    Ok(report) => match report.verdict {
                        CecVerdict::NotEquivalent(_) => {}
                        CecVerdict::Equivalent => {
                            for vals in sample_vectors(network.inputs().len(), 64, seed) {
                                let lhs = network.simulate(&vals).expect("source simulates");
                                let rhs = mutated.simulate(&vals).expect("mutant simulates");
                                assert_eq!(
                                    lhs, rhs,
                                    "{source}/{mutator_name} seed {seed}: \
                                     claimed equivalent but differs"
                                );
                            }
                        }
                        CecVerdict::Undecided { unproven } => panic!(
                            "{source}/{mutator_name} seed {seed}: \
                             undecided with {unproven} open miters"
                        ),
                    },
                }
            }
            assert!(produced > 0, "{source}/{mutator_name}: mutator never fired");
        }
    }
}

/// Circuit-level mutators: the fanin retarget is a real functional change
/// and must be refuted with a confirmed counterexample; the
/// protection-level mutators leave the logic function intact and the
/// checker must keep proving equivalence (they are caught by the PBE
/// safety stage, not by CEC).
#[test]
fn circuit_mutations_are_refuted_or_proven_noop() {
    let opts = CecOptions::default();
    let network = registry::benchmark("count").expect("registry circuit exists");
    let mapped = Mapper::soi(MapConfig {
        parallelism: Parallelism::Serial,
        ..MapConfig::default()
    })
    .run(&network)
    .expect("maps");

    let mut retargets = 0;
    for seed in 0..16u64 {
        let Some((mutant, witness)) = inject::retarget_fanin(&mapped.circuit, seed) else {
            continue;
        };
        retargets += 1;
        let report = check_mapped(&network, &mutant, &opts).expect("comparable");
        match report.verdict {
            CecVerdict::NotEquivalent(cex) => {
                // The counterexample was already replay-confirmed inside
                // the checker; cross-check it against both sides anyway.
                let lhs = network.simulate(&cex.inputs).expect("simulates");
                let rhs = mutant.evaluate(&cex.inputs).expect("evaluates");
                assert_ne!(lhs, rhs, "cex does not distinguish (seed {seed})");
            }
            ref v => panic!("retarget_fanin seed {seed} not refuted: {v:?}"),
        }
        // The injector's own witness vector must also distinguish.
        let lhs = network.simulate(&witness).expect("simulates");
        let rhs = mutant.evaluate(&witness).expect("evaluates");
        assert_ne!(
            lhs, rhs,
            "injector witness does not distinguish (seed {seed})"
        );
    }
    assert!(retargets > 0, "retarget_fanin never fired");

    let mut preserved: Vec<(&str, DominoCircuit)> = Vec::new();
    for seed in 0..8u64 {
        if let Some(c) = inject::drop_discharge(&mapped.circuit, seed) {
            preserved.push(("drop_discharge", c));
        }
        if let Some(c) = inject::retarget_discharge(&mapped.circuit, seed) {
            preserved.push(("retarget_discharge", c));
        }
    }
    if let Some(c) = inject::strip_protection(&mapped.circuit) {
        preserved.push(("strip_protection", c));
    }
    assert!(
        !preserved.is_empty(),
        "no protection-level mutants produced"
    );
    for (mutator_name, mutant) in &preserved {
        let report = check_mapped(&network, mutant, &opts).expect("comparable");
        assert!(
            report.is_equivalent(),
            "{mutator_name}: protection change altered the logic function: {:?}",
            report.verdict
        );
    }
}

/// The SAT formulation of junction excitability agrees with the `pbe`
/// crate's verdicts on every committed junction of every mapped registry
/// circuit: exact-enumeration verdicts (`Excitable`/`ProvenSafe`) must
/// be reproduced verbatim, and sampling `Unknown`s may only be resolved,
/// never contradicted.
#[test]
fn pbe_sat_agrees_with_enumeration_on_every_registry_circuit() {
    let constraints = InputConstraints::none();
    let config = ExciteConfig::default();
    let budget = 1_000_000;
    let map_config = MapConfig {
        parallelism: Parallelism::Serial,
        ..MapConfig::default()
    };
    let mut junctions = 0usize;
    for name in registry::names() {
        let network = registry::benchmark(name).expect("registry circuit exists");
        let mapped = Mapper::soi(map_config)
            .run(&network)
            .unwrap_or_else(|e| panic!("{name} maps: {e}"));
        for (gate_id, gate) in mapped.circuit.iter() {
            for junction in points::analyze(gate.pdn()).committed {
                junctions += 1;
                let by_enum = junction_excitability(gate, &junction, &constraints, &config);
                let by_sat = junction_excitability_sat(gate, &junction, &constraints, budget);
                match by_enum {
                    Excitability::Excitable | Excitability::ProvenSafe => assert_eq!(
                        by_sat, by_enum,
                        "{name} gate {gate_id} junction {junction}: SAT diverges"
                    ),
                    // Sampling gave up; the complete method may answer
                    // either way but must not itself give up with this
                    // budget on gate-sized formulas.
                    Excitability::Unknown => assert_ne!(
                        by_sat,
                        Excitability::Unknown,
                        "{name} gate {gate_id} junction {junction}: SAT also unknown"
                    ),
                }
            }
        }
        // Circuit-level verdicts line up too (protected circuits: both
        // sides must call the mapped result safe).
        let by_enum = soi_domino::pbe::excite::verify_safe(&mapped.circuit, &constraints, &config);
        let by_sat = verify_safe_sat(&mapped.circuit, &constraints, budget);
        assert_eq!(
            by_enum, by_sat.safe,
            "{name}: circuit-level verdicts differ"
        );
        assert!(by_sat.safe, "{name}: mapped circuit flagged unsafe");
    }
    assert!(junctions > 0, "registry produced no committed junctions");
}
