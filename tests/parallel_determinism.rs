//! PR 2 guarantees, checked end to end:
//!
//! * the parallel DP schedule is **bit-identical** to the serial one —
//!   same counts, same degraded-node list, same candidate high-water mark
//!   — on seeded random networks and on registry benchmarks;
//! * with `allow_duplication`, the amortized gate export
//!   (`exported_gate_cand` materializing a shared child gate once while
//!   many consumers reference it) never makes the reported
//!   `TransistorCounts` disagree with an independent recount of the
//!   reconstructed circuit.

use proptest::prelude::*;
use soi_domino::circuits::misc::random::{generate, RandomSpec};
use soi_domino::circuits::registry;
use soi_domino::domino::{DominoCircuit, TransistorCounts};
use soi_domino::mapper::{MapConfig, Mapper, Parallelism};

/// The three mapper constructors under test.
const MAPPERS: [fn(MapConfig) -> Mapper; 3] =
    [Mapper::baseline, Mapper::rearrange_stacks, Mapper::soi];

fn spec(seed: u64) -> RandomSpec {
    RandomSpec::control(&format!("pd{seed}"), 14, 6, 90, seed)
}

fn with_parallelism(parallelism: Parallelism, base: MapConfig) -> MapConfig {
    MapConfig {
        parallelism,
        ..base
    }
}

/// Recounts transistors straight off the reconstructed circuit, without
/// going through `TransistorCounts::collect`'s per-gate helpers: PDN
/// transistors are counted by enumerating their signals.
fn recount(circuit: &DominoCircuit) -> TransistorCounts {
    let mut counts = TransistorCounts {
        gates: circuit.gate_count() as u32,
        levels: circuit.levels(),
        ..TransistorCounts::default()
    };
    for (_, gate) in circuit.iter() {
        let pdn_tx = gate.pdn().signals().len() as u32;
        let overhead = 4 + u32::from(gate.is_footed());
        counts.logic += pdn_tx + overhead;
        counts.discharge += gate.discharge().len() as u32;
        counts.clock += 1 + u32::from(gate.is_footed()) + gate.discharge().len() as u32;
    }
    counts.logic += 2 * circuit.outputs().iter().filter(|o| o.inverted).count() as u32;
    counts.total = counts.logic + counts.discharge;
    counts
}

fn assert_schedules_agree(network: &soi_domino::netlist::Network, base: MapConfig, what: &str) {
    for make in MAPPERS {
        let serial = make(with_parallelism(Parallelism::Serial, base))
            .run(network)
            .expect("serial maps");
        for threads in [2, 4] {
            let parallel = make(with_parallelism(Parallelism::Threads(threads), base))
                .run(network)
                .expect("parallel maps");
            assert_eq!(
                serial.counts, parallel.counts,
                "{what}: counts diverge at {threads} threads"
            );
            assert_eq!(
                serial.degraded_nodes, parallel.degraded_nodes,
                "{what}: degraded nodes diverge at {threads} threads"
            );
            assert_eq!(
                serial.peak_candidates, parallel.peak_candidates,
                "{what}: peak candidates diverge at {threads} threads"
            );
        }
    }
}

/// Twenty seeded random networks: every mapper, serial vs 2- and
/// 4-thread schedules.
#[test]
fn parallel_solve_matches_serial_on_seeded_networks() {
    for seed in 0..20u64 {
        let network = generate(&spec(seed));
        assert_schedules_agree(&network, MapConfig::default(), &format!("seed {seed}"));
    }
}

/// The same bit-identity on real registry circuits, including one past
/// the `Parallelism::Auto` size threshold, under both objectives.
#[test]
fn parallel_solve_matches_serial_on_registry_circuits() {
    for name in ["cm150", "frg1", "b9", "c880"] {
        let network = registry::benchmark(name).expect("registered");
        assert_schedules_agree(&network, MapConfig::default(), name);
        assert_schedules_agree(&network, MapConfig::depth(), &format!("{name} (depth)"));
    }
}

/// With duplication on, the amortized export keeps the final accounting
/// honest for all three mappers across twenty seeds.
#[test]
fn duplication_export_counts_match_reconstruction() {
    let config = MapConfig {
        allow_duplication: true,
        ..MapConfig::default()
    };
    for seed in 0..20u64 {
        let network = generate(&spec(seed));
        for make in MAPPERS {
            let result = make(config).run(&network).expect("maps");
            assert_eq!(
                result.counts,
                recount(&result.circuit),
                "seed {seed}: reported counts disagree with circuit recount"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized sweep over network size, seed and shape limits: serial
    /// and parallel SOI mapping stay bit-identical, and the duplication
    /// recount holds, including under degraded (relaxed-limit) mappings.
    #[test]
    fn prop_parallel_and_duplication_invariants(
        seed in 0u64..10_000,
        gates in 20usize..140,
        w_max in 3u32..6,
        h_max in 4u32..9,
    ) {
        let network = generate(&RandomSpec::control("prop", 12, 4, gates, seed));
        let config = MapConfig {
            w_max,
            h_max,
            degrade_unmappable: true,
            allow_duplication: true,
            ..MapConfig::default()
        };
        let serial = Mapper::soi(with_parallelism(Parallelism::Serial, config))
            .run(&network)
            .expect("serial maps");
        let parallel = Mapper::soi(with_parallelism(Parallelism::Threads(3), config))
            .run(&network)
            .expect("parallel maps");
        prop_assert_eq!(serial.counts, parallel.counts);
        prop_assert_eq!(&serial.degraded_nodes, &parallel.degraded_nodes);
        prop_assert_eq!(serial.peak_candidates, parallel.peak_candidates);
        prop_assert_eq!(serial.counts, recount(&serial.circuit));
    }
}
