//! Miter-based combinational equivalence checking.
//!
//! The checker is a SAT sweep over a shared-input miter, in three tiers
//! ordered cheapest first:
//!
//! 1. **Simulation filter.** Both networks run the guided + random word
//!    batches of [`crate::wordsim`] on shared input words. A lane where
//!    an output pair differs is a counterexample candidate: it is
//!    replayed through the scalar simulator on both networks, and only a
//!    confirmed mismatch is reported — the `cex_replays` discipline. The
//!    per-node signatures feed complement-aware candidate classes for
//!    the sweep.
//! 2. **Structural hashing.** Both networks encode into one
//!    [`Encoder`], sharing input literals positionally. Nodes of the
//!    right network whose fanins already collapsed onto left-network
//!    literals hash to the *same* literal, proving equivalence with zero
//!    solver effort.
//! 3. **SAT.** Remaining candidate pairs (same canonical signature) are
//!    closed with a *cone-local* query on their XOR miter under a small
//!    conflict budget: [`Encoder::solve_cone`] rebuilds only the miter's
//!    transitive fanin in a fresh solver, so each query costs its cone,
//!    not the whole two-network CNF. A proven pair substitutes the left
//!    literal for the right node, shrinking every downstream cone (and
//!    is memoized, so strash-shared right nodes never re-prove). Output
//!    miters get the large budget; a `Sat` answer yields a model whose
//!    input assignment is replayed through the scalar simulator before
//!    it is believed.
//!
//! Everything is counted: SAT calls, CDCL conflicts, simulation-filtered
//! candidates, and counterexample replays, surfaced through
//! [`soi_trace`] as `cec_sat_calls` / `conflicts` / `cec_sim_filtered` /
//! `cex_replays`.

use std::error::Error;
use std::fmt;

use soi_netlist::fx::FxHashMap;
use soi_netlist::{Network, NetworkError, NodeId};
use soi_trace::{Counter, TraceHandle};

use crate::cnf::Lit;
use crate::encode::Encoder;
use crate::solver::SatResult;
use crate::wordsim;

/// Tuning knobs and budgets for one equivalence check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CecOptions {
    /// Random 64-lane batches appended to the guided vectors.
    pub sim_rounds: usize,
    /// Seed for the random batches.
    pub seed: u64,
    /// Conflict budget per internal candidate-pair query. Exhaustion just
    /// skips the merge; correctness never depends on it.
    pub node_conflict_budget: u64,
    /// Conflict budget per output miter. Exhaustion leaves the output
    /// *unproven*, which [`CecVerdict::Undecided`] reports.
    pub output_conflict_budget: u64,
    /// Candidates tried per node from its signature class.
    pub max_candidates: usize,
}

impl Default for CecOptions {
    fn default() -> CecOptions {
        CecOptions {
            sim_rounds: 8,
            seed: 0xCEC,
            node_conflict_budget: 200,
            output_conflict_budget: 1_000_000,
            max_candidates: 4,
        }
    }
}

/// A confirmed distinguishing input assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The input assignment, ordered as the networks' primary inputs.
    pub inputs: Vec<bool>,
    /// Index of the first differing output port.
    pub output: usize,
    /// The left network's value at that port.
    pub lhs: bool,
    /// The right network's value at that port.
    pub rhs: bool,
}

/// The check's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CecVerdict {
    /// Every output pair proved equivalent.
    Equivalent,
    /// A replay-confirmed counterexample distinguishes the networks.
    NotEquivalent(Counterexample),
    /// Some output miters exhausted their conflict budget unproven.
    Undecided {
        /// Number of unproven output miters.
        unproven: usize,
    },
}

/// Everything a check run reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CecReport {
    /// The verdict.
    pub verdict: CecVerdict,
    /// Output pairs proved equivalent.
    pub outputs_proved: usize,
    /// Total output pairs.
    pub outputs_total: usize,
    /// Internal right-network nodes merged onto left-network literals
    /// (by structural hashing or a SAT proof).
    pub internal_merges: usize,
    /// Candidates discharged by simulation alone: nodes whose signature
    /// matched no class, plus output mismatches settled by a simulated
    /// counterexample.
    pub sim_filtered: u64,
    /// SAT queries issued.
    pub sat_calls: u64,
    /// CDCL conflicts across all queries.
    pub conflicts: u64,
    /// Counterexamples replayed through the scalar simulator.
    pub cex_replays: u64,
}

impl CecReport {
    /// Unproven output miters (0 unless [`CecVerdict::Undecided`]).
    pub fn unproven(&self) -> usize {
        match self.verdict {
            CecVerdict::Undecided { unproven } => unproven,
            _ => 0,
        }
    }

    /// Whether the verdict is [`CecVerdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        self.verdict == CecVerdict::Equivalent
    }
}

/// Why a check could not run (distinct from a *negative* verdict, which
/// [`CecReport`] carries).
#[derive(Debug)]
#[non_exhaustive]
pub enum CecError {
    /// The networks have different primary-input counts.
    InputArity {
        /// Left input count.
        lhs: usize,
        /// Right input count.
        rhs: usize,
    },
    /// The networks have different output counts.
    OutputArity {
        /// Left output count.
        lhs: usize,
        /// Right output count.
        rhs: usize,
    },
    /// A network failed validation or simulation.
    Net(NetworkError),
    /// A SAT or simulation counterexample did not reproduce under scalar
    /// replay — an internal inconsistency that must never be reported as
    /// a verdict.
    UnverifiedCounterexample {
        /// Index of the output the unconfirmed model pointed at.
        output: usize,
    },
}

impl fmt::Display for CecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CecError::InputArity { lhs, rhs } => {
                write!(f, "input counts differ: {lhs} vs {rhs}")
            }
            CecError::OutputArity { lhs, rhs } => {
                write!(f, "output counts differ: {lhs} vs {rhs}")
            }
            CecError::Net(e) => write!(f, "{e}"),
            CecError::UnverifiedCounterexample { output } => write!(
                f,
                "counterexample for output {output} failed scalar replay (checker inconsistency)"
            ),
        }
    }
}

impl Error for CecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CecError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetworkError> for CecError {
    fn from(e: NetworkError) -> CecError {
        CecError::Net(e)
    }
}

/// Checks combinational equivalence of two networks (inputs and outputs
/// matched positionally) without instrumentation.
///
/// # Errors
///
/// See [`CecError`]; a *negative verdict* is not an error — it comes back
/// as [`CecVerdict::NotEquivalent`] inside the report.
pub fn check_networks(a: &Network, b: &Network, opts: &CecOptions) -> Result<CecReport, CecError> {
    check_networks_traced(a, b, opts, TraceHandle::off())
}

/// [`check_networks`] with a trace handle: reports `cec_sat_calls`,
/// `cec_sim_filtered`, `conflicts` and `cex_replays` counters.
pub fn check_networks_traced(
    a: &Network,
    b: &Network,
    opts: &CecOptions,
    trace: TraceHandle,
) -> Result<CecReport, CecError> {
    let mut chk = Checker::new(a, b, opts)?;
    let result = chk.run();
    trace.count(Counter::CecSatCalls, chk.report.sat_calls);
    trace.count(Counter::CecSimFiltered, chk.report.sim_filtered);
    trace.count(Counter::Conflicts, chk.report.conflicts);
    trace.count(Counter::CexReplays, chk.report.cex_replays);
    result.map(|verdict| {
        chk.report.verdict = verdict;
        chk.report
    })
}

/// One signature-class entry: a left-network node and its canonical
/// phase.
type ClassEntry = (NodeId, bool);

struct Checker<'n> {
    a: &'n Network,
    b: &'n Network,
    opts: CecOptions,
    batches: Vec<soi_netlist::sim::SimBatch>,
    rounds: usize,
    sig_a: Vec<u64>,
    sig_b: Vec<u64>,
    report: CecReport,
}

impl<'n> Checker<'n> {
    fn new(a: &'n Network, b: &'n Network, opts: &CecOptions) -> Result<Checker<'n>, CecError> {
        a.validate()?;
        b.validate()?;
        if a.inputs().len() != b.inputs().len() {
            return Err(CecError::InputArity {
                lhs: a.inputs().len(),
                rhs: b.inputs().len(),
            });
        }
        if a.outputs().len() != b.outputs().len() {
            return Err(CecError::OutputArity {
                lhs: a.outputs().len(),
                rhs: b.outputs().len(),
            });
        }
        let batches = wordsim::batches(a.inputs().len(), opts.sim_rounds, opts.seed);
        let rounds = batches.len();
        let sig_a = wordsim::node_signatures(a, &batches)?;
        let sig_b = wordsim::node_signatures(b, &batches)?;
        Ok(Checker {
            a,
            b,
            opts: *opts,
            batches,
            rounds,
            sig_a,
            sig_b,
            report: CecReport {
                verdict: CecVerdict::Equivalent,
                outputs_proved: 0,
                outputs_total: a.outputs().len(),
                internal_merges: 0,
                sim_filtered: 0,
                sat_calls: 0,
                conflicts: 0,
                cex_replays: 0,
            },
        })
    }

    fn sig(&self, side_a: bool, id: NodeId) -> &[u64] {
        let sigs = if side_a { &self.sig_a } else { &self.sig_b };
        &sigs[id.index() * self.rounds..(id.index() + 1) * self.rounds]
    }

    /// Replays a lane assignment through both scalar simulators and
    /// builds the confirmed counterexample, or fails the check if the
    /// mismatch does not reproduce.
    fn replay(&mut self, inputs: Vec<bool>, output: usize) -> Result<CecVerdict, CecError> {
        self.report.cex_replays += 1;
        let va = self.a.simulate(&inputs)?;
        let vb = self.b.simulate(&inputs)?;
        if va[output] != vb[output] {
            return Ok(CecVerdict::NotEquivalent(Counterexample {
                inputs,
                output,
                lhs: va[output],
                rhs: vb[output],
            }));
        }
        // Maybe the model distinguishes a *different* output.
        if let Some(o) = (0..va.len()).find(|&o| va[o] != vb[o]) {
            return Ok(CecVerdict::NotEquivalent(Counterexample {
                inputs,
                output: o,
                lhs: va[o],
                rhs: vb[o],
            }));
        }
        Err(CecError::UnverifiedCounterexample { output })
    }

    fn run(&mut self) -> Result<CecVerdict, CecError> {
        // Tier 1: direct output comparison on the simulated words.
        for o in 0..self.a.outputs().len() {
            let da = self.a.outputs()[o].driver;
            let db = self.b.outputs()[o].driver;
            for r in 0..self.rounds {
                let wa = self.sig_a[da.index() * self.rounds + r];
                let wb = self.sig_b[db.index() * self.rounds + r];
                let diff = wa ^ wb;
                if diff != 0 {
                    self.report.sim_filtered += 1;
                    let lane = diff.trailing_zeros();
                    let inputs = wordsim::lane_assignment(&self.batches[r], lane);
                    return self.replay(inputs, o);
                }
            }
        }

        // Candidate classes over the left network's nodes.
        let mut proven: FxHashMap<u32, Lit> = FxHashMap::default();
        let mut classes: FxHashMap<u64, Vec<ClassEntry>> = FxHashMap::default();
        for (id, _) in self.a.iter() {
            let canon = wordsim::canonicalize(self.sig(true, id));
            classes
                .entry(canon.hash)
                .or_default()
                .push((id, canon.phase));
        }

        // Shared input literals; encode the left network wholesale.
        let mut enc = Encoder::new();
        let in_lits: Vec<Lit> = (0..self.a.inputs().len()).map(|_| enc.fresh()).collect();
        let lits_a = enc.encode_network(self.a, &in_lits)?;

        // Tier 2 + 3: sweep the right network in topological order,
        // substituting proven-equivalent left literals as we go.
        let mut lits_b: Vec<Lit> = Vec::with_capacity(self.b.len());
        let mut next_input = 0;
        for (id, node) in self.b.iter() {
            use soi_netlist::{Node, UnOp};
            let lit = match node {
                Node::Input { .. } => {
                    let l = in_lits[next_input];
                    next_input += 1;
                    l
                }
                Node::Const { value } => enc.constant(*value),
                Node::Unary { op, a } => match op {
                    UnOp::Inv => !lits_b[a.index()],
                    UnOp::Buf => lits_b[a.index()],
                },
                Node::Binary { op, a, b } => {
                    let (la, lb) = (lits_b[a.index()], lits_b[b.index()]);
                    enc.binary(*op, la, lb)
                }
            };
            let lit = if node.is_input() {
                lit
            } else {
                self.merge(&mut enc, &classes, &mut proven, &lits_a.nodes, id, lit)
            };
            lits_b.push(lit);
        }

        // Output miters.
        let mut unproven = 0;
        for o in 0..self.a.outputs().len() {
            let la = lits_a.nodes[self.a.outputs()[o].driver.index()];
            let lb = lits_b[self.b.outputs()[o].driver.index()];
            if la == lb {
                self.report.outputs_proved += 1;
                continue;
            }
            let miter = enc.xor(la, lb);
            if miter == enc.lit_false() {
                self.report.outputs_proved += 1;
                continue;
            }
            self.report.sat_calls += 1;
            let before = enc.conflicts();
            let result = enc.solve_cone(&[miter], self.opts.output_conflict_budget);
            self.report.conflicts += enc.conflicts() - before;
            match result {
                SatResult::Unsat => self.report.outputs_proved += 1,
                SatResult::Sat => {
                    // Inputs outside the miter's cone default to false;
                    // they cannot affect the differing output, and the
                    // scalar replay re-simulates the full networks.
                    let inputs: Vec<bool> =
                        in_lits.iter().map(|&l| enc.cone_model_value(l)).collect();
                    return self.replay(inputs, o);
                }
                SatResult::Unknown => unproven += 1,
            }
        }
        if unproven > 0 {
            return Ok(CecVerdict::Undecided { unproven });
        }
        Ok(CecVerdict::Equivalent)
    }

    /// Tries to merge a right-network node onto a left-network literal
    /// via its signature class; returns the representative literal.
    fn merge(
        &mut self,
        enc: &mut Encoder,
        classes: &FxHashMap<u64, Vec<ClassEntry>>,
        proven: &mut FxHashMap<u32, Lit>,
        lits_a: &[Lit],
        id: NodeId,
        lit: Lit,
    ) -> Lit {
        // Structural hashing can hand distinct right-network nodes the
        // same literal; a var proved once never re-proves.
        if let Some(&rep) = proven.get(&(lit.var().index() as u32)) {
            self.report.internal_merges += 1;
            return rep.xor_sign(lit.is_negated());
        }
        let canon = wordsim::canonicalize(self.sig(false, id));
        let Some(cands) = classes.get(&canon.hash) else {
            // Simulation alone separated this node from every left node.
            self.report.sim_filtered += 1;
            return lit;
        };
        let mut tried = 0;
        for &(aid, phase_a) in cands {
            if tried >= self.opts.max_candidates {
                break;
            }
            let relative = phase_a ^ canon.phase;
            if !wordsim::sigs_equal(self.sig(true, aid), self.sig(false, id), relative) {
                continue; // hash collision
            }
            tried += 1;
            let target = lits_a[aid.index()].xor_sign(relative);
            if lit == target {
                self.report.internal_merges += 1;
                return lit;
            }
            if lit == !target {
                continue; // structurally proven different
            }
            let miter = enc.xor(lit, target);
            if miter == enc.lit_false() {
                self.report.internal_merges += 1;
                return target;
            }
            if miter == enc.lit_true() {
                continue;
            }
            self.report.sat_calls += 1;
            let before = enc.conflicts();
            let result = enc.solve_cone(&[miter], self.opts.node_conflict_budget);
            self.report.conflicts += enc.conflicts() - before;
            if result == SatResult::Unsat {
                // Equivalent: substitute the left literal everywhere
                // downstream. No equality clause is needed — every later
                // cone is built over the substituted literal.
                proven.insert(lit.var().index() as u32, target.xor_sign(lit.is_negated()));
                self.report.internal_merges += 1;
                return target;
            }
        }
        lit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_net() -> Network {
        let mut n = Network::new("x");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.xor2(a, b);
        n.add_output("o", g);
        n
    }

    fn xor_as_aoi() -> Network {
        let mut n = Network::new("x2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let na = n.inv(a);
        let nb = n.inv(b);
        let t1 = n.and2(a, nb);
        let t2 = n.and2(na, b);
        let g = n.or2(t1, t2);
        n.add_output("o", g);
        n
    }

    #[test]
    fn equivalent_restructurings_prove() {
        let report = check_networks(&xor_net(), &xor_as_aoi(), &CecOptions::default()).unwrap();
        assert!(report.is_equivalent());
        assert_eq!(report.outputs_proved, 1);
        assert_eq!(report.unproven(), 0);
    }

    #[test]
    fn inequivalence_yields_a_confirmed_counterexample() {
        let mut n = Network::new("and");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.and2(a, b);
        n.add_output("o", g);
        let report = check_networks(&xor_net(), &n, &CecOptions::default()).unwrap();
        match report.verdict {
            CecVerdict::NotEquivalent(cex) => {
                assert_eq!(cex.output, 0);
                let va = xor_net().simulate(&cex.inputs).unwrap()[0];
                let vb = n.simulate(&cex.inputs).unwrap()[0];
                assert_eq!(cex.lhs, va);
                assert_eq!(cex.rhs, vb);
                assert_ne!(va, vb);
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
        assert!(report.cex_replays >= 1);
    }

    /// Disagreement only on one assignment of a wide AND — random
    /// vectors essentially never hit it, so the SAT tier must.
    #[test]
    fn needle_inequivalence_is_found_by_sat() {
        let width = 12;
        let mut a = Network::new("wide-and");
        let sigs: Vec<_> = (0..width).map(|i| a.add_input(format!("i{i}"))).collect();
        let root = a.and_tree(&sigs);
        a.add_output("o", root);

        let mut b = Network::new("never");
        for i in 0..width {
            b.add_input(format!("i{i}"));
        }
        let zero = b.add_const(false);
        b.add_output("o", zero);

        // Guided batches include the all-ones corner, so sim finds this;
        // force the SAT path by checking a *rotation* instead: AND of all
        // versus AND of all but with one input duplicated and one dropped.
        let mut c = Network::new("dropped");
        let csigs: Vec<_> = (0..width).map(|i| c.add_input(format!("i{i}"))).collect();
        let mut picked = csigs.clone();
        picked[0] = csigs[1]; // drop input 0 from the conjunction
        let croot = c.and_tree(&picked);
        c.add_output("o", croot);

        let ra = check_networks(&a, &b, &CecOptions::default()).unwrap();
        assert!(matches!(ra.verdict, CecVerdict::NotEquivalent(_)));
        let rc = check_networks(&a, &c, &CecOptions::default()).unwrap();
        match rc.verdict {
            CecVerdict::NotEquivalent(cex) => {
                // The distinguishing assignment must clear input 0 and
                // set every other input.
                assert!(!cex.inputs[0]);
                assert!(cex.inputs[1..].iter().all(|&v| v));
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn arity_mismatches_are_errors() {
        let mut one = Network::new("one");
        let a = one.add_input("a");
        one.add_output("o", a);
        assert!(matches!(
            check_networks(&xor_net(), &one, &CecOptions::default()),
            Err(CecError::InputArity { lhs: 2, rhs: 1 })
        ));
        let mut two = Network::new("two");
        let a = two.add_input("a");
        let b = two.add_input("b");
        two.add_output("o", a);
        two.add_output("p", b);
        assert!(matches!(
            check_networks(&xor_net(), &two, &CecOptions::default()),
            Err(CecError::OutputArity { lhs: 1, rhs: 2 })
        ));
    }

    #[test]
    fn traced_check_reports_counters() {
        let (rec, trace) = soi_trace::Recorder::install();
        let report =
            check_networks_traced(&xor_net(), &xor_as_aoi(), &CecOptions::default(), trace)
                .unwrap();
        assert!(report.is_equivalent());
        assert_eq!(rec.counter(Counter::CecSatCalls), report.sat_calls);
        assert_eq!(rec.counter(Counter::Conflicts), report.conflicts);
        assert_eq!(rec.counter(Counter::CecSimFiltered), report.sim_filtered);
        assert_eq!(rec.counter(Counter::CexReplays), report.cex_replays);
    }

    #[test]
    fn undecided_on_a_starved_budget() {
        // A 16-bit comparator-ish structure with zero budget cannot prove
        // its miter; the verdict must be Undecided, never a false claim.
        let mut a = Network::new("xa");
        let sa: Vec<_> = (0..16).map(|i| a.add_input(format!("i{i}"))).collect();
        let ra = a.xor_tree(&sa);
        a.add_output("o", ra);
        let mut b = Network::new("xb");
        let sb: Vec<_> = (0..16).map(|i| b.add_input(format!("i{i}"))).collect();
        let rev: Vec<_> = sb.iter().rev().copied().collect();
        let rb = b.xor_tree(&rev);
        b.add_output("o", rb);
        let opts = CecOptions {
            node_conflict_budget: 0,
            output_conflict_budget: 0,
            sim_rounds: 2,
            ..CecOptions::default()
        };
        let report = check_networks(&a, &b, &opts).unwrap();
        match report.verdict {
            CecVerdict::Undecided { unproven } => assert_eq!(unproven, 1),
            CecVerdict::Equivalent => {
                // Structural hashing may still close it outright; that is
                // also sound.
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        // With real budgets the same pair proves.
        let report = check_networks(&a, &b, &CecOptions::default()).unwrap();
        assert!(report.is_equivalent());
    }
}
