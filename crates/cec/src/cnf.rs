//! CNF literals and variables.
//!
//! The packed representation is the classic solver layout: variable `v`
//! owns codes `2v` (positive) and `2v + 1` (negated), so a literal's code
//! indexes watch lists directly and negation is one xor.

use std::fmt;
use std::ops::Not;

/// A propositional variable, densely numbered from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its dense index.
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }

    /// The variable's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `var << 1 | negated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn positive(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negated literal of `var`.
    pub fn negative(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// A literal of `var` with the given sign (`true` = negated).
    pub fn with_sign(var: Var, negated: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(negated))
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    pub fn is_negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// The packed code (`2·var + negated`), usable as a dense array index.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Flips the literal's sign iff `flip` — a conditional [`Not`], used
    /// when substituting complement-phase equivalences.
    pub fn xor_sign(self, flip: bool) -> Lit {
        Lit(self.0 ^ u32::from(flip))
    }
}

impl Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negated() {
            write!(f, "!{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        let v = Var::from_index(17);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(!p.is_negated());
        assert!(n.is_negated());
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(p.code(), 34);
        assert_eq!(n.code(), 35);
        assert_eq!(Lit::with_sign(v, true), n);
        assert_eq!(p.xor_sign(true), n);
        assert_eq!(p.xor_sign(false), p);
    }

    #[test]
    fn display_forms() {
        let v = Var::from_index(3);
        assert_eq!(Lit::positive(v).to_string(), "x3");
        assert_eq!(Lit::negative(v).to_string(), "!x3");
    }
}
