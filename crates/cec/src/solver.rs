//! A small self-contained CDCL SAT solver.
//!
//! The architecture is the classic MiniSat core reduced to what the
//! equivalence and PBE-safety checkers need:
//!
//! * **two watched literals** per clause for unit propagation,
//! * **first-UIP conflict analysis** with clause learning and
//!   non-chronological backjumping,
//! * **VSIDS-lite** branching: exponentially-decayed per-variable
//!   activities in an indexed max-heap, with phase saving,
//! * **assumption solving**: `solve(&[l1, l2, ...], budget)` answers
//!   satisfiability under the assumptions without touching the clause
//!   database, so one incremental solver instance serves thousands of
//!   miter queries,
//! * **conflict budgets**: every call carries its own bound and returns
//!   [`SatResult::Unknown`] on exhaustion instead of running away.
//!
//! There is no preprocessing, clause deletion, or literal-block-distance
//! machinery: the CNFs here are network miters whose queries are either
//! easy (locally equivalent cones) or budget-capped, and the oracle tests
//! in `tests/cec_oracle.rs` differential-check verdicts and models against
//! exhaustive enumeration.

use crate::cnf::{Lit, Var};

/// Verdict of one [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment exists (readable via [`Solver::model_value`]).
    Sat,
    /// No satisfying assignment exists under the given assumptions.
    Unsat,
    /// The conflict budget ran out before a verdict.
    Unknown,
}

const VALUE_FALSE: u8 = 0;
const VALUE_TRUE: u8 = 1;
const VALUE_UNSET: u8 = 2;
const NO_REASON: u32 = u32::MAX;

/// Literal value over the raw assignment array — a free function so
/// `propagate` can read values while holding a clause borrow.
fn lit_value(values: &[u8], l: Lit) -> u8 {
    match values[l.var().index()] {
        VALUE_UNSET => VALUE_UNSET,
        v => v ^ u8::from(l.is_negated()),
    }
}

/// Indexed binary max-heap over variable activities — MiniSat's order
/// heap, so branching picks the highest-activity unassigned variable
/// without scanning the whole variable range.
#[derive(Debug, Default)]
struct ActivityHeap {
    heap: Vec<u32>,
    /// Position of each variable in `heap`, or `u32::MAX` if absent.
    pos: Vec<u32>,
}

impl ActivityHeap {
    fn grow_to(&mut self, vars: usize) {
        self.pos.resize(vars, u32::MAX);
    }

    fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != u32::MAX
    }

    fn push(&mut self, v: u32, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as u32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn pop(&mut self, activity: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = u32::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn bumped(&mut self, v: u32, activity: &[f64]) {
        let p = self.pos[v as usize];
        if p != u32::MAX {
            self.sift_up(p as usize, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            if l >= self.heap.len() {
                break;
            }
            let r = l + 1;
            let child = if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[l] as usize]
            {
                r
            } else {
                l
            };
            if activity[self.heap[child] as usize] <= activity[self.heap[i] as usize] {
                break;
            }
            self.swap(i, child);
            i = child;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }
}

/// The CDCL solver. Variables are created with [`Solver::new_var`],
/// clauses added with [`Solver::add_clause`] (at decision level 0, i.e.
/// between `solve` calls), and queries answered by [`Solver::solve`].
#[derive(Debug, Default)]
pub struct Solver {
    /// Clause arena; learned clauses are appended like problem clauses.
    clauses: Vec<Vec<Lit>>,
    /// Watch lists indexed by literal code: clauses to visit when the
    /// literal becomes false.
    watches: Vec<Vec<u32>>,
    /// Current assignment per variable.
    values: Vec<u8>,
    /// Saved phase per variable (last assigned polarity).
    phase: Vec<bool>,
    /// Decision level per assigned variable.
    level: Vec<u32>,
    /// Reason clause per assigned variable (`NO_REASON` for decisions).
    reason: Vec<u32>,
    /// Assignment trail and the trail index where each level starts.
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    /// Propagation queue head (index into `trail`).
    qhead: usize,
    /// VSIDS activities and the current bump increment.
    activity: Vec<f64>,
    var_inc: f64,
    order: ActivityHeap,
    /// Analyze scratch.
    seen: Vec<bool>,
    /// `false` once a top-level conflict makes the CNF unconditionally
    /// unsatisfiable.
    ok: bool,
    conflicts: u64,
    /// Model snapshot of the last `Sat` answer.
    model: Vec<u8>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            ok: true,
            ..Solver::default()
        }
    }

    /// Number of variables created so far.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Total conflicts across every `solve` call — the solver-effort
    /// metric surfaced as [`soi_trace::Counter::Conflicts`].
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Whether the clause database is still satisfiable at top level
    /// (`false` after an empty clause or a level-0 conflict).
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.values.len();
        self.values.push(VALUE_UNSET);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow_to(v + 1);
        self.order.push(v as u32, &self.activity);
        Var::from_index(v)
    }

    fn value_of(&self, l: Lit) -> u8 {
        match self.values[l.var().index()] {
            VALUE_UNSET => VALUE_UNSET,
            v => v ^ u8::from(l.is_negated()),
        }
    }

    /// Adds a clause. Must be called at decision level 0 (i.e. not from
    /// within a `solve`). Returns `false` if the clause makes the CNF
    /// unconditionally unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert!(self.trail_lim.is_empty(), "add_clause mid-solve");
        if !self.ok {
            return false;
        }
        // Normalize: drop duplicates and level-0-false literals, detect
        // tautologies and level-0-satisfied clauses.
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if self.value_of(l) == VALUE_TRUE {
                return true; // already satisfied at top level
            }
            if self.value_of(l) == VALUE_FALSE {
                continue; // can never help
            }
            if clause.contains(&!l) {
                return true; // tautology
            }
            if !clause.contains(&l) {
                clause.push(l);
            }
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(clause[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach(clause);
                true
            }
        }
    }

    fn attach(&mut self, clause: Vec<Lit>) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[(!clause[0]).code()].push(idx);
        self.watches[(!clause[1]).code()].push(idx);
        self.clauses.push(clause);
        idx
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var().index();
        debug_assert_eq!(self.values[v], VALUE_UNSET);
        self.values[v] = u8::from(!l.is_negated());
        self.phase[v] = !l.is_negated();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation to fixpoint; returns the conflicting clause index.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // p just became true, so !p became false; clauses watching
            // !p were attached under p's code.
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut kept = 0;
            let mut conflict = None;
            let mut i = 0;
            while i < ws.len() {
                let ci = ws[i];
                i += 1;
                let clause = &mut self.clauses[ci as usize];
                // Make sure the false literal is at slot 1.
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], false_lit);
                let first = clause[0];
                if lit_value(&self.values, first) == VALUE_TRUE {
                    ws[kept] = ci;
                    kept += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..clause.len() {
                    if lit_value(&self.values, clause[k]) != VALUE_FALSE {
                        clause.swap(1, k);
                        let w = !clause[1];
                        self.watches[w.code()].push(ci);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting.
                ws[kept] = ci;
                kept += 1;
                if lit_value(&self.values, first) == VALUE_FALSE {
                    // Conflict: keep the remaining watchers and stop.
                    while i < ws.len() {
                        ws[kept] = ws[i];
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(ci);
                } else {
                    self.enqueue(first, ci);
                }
            }
            ws.truncate(kept);
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn backtrack_to(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let keep = self.trail_lim[target as usize];
        for &l in &self.trail[keep..] {
            let v = l.var().index();
            self.values[v] = VALUE_UNSET;
            if !self.order.contains(l.var().index() as u32) {
                self.order.push(l.var().index() as u32, &self.activity);
            }
        }
        self.trail.truncate(keep);
        self.trail_lim.truncate(target as usize);
        self.qhead = keep;
    }

    fn bump(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v as u32, &self.activity);
    }

    /// First-UIP conflict analysis: returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0u32;
        let mut idx = self.trail.len();
        let mut confl = confl;
        let mut skip: Option<Var> = None;
        loop {
            for k in 0..self.clauses[confl as usize].len() {
                let q = self.clauses[confl as usize][k];
                if Some(q.var()) == skip {
                    continue;
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump(v);
                    if self.level[v] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next seen literal on the trail.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let p = self.trail[idx];
            let v = p.var().index();
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                learnt.insert(0, !p);
                break;
            }
            confl = self.reason[v];
            debug_assert_ne!(confl, NO_REASON);
            skip = Some(p.var());
        }
        for &l in &learnt[1..] {
            self.seen[l.var().index()] = false;
        }
        // Backjump to the second-highest level in the clause.
        let mut bt = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            bt = self.level[learnt[1].var().index()];
        }
        (learnt, bt)
    }

    /// Decides satisfiability under the given assumptions, spending at
    /// most `budget` conflicts.
    ///
    /// On [`SatResult::Sat`] the model is snapshotted for
    /// [`Solver::model_value`]. The solver always returns at decision
    /// level 0, so clauses may be added freely between calls.
    pub fn solve(&mut self, assumptions: &[Lit], budget: u64) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        let mut spent = 0u64;
        let mut restart_limit = 128u64;
        let mut since_restart = 0u64;
        let result = 'search: loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                spent += 1;
                since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    break 'search SatResult::Unsat;
                }
                if self.decision_level() <= assumptions.len() as u32 {
                    // The conflict depends only on assumptions (every
                    // decision so far is one): unsatisfiable under them.
                    break 'search SatResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack_to(bt);
                let asserting = learnt[0];
                if learnt.len() == 1 {
                    self.backtrack_to(0);
                    self.enqueue(asserting, NO_REASON);
                } else {
                    let ci = self.attach(learnt);
                    self.enqueue(asserting, ci);
                }
                self.var_inc /= 0.95;
                if spent > budget {
                    break 'search SatResult::Unknown;
                }
                if since_restart >= restart_limit {
                    since_restart = 0;
                    restart_limit += restart_limit / 2;
                    self.backtrack_to(0);
                }
            } else {
                // Assumption levels first, then a free decision.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value_of(a) {
                        VALUE_TRUE => {
                            // Already implied: open an empty level so the
                            // level count still tracks assumption depth.
                            self.trail_lim.push(self.trail.len());
                        }
                        VALUE_FALSE => break 'search SatResult::Unsat,
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                        }
                    }
                    continue;
                }
                let next = loop {
                    match self.order.pop(&self.activity) {
                        Some(v) if self.values[v as usize] == VALUE_UNSET => break Some(v),
                        Some(_) => continue,
                        None => break None,
                    }
                };
                match next {
                    Some(v) => {
                        self.trail_lim.push(self.trail.len());
                        let lit =
                            Lit::with_sign(Var::from_index(v as usize), !self.phase[v as usize]);
                        self.enqueue(lit, NO_REASON);
                    }
                    None => {
                        self.model = self.values.clone();
                        break 'search SatResult::Sat;
                    }
                }
            }
        };
        self.backtrack_to(0);
        result
    }

    /// The value of `l` in the last [`SatResult::Sat`] model.
    ///
    /// # Panics
    ///
    /// Panics if no `Sat` answer has been produced yet.
    pub fn model_value(&self, l: Lit) -> bool {
        assert!(!self.model.is_empty(), "no model available");
        (self.model[l.var().index()] == VALUE_TRUE) != l.is_negated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::positive(solver.new_var())).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[v[0], v[1]]));
        assert_eq!(s.solve(&[], 1_000), SatResult::Sat);
        assert!(s.model_value(v[0]) || s.model_value(v[1]));
        assert!(s.add_clause(&[!v[0]]));
        // !v0 implies v1 at top level, so !v1 contradicts outright.
        assert!(!s.add_clause(&[!v[1]]));
        assert!(!s.is_ok());
        assert_eq!(s.solve(&[], 1_000), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert!(!s.is_ok());
        assert_eq!(s.solve(&[], 10), SatResult::Unsat);
    }

    #[test]
    fn assumptions_do_not_pollute_the_database() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[v[0], v[1]]));
        assert_eq!(s.solve(&[!v[0], !v[1]], 1_000), SatResult::Unsat);
        // Still satisfiable without the assumptions, and under others.
        assert_eq!(s.solve(&[], 1_000), SatResult::Sat);
        assert_eq!(s.solve(&[!v[0]], 1_000), SatResult::Sat);
        assert!(s.model_value(v[1]));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j. Classic small UNSAT instance that
        // actually exercises conflict analysis and backjumping.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for pigeon in &p {
            assert!(s.add_clause(pigeon));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    assert!(s.add_clause(&[!a, !b]));
                }
            }
        }
        assert_eq!(s.solve(&[], 100_000), SatResult::Unsat);
        assert!(s.conflicts() > 0);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A pigeonhole big enough to need more than one conflict.
        let mut s = Solver::new();
        let n = 7;
        let p: Vec<Vec<Lit>> = (0..n + 1)
            .map(|_| (0..n).map(|_| Lit::positive(s.new_var())).collect())
            .collect();
        for pigeon in &p {
            assert!(s.add_clause(pigeon));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    assert!(s.add_clause(&[!a, !b]));
                }
            }
        }
        assert_eq!(s.solve(&[], 1), SatResult::Unknown);
        // And with a real budget the verdict lands.
        assert_eq!(s.solve(&[], 10_000_000), SatResult::Unsat);
    }

    #[test]
    fn implied_assumption_still_counts_a_level() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        assert!(s.add_clause(&[!v[0], v[1]])); // v0 -> v1
        assert!(s.add_clause(&[v[0], v[1], v[2]]));
        // v1 is implied by the first assumption before its own level opens.
        assert_eq!(s.solve(&[v[0], v[1]], 1_000), SatResult::Sat);
        assert!(s.model_value(v[0]));
        assert!(s.model_value(v[1]));
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_normalized() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[v[0], v[0], v[1]]));
        assert!(s.add_clause(&[v[0], !v[0]])); // tautology: dropped
        assert_eq!(s.solve(&[!v[0]], 1_000), SatResult::Sat);
        assert!(s.model_value(v[1]));
    }
}
