//! # soi-cec
//!
//! Scale-proof verification for the SOI domino mapping flow: SAT-based
//! combinational equivalence checking (CEC) of mapped circuits against
//! their source networks, and SAT-formulated parasitic-bipolar safety
//! proofs — self-contained, no external solver.
//!
//! The crate stacks four layers:
//!
//! * [`cnf`] + [`solver`] — packed literals and a CDCL SAT solver with
//!   two watched literals, first-UIP clause learning, activity-ordered
//!   decisions, phase saving, restarts, incremental assumption queries,
//!   and conflict budgets (budget exhaustion is a typed
//!   [`SatResult::Unknown`], never a wrong answer);
//! * [`encode`] — Tseitin CNF construction with constant folding and
//!   structural-hash sharing for all eight netlist gate kinds;
//! * [`wordsim`] — 64-lane bit-parallel simulation producing per-node
//!   signatures from guided (walking-one/zero + corner) and seeded
//!   random vectors, with complement-aware canonical signatures;
//! * the checkers — [`check_networks`] sweeps a shared-input miter
//!   (simulation filters candidate-equivalent cones, structural hashing
//!   merges them for free, SAT closes what remains, and every
//!   counterexample is replayed through the scalar simulator before it
//!   is believed), [`lower::circuit_to_network`] turns a mapped
//!   [`DominoCircuit`](soi_domino_ir::DominoCircuit) back into a
//!   network so [`check_mapped`] can compare function against the
//!   source, and [`pbe_sat`] proves junction excitability verdicts that
//!   [`soi_pbe::excite`] can only sample beyond its enumeration limit.
//!
//! Everything is instrumented through [`soi_trace`]: `cec_sat_calls`,
//! `cec_sim_filtered`, `conflicts`, and `cex_replays`.

mod cec;
pub mod cnf;
pub mod encode;
pub mod lower;
pub mod pbe_sat;
pub mod solver;
pub mod wordsim;

pub use cec::{
    check_networks, check_networks_traced, CecError, CecOptions, CecReport, CecVerdict,
    Counterexample,
};
pub use cnf::{Lit, Var};
pub use encode::{Encoder, NetworkLits};
pub use pbe_sat::{
    junction_excitability_sat, verify_safe_sat, verify_safe_sat_traced, PbeSafetyReport,
};
pub use solver::{SatResult, Solver};

use soi_domino_ir::DominoCircuit;
use soi_netlist::Network;
use soi_trace::TraceHandle;

/// Checks a mapped domino circuit against its source network: lowers the
/// circuit to a plain network with [`lower::circuit_to_network`] and runs
/// [`check_networks`] on the pair.
///
/// # Errors
///
/// See [`CecError`]; inequivalence is a verdict, not an error.
pub fn check_mapped(
    network: &Network,
    circuit: &DominoCircuit,
    opts: &CecOptions,
) -> Result<CecReport, CecError> {
    check_mapped_traced(network, circuit, opts, TraceHandle::off())
}

/// [`check_mapped`] with a trace handle.
///
/// # Errors
///
/// See [`CecError`].
pub fn check_mapped_traced(
    network: &Network,
    circuit: &DominoCircuit,
    opts: &CecOptions,
    trace: TraceHandle,
) -> Result<CecReport, CecError> {
    let lowered = lower::circuit_to_network(circuit);
    check_networks_traced(network, &lowered, opts, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_domino_ir::{Pdn, Signal};

    /// Map-free smoke: a hand-built domino circuit for `(a + b) * c`
    /// checks against the network for the same function, and not against
    /// a different one.
    #[test]
    fn check_mapped_smoke() {
        let circuit = DominoCircuit::single_gate(
            vec!["a".into(), "b".into(), "c".into()],
            Pdn::series(vec![
                Pdn::parallel(vec![
                    Pdn::transistor(Signal::input(0)),
                    Pdn::transistor(Signal::input(1)),
                ]),
                Pdn::transistor(Signal::input(2)),
            ]),
        );
        let mut good = Network::new("good");
        let a = good.add_input("a");
        let b = good.add_input("b");
        let c = good.add_input("c");
        let ab = good.or2(a, b);
        let f = good.and2(ab, c);
        good.add_output("f", f);
        let report = check_mapped(&good, &circuit, &CecOptions::default()).unwrap();
        assert!(report.is_equivalent(), "{report:?}");

        let mut bad = Network::new("bad");
        let a = bad.add_input("a");
        let b = bad.add_input("b");
        let c = bad.add_input("c");
        let ab = bad.and2(a, b);
        let f = bad.or2(ab, c);
        bad.add_output("f", f);
        let report = check_mapped(&bad, &circuit, &CecOptions::default()).unwrap();
        assert!(matches!(report.verdict, CecVerdict::NotEquivalent(_)));
    }
}
