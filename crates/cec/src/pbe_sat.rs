//! SAT-formulated PBE-safety checking.
//!
//! [`soi_pbe::excite`] decides junction excitability by enumerating (or
//! sampling) the assignments of a gate's distinct input variables — exact
//! only up to `exact_limit` variables, `Unknown` beyond. This module asks
//! the same two questions as CNF queries, so wide gates get *proofs*
//! instead of samples:
//!
//! * **charge**: is there an admissible assignment connecting the
//!   junction to the dynamic node (TOP) but not to the foot?
//! * **yank**: is there an admissible assignment connecting it to the
//!   foot?
//!
//! A junction is [`Excitable`](Excitability::Excitable) iff both are
//! satisfiable, [`ProvenSafe`](Excitability::ProvenSafe) if either is
//! unsatisfiable, and [`Unknown`](Excitability::Unknown) only when a
//! conflict budget runs out. Connectivity under an assignment is encoded
//! as unrolled reachability from the junction's net: layer `k+1` of net
//! `n` is layer `k` of `n` OR any incident conducting transistor whose
//! far end was reached at layer `k`; `net_count - 1` layers reach a
//! fixpoint. The admissibility encoding mirrors the enumerator's
//! semantics exactly — inputs absent from the gate read as `false`, so a
//! fixed-true absent input empties the assignment space — and every
//! satisfying model is **replayed** through a concrete union-find
//! connectivity check before the witness is believed.

use soi_domino_ir::{DominoCircuit, DominoGate, GateId, JunctionRef, PdnGraph, Phase, Signal};
use soi_pbe::excite::{Excitability, InputConstraints};
use soi_pbe::points;
use soi_trace::{Counter, TraceHandle};

use crate::cnf::Lit;
use crate::encode::Encoder;
use crate::solver::SatResult;

/// What [`verify_safe_sat`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PbeSafetyReport {
    /// Whether every uncovered committed junction is provably
    /// unexcitable under the constraints.
    pub safe: bool,
    /// Uncovered committed junctions examined.
    pub junctions_checked: usize,
    /// Junctions with a replay-confirmed excitation witness pair.
    pub excitable: usize,
    /// Junctions whose proof exhausted the conflict budget (treated as
    /// unsafe, conservatively).
    pub unknown: usize,
    /// The first junction that failed the proof, if any.
    pub first_flagged: Option<(GateId, JunctionRef)>,
    /// SAT queries issued.
    pub sat_calls: u64,
    /// CDCL conflicts across all queries.
    pub conflicts: u64,
    /// Witness models replayed through the concrete connectivity check.
    pub cex_replays: u64,
}

/// The distinct PDN variables, deduplicated exactly as the enumerator
/// does: both phases of a primary input collapse onto one variable, and
/// feeding gate outputs are free variables.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Var {
    Input(usize),
    Gate(GateId),
}

struct SatModel {
    graph: PdnGraph,
    vars: Vec<Var>,
    /// Per transistor: (variable index, negated?).
    terms: Vec<(usize, bool)>,
}

impl SatModel {
    fn new(gate: &DominoGate) -> SatModel {
        let graph = gate.pdn().flatten();
        let mut vars: Vec<Var> = Vec::new();
        let mut terms = Vec::with_capacity(graph.transistors.len());
        for t in &graph.transistors {
            let (var, negated) = match t.signal {
                Signal::Input { index, phase } => (Var::Input(index), phase == Phase::Neg),
                Signal::Gate(g) => (Var::Gate(g), false),
            };
            let idx = match vars.iter().position(|v| *v == var) {
                Some(i) => i,
                None => {
                    vars.push(var);
                    vars.len() - 1
                }
            };
            terms.push((idx, negated));
        }
        SatModel { graph, vars, terms }
    }

    /// Encodes the admissibility constraints over the variable literals,
    /// matching the enumerator: inputs absent from this gate read as
    /// `false`.
    fn assert_constraints(
        &self,
        enc: &mut Encoder,
        var_lits: &[Lit],
        constraints: &InputConstraints,
    ) {
        let lit_of = |input: usize| {
            self.vars
                .iter()
                .position(|v| *v == Var::Input(input))
                .map(|i| var_lits[i])
        };
        for &(input, value) in constraints.fixed() {
            match lit_of(input) {
                Some(l) => {
                    enc.add_clause(&[l.xor_sign(!value)]);
                }
                // An absent input reads false; fixing it true empties
                // the admissible space.
                None if value => {
                    enc.add_clause(&[]);
                }
                None => {}
            }
        }
        for group in constraints.mutex_groups() {
            let present: Vec<Lit> = group.iter().filter_map(|&i| lit_of(i)).collect();
            for (i, &a) in present.iter().enumerate() {
                for &b in &present[i + 1..] {
                    enc.add_clause(&[!a, !b]);
                }
            }
        }
    }

    /// Unrolled reachability from `src` through conducting transistors;
    /// returns the final-layer literal per net.
    fn reachability(&self, enc: &mut Encoder, var_lits: &[Lit], src: usize) -> Vec<Lit> {
        let nets = self.graph.net_count();
        let on: Vec<Lit> = self
            .terms
            .iter()
            .map(|&(var, neg)| var_lits[var].xor_sign(neg))
            .collect();
        let mut reach: Vec<Lit> = (0..nets).map(|n| enc.constant(n == src)).collect();
        for _ in 0..nets.saturating_sub(1) {
            let mut next = Vec::with_capacity(nets);
            for n in 0..nets {
                let mut ways = vec![reach[n]];
                for (t, &on_t) in self.graph.transistors.iter().zip(&on) {
                    let other = if t.upper.index() == n {
                        t.lower.index()
                    } else if t.lower.index() == n {
                        t.upper.index()
                    } else {
                        continue;
                    };
                    ways.push(enc.and(reach[other], on_t));
                }
                next.push(enc.or_all(&ways));
            }
            reach = next;
        }
        reach
    }

    /// Concrete replay of a model: union-find components under the
    /// assignment, exactly as the enumerator computes them.
    fn components(&self, bits: &[bool]) -> Vec<usize> {
        let nets = self.graph.net_count();
        let mut parent: Vec<usize> = (0..nets).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for (t, &(var, neg)) in self.graph.transistors.iter().zip(&self.terms) {
            if bits[var] != neg {
                let a = find(&mut parent, t.upper.index());
                let b = find(&mut parent, t.lower.index());
                parent[a.max(b)] = a.min(b);
            }
        }
        (0..nets).map(|n| find(&mut parent, n)).collect()
    }

    fn admissible(&self, constraints: &InputConstraints, bits: &[bool]) -> bool {
        constraints.admits(&|input| {
            self.vars
                .iter()
                .position(|v| *v == Var::Input(input))
                .is_some_and(|i| bits[i])
        })
    }
}

struct Stats {
    sat_calls: u64,
    conflicts: u64,
    cex_replays: u64,
}

/// Everything both excitability queries of one junction share: the
/// encoded gate, its replay model, and the running counters.
struct QueryCtx<'a> {
    enc: &'a mut Encoder,
    model: &'a SatModel,
    var_lits: &'a [Lit],
    constraints: &'a InputConstraints,
    stats: &'a mut Stats,
}

/// One excitability query (charge or yank) with model replay. Returns
/// `Some(true)` for a replay-confirmed witness, `Some(false)` for a
/// proof of absence, `None` for budget exhaustion *or* a witness that
/// failed replay (both conservatively `Unknown`).
fn query(
    ctx: &mut QueryCtx<'_>,
    assumptions: &[Lit],
    budget: u64,
    confirm: impl Fn(&[usize]) -> bool,
) -> Option<bool> {
    ctx.stats.sat_calls += 1;
    let before = ctx.enc.conflicts();
    let result = ctx.enc.solve(assumptions, budget);
    ctx.stats.conflicts += ctx.enc.conflicts() - before;
    match result {
        SatResult::Unsat => Some(false),
        SatResult::Unknown => None,
        SatResult::Sat => {
            ctx.stats.cex_replays += 1;
            let bits: Vec<bool> = ctx
                .var_lits
                .iter()
                .map(|&l| ctx.enc.model_value(l))
                .collect();
            if ctx.model.admissible(ctx.constraints, &bits) && confirm(&ctx.model.components(&bits))
            {
                Some(true)
            } else {
                // The model must replay; an encoding inconsistency is
                // never trusted as a witness.
                None
            }
        }
    }
}

/// Decides whether a junction of a gate is excitable under the
/// constraints, by SAT. Agrees with
/// [`soi_pbe::excite::junction_excitability`] wherever the latter is
/// exact, and returns proofs where it can only sample — `Unknown` here
/// means a conflict budget ran out, not that the space was too large.
///
/// # Panics
///
/// Panics if the junction does not exist in the gate's PDN.
pub fn junction_excitability_sat(
    gate: &DominoGate,
    junction: &JunctionRef,
    constraints: &InputConstraints,
    budget: u64,
) -> Excitability {
    let mut stats = Stats {
        sat_calls: 0,
        conflicts: 0,
        cex_replays: 0,
    };
    excitability_with_stats(gate, junction, constraints, budget, &mut stats)
}

fn excitability_with_stats(
    gate: &DominoGate,
    junction: &JunctionRef,
    constraints: &InputConstraints,
    budget: u64,
    stats: &mut Stats,
) -> Excitability {
    let model = SatModel::new(gate);
    let net = model
        .graph
        .junction_net(junction)
        .expect("junction exists in this PDN");

    let mut enc = Encoder::new();
    let var_lits: Vec<Lit> = (0..model.vars.len()).map(|_| enc.fresh()).collect();
    model.assert_constraints(&mut enc, &var_lits, constraints);
    let reach = model.reachability(&mut enc, &var_lits, net.index());
    let at_top = reach[PdnGraph::TOP.index()];
    let at_foot = reach[PdnGraph::FOOT.index()];

    let top = PdnGraph::TOP.index();
    let foot = PdnGraph::FOOT.index();
    let src = net.index();
    let mut ctx = QueryCtx {
        enc: &mut enc,
        model: &model,
        var_lits: &var_lits,
        constraints,
        stats,
    };
    let can_charge = query(&mut ctx, &[at_top, !at_foot], budget, |comp| {
        comp[src] == comp[top] && comp[src] != comp[foot]
    });
    // The charge proof alone settles safety; skip the yank query then.
    if can_charge == Some(false) {
        return Excitability::ProvenSafe;
    }
    let can_yank = query(&mut ctx, &[at_foot], budget, |comp| comp[src] == comp[foot]);
    match (can_charge, can_yank) {
        (Some(true), Some(true)) => Excitability::Excitable,
        (_, Some(false)) => Excitability::ProvenSafe,
        _ => Excitability::Unknown,
    }
}

/// Checks that every committed junction *not* covered by a discharge
/// transistor is provably unexcitable under the constraints — the SAT
/// counterpart of [`soi_pbe::excite::verify_safe`], with per-junction
/// proofs instead of enumeration and a report instead of a bare `bool`.
pub fn verify_safe_sat(
    circuit: &DominoCircuit,
    constraints: &InputConstraints,
    budget: u64,
) -> PbeSafetyReport {
    verify_safe_sat_traced(circuit, constraints, budget, TraceHandle::off())
}

/// [`verify_safe_sat`] with instrumentation: reports `cec_sat_calls`,
/// `conflicts`, and `cex_replays` counters.
pub fn verify_safe_sat_traced(
    circuit: &DominoCircuit,
    constraints: &InputConstraints,
    budget: u64,
    trace: TraceHandle,
) -> PbeSafetyReport {
    let mut stats = Stats {
        sat_calls: 0,
        conflicts: 0,
        cex_replays: 0,
    };
    let mut report = PbeSafetyReport {
        safe: true,
        junctions_checked: 0,
        excitable: 0,
        unknown: 0,
        first_flagged: None,
        sat_calls: 0,
        conflicts: 0,
        cex_replays: 0,
    };
    for (id, gate) in circuit.iter() {
        let analysis = points::analyze(gate.pdn());
        for junction in analysis.committed {
            if gate.discharge().contains(&junction) {
                continue;
            }
            report.junctions_checked += 1;
            let verdict = excitability_with_stats(gate, &junction, constraints, budget, &mut stats);
            if verdict != Excitability::ProvenSafe {
                report.safe = false;
                match verdict {
                    Excitability::Excitable => report.excitable += 1,
                    Excitability::Unknown => report.unknown += 1,
                    Excitability::ProvenSafe => unreachable!(),
                }
                if report.first_flagged.is_none() {
                    report.first_flagged = Some((id, junction));
                }
            }
        }
    }
    report.sat_calls = stats.sat_calls;
    report.conflicts = stats.conflicts;
    report.cex_replays = stats.cex_replays;
    trace.count(Counter::CecSatCalls, report.sat_calls);
    trace.count(Counter::Conflicts, report.conflicts);
    trace.count(Counter::CexReplays, report.cex_replays);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_domino_ir::Pdn;
    use soi_pbe::excite::{junction_excitability, ExciteConfig};
    use soi_pbe::postprocess;

    fn t(i: usize) -> Pdn {
        Pdn::transistor(Signal::input(i))
    }

    const BUDGET: u64 = 100_000;

    /// `(A+B)*C` stack-on-top: the committed junction is excitable in
    /// the worst case (hold A, fire C).
    #[test]
    fn unconstrained_committed_point_is_excitable() {
        let gate = DominoGate::footed(Pdn::series(vec![Pdn::parallel(vec![t(0), t(1)]), t(2)]));
        let verdict = junction_excitability_sat(
            &gate,
            &JunctionRef::new(vec![], 0),
            &InputConstraints::none(),
            BUDGET,
        );
        assert_eq!(verdict, Excitability::Excitable);
    }

    /// Two mutex signals in series guard the junction below them: the
    /// charge condition is unsatisfiable.
    #[test]
    fn mutex_series_guard_is_proven_safe() {
        let gate = DominoGate::footed(Pdn::series(vec![
            t(0),
            t(1),
            Pdn::parallel(vec![t(2), t(3)]),
            t(4),
        ]));
        let constraints = InputConstraints::none().with_mutex(vec![0, 1]);
        let j = JunctionRef::new(vec![], 2);
        assert_eq!(
            junction_excitability_sat(&gate, &j, &constraints, BUDGET),
            Excitability::ProvenSafe
        );
        assert_eq!(
            junction_excitability_sat(&gate, &j, &InputConstraints::none(), BUDGET),
            Excitability::Excitable
        );
    }

    /// Fixed inputs: a present one asserts a unit clause; an absent one
    /// fixed *true* empties the space (absent inputs read false).
    #[test]
    fn fixed_inputs_match_enumeration_semantics() {
        let gate = DominoGate::footed(Pdn::series(vec![
            t(0),
            Pdn::parallel(vec![t(1), t(2)]),
            t(3),
        ]));
        let j = JunctionRef::new(vec![], 0);
        let low = InputConstraints::none().with_fixed(0, false);
        assert_eq!(
            junction_excitability_sat(&gate, &j, &low, BUDGET),
            Excitability::ProvenSafe
        );
        // Input 9 does not appear in the gate; tying it high forbids
        // every assignment, and the enumerator agrees.
        let absent = InputConstraints::none().with_fixed(9, true);
        assert_eq!(
            junction_excitability_sat(&gate, &j, &absent, BUDGET),
            Excitability::ProvenSafe
        );
        assert_eq!(
            junction_excitability(&gate, &j, &absent, &ExciteConfig::default()),
            Excitability::ProvenSafe
        );
    }

    /// Every junction of a spread of gates: the SAT verdict equals the
    /// enumerator's exact verdict, across constraint shapes.
    #[test]
    fn agrees_with_exact_enumeration() {
        let gates = [
            DominoGate::footed(Pdn::series(vec![Pdn::parallel(vec![t(0), t(1)]), t(2)])),
            DominoGate::footed(Pdn::series(vec![
                t(0),
                t(1),
                Pdn::parallel(vec![t(2), t(3)]),
                t(4),
            ])),
            DominoGate::footed(Pdn::parallel(vec![
                Pdn::series(vec![t(0), t(1), t(2)]),
                Pdn::series(vec![t(3), Pdn::parallel(vec![t(4), t(5)])]),
            ])),
            DominoGate::footed(Pdn::series(vec![
                Pdn::parallel(vec![Pdn::series(vec![t(0), t(1)]), t(2)]),
                Pdn::parallel(vec![t(3), t(4)]),
            ])),
            // Gate-output signals and negative phases.
            DominoGate::footed(Pdn::series(vec![
                Pdn::transistor(Signal::Gate(GateId::from_index(0))),
                Pdn::parallel(vec![t(1), Pdn::transistor(Signal::input_neg(2))]),
                t(0),
            ])),
        ];
        let constraint_sets = [
            InputConstraints::none(),
            InputConstraints::none().with_mutex(vec![0, 1]),
            InputConstraints::none().with_mutex(vec![1, 2, 3]),
            InputConstraints::none().with_fixed(0, false),
            InputConstraints::none()
                .with_fixed(1, true)
                .with_mutex(vec![2, 3]),
        ];
        let config = ExciteConfig::default();
        for (g, gate) in gates.iter().enumerate() {
            let graph = gate.pdn().flatten();
            for (c, constraints) in constraint_sets.iter().enumerate() {
                for (junction, _) in graph.junctions() {
                    let exact = junction_excitability(gate, junction, constraints, &config);
                    let sat = junction_excitability_sat(gate, junction, constraints, BUDGET);
                    assert_eq!(sat, exact, "gate {g} constraints {c} junction {junction:?}");
                }
            }
        }
    }

    /// The budget caps *conflicts*: a starved run may still answer when
    /// the search never conflicts, but it must never contradict the
    /// exact verdict.
    #[test]
    fn zero_budget_never_claims_wrongly() {
        let gate = DominoGate::footed(Pdn::series(vec![Pdn::parallel(vec![t(0), t(1)]), t(2)]));
        let verdict = junction_excitability_sat(
            &gate,
            &JunctionRef::new(vec![], 0),
            &InputConstraints::none(),
            0,
        );
        // Exact verdict is Excitable; starvation may only weaken it.
        assert!(matches!(
            verdict,
            Excitability::Excitable | Excitability::Unknown
        ));
    }

    /// End to end on a circuit: covered junctions are skipped; pruning
    /// under constraints stays provably safe under those constraints and
    /// provably unsafe without them.
    #[test]
    fn verify_safe_sat_mirrors_enumeration() {
        let mut c = DominoCircuit::single_gate(
            (0..5).map(|i| format!("i{i}")).collect(),
            Pdn::series(vec![t(0), t(1), Pdn::parallel(vec![t(2), t(3)]), t(4)]),
        );
        postprocess::insert_discharge(&mut c);
        let covered = verify_safe_sat(&c, &InputConstraints::none(), BUDGET);
        assert!(covered.safe);
        assert_eq!(covered.junctions_checked, 0);

        let constraints = InputConstraints::none().with_mutex(vec![0, 1]);
        let removed =
            soi_pbe::excite::prune_discharge(&mut c, &constraints, &ExciteConfig::default());
        assert!(removed > 0);
        let pruned = verify_safe_sat(&c, &constraints, BUDGET);
        assert!(pruned.safe, "{pruned:?}");
        assert!(pruned.junctions_checked > 0);
        assert!(pruned.sat_calls > 0);

        let unconstrained = verify_safe_sat(&c, &InputConstraints::none(), BUDGET);
        assert!(!unconstrained.safe);
        assert!(unconstrained.excitable > 0);
        assert!(unconstrained.first_flagged.is_some());
        assert!(unconstrained.cex_replays > 0);
    }

    #[test]
    fn traced_verify_reports_counters() {
        let (rec, trace) = soi_trace::Recorder::install();
        let mut c = DominoCircuit::single_gate(
            (0..5).map(|i| format!("i{i}")).collect(),
            Pdn::series(vec![t(0), t(1), Pdn::parallel(vec![t(2), t(3)]), t(4)]),
        );
        postprocess::insert_discharge(&mut c);
        let constraints = InputConstraints::none().with_mutex(vec![0, 1]);
        soi_pbe::excite::prune_discharge(&mut c, &constraints, &ExciteConfig::default());
        let report = verify_safe_sat_traced(&c, &constraints, BUDGET, trace);
        assert_eq!(rec.counter(Counter::CecSatCalls), report.sat_calls);
        assert_eq!(rec.counter(Counter::Conflicts), report.conflicts);
        assert_eq!(rec.counter(Counter::CexReplays), report.cex_replays);
    }
}
