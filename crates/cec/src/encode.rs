//! Tseitin CNF encoding with structural-hash sharing.
//!
//! [`Encoder`] owns a [`Solver`] and hands out literals for logic built
//! over them. Every gate constructor constant-folds (`a·a = a`,
//! `a·!a = 0`, constant operands) and then consults a structural-hash
//! table, so re-encoding the same gate over the same operand literals
//! returns the *same* literal instead of fresh clauses — the `DagCnf`
//! idiom. Inverters and buffers are free: negation is a literal sign, not
//! a variable.
//!
//! All eight [`Network`](soi_netlist::Network) gate kinds reduce to two
//! hashed primitives: `AND` (with `OR`/`NAND`/`NOR` via De Morgan signs)
//! and `XOR` (with `XNOR` via the output sign; operand signs are peeled
//! off into the output sign first, so `a ⊕ !b` and `!(a ⊕ b)` share one
//! table entry).

use soi_netlist::fx::FxHashMap;
use soi_netlist::{Network, NetworkError, Node, UnOp};

use crate::cnf::{Lit, Var};
use crate::solver::{SatResult, Solver};

/// First cone-size cap tried by [`Encoder::solve_cone`]. Small enough
/// that a sweep's typical just-below-the-top refutation costs hundreds
/// of variables, large enough that most queries never deepen.
const CONE_INITIAL_LIMIT: usize = 64;

/// Cap multiplier between [`Encoder::solve_cone`] refinement rounds.
const CONE_GROWTH: usize = 16;

/// The Tseitin definition of a derived variable, recorded so
/// [`Encoder::solve_cone`] can rebuild exactly the clauses of a query's
/// transitive fanin cone in a fresh local solver.
#[derive(Debug, Clone, Copy)]
enum GateDef {
    /// `v <-> a AND b`.
    And(Lit, Lit),
    /// `v <-> a XOR b` over positive operand literals.
    Xor(Lit, Lit),
}

/// The per-node literals produced by [`Encoder::encode_network`].
#[derive(Debug, Clone)]
pub struct NetworkLits {
    /// One literal per network node, indexed by `NodeId::index()`.
    pub nodes: Vec<Lit>,
    /// One literal per primary output, in port order.
    pub outputs: Vec<Lit>,
}

/// A CNF builder over an owned [`Solver`].
#[derive(Debug)]
pub struct Encoder {
    solver: Solver,
    /// `(a, b) -> a AND b` with `a <= b` by literal code.
    strash_and: FxHashMap<(u32, u32), Lit>,
    /// `(a, b) -> a XOR b` over positive literals with `a < b`.
    strash_xor: FxHashMap<(u32, u32), Lit>,
    /// Per-variable gate definition, indexed by `Var::index()`. `None`
    /// for free variables (primary inputs) and the constant-true var.
    defs: Vec<Option<GateDef>>,
    /// Conflicts spent in cone-local queries (the owned solver counts
    /// its own separately).
    cone_conflicts: u64,
    /// Global-variable values from the last satisfying cone query,
    /// keyed by `Var::index()`. Variables outside the cone are absent
    /// (and read as `false`, which is sound: they are not in the
    /// query's fanin).
    cone_model: FxHashMap<u32, bool>,
    lit_true: Lit,
}

impl Default for Encoder {
    fn default() -> Encoder {
        Encoder::new()
    }
}

impl Encoder {
    /// Creates an encoder with the constant-true literal pre-asserted.
    pub fn new() -> Encoder {
        let mut solver = Solver::new();
        let lit_true = Lit::positive(solver.new_var());
        solver.add_clause(&[lit_true]);
        Encoder {
            solver,
            strash_and: FxHashMap::default(),
            strash_xor: FxHashMap::default(),
            defs: vec![None],
            cone_conflicts: 0,
            cone_model: FxHashMap::default(),
            lit_true,
        }
    }

    /// The constant-true literal.
    pub fn lit_true(&self) -> Lit {
        self.lit_true
    }

    /// The constant-false literal.
    pub fn lit_false(&self) -> Lit {
        !self.lit_true
    }

    /// The literal for a boolean constant.
    pub fn constant(&self, value: bool) -> Lit {
        if value {
            self.lit_true
        } else {
            !self.lit_true
        }
    }

    /// A fresh unconstrained literal (a primary input).
    pub fn fresh(&mut self) -> Lit {
        self.defs.push(None);
        Lit::positive(self.solver.new_var())
    }

    /// Adds a raw clause.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.solver.add_clause(lits)
    }

    /// `a AND b`, folded and hashed.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.lit_true {
            return b;
        }
        if b == self.lit_true {
            return a;
        }
        if a == !self.lit_true || b == !self.lit_true || a == !b {
            return !self.lit_true;
        }
        if a == b {
            return a;
        }
        let key = if a.code() <= b.code() {
            (a.code() as u32, b.code() as u32)
        } else {
            (b.code() as u32, a.code() as u32)
        };
        if let Some(&t) = self.strash_and.get(&key) {
            return t;
        }
        let t = self.fresh();
        self.solver.add_clause(&[!t, a]);
        self.solver.add_clause(&[!t, b]);
        self.solver.add_clause(&[t, !a, !b]);
        self.defs[t.var().index()] = Some(GateDef::And(a, b));
        self.strash_and.insert(key, t);
        t
    }

    /// `a OR b` (as `!(!a AND !b)`).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// `NOT (a AND b)`.
    pub fn nand(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(a, b)
    }

    /// `NOT (a OR b)`.
    pub fn nor(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(!a, !b)
    }

    /// `a XOR b`, folded and hashed with the operand signs peeled into
    /// the output sign.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == self.lit_true {
            return !b;
        }
        if a == !self.lit_true {
            return b;
        }
        if b == self.lit_true {
            return !a;
        }
        if b == !self.lit_true {
            return a;
        }
        if a == b {
            return !self.lit_true;
        }
        if a == !b {
            return self.lit_true;
        }
        let sign = a.is_negated() ^ b.is_negated();
        let (pa, pb) = (Lit::positive(a.var()), Lit::positive(b.var()));
        let key = if pa.code() <= pb.code() {
            (pa.code() as u32, pb.code() as u32)
        } else {
            (pb.code() as u32, pa.code() as u32)
        };
        let t = match self.strash_xor.get(&key) {
            Some(&t) => t,
            None => {
                let t = self.fresh();
                self.solver.add_clause(&[!t, pa, pb]);
                self.solver.add_clause(&[!t, !pa, !pb]);
                self.solver.add_clause(&[t, !pa, pb]);
                self.solver.add_clause(&[t, pa, !pb]);
                self.defs[t.var().index()] = Some(GateDef::Xor(pa, pb));
                self.strash_xor.insert(key, t);
                t
            }
        };
        t.xor_sign(sign)
    }

    /// `NOT (a XOR b)`.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Balanced AND over a non-empty literal slice.
    pub fn and_all(&mut self, lits: &[Lit]) -> Lit {
        assert!(!lits.is_empty(), "and_all over an empty slice");
        let mut level = lits.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 {
                    self.and(pair[0], pair[1])
                } else {
                    pair[0]
                });
            }
            level = next;
        }
        level[0]
    }

    /// Balanced OR over a non-empty literal slice.
    pub fn or_all(&mut self, lits: &[Lit]) -> Lit {
        assert!(!lits.is_empty(), "or_all over an empty slice");
        let inverted: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        !self.and_all(&inverted)
    }

    /// Encodes a whole network: allocates the input literals from
    /// `inputs` (positionally) and Tseitin-encodes every gate.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InputArity`] if `inputs` does not match
    /// the network's primary-input count.
    pub fn encode_network(
        &mut self,
        network: &Network,
        inputs: &[Lit],
    ) -> Result<NetworkLits, NetworkError> {
        if inputs.len() != network.inputs().len() {
            return Err(NetworkError::InputArity {
                expected: network.inputs().len(),
                got: inputs.len(),
            });
        }
        let mut nodes: Vec<Lit> = Vec::with_capacity(network.len());
        let mut next_input = 0;
        for (_, node) in network.iter() {
            let lit = match node {
                Node::Input { .. } => {
                    let l = inputs[next_input];
                    next_input += 1;
                    l
                }
                Node::Const { value } => self.constant(*value),
                Node::Unary { op, a } => {
                    let la = nodes[a.index()];
                    match op {
                        UnOp::Inv => !la,
                        UnOp::Buf => la,
                    }
                }
                Node::Binary { op, a, b } => {
                    let (la, lb) = (nodes[a.index()], nodes[b.index()]);
                    self.binary(*op, la, lb)
                }
            };
            nodes.push(lit);
        }
        let outputs = network
            .outputs()
            .iter()
            .map(|p| nodes[p.driver.index()])
            .collect();
        Ok(NetworkLits { nodes, outputs })
    }

    /// Encodes one [`BinOp`](soi_netlist::BinOp) over operand literals.
    pub fn binary(&mut self, op: soi_netlist::BinOp, a: Lit, b: Lit) -> Lit {
        use soi_netlist::BinOp;
        match op {
            BinOp::And => self.and(a, b),
            BinOp::Or => self.or(a, b),
            BinOp::Nand => self.nand(a, b),
            BinOp::Nor => self.nor(a, b),
            BinOp::Xor => self.xor(a, b),
            BinOp::Xnor => self.xnor(a, b),
        }
    }

    /// Solves under assumptions with a conflict budget.
    pub fn solve(&mut self, assumptions: &[Lit], budget: u64) -> SatResult {
        self.solver.solve(assumptions, budget)
    }

    /// Solves under assumptions in a *fresh* solver containing only the
    /// clauses of the assumptions' transitive fanin cone.
    ///
    /// On a shared miter over two large networks the global CNF holds
    /// millions of variables, and every query pays for all of them: a
    /// `Sat` answer needs a total assignment, and even refutations
    /// wander through unrelated variables before VSIDS finds the cone.
    /// Rebuilding just the cone (the fraiging idiom) bounds each query
    /// by its own fanin instead of the whole formula.
    ///
    /// The cone itself is built to a size cap and *cut*: variables past
    /// the cap stay free inputs. An `Unsat` answer from a cut cone is
    /// still a valid proof (freeing variables only adds behaviours), and
    /// after a sweep has substituted shared literals the two sides of a
    /// miter usually reconverge just below the top, so small cones close
    /// most queries. A `Sat` answer from a cut cone may be spurious, so
    /// the query re-runs with a deeper cap until the cone is complete —
    /// only genuinely satisfiable or near-inequivalent queries pay for
    /// their full fanin. Satisfying models are read back through
    /// [`Encoder::cone_model_value`], with out-of-cone variables
    /// defaulting to `false` (sound, since they cannot affect the
    /// query).
    pub fn solve_cone(&mut self, assumptions: &[Lit], budget: u64) -> SatResult {
        let mut limit = CONE_INITIAL_LIMIT;
        loop {
            let (result, cut) = self.solve_cone_limited(assumptions, budget, limit);
            if result == SatResult::Sat && cut {
                limit *= CONE_GROWTH;
                continue;
            }
            return result;
        }
    }

    /// One [`Encoder::solve_cone`] attempt with at most `limit` cone
    /// variables; the second return is whether the cone was cut short.
    fn solve_cone_limited(
        &mut self,
        assumptions: &[Lit],
        budget: u64,
        limit: usize,
    ) -> (SatResult, bool) {
        let mut local = Solver::new();
        // Global `Var::index()` -> local var, doubling as the DFS
        // visited set; `work` holds mapped vars whose definitions are
        // still to be emitted.
        let mut map: FxHashMap<u32, Var> = FxHashMap::default();
        let mut work: Vec<u32> = Vec::new();
        let mut cut = false;
        fn local_lit(
            map: &mut FxHashMap<u32, Var>,
            work: &mut Vec<u32>,
            local: &mut Solver,
            l: Lit,
        ) -> Lit {
            let gv = l.var().index() as u32;
            let lv = *map.entry(gv).or_insert_with(|| {
                work.push(gv);
                local.new_var()
            });
            Lit::with_sign(lv, l.is_negated())
        }
        let assumps: Vec<Lit> = assumptions
            .iter()
            .map(|&l| local_lit(&mut map, &mut work, &mut local, l))
            .collect();
        // Breadth-first, so a cut cone is a balanced window around the
        // assumptions rather than one depth-first path to the inputs —
        // reconvergence onto shared literals sits a few levels down, not
        // along a single branch.
        let mut head = 0;
        while head < work.len() {
            let gv = work[head];
            head += 1;
            if gv == self.lit_true.var().index() as u32 {
                // The constant-true var must keep its level-0 value even
                // past the cap — pinning it is one unit clause.
                let t = local_lit(&mut map, &mut work, &mut local, self.lit_true);
                local.add_clause(&[t]);
                continue;
            }
            if map.len() >= limit {
                // Past the cap: leave the variable a free input.
                cut |= self.defs[gv as usize].is_some();
                continue;
            }
            match self.defs[gv as usize] {
                Some(GateDef::And(a, b)) => {
                    let t = Lit::positive(Var::from_index(gv as usize));
                    let t = local_lit(&mut map, &mut work, &mut local, t);
                    let la = local_lit(&mut map, &mut work, &mut local, a);
                    let lb = local_lit(&mut map, &mut work, &mut local, b);
                    local.add_clause(&[!t, la]);
                    local.add_clause(&[!t, lb]);
                    local.add_clause(&[t, !la, !lb]);
                }
                Some(GateDef::Xor(a, b)) => {
                    let t = Lit::positive(Var::from_index(gv as usize));
                    let t = local_lit(&mut map, &mut work, &mut local, t);
                    let la = local_lit(&mut map, &mut work, &mut local, a);
                    let lb = local_lit(&mut map, &mut work, &mut local, b);
                    local.add_clause(&[!t, la, lb]);
                    local.add_clause(&[!t, !la, !lb]);
                    local.add_clause(&[t, !la, lb]);
                    local.add_clause(&[t, la, !lb]);
                }
                None => {}
            }
        }
        let result = local.solve(&assumps, budget);
        self.cone_conflicts += local.conflicts();
        if result == SatResult::Sat && !cut {
            self.cone_model.clear();
            for (&gv, &lv) in &map {
                self.cone_model
                    .insert(gv, local.model_value(Lit::positive(lv)));
            }
        }
        (result, cut)
    }

    /// The value of `l` in the last satisfying model.
    pub fn model_value(&self, l: Lit) -> bool {
        self.solver.model_value(l)
    }

    /// The value of `l` in the last satisfying [`Encoder::solve_cone`]
    /// model; variables outside that query's cone read as `false`.
    pub fn cone_model_value(&self, l: Lit) -> bool {
        let v = self
            .cone_model
            .get(&(l.var().index() as u32))
            .copied()
            .unwrap_or(false);
        v ^ l.is_negated()
    }

    /// Total CDCL conflicts spent so far, across the owned solver and
    /// all cone-local queries.
    pub fn conflicts(&self) -> u64 {
        self.solver.conflicts() + self.cone_conflicts
    }

    /// Number of solver variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_netlist::BinOp;

    #[test]
    fn gate_truth_tables_via_sat() {
        for op in BinOp::ALL {
            for a in [false, true] {
                for b in [false, true] {
                    let mut enc = Encoder::new();
                    let la = enc.fresh();
                    let lb = enc.fresh();
                    let out = enc.binary(op, la, lb);
                    let assume = [
                        la.xor_sign(!a),
                        lb.xor_sign(!b),
                        out.xor_sign(!op.eval(a, b)),
                    ];
                    assert_eq!(
                        enc.solve(&assume, 1_000),
                        SatResult::Sat,
                        "{op} {a} {b} should be consistent"
                    );
                    let assume = [
                        la.xor_sign(!a),
                        lb.xor_sign(!b),
                        out.xor_sign(op.eval(a, b)),
                    ];
                    assert_eq!(
                        enc.solve(&assume, 1_000),
                        SatResult::Unsat,
                        "{op} {a} {b} wrong output must be impossible"
                    );
                }
            }
        }
    }

    #[test]
    fn strash_shares_structure() {
        let mut enc = Encoder::new();
        let a = enc.fresh();
        let b = enc.fresh();
        let t1 = enc.and(a, b);
        let t2 = enc.and(b, a);
        assert_eq!(t1, t2, "commuted AND shares the entry");
        let o1 = enc.or(a, b);
        let o2 = enc.nor(a, b);
        assert_eq!(o1, !o2, "OR and NOR share the De Morgan AND");
        let x1 = enc.xor(a, b);
        let x2 = enc.xor(!a, b);
        assert_eq!(x1, !x2, "operand sign peels into the output sign");
        let x3 = enc.xnor(b, a);
        assert_eq!(x3, !x1);
    }

    #[test]
    fn constant_folding() {
        let mut enc = Encoder::new();
        let a = enc.fresh();
        let t = enc.lit_true();
        assert_eq!(enc.and(a, t), a);
        assert_eq!(enc.and(a, !t), !t);
        assert_eq!(enc.and(a, a), a);
        assert_eq!(enc.and(a, !a), !t);
        assert_eq!(enc.xor(a, a), !t);
        assert_eq!(enc.xor(a, !a), t);
        assert_eq!(enc.xor(a, t), !a);
        assert_eq!(enc.constant(true), t);
        assert_eq!(enc.constant(false), !t);
    }

    #[test]
    fn encode_network_matches_simulation() {
        let mut n = Network::new("mix");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let x = n.xor2(a, b);
        let y = n.nand2(x, c);
        let z = n.nor2(y, a);
        let w = n.inv(z);
        n.add_output("w", w);
        n.add_output("x", x);

        let mut enc = Encoder::new();
        let inputs: Vec<Lit> = (0..3).map(|_| enc.fresh()).collect();
        let lits = enc.encode_network(&n, &inputs).unwrap();
        for bits in 0..8u32 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = n.simulate(&vals).unwrap();
            let assume: Vec<Lit> = inputs
                .iter()
                .zip(&vals)
                .map(|(&l, &v)| l.xor_sign(!v))
                .collect();
            assert_eq!(enc.solve(&assume, 10_000), SatResult::Sat);
            for (o, &lit) in lits.outputs.iter().enumerate() {
                assert_eq!(enc.model_value(lit), expect[o], "bits {bits} output {o}");
            }
        }
    }

    #[test]
    fn cone_solving_matches_global_solving() {
        let mut n = Network::new("mix");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let x = n.xor2(a, b);
        let y = n.nand2(x, c);
        let z = n.nor2(y, a);
        n.add_output("z", z);

        let mut enc = Encoder::new();
        let inputs: Vec<Lit> = (0..3).map(|_| enc.fresh()).collect();
        let lits = enc.encode_network(&n, &inputs).unwrap();
        // An unrelated constrained island the cone must not drag in.
        let u = enc.fresh();
        let v = enc.fresh();
        let w = enc.and(u, v);
        enc.add_clause(&[w]);

        for bits in 0..8u32 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = n.simulate(&vals).unwrap();
            let mut assume: Vec<Lit> = inputs
                .iter()
                .zip(&vals)
                .map(|(&l, &v)| l.xor_sign(!v))
                .collect();
            assume.push(lits.outputs[0].xor_sign(!expect[0]));
            assert_eq!(enc.solve_cone(&assume, 10_000), SatResult::Sat);
            for (i, (&l, &v)) in inputs.iter().zip(&vals).enumerate() {
                assert_eq!(enc.cone_model_value(l), v, "bits {bits} input {i}");
            }
            // Out-of-cone variables read as false.
            assert!(!enc.cone_model_value(w));
            assume.pop();
            assume.push(lits.outputs[0].xor_sign(expect[0]));
            assert_eq!(enc.solve_cone(&assume, 10_000), SatResult::Unsat);
        }
    }

    #[test]
    fn cone_solving_pins_the_constant() {
        let mut enc = Encoder::new();
        let t = enc.lit_true();
        assert_eq!(enc.solve_cone(&[t], 100), SatResult::Sat);
        assert!(enc.cone_model_value(t));
        assert_eq!(enc.solve_cone(&[!t], 100), SatResult::Unsat);
    }

    #[test]
    fn encode_network_rejects_arity_mismatch() {
        let mut n = Network::new("one");
        let a = n.add_input("a");
        n.add_output("o", a);
        let mut enc = Encoder::new();
        assert!(matches!(
            enc.encode_network(&n, &[]),
            Err(NetworkError::InputArity { .. })
        ));
    }
}
