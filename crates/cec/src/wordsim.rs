//! 64-lane bit-parallel word simulation with per-node signatures.
//!
//! The netlist crate's [`SimBatch`] evaluates a network and reports
//! *output* words; equivalence sweeping needs the word value of **every
//! node** so that internal nodes of two networks can be paired by
//! signature before any SAT effort is spent. This module reuses
//! `SimBatch`'s semantics (same lane convention, same word operators via
//! [`eval_word`](soi_netlist::BinOp::eval_word)) and adds:
//!
//! * [`node_signatures`] — node-major signature vectors over a batch
//!   sequence,
//! * [`batches`] — the guided + random vector schedule: walking-one and
//!   walking-zero patterns (which include the all-zeros and all-ones
//!   corners as lane 0) followed by seeded random batches,
//! * [`lane_assignment`] — extracting the scalar input vector a given
//!   lane holds, for counterexample replay through
//!   [`Network::simulate`].
//!
//! The differential oracle in `tests/cec_oracle.rs` checks every lane of
//! every signature against scalar simulation.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use soi_netlist::sim::SimBatch;
use soi_netlist::{Network, NetworkError, Node};

/// The guided + random batch schedule for `inputs` primary inputs.
///
/// Guided batches come first: walking-one over a zero background (lane 0
/// is the all-zeros corner, lane `k` raises input `base + k - 1`) and
/// walking-zero over a ones background (lane 0 is the all-ones corner),
/// enough of each to walk every input once. `rounds` seeded random
/// batches follow.
pub fn batches(inputs: usize, rounds: usize, seed: u64) -> Vec<SimBatch> {
    let mut out = Vec::new();
    let walks = (inputs + 1).div_ceil(63).max(1);
    for invert in [false, true] {
        for w in 0..walks {
            let base = w * 63;
            let words = (0..inputs)
                .map(|i| {
                    // Lane k (k >= 1) flips input `base + k - 1`; lane 0
                    // is the unperturbed background.
                    let flip = if i >= base && i < base + 63 {
                        1u64 << (i - base + 1)
                    } else {
                        0
                    };
                    if invert {
                        !flip
                    } else {
                        flip
                    }
                })
                .collect();
            out.push(SimBatch::new(words));
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..rounds {
        out.push(SimBatch::random(inputs, &mut rng));
    }
    out
}

/// Evaluates the network on every batch and returns the node-major
/// signature array: node `n`'s word for batch `r` is
/// `sigs[n * batches.len() + r]`.
///
/// # Errors
///
/// Returns [`NetworkError::InputArity`] if any batch width does not match
/// the network's primary-input count.
pub fn node_signatures(network: &Network, batches: &[SimBatch]) -> Result<Vec<u64>, NetworkError> {
    let rounds = batches.len();
    let mut sigs = vec![0u64; network.len() * rounds];
    for (r, batch) in batches.iter().enumerate() {
        if batch.words().len() != network.inputs().len() {
            return Err(NetworkError::InputArity {
                expected: network.inputs().len(),
                got: batch.words().len(),
            });
        }
        let mut next_input = 0;
        for (id, node) in network.iter() {
            let w = match node {
                Node::Input { .. } => {
                    let w = batch.words()[next_input];
                    next_input += 1;
                    w
                }
                Node::Const { value } => {
                    if *value {
                        u64::MAX
                    } else {
                        0
                    }
                }
                Node::Unary { op, a } => op.eval_word(sigs[a.index() * rounds + r]),
                Node::Binary { op, a, b } => {
                    op.eval_word(sigs[a.index() * rounds + r], sigs[b.index() * rounds + r])
                }
            };
            sigs[id.index() * rounds + r] = w;
        }
    }
    Ok(sigs)
}

/// The scalar input assignment held by one lane of one batch.
pub fn lane_assignment(batch: &SimBatch, lane: u32) -> Vec<bool> {
    batch.words().iter().map(|w| w >> lane & 1 == 1).collect()
}

/// A node signature canonicalized for complement-aware pairing: if the
/// first sampled bit is 1 the whole signature is complemented, and the
/// flip is reported as `phase`. Two nodes are *candidate* equivalences
/// when their canonical signatures agree — equal up to `phase_a ^
/// phase_b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanonSig {
    /// FNV-1a hash of the canonical signature words.
    pub hash: u64,
    /// Whether the stored signature was complemented to canonicalize.
    pub phase: bool,
}

/// Canonicalizes the signature slice of one node.
pub fn canonicalize(sig: &[u64]) -> CanonSig {
    let phase = sig.first().is_some_and(|w| w & 1 == 1);
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
    for &w in sig {
        let w = if phase { !w } else { w };
        h ^= w;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    CanonSig { hash: h, phase }
}

/// Whether two signatures are equal after adjusting for the given
/// relative phase — the collision-proof check behind a [`CanonSig`] hash
/// match.
pub fn sigs_equal(a: &[u64], b: &[u64], relative_phase: bool) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(&x, &y)| x == if relative_phase { !y } else { y })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Network {
        let mut n = Network::new("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let x = n.xor2(a, b);
        let y = n.nand2(x, c);
        n.add_output("y", y);
        n
    }

    #[test]
    fn signatures_match_scalar_simulation() {
        let n = sample();
        let bs = batches(3, 4, 42);
        let sigs = node_signatures(&n, &bs).unwrap();
        let rounds = bs.len();
        let out_node = n.outputs()[0].driver.index();
        for (r, batch) in bs.iter().enumerate() {
            for lane in 0..64 {
                let vals = lane_assignment(batch, lane);
                let expect = n.simulate(&vals).unwrap()[0];
                let got = sigs[out_node * rounds + r] >> lane & 1 == 1;
                assert_eq!(got, expect, "round {r} lane {lane}");
            }
        }
    }

    #[test]
    fn guided_batches_cover_corners_and_walks() {
        let bs = batches(5, 0, 0);
        assert_eq!(bs.len(), 2);
        // Walking-one: lane 0 all zeros, lane k sets input k-1.
        let zeros = lane_assignment(&bs[0], 0);
        assert!(zeros.iter().all(|&v| !v));
        for k in 1..=5 {
            let v = lane_assignment(&bs[0], k);
            assert_eq!(v.iter().filter(|&&x| x).count(), 1);
            assert!(v[k as usize - 1]);
        }
        // Walking-zero: lane 0 all ones.
        let ones = lane_assignment(&bs[1], 0);
        assert!(ones.iter().all(|&v| v));
        for k in 1..=5 {
            let v = lane_assignment(&bs[1], k);
            assert_eq!(v.iter().filter(|&&x| !x).count(), 1);
            assert!(!v[k as usize - 1]);
        }
    }

    #[test]
    fn wide_input_counts_get_more_walks() {
        let bs = batches(150, 0, 0);
        // ceil(151/63) = 3 walking batches per polarity.
        assert_eq!(bs.len(), 6);
        // Every input is walked exactly once across the walking-one set.
        for i in 0..150 {
            let mut raised = 0;
            for b in &bs[..3] {
                for lane in 1..64 {
                    let v = lane_assignment(b, lane);
                    if v[i] {
                        raised += 1;
                    }
                }
            }
            assert_eq!(raised, 1, "input {i}");
        }
    }

    #[test]
    fn canonicalization_pairs_complements() {
        let sig = [0b1011u64, 0xFF];
        let comp: Vec<u64> = sig.iter().map(|w| !w).collect();
        let ca = canonicalize(&sig);
        let cb = canonicalize(&comp);
        assert_eq!(ca.hash, cb.hash);
        assert_ne!(ca.phase, cb.phase);
        assert!(sigs_equal(&sig, &comp, true));
        assert!(sigs_equal(&sig, &sig, false));
        assert!(!sigs_equal(&sig, &comp, false));
    }

    #[test]
    fn arity_mismatch_is_typed() {
        let n = sample();
        let bs = batches(2, 1, 0);
        assert!(matches!(
            node_signatures(&n, &bs),
            Err(NetworkError::InputArity { .. })
        ));
    }
}
