//! Lowering mapped domino circuits back to logic networks.
//!
//! Equivalence checking compares the *function* of a mapped
//! [`DominoCircuit`] against its source [`Network`]; this module produces
//! the network view of a circuit: each gate's pull-down network becomes
//! an AND/OR tree (series conducts = conjunction, parallel = disjunction)
//! over the primary inputs and previously lowered gate outputs, with
//! negative-phase input literals sharing one inverter per input and
//! output inversions applied at the bindings — exactly the boundary
//! inverters domino permits.

use soi_domino_ir::{DominoCircuit, Pdn, Phase, Signal};
use soi_netlist::{Network, NodeId};

/// Lowers a mapped domino circuit into a plain logic network with the
/// same input names, output names, and function.
pub fn circuit_to_network(circuit: &DominoCircuit) -> Network {
    let mut n = Network::new("lowered");
    let inputs: Vec<NodeId> = circuit
        .input_names()
        .iter()
        .map(|name| n.add_input(name.clone()))
        .collect();
    let mut neg: Vec<Option<NodeId>> = vec![None; inputs.len()];
    let mut gate_out = Vec::with_capacity(circuit.gate_count());
    for (_, gate) in circuit.iter() {
        let root = lower_pdn(gate.pdn(), &mut n, &inputs, &mut neg, &gate_out);
        gate_out.push(root);
    }
    for binding in circuit.outputs() {
        let driver = gate_out[binding.gate.index()];
        let driver = if binding.inverted {
            n.inv(driver)
        } else {
            driver
        };
        n.add_output(binding.name.clone(), driver);
    }
    n
}

fn lower_pdn(
    pdn: &Pdn,
    n: &mut Network,
    inputs: &[NodeId],
    neg: &mut [Option<NodeId>],
    gate_out: &[NodeId],
) -> NodeId {
    match pdn {
        Pdn::Transistor(sig) => match *sig {
            Signal::Input { index, phase } => match phase {
                Phase::Pos => inputs[index],
                Phase::Neg => *neg[index].get_or_insert_with(|| n.inv(inputs[index])),
            },
            Signal::Gate(g) => gate_out[g.index()],
        },
        Pdn::Series(children) => {
            let parts: Vec<NodeId> = children
                .iter()
                .map(|c| lower_pdn(c, n, inputs, neg, gate_out))
                .collect();
            n.and_tree(&parts)
        }
        Pdn::Parallel(children) => {
            let parts: Vec<NodeId> = children
                .iter()
                .map(|c| lower_pdn(c, n, inputs, neg, gate_out))
                .collect();
            n.or_tree(&parts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_domino_ir::DominoGate;

    fn t(i: usize) -> Pdn {
        Pdn::transistor(Signal::input(i))
    }

    /// `(a + b) * c` as one gate; the lowered network must compute it.
    #[test]
    fn single_gate_lowers_to_its_function() {
        let c = DominoCircuit::single_gate(
            vec!["a".into(), "b".into(), "c".into()],
            Pdn::series(vec![Pdn::parallel(vec![t(0), t(1)]), t(2)]),
        );
        let n = circuit_to_network(&c);
        assert_eq!(n.inputs().len(), 3);
        for bits in 0..8u32 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = (vals[0] || vals[1]) && vals[2];
            assert_eq!(n.simulate(&vals).unwrap(), vec![expect], "bits {bits:03b}");
        }
    }

    /// Negative-phase literals share one inverter per input, gate-output
    /// signals chain, and inverted output bindings invert.
    #[test]
    fn phases_and_gate_signals_lower_correctly() {
        let mut c = DominoCircuit::new(vec!["a".into(), "b".into()]);
        let g0 = c.add_gate(DominoGate::footed(Pdn::parallel(vec![
            Pdn::transistor(Signal::input_neg(0)),
            Pdn::transistor(Signal::input_neg(0)),
            t(1),
        ])));
        let g1 = c.add_gate(DominoGate::footed(Pdn::series(vec![
            Pdn::transistor(Signal::Gate(g0)),
            t(0),
        ])));
        c.bind_output("f", g1, true);
        let n = circuit_to_network(&c);
        // One shared inverter for a', not two.
        let inverters = n
            .iter()
            .filter(|(_, node)| matches!(node, soi_netlist::Node::Unary { op, .. } if *op == soi_netlist::UnOp::Inv))
            .count();
        // a' (shared) + the output inversion.
        assert_eq!(inverters, 2);
        for bits in 0..4u32 {
            let a = bits & 1 == 1;
            let b = bits & 2 == 2;
            let g0v = !a || b;
            let expect = !(g0v && a);
            assert_eq!(
                n.simulate(&[a, b]).unwrap(),
                vec![expect],
                "bits {bits:02b}"
            );
        }
    }
}
