//! Structural cone memoization for the tuple DP.
//!
//! Real netlists are repetitive: adders, array multipliers and cipher
//! rounds instantiate the same few cells hundreds of times, so after the
//! fanout-free cone partition most cones are structurally isomorphic to
//! one another. The DP result for a cone depends only on
//!
//! 1. the cone's tree *shape* ([`soi_unate::ConeShape`]) — literal
//!    identities and phases do not affect costs, only the back-pointer
//!    forms, which rebinding fixes up;
//! 2. the exported cost profiles of its boundary fanins (gate candidates
//!    carry levels and amortized shares that flow into the cone's costs);
//! 3. the root's fanout (it shapes the exported gate candidate);
//! 4. the [`MapConfig`] fields and [`Algorithm`] that parameterize the
//!    cost model.
//!
//! A [`ConeCache`] keys entries on a 128-bit hash of exactly those four
//! ingredients. Levels are hashed *relative to the cone's minimum
//! boundary level*: levels only combine by `max`/`+1` and only compare
//! inside the DP, so a uniform shift of every boundary level shifts the
//! solution's levels by the same constant and changes nothing else —
//! letting a cone hit an isomorphic cone from a different logic depth
//! (the offset is re-added at rebind; cones with interior literal leaves
//! pin level 0 and key on absolute levels instead).
//!
//! On a hit, the DP deep-copies the cached per-node solutions and
//! rewrites every [`Form`] back-pointer from the old cone's node ids to
//! the new cone's (literal leaves pick up the new cone's literals,
//! boundary references map through the occurrence bijection) — a few
//! memcpys instead of re-running the candidate-combination loops.
//!
//! A second, **node-granular tier** ([`NodeEntry`]) catches the
//! repetition the cone tier can't see: a gate probes on (kind, fanout,
//! its two fanins' exported profiles) — the exact inputs of one DP step —
//! with levels normalized per gate, so a gate reuses the solution of any
//! structurally equal gate anywhere in the netlist, at any depth. The
//! node tier serves single-gate units directly (they would not amortize a
//! cone-tier shape walk, see [`MIN_CACHED_UNIT_GATES`]) and fills in the
//! gates of cones whose whole-cone probe missed. Each gate solve is
//! counted in the hit/miss statistics exactly once: as part of a
//! gate-weighted cone hit, or as its own node-tier hit or miss.
//!
//! Cached runs are **bit-identical** to uncached runs, including budget
//! accounting: a hit bulk-charges the combination steps the entry
//! originally cost (see [`crate::dp::Budget::charge_many`]).
//!
//! The cache is internally synchronized: workers of a parallel run probe
//! and fill it concurrently, and a cache can be shared across runs (see
//! [`Mapper::with_cone_cache`](crate::Mapper::with_cone_cache)) so later
//! runs of a family of circuits start warm.

use std::fmt;
use std::hash::{BuildHasher, Hash, Hasher};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use soi_netlist::fx::{FxBuildHasher, FxHashMap, FxHashSet};
use soi_unate::{ConeShape, ConeUnit, UId, UNode, UnateNetwork};

use crate::dp::{SolTable, UnitAcc};
use crate::persist::{self, Dec, Enc, Malformed};
use crate::tuple::{CandRef, ExportMap, Form, NodeSol};
use crate::{Algorithm, MapConfig, MapError};

/// Cones larger than this many nodes are solved without consulting the
/// cache: the miss-side capture clones the whole cone's solutions, and
/// giant cones are both expensive to clone and unlikely to repeat.
pub(crate) const MAX_CACHED_UNIT_NODES: usize = 512;

/// Gates whose estimated combination work (product of the two fanins'
/// exported candidate counts) falls below this skip the node tier
/// entirely (no probe, no capture, not counted). At 1 every gate with
/// viable fanins participates — raising it trades cache coverage for
/// lower per-gate overhead.
pub(crate) const NODE_TIER_MIN_COMBINATIONS: usize = 1;

/// Units with fewer gates than this skip the cone tier: a lone gate (or a
/// bare literal root) has nothing to amortize the canonical shape walk
/// and whole-cone snapshot over, and the node tier memoizes single gates
/// without ever computing a shape.
pub(crate) const MIN_CACHED_UNIT_GATES: usize = 2;

/// Probe count between adaptive-bypass judgments (per tier). Each time a
/// tier's lifetime probe count crosses a multiple of this window, its
/// cumulative hit rate is compared against
/// [`MapConfig::cache_bypass_floor_permille`]; a rate below the floor
/// latches the tier off for the rest of the cache's lifetime. The window
/// is large enough that small circuits (and every unit test) finish before
/// the first judgment, so bypass never perturbs them — and small enough
/// that a losing tier latches while most of the run is still ahead: the
/// cone tier probes once per cone *unit*, so a ≥100k-gate control netlist
/// only accumulates a few thousand cone probes in total, and a window
/// that needs most of them has already paid the canonical-hash overhead
/// it exists to stop.
pub(crate) const BYPASS_PROBE_WINDOW: u64 = 1024;

/// 128-bit cache key: structural signature ⊕ boundary profiles ⊕ root
/// fanout ⊕ config fingerprint, as two independently seeded 64-bit hashes.
pub(crate) type CacheKey = [u64; 2];

/// A concurrent memo table of solved fanout-free cones, shareable across
/// mapping runs (and across threads of one run).
///
/// Constructed implicitly per run when [`MapConfig::cone_cache`] is set,
/// or explicitly via [`ConeCache::new`] and attached with
/// [`Mapper::with_cone_cache`](crate::Mapper::with_cone_cache) to keep it
/// warm across runs. The [`hits`](ConeCache::hits) /
/// [`misses`](ConeCache::misses) counters accumulate over the cache's
/// lifetime; per-run counts are reported on
/// [`MappingResult`](crate::MappingResult).
#[derive(Default)]
pub struct ConeCache {
    // Fx-hashed: keys are already well-mixed 128-bit digests, and the node
    // tier probes once per gate — re-running SipHash over each probe was
    // pure overhead (part of why the cache lost on BENCH_pr5).
    entries: Mutex<FxHashMap<CacheKey, Arc<ConeEntry>>>,
    nodes: Mutex<FxHashMap<CacheKey, Arc<NodeEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Adaptive-bypass bookkeeping, per tier: lifetime probe and hit
    /// tallies (independent of `hits`/`misses`, which weigh cone hits by
    /// gate count) and the sticky bypass latches. Latches are per cache —
    /// a shared cache that proved useless stays off for later runs too.
    cone_probes: AtomicU64,
    cone_probe_hits: AtomicU64,
    cone_warmup_hits: AtomicU64,
    cone_bypassed: AtomicBool,
    node_probes: AtomicU64,
    node_probe_hits: AtomicU64,
    node_warmup_hits: AtomicU64,
    node_bypassed: AtomicBool,
}

/// What [`ConeCache::load`] recovered from a persistent store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheLoadStats {
    /// Cone-tier entries merged into the cache.
    pub cone_entries: usize,
    /// Node-tier entries merged into the cache.
    pub node_entries: usize,
    /// Entries whose checksum or payload was corrupt — skipped, never
    /// loaded, never fatal.
    pub skipped_entries: usize,
}

impl ConeCache {
    /// An empty cache.
    pub fn new() -> ConeCache {
        ConeCache::default()
    }

    /// Number of distinct memo entries stored (cone tier + node tier).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
            + self.nodes.lock().expect("cache poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct cone-tier memo entries (whole fanout-free cones).
    pub fn cone_entries(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// Number of distinct node-tier memo entries (single-gate solutions).
    pub fn node_entries(&self) -> usize {
        self.nodes.lock().expect("cache poisoned").len()
    }

    /// Lifetime hit count (across every run that used this cache).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Tiers this cache's adaptive bypass has latched off so far (0–2).
    pub fn bypassed_tiers(&self) -> u32 {
        u32::from(self.cone_bypassed.load(Ordering::Relaxed))
            + u32::from(self.node_bypassed.load(Ordering::Relaxed))
    }

    /// Writes every entry to `path` in the persistent store format (see
    /// [`crate::persist`] for the layout and versioning rules).
    ///
    /// # Errors
    ///
    /// [`MapError::Io`] on any filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), MapError> {
        let path = path.as_ref();
        let file = std::fs::File::create(path).map_err(|e| io_err("create", path, &e))?;
        let mut w = std::io::BufWriter::new(file);
        self.save_to(&mut w)?;
        use std::io::Write as _;
        w.flush().map_err(|e| io_err("flush", path, &e))
    }

    /// Writes every entry to `w` in the persistent store format. Entries
    /// are emitted in sorted key order, so saving the same cache twice
    /// produces identical bytes.
    ///
    /// # Errors
    ///
    /// [`MapError::Io`] on any write failure.
    pub fn save_to<W: Write>(&self, mut w: W) -> Result<(), MapError> {
        let wr_err = |e: std::io::Error| MapError::Io {
            what: format!("writing cone-cache store: {e}"),
        };
        let entries = self.entries.lock().expect("cache poisoned");
        let nodes = self.nodes.lock().expect("cache poisoned");
        let mut head = Enc::new();
        head.bytes(&persist::MAGIC);
        head.u32(persist::VERSION);
        head.count(entries.len());
        head.count(nodes.len());
        w.write_all(&head.buf).map_err(wr_err)?;
        let frame = |key: CacheKey, payload: &[u8], w: &mut W| -> Result<(), MapError> {
            let mut head = Enc::new();
            head.u64(key[0]);
            head.u64(key[1]);
            head.count(payload.len());
            head.u64(persist::checksum(key, payload));
            w.write_all(&head.buf).map_err(wr_err)?;
            w.write_all(payload).map_err(wr_err)
        };
        let mut keys: Vec<CacheKey> = entries.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let mut enc = Enc::new();
            entries[&key].encode(&mut enc);
            frame(key, &enc.buf, &mut w)?;
        }
        let mut keys: Vec<CacheKey> = nodes.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let mut enc = Enc::new();
            nodes[&key].encode(&mut enc);
            frame(key, &enc.buf, &mut w)?;
        }
        Ok(())
    }

    /// Merges a persistent store from `path` into this cache. Entries that
    /// fail their checksum or decode are skipped (and counted); entries
    /// already present win over loaded ones. Loaded entries are marked
    /// persisted, so hits they serve are reported under `persist_hits`.
    ///
    /// # Errors
    ///
    /// [`MapError::Io`] on filesystem failures;
    /// [`MapError::CacheCorrupt`] when the header or the frame structure
    /// itself is damaged (nothing past the damage can be framed).
    pub fn load(&self, path: impl AsRef<Path>) -> Result<CacheLoadStats, MapError> {
        let path = path.as_ref();
        let file = std::fs::File::open(path).map_err(|e| io_err("open", path, &e))?;
        self.load_from(std::io::BufReader::new(file))
    }

    /// Merges a persistent store read from `r` into this cache. See
    /// [`load`](ConeCache::load).
    ///
    /// # Errors
    ///
    /// As for [`load`](ConeCache::load).
    pub fn load_from<R: Read>(&self, mut r: R) -> Result<CacheLoadStats, MapError> {
        let mut data = Vec::new();
        r.read_to_end(&mut data).map_err(|e| MapError::Io {
            what: format!("reading cone-cache store: {e}"),
        })?;
        let corrupt = |what: &str| MapError::CacheCorrupt {
            what: format!("persistent store: {what}"),
        };
        let mut d = Dec::new(&data);
        let magic = d.take(8).map_err(|_| corrupt("truncated header"))?;
        if magic != persist::MAGIC {
            return Err(corrupt("bad magic — not a cone-cache store"));
        }
        let version = d.u32().map_err(|_| corrupt("truncated header"))?;
        if version != persist::VERSION {
            return Err(MapError::CacheCorrupt {
                what: format!(
                    "persistent store: version {version} (this build reads {})",
                    persist::VERSION
                ),
            });
        }
        let cone_n = d
            .count(32)
            .map_err(|_| corrupt("implausible entry count"))?;
        let node_n = d
            .count(32)
            .map_err(|_| corrupt("implausible entry count"))?;
        let mut stats = CacheLoadStats::default();
        for i in 0..cone_n + node_n {
            let key = [
                d.u64().map_err(|_| corrupt("truncated entry frame"))?,
                d.u64().map_err(|_| corrupt("truncated entry frame"))?,
            ];
            let len = d.count(1).map_err(|_| corrupt("entry overruns store"))?;
            let sum = d.u64().map_err(|_| corrupt("truncated entry frame"))?;
            let payload = d.take(len).map_err(|_| corrupt("entry overruns store"))?;
            if persist::checksum(key, payload) != sum {
                stats.skipped_entries += 1;
                continue;
            }
            let mut pd = Dec::new(payload);
            if i < cone_n {
                match ConeEntry::decode(&mut pd) {
                    Ok(e) if pd.finished() => {
                        self.entries
                            .lock()
                            .expect("cache poisoned")
                            .entry(key)
                            .or_insert_with(|| Arc::new(e));
                        stats.cone_entries += 1;
                    }
                    _ => stats.skipped_entries += 1,
                }
            } else {
                match NodeEntry::decode(&mut pd) {
                    Ok(e) if pd.finished() => {
                        self.nodes
                            .lock()
                            .expect("cache poisoned")
                            .entry(key)
                            .or_insert_with(|| Arc::new(e));
                        stats.node_entries += 1;
                    }
                    _ => stats.skipped_entries += 1,
                }
            }
        }
        if !d.finished() {
            return Err(corrupt("trailing bytes after the last entry"));
        }
        Ok(stats)
    }
}

fn io_err(op: &str, path: &Path, e: &std::io::Error) -> MapError {
    MapError::Io {
        what: format!("{op} {}: {e}", path.display()),
    }
}

impl fmt::Debug for ConeCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConeCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// A [`ConeCache`] bound to one run's config fingerprint.
pub(crate) struct RunCache<'a> {
    cache: &'a ConeCache,
    fingerprint: u64,
    /// Adaptive-bypass floor in hits-per-thousand-probes; 0 disables the
    /// bypass. Deliberately excluded from the fingerprint — bypassing a
    /// tier changes how solutions are *found*, never what they are.
    bypass_floor: u32,
}

impl<'a> RunCache<'a> {
    pub(crate) fn new(
        cache: &'a ConeCache,
        config: &MapConfig,
        algorithm: Algorithm,
    ) -> RunCache<'a> {
        RunCache {
            cache,
            fingerprint: fingerprint(config, algorithm),
            bypass_floor: config.cache_bypass_floor_permille,
        }
    }

    /// Whether the cone tier is still live (not latched off by the
    /// adaptive bypass). A bypassed tier is skipped entirely: no probe, no
    /// capture, no counter traffic — so the probe/hit/miss conservation
    /// invariants hold across the latch.
    pub(crate) fn cone_tier_enabled(&self) -> bool {
        !self.cache.cone_bypassed.load(Ordering::Relaxed)
    }

    /// Node-tier counterpart of [`cone_tier_enabled`](RunCache::cone_tier_enabled).
    pub(crate) fn node_tier_enabled(&self) -> bool {
        !self.cache.node_bypassed.load(Ordering::Relaxed)
    }

    /// Whether both tiers are latched off — at that point solutions no
    /// longer need cache profiles and the run behaves like an uncached one.
    pub(crate) fn fully_bypassed(&self) -> bool {
        !self.cone_tier_enabled() && !self.node_tier_enabled()
    }

    /// Records one cone-tier probe outcome for the adaptive bypass.
    /// Returns `true` exactly when this call latched the tier off.
    pub(crate) fn note_cone_probe(&self, hit: bool) -> bool {
        note_probe(
            &self.cache.cone_probes,
            &self.cache.cone_probe_hits,
            &self.cache.cone_warmup_hits,
            &self.cache.cone_bypassed,
            hit,
            self.bypass_floor,
        )
    }

    /// Node-tier counterpart of [`note_cone_probe`](RunCache::note_cone_probe).
    pub(crate) fn note_node_probe(&self, hit: bool) -> bool {
        note_probe(
            &self.cache.node_probes,
            &self.cache.node_probe_hits,
            &self.cache.node_warmup_hits,
            &self.cache.node_bypassed,
            hit,
            self.bypass_floor,
        )
    }

    /// Computes the cache key for a cone and looks it up. Returns the key
    /// (for a later [`insert`](RunCache::insert) on miss), the cone's
    /// level-normalization base, and the matching entry, if any. Entries
    /// whose recorded structure disagrees with the shape (a 128-bit
    /// collision, i.e. never in practice) are treated as misses.
    pub(crate) fn probe(
        &self,
        shape: &ConeShape,
        root_fanout: u32,
        table: &SolTable,
        unate: &UnateNetwork,
    ) -> (CacheKey, u32, Option<Arc<ConeEntry>>) {
        let (key, base) = self.key(shape, root_fanout, table, unate);
        let found = self
            .entries()
            .get(&key)
            .cloned()
            .filter(|e| e.matches(shape, unate));
        (key, base, found)
    }

    /// Computes the node-tier key for one gate and looks it up: a gate's
    /// solution is a pure function of its kind, its fanout, and its two
    /// fanins' exported profiles (level-normalized like the cone tier; a
    /// literal fanin's level-0 candidates pin the base to 0 by
    /// themselves). This tier serves single-gate units outright and fills
    /// in the gates of cones whose whole-cone probe missed, so a gate
    /// reuses work from any other cone that contained the same
    /// gate-over-profiles.
    pub(crate) fn probe_node(
        &self,
        node: UNode,
        fanout: u32,
        table: &SolTable,
    ) -> (CacheKey, u32, Option<Arc<NodeEntry>>) {
        let (kind, a, b) = match node {
            UNode::And(a, b) => (1u8, a, b),
            UNode::Or(a, b) => (2u8, a, b),
            UNode::Lit(_) => unreachable!("literal nodes are solved directly, never node-cached"),
        };
        let base = table.get(a).profile.1.min(table.get(b).profile.1);
        let mut h1 = Mix(0x6e6f_6465_7469_6572); // node-tier domain seeds
        let mut h2 = Mix(0x7265_6974_6564_6f6e);
        for h in [&mut h1, &mut h2] {
            h.word(self.fingerprint);
            h.word(u64::from(kind) << 40 | u64::from(fanout) << 8 | u64::from(a == b));
        }
        for f in [a, b] {
            let (d, m) = table.get(f).profile;
            for h in [&mut h1, &mut h2] {
                h.word(d);
                h.word(u64::from(m - base));
            }
        }
        let key = [h1.0, h2.0];
        let found = self
            .node_entries()
            .get(&key)
            .cloned()
            .filter(|e| e.kind == kind);
        (key, base, found)
    }

    /// Stores a freshly captured entry. Two workers missing on the same
    /// key concurrently both capture (identical) entries; last write wins.
    pub(crate) fn insert(&self, key: CacheKey, entry: ConeEntry) {
        self.entries().insert(key, Arc::new(entry));
    }

    /// Node-tier counterpart of [`insert`](RunCache::insert).
    pub(crate) fn insert_node(&self, key: CacheKey, entry: NodeEntry) {
        self.node_entries().insert(key, Arc::new(entry));
    }

    /// Adds `n` hits to the cache's lifetime counters.
    pub(crate) fn record_hits(&self, n: u64) {
        self.cache.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` misses to the cache's lifetime counters.
    pub(crate) fn record_misses(&self, n: u64) {
        self.cache.misses.fetch_add(n, Ordering::Relaxed);
    }

    fn entries(&self) -> std::sync::MutexGuard<'_, FxHashMap<CacheKey, Arc<ConeEntry>>> {
        self.cache.entries.lock().expect("cache poisoned")
    }

    fn node_entries(&self) -> std::sync::MutexGuard<'_, FxHashMap<CacheKey, Arc<NodeEntry>>> {
        self.cache.nodes.lock().expect("cache poisoned")
    }

    fn key(
        &self,
        shape: &ConeShape,
        root_fanout: u32,
        table: &SolTable,
        unate: &UnateNetwork,
    ) -> (CacheKey, u32) {
        let mut h1 = Mix(0x636f_6e65_7469_6572); // cone-tier domain seeds
        let mut h2 = Mix(0x7265_6974_656e_6f63);
        for h in [&mut h1, &mut h2] {
            h.word(self.fingerprint);
            h.word(shape.sig[0]);
            h.word(shape.sig[1]);
            h.word(u64::from(root_fanout));
        }
        let base = level_base(shape, table, unate);
        // Boundary fanins contribute everything the solver can read from
        // them: their exported cost profiles in candidate order, with
        // levels normalized to the cone's base. (Their forms are
        // irrelevant — combinations reference boundary candidates by
        // `(shape, index)`, resolved against the live boundary solution at
        // materialization.)
        for &b in &shape.boundary {
            let (d, m) = table.get(b).profile;
            for h in [&mut h1, &mut h2] {
                h.word(d);
                h.word(u64::from(m - base));
            }
        }
        ([h1.0, h2.0], base)
    }
}

/// The cone's level-normalization base: the smallest level any boundary
/// candidate carries, or 0 when the cone contains interior literal leaves.
///
/// Levels only ever combine by `max` and `+1` and only ever *compare*
/// inside the DP, so shifting every boundary level by a constant shifts
/// every solution level by that constant and changes nothing else. Keying
/// on base-relative levels therefore lets a cone hit an isomorphic cone
/// from a different logic depth — the common case in arrays and ripple
/// chains — with the offset re-added at rebind. Interior literals pin
/// level 0 *inside* the cone and break the uniform-shift argument, so
/// such cones key on absolute levels (base 0).
fn level_base(shape: &ConeShape, table: &SolTable, unate: &UnateNetwork) -> u32 {
    let has_lit = shape
        .canon
        .iter()
        .any(|&id| matches!(unate.node(id), UNode::Lit(_)));
    if has_lit {
        return 0;
    }
    shape
        .boundary
        .iter()
        .map(|&b| table.get(b).profile.1)
        .min()
        .unwrap_or(0)
}

/// Computes a node's memoized cache profile: an order-sensitive digest of
/// its full exported candidate list with every level taken relative to
/// the list's minimum level, plus that minimum. The digest half is
/// invariant under uniform level shifts, so probes can compare two nodes
/// at different logic depths by hashing `(digest, min - base)` per fanin
/// instead of re-walking every candidate on every probe.
pub(crate) fn profile(exported: &ExportMap) -> (u64, u32) {
    let mut min = u32::MAX;
    for (_, c) in exported.flat() {
        min = min.min(c.g.level).min(c.u.level);
    }
    let min = if min == u32::MAX { 0 } else { min };
    // This digest runs once per solved node per cached run — hot enough
    // that SipHash with one write per field shows up in the mapping
    // wall-clock. A chained multiply-xorshift over packed words is an
    // order-sensitive 64-bit mixer at a fraction of the cost; the result
    // only ever feeds the 128-bit probe keys.
    let mut h = Mix(0x517c_c1b7_2722_0994);
    for (key, c) in exported.flat() {
        h.word(u64::from(key.w) << 32 | u64::from(key.h));
        for cost in [c.g, c.u] {
            h.word(u64::from(cost.tx) << 32 | u64::from(cost.wtx));
            h.word(u64::from(cost.disch) << 32 | u64::from(cost.level - min));
        }
        h.word(u64::from(c.p_spine) << 32 | u64::from(c.p_branch));
        h.word(u64::from(c.par_b) << 1 | u64::from(c.touches_pi));
    }
    (h.0, min)
}

/// Chained multiply-xorshift accumulator (xor in, multiply by the golden
/// ratio, shift-mix) — order-sensitive, and strong enough for hash-key
/// discrimination where equality is re-verified structurally, the key
/// space is 128 bits, or (as in the persistent store's checksums) the
/// adversary is bit rot rather than collision search.
pub(crate) struct Mix(pub u64);

impl Mix {
    #[inline]
    pub fn word(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 29;
    }
}

/// One tier's adaptive-bypass accounting: tally the probe, and at every
/// [`BYPASS_PROBE_WINDOW`]-th probe compare the hit rate *since the first
/// window closed* against the configured permille floor, latching the
/// tier off when it underperforms. The first window is a warm-up grace:
/// every cache starts cold, so the opening probes miss on even the most
/// repetitive netlist, and judging them would latch exactly the runs the
/// cache is about to win (observed: the 110k-gate array multiplier's cone
/// tier is at 67% cumulative after 1024 probes and at 99% for the rest of
/// the run). The grace is not unconditional, though: a tier whose *first*
/// window can't even clear half the floor is hopeless — warming caches
/// climb through mid rates (the multiplier's 67% ≫ 40%), while
/// low-repetition netlists sit far below (a 120k-gate control netlist's
/// cone tier opens at ~15%) — so that one case latches immediately
/// instead of paying for a second window. Returns `true` exactly once per
/// latch (the caller traces it). Relaxed ordering throughout: the
/// counters are statistics, and the latch is sticky — a worker reading it
/// a moment late merely probes once more.
fn note_probe(
    probes: &AtomicU64,
    hits: &AtomicU64,
    warmup_hits: &AtomicU64,
    bypassed: &AtomicBool,
    hit: bool,
    floor_permille: u32,
) -> bool {
    if floor_permille == 0 {
        return false;
    }
    if hit {
        hits.fetch_add(1, Ordering::Relaxed);
    }
    let p = probes.fetch_add(1, Ordering::Relaxed) + 1;
    if !p.is_multiple_of(BYPASS_PROBE_WINDOW) {
        return false;
    }
    let h = hits.load(Ordering::Relaxed);
    if p == BYPASS_PROBE_WINDOW {
        if h.saturating_mul(2000) < u64::from(floor_permille).saturating_mul(BYPASS_PROBE_WINDOW) {
            return !bypassed.swap(true, Ordering::Relaxed);
        }
        warmup_hits.store(h, Ordering::Relaxed);
        return false;
    }
    let judged = h
        .saturating_sub(warmup_hits.load(Ordering::Relaxed))
        .saturating_mul(1000);
    if judged >= u64::from(floor_permille).saturating_mul(p - BYPASS_PROBE_WINDOW) {
        return false;
    }
    !bypassed.swap(true, Ordering::Relaxed)
}

/// Per-run caches are only worth their probe/capture overhead on
/// netlists at least this large; below it the admission pre-scan is
/// skipped outright (and so is its cost). High enough that no
/// integration-test circuit is ever affected.
pub(crate) const ADMISSION_MIN_GATES: usize = 10_000;

/// Cold-cache admission pre-scan: decides whether a run starting from an
/// *empty* cache should probe it at all.
///
/// The adaptive bypass latches losing tiers mid-run, but only after at
/// least one [`BYPASS_PROBE_WINDOW`] of probes has already paid the
/// canonical-hash and capture overhead — and the cone tier probes once
/// per *unit*, so on a low-repetition 100k-gate netlist that window is a
/// quarter of the whole run. This scan front-loads the question: hash
/// each cone unit's node-kind sequence (a strictly coarser signature than
/// the real cache key — identical cone keys imply identical kind
/// sequences, so the duplicate count *over*estimates achievable hits) and
/// admit the cache only if even that optimistic repetition ratio clears
/// the bypass floor. Skipping is therefore conservative-safe: a netlist
/// rejected here could not have sustained the floor anyway.
///
/// Warm caches (non-empty: shared across runs or loaded from a persistent
/// store) are always admitted — their hits come from *prior* runs, which
/// this single-run proxy cannot see.
pub(crate) fn admit_cold_cache(
    cache: &ConeCache,
    unate: &UnateNetwork,
    units: &[ConeUnit],
    gates: usize,
    floor_permille: u32,
) -> bool {
    if floor_permille == 0 || gates < ADMISSION_MIN_GATES || !cache.is_empty() {
        return true;
    }
    let mut seen = FxHashSet::with_capacity_and_hasher(units.len(), Default::default());
    let mut dups: u64 = 0;
    for unit in units {
        let mut h = Mix(0x636f_6c64_5f61_646d); // "cold_adm"
        h.word(unit.nodes().len() as u64);
        for &id in unit.nodes() {
            h.word(match unate.node(id) {
                UNode::Lit(_) => 1,
                UNode::And(..) => 2,
                UNode::Or(..) => 3,
            });
        }
        if !seen.insert(h.0) {
            dups += 1;
        }
    }
    dups.saturating_mul(1000) >= u64::from(floor_permille).saturating_mul(units.len() as u64)
}

/// Everything [`MapConfig`] + [`Algorithm`] contribute to DP results.
/// `parallelism` and `cone_cache` are deliberately excluded — they change
/// scheduling, never solutions — so serial/parallel/cached runs share
/// entries.
fn fingerprint(config: &MapConfig, algorithm: Algorithm) -> u64 {
    // Pinned-seed Fx, not `DefaultHasher`: fingerprints flow into the keys
    // of *persisted* cache stores, so they must hash identically across
    // Rust releases (DefaultHasher's algorithm is explicitly unstable) and
    // must ignore the fx test-seed hook.
    let mut h = FxBuildHasher::with_seed(0).build_hasher();
    algorithm.hash(&mut h);
    config.w_max.hash(&mut h);
    config.h_max.hash(&mut h);
    config.objective.hash(&mut h);
    config.clock_weight.hash(&mut h);
    config.depth_level_weight.hash(&mut h);
    config.footing.hash(&mut h);
    config.and_order.hash(&mut h);
    config.baseline_order.hash(&mut h);
    config.max_candidates.hash(&mut h);
    config.output_phase.hash(&mut h);
    config.allow_duplication.hash(&mut h);
    config.degrade_unmappable.hash(&mut h);
    // Of the limits, only the semantic budgets participate: the job-control
    // fields (deadline, cancel token, step trip) interrupt a run without
    // changing any solution, and a salvage resume must fingerprint
    // identically to the interrupted run it is reviving.
    config.limits.max_gates.hash(&mut h);
    config.limits.max_tuples_per_node.hash(&mut h);
    config.limits.max_combine_steps.hash(&mut h);
    h.finish()
}

/// One cached cone: the per-node solutions in canonical order plus the
/// id maps needed to rebind them onto any isomorphic cone.
pub(crate) struct ConeEntry {
    /// Solutions aligned with [`ConeShape::canon`].
    sols: Vec<NodeSol>,
    /// Node kinds (0 = literal, 1 = AND, 2 = OR) in canonical order — the
    /// structural sanity check backing [`ConeEntry::matches`].
    kinds: Vec<u8>,
    /// `(old node index, canonical position)`, sorted by index.
    canon_pos: Vec<(u32, u32)>,
    /// `(old boundary node index, first-occurrence class)`, sorted by
    /// index. Classes index [`ConeShape::boundary`].
    bnd_class: Vec<(u32, u32)>,
    /// Canonical positions of nodes the degradation fallback fired on.
    degraded_pos: Vec<u32>,
    /// Combination steps the capture run charged for this cone.
    steps: u64,
    /// The cone's own exported-candidate high-water mark.
    peak_candidates: usize,
    /// Level-normalization base of the capture cone (see [`level_base`]);
    /// rebinding onto a cone with base `b` shifts every stored level by
    /// `b - level_base`.
    level_base: u32,
    /// Whether this entry was revived from a persistent store (hits it
    /// serves count as `persist_hits`). Not serialized: saving and
    /// reloading re-marks.
    persisted: bool,
}

impl ConeEntry {
    /// Snapshots a just-solved cone from the solution table.
    /// `degraded` is the slice of this unit's degraded node ids.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::CacheCorrupt`](crate::MapError::CacheCorrupt)
    /// when a degraded node id falls outside the cone being captured — a
    /// corrupt shape must surface as a typed error, never panic a worker.
    pub(crate) fn capture(
        shape: &ConeShape,
        table: &SolTable,
        degraded: &[UId],
        steps: u64,
        level_base: u32,
    ) -> Result<ConeEntry, crate::MapError> {
        let sols: Vec<NodeSol> = shape
            .canon
            .iter()
            .map(|&id| table.get(id).clone())
            .collect();
        let mut canon_pos: Vec<(u32, u32)> = shape
            .canon
            .iter()
            .enumerate()
            .map(|(pos, &id)| (id.index() as u32, pos as u32))
            .collect();
        canon_pos.sort_unstable();
        let mut bnd_class: Vec<(u32, u32)> = Vec::new();
        for (occ, &b) in shape.boundary.iter().enumerate() {
            let idx = b.index() as u32;
            if !bnd_class.iter().any(|&(i, _)| i == idx) {
                bnd_class.push((idx, occ as u32));
            }
        }
        bnd_class.sort_unstable();
        let pos_of = |id: UId| -> Result<u32, crate::MapError> {
            let idx = id.index() as u32;
            let at = canon_pos
                .binary_search_by_key(&idx, |&(i, _)| i)
                .map_err(|_| crate::MapError::CacheCorrupt {
                    what: format!("degraded node {idx} is outside the cone being captured"),
                })?;
            Ok(canon_pos[at].1)
        };
        let degraded_pos = degraded
            .iter()
            .map(|&id| pos_of(id))
            .collect::<Result<Vec<u32>, _>>()?;
        Ok(ConeEntry {
            peak_candidates: sols
                .iter()
                .map(|s| s.exported.total_candidates())
                .max()
                .unwrap_or(0),
            kinds: Vec::new(), // filled below from the capture network
            sols,
            canon_pos,
            bnd_class,
            degraded_pos,
            steps,
            level_base,
            persisted: false,
        })
    }

    /// Records the node kinds of the capture cone (split from `capture`
    /// only because the network isn't threaded through the table).
    pub(crate) fn with_kinds(mut self, shape: &ConeShape, unate: &UnateNetwork) -> ConeEntry {
        self.kinds = shape.canon.iter().map(|&id| kind(unate.node(id))).collect();
        self
    }

    /// The combination steps the capture run charged.
    pub(crate) fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether this entry came from a persistent store.
    pub(crate) fn persisted(&self) -> bool {
        self.persisted
    }

    /// Serializes the entry body (the frame header and checksum are the
    /// store's concern — see [`crate::persist`]).
    fn encode(&self, e: &mut Enc) {
        e.count(self.sols.len());
        for sol in &self.sols {
            e.node_sol(sol);
        }
        e.count(self.kinds.len());
        e.bytes(&self.kinds);
        for pairs in [&self.canon_pos, &self.bnd_class] {
            e.count(pairs.len());
            for &(a, b) in pairs {
                e.u32(a);
                e.u32(b);
            }
        }
        e.count(self.degraded_pos.len());
        for &p in &self.degraded_pos {
            e.u32(p);
        }
        e.u64(self.steps);
        e.count(self.peak_candidates);
        e.u32(self.level_base);
    }

    /// Decodes an entry body, marking it persisted. Any malformed byte
    /// fails the whole entry — the store loader then skips it.
    fn decode(d: &mut Dec<'_>) -> Result<ConeEntry, Malformed> {
        // Smallest NodeSol: empty export map (8) + gate tag (1) + profile
        // (12) = 21 bytes.
        let n = d.count(21)?;
        let mut sols = Vec::with_capacity(n);
        for _ in 0..n {
            sols.push(d.node_sol()?);
        }
        let kinds_len = d.count(1)?;
        let kinds = d.take(kinds_len)?.to_vec();
        if kinds.iter().any(|&k| k > 2) {
            return Err(Malformed);
        }
        let mut pair_vecs = [Vec::new(), Vec::new()];
        for pairs in &mut pair_vecs {
            let n = d.count(8)?;
            pairs.reserve(n);
            for _ in 0..n {
                pairs.push((d.u32()?, d.u32()?));
            }
            if pairs.windows(2).any(|w| w[0].0 >= w[1].0) {
                return Err(Malformed); // must stay sorted: rebind binary-searches
            }
        }
        let [canon_pos, bnd_class] = pair_vecs;
        let n = d.count(4)?;
        let mut degraded_pos = Vec::with_capacity(n);
        for _ in 0..n {
            degraded_pos.push(d.u32()?);
        }
        let steps = d.u64()?;
        let peak_candidates = usize::try_from(d.u64()?).map_err(|_| Malformed)?;
        let level_base = d.u32()?;
        Ok(ConeEntry {
            sols,
            kinds,
            canon_pos,
            bnd_class,
            degraded_pos,
            steps,
            peak_candidates,
            level_base,
            persisted: true,
        })
    }

    /// Structural sanity check: the entry fits the shape node-for-node.
    fn matches(&self, shape: &ConeShape, unate: &UnateNetwork) -> bool {
        self.sols.len() == shape.canon.len()
            && self.bnd_class.len() == {
                let mut uniq: Vec<UId> = shape.boundary.clone();
                uniq.sort_unstable();
                uniq.dedup();
                uniq.len()
            }
            && self
                .kinds
                .iter()
                .zip(&shape.canon)
                .all(|(&k, &id)| k == kind(unate.node(id)))
    }

    /// Deep-copies the cached solutions onto the new cone, rewriting every
    /// back-pointer — literal forms pick up the new cone's literals,
    /// interior references translate by canonical position, boundary
    /// references through the occurrence bijection — and shifting every
    /// level by the difference between the new cone's normalization base
    /// and the capture cone's.
    pub(crate) fn rebind(
        &self,
        shape: &ConeShape,
        unate: &UnateNetwork,
        table: &SolTable,
        acc: &mut UnitAcc,
        new_base: u32,
    ) {
        let translate = |old: UId| -> UId {
            let idx = old.index() as u32;
            if let Ok(at) = self.canon_pos.binary_search_by_key(&idx, |&(i, _)| i) {
                return shape.canon[self.canon_pos[at].1 as usize];
            }
            let at = self
                .bnd_class
                .binary_search_by_key(&idx, |&(i, _)| i)
                .expect("back-pointer escapes the cone and its boundary");
            shape.boundary[self.bnd_class[at].1 as usize]
        };
        // Every stored level is >= level_base (levels never sink below the
        // smallest boundary level they combined from), so the shift stays
        // in range.
        let shift = |level: u32| -> u32 { level - self.level_base + new_base };
        for (pos, cached) in self.sols.iter().enumerate() {
            let new_id = shape.canon[pos];
            let node = unate.node(new_id);
            let mut sol = cached.clone();
            for cand in sol.exported.cands_mut() {
                cand.form = rebind_form(cand.form, node, &translate);
                cand.g.level = shift(cand.g.level);
                cand.u.level = shift(cand.u.level);
            }
            if let Some(gate) = &mut sol.gate {
                gate.form = rebind_form(gate.form, node, &translate);
                gate.cost.level = shift(gate.cost.level);
            }
            // The profile digest is shift-invariant; only its min moves.
            // An empty candidate list keeps min 0 (see `profile`).
            if sol.exported.total_candidates() > 0 {
                sol.profile.1 = shift(sol.profile.1);
            }
            table.set(new_id, sol);
        }
        acc.peak_candidates = acc.peak_candidates.max(self.peak_candidates);
        for &pos in &self.degraded_pos {
            acc.degraded.push(shape.canon[pos as usize]);
        }
    }
}

/// One cached gate solution (the node tier): everything needed to replay
/// a single gate's DP step onto another gate with the same kind, fanout
/// and fanin profiles.
pub(crate) struct NodeEntry {
    sol: NodeSol,
    /// 1 = AND, 2 = OR (sanity check mirroring [`ConeEntry::matches`]).
    kind: u8,
    /// Capture-time index of the gate itself (its exported gate candidate
    /// carries a `ChildGate(self)` back-pointer).
    old_self: u32,
    /// Capture-time fanin node indices, in operand order.
    fanins: (u32, u32),
    /// Whether the degradation fallback fired on this gate.
    degraded: bool,
    /// Combination steps the capture solve charged.
    steps: u64,
    /// Level-normalization base at capture (see [`level_base`]).
    level_base: u32,
    /// Whether this entry was revived from a persistent store.
    persisted: bool,
}

impl NodeEntry {
    /// Snapshots a just-solved gate.
    pub(crate) fn capture(
        id: UId,
        node: UNode,
        sol: &NodeSol,
        degraded: bool,
        steps: u64,
        level_base: u32,
    ) -> NodeEntry {
        let (kind, a, b) = match node {
            UNode::And(a, b) => (1u8, a, b),
            UNode::Or(a, b) => (2u8, a, b),
            UNode::Lit(_) => unreachable!("literal nodes are solved directly, never node-cached"),
        };
        NodeEntry {
            sol: sol.clone(),
            kind,
            old_self: id.index() as u32,
            fanins: (a.index() as u32, b.index() as u32),
            degraded,
            steps,
            level_base,
            persisted: false,
        }
    }

    /// The combination steps the capture solve charged.
    pub(crate) fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether this entry came from a persistent store.
    pub(crate) fn persisted(&self) -> bool {
        self.persisted
    }

    /// Serializes the entry body (mirrors [`ConeEntry::encode`]).
    fn encode(&self, e: &mut Enc) {
        e.node_sol(&self.sol);
        e.u8(self.kind);
        e.u32(self.old_self);
        e.u32(self.fanins.0);
        e.u32(self.fanins.1);
        e.bool(self.degraded);
        e.u64(self.steps);
        e.u32(self.level_base);
    }

    /// Decodes an entry body, marking it persisted.
    fn decode(d: &mut Dec<'_>) -> Result<NodeEntry, Malformed> {
        let sol = d.node_sol()?;
        let kind = d.u8()?;
        if kind != 1 && kind != 2 {
            return Err(Malformed);
        }
        Ok(NodeEntry {
            sol,
            kind,
            old_self: d.u32()?,
            fanins: (d.u32()?, d.u32()?),
            degraded: d.bool()?,
            steps: d.u64()?,
            level_base: d.u32()?,
            persisted: true,
        })
    }

    /// Deep-copies the cached solution onto gate `node`, translating the
    /// two fanin back-pointers and re-basing levels. Returns the solution
    /// and whether the capture gate had degraded.
    pub(crate) fn rebind(&self, id: UId, node: UNode, new_base: u32) -> (NodeSol, bool) {
        let (a, b) = match node {
            UNode::And(a, b) | UNode::Or(a, b) => (a, b),
            UNode::Lit(_) => unreachable!("literal nodes are solved directly, never node-cached"),
        };
        let translate = |old: UId| -> UId {
            let idx = old.index() as u32;
            if idx == self.old_self {
                id
            } else if idx == self.fanins.0 {
                a
            } else if idx == self.fanins.1 {
                b
            } else {
                unreachable!("gate back-pointer escapes the gate and its fanins")
            }
        };
        let shift = |level: u32| -> u32 { level - self.level_base + new_base };
        let mut sol = self.sol.clone();
        for cand in sol.exported.cands_mut() {
            cand.form = rebind_form(cand.form, node, &translate);
            cand.g.level = shift(cand.g.level);
            cand.u.level = shift(cand.u.level);
        }
        if let Some(gate) = &mut sol.gate {
            gate.form = rebind_form(gate.form, node, &translate);
            gate.cost.level = shift(gate.cost.level);
        }
        if sol.exported.total_candidates() > 0 {
            sol.profile.1 = shift(sol.profile.1);
        }
        (sol, self.degraded)
    }
}

fn kind(node: UNode) -> u8 {
    match node {
        UNode::Lit(_) => 0,
        UNode::And(..) => 1,
        UNode::Or(..) => 2,
    }
}

fn rebind_form(form: Form, owner: UNode, translate: &impl Fn(UId) -> UId) -> Form {
    let rebind_ref = |mut r: CandRef| -> CandRef {
        r.node = translate(r.node);
        r
    };
    match form {
        // A literal form only ever lives in the literal node's own
        // solution, and `matches` checked the kinds align.
        Form::Lit(_) => match owner {
            UNode::Lit(l) => Form::Lit(l),
            _ => unreachable!("literal form on a gate node"),
        },
        Form::ChildGate(id) => Form::ChildGate(translate(id)),
        Form::And { top, bottom } => Form::And {
            top: rebind_ref(top),
            bottom: rebind_ref(bottom),
        },
        Form::Or { a, b } => Form::Or {
            a: rebind_ref(a),
            b: rebind_ref(b),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Objective;

    #[test]
    fn fingerprint_tracks_semantic_config_changes() {
        let base = MapConfig::default();
        let f = fingerprint(&base, Algorithm::SoiDominoMap);
        assert_eq!(f, fingerprint(&base, Algorithm::SoiDominoMap));
        assert_ne!(f, fingerprint(&base, Algorithm::DominoMap));
        let depth = MapConfig {
            objective: Objective::Depth,
            ..base
        };
        assert_ne!(f, fingerprint(&depth, Algorithm::SoiDominoMap));
        let narrow = MapConfig { w_max: 3, ..base };
        assert_ne!(f, fingerprint(&narrow, Algorithm::SoiDominoMap));
    }

    #[test]
    fn fingerprint_ignores_scheduling_knobs() {
        let base = MapConfig::default();
        let f = fingerprint(&base, Algorithm::SoiDominoMap);
        let parallel = MapConfig {
            parallelism: crate::Parallelism::Threads(7),
            ..base
        };
        assert_eq!(f, fingerprint(&parallel, Algorithm::SoiDominoMap));
        let uncached = MapConfig {
            cone_cache: false,
            ..base
        };
        assert_eq!(f, fingerprint(&uncached, Algorithm::SoiDominoMap));
    }

    #[test]
    fn fingerprint_ignores_job_control() {
        // A salvage resume clears the interrupt knobs and attaches the
        // partial cache; its fingerprint must match the interrupted run's
        // or every salvaged entry would be invisible.
        let base = MapConfig::default();
        let f = fingerprint(&base, Algorithm::SoiDominoMap);
        let controlled = MapConfig {
            limits: crate::Limits {
                deadline: Some(std::time::Duration::from_millis(5)),
                cancel: crate::CancelToken::new(),
                cancel_after_steps: Some(100),
                ..base.limits
            },
            cone_cache_min_gates: 0,
            poison_node: Some(3),
            ..base
        };
        assert_eq!(f, fingerprint(&controlled, Algorithm::SoiDominoMap));
        // The semantic budgets still participate.
        let tighter = MapConfig {
            limits: crate::Limits {
                max_tuples_per_node: 17,
                ..base.limits
            },
            ..base
        };
        assert_ne!(f, fingerprint(&tighter, Algorithm::SoiDominoMap));
    }

    #[test]
    fn capture_surfaces_foreign_degraded_nodes_as_typed_corruption() {
        use soi_unate::{convert, Options, UId};

        let mut n = soi_netlist::Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.and2(a, b);
        n.add_output("f", f);
        let unate = convert(&n, &Options::default()).expect("converts");
        let partition = unate.cone_partition();
        let unit = partition.unit(0);
        let shape = unate.cone_shape(unit);
        let table = SolTable::new(unate.len());
        for &id in unit.nodes() {
            table.set(id, NodeSol::default());
        }
        let foreign = UId::from_index(unate.len() + 7);
        let err = match ConeEntry::capture(&shape, &table, &[foreign], 0, 0) {
            Err(e) => e,
            Ok(_) => panic!("a degraded id outside the cone is corruption"),
        };
        assert!(matches!(err, crate::MapError::CacheCorrupt { .. }), "{err}");
        // A well-formed capture still succeeds.
        assert!(ConeEntry::capture(&shape, &table, &[unit.root()], 0, 0).is_ok());
    }

    #[test]
    fn empty_cache_reports_empty() {
        let c = ConeCache::new();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert!(format!("{c:?}").contains("entries"));
    }

    #[test]
    fn bypass_latches_a_hopeless_tier_at_the_first_window() {
        let probes = AtomicU64::new(0);
        let hits = AtomicU64::new(0);
        let warmup = AtomicU64::new(0);
        let bypassed = AtomicBool::new(false);
        // A tier that can't clear even half the floor in its first window
        // gets no warm-up grace: runs that probe fewer times than the
        // window (every unit test) are still never judged, but a hopeless
        // tier latches the moment the first window closes.
        for _ in 0..BYPASS_PROBE_WINDOW - 1 {
            assert!(!note_probe(&probes, &hits, &warmup, &bypassed, false, 800));
        }
        assert!(!bypassed.load(Ordering::Relaxed));
        // The window-closing probe sees 0‰ < 400‰ (= floor / 2) and
        // latches; the latch edge is reported exactly once.
        assert!(note_probe(&probes, &hits, &warmup, &bypassed, false, 800));
        assert!(bypassed.load(Ordering::Relaxed));
        assert!(!note_probe(&probes, &hits, &warmup, &bypassed, false, 800));
    }

    #[test]
    fn bypass_judges_a_middling_first_window_only_after_warmup() {
        let probes = AtomicU64::new(0);
        let hits = AtomicU64::new(0);
        let warmup = AtomicU64::new(0);
        let bypassed = AtomicBool::new(false);
        // A 50% first window clears the floor/2 hopelessness check (500‰ ≥
        // 400‰) and becomes the warm-up baseline...
        for i in 0..BYPASS_PROBE_WINDOW {
            assert!(!note_probe(
                &probes,
                &hits,
                &warmup,
                &bypassed,
                i % 2 == 0,
                800
            ));
        }
        assert!(!bypassed.load(Ordering::Relaxed));
        // ...so a second, all-miss window is judged on its own (0‰ < 800‰)
        // and latches at the second boundary, not before.
        for _ in 0..BYPASS_PROBE_WINDOW - 1 {
            assert!(!note_probe(&probes, &hits, &warmup, &bypassed, false, 800));
        }
        assert!(note_probe(&probes, &hits, &warmup, &bypassed, false, 800));
        assert!(bypassed.load(Ordering::Relaxed));
    }

    #[test]
    fn bypass_forgives_a_cold_start_once_the_tier_warms_up() {
        let probes = AtomicU64::new(0);
        let hits = AtomicU64::new(0);
        let warmup = AtomicU64::new(0);
        let bypassed = AtomicBool::new(false);
        // A cold-ish first window at exactly floor/2 (every cache starts
        // cold; 400‰ survives the hopelessness check)...
        for i in 0..BYPASS_PROBE_WINDOW {
            assert!(!note_probe(
                &probes,
                &hits,
                &warmup,
                &bypassed,
                i % 5 < 2,
                800
            ));
        }
        // ...followed by a hot steady state: the cumulative rate crosses
        // 800‰ only much later, but the post-warm-up rate is 1000‰ from
        // the second window on, so the tier is never latched.
        for _ in 0..4 * BYPASS_PROBE_WINDOW {
            assert!(!note_probe(&probes, &hits, &warmup, &bypassed, true, 800));
        }
        assert!(!bypassed.load(Ordering::Relaxed));
    }

    #[test]
    fn bypass_spares_hot_tiers_and_respects_floor_zero() {
        let probes = AtomicU64::new(0);
        let hits = AtomicU64::new(0);
        let warmup = AtomicU64::new(0);
        let bypassed = AtomicBool::new(false);
        // A tier hitting above the floor survives every window.
        for _ in 0..3 * BYPASS_PROBE_WINDOW {
            assert!(!note_probe(&probes, &hits, &warmup, &bypassed, true, 800));
        }
        assert!(!bypassed.load(Ordering::Relaxed));
        // Floor 0 disables the mechanism outright: no counting, no latch.
        let probes = AtomicU64::new(0);
        let hits = AtomicU64::new(0);
        let bypassed = AtomicBool::new(false);
        for _ in 0..3 * BYPASS_PROBE_WINDOW {
            assert!(!note_probe(&probes, &hits, &warmup, &bypassed, false, 0));
        }
        assert_eq!(probes.load(Ordering::Relaxed), 0);
        assert!(!bypassed.load(Ordering::Relaxed));
    }

    #[test]
    fn admission_scan_skips_only_cold_unrepetitive_netlists() {
        use soi_unate::{convert, Options};

        // Repetitive: >10k identical two-literal AND cones. The kind-
        // sequence proxy sees every unit but the first as a duplicate, so
        // the cache is admitted.
        let mut rep = soi_netlist::Network::new("rep");
        for i in 0..ADMISSION_MIN_GATES + 1 {
            let a = rep.add_input(format!("a{i}"));
            let b = rep.add_input(format!("b{i}"));
            let g = rep.and2(a, b);
            rep.add_output(format!("f{i}"), g);
        }
        let rep = convert(&rep, &Options::default()).expect("converts");
        let rep_partition = rep.cone_partition();
        let rep_gates = rep.stats().gates();
        assert!(rep_gates >= ADMISSION_MIN_GATES);
        let cache = ConeCache::new();
        assert!(admit_cold_cache(
            &cache,
            &rep,
            rep_partition.units(),
            rep_gates,
            800
        ));

        // Unrepetitive: every cone is a literal chain of a *different*
        // length, so no two kind sequences collide and the scan rejects
        // the cold cache — but the same netlist with a warm (non-empty)
        // cache, a zero floor, or a sub-threshold gate count is admitted.
        let mut uniq = soi_netlist::Network::new("uniq");
        let (mut chain, mut total) = (1usize, 0usize);
        while total < ADMISSION_MIN_GATES {
            let mut s = uniq.add_input(format!("x{chain}_0"));
            for j in 0..chain {
                let t = uniq.add_input(format!("x{chain}_{}", j + 1));
                s = if j % 2 == 0 {
                    uniq.and2(s, t)
                } else {
                    uniq.or2(s, t)
                };
            }
            uniq.add_output(format!("f{chain}"), s);
            total += chain;
            chain += 1;
        }
        let uniq = convert(&uniq, &Options::default()).expect("converts");
        let partition = uniq.cone_partition();
        let gates = uniq.stats().gates();
        assert!(gates >= ADMISSION_MIN_GATES);
        assert!(!admit_cold_cache(
            &cache,
            &uniq,
            partition.units(),
            gates,
            800
        ));
        assert!(admit_cold_cache(&cache, &uniq, partition.units(), gates, 0));
        assert!(admit_cold_cache(
            &cache,
            &uniq,
            partition.units(),
            ADMISSION_MIN_GATES - 1,
            800
        ));
        cache.nodes.lock().expect("cache poisoned").insert(
            [1, 2],
            Arc::new(NodeEntry {
                sol: NodeSol::default(),
                kind: 1,
                old_self: 0,
                fanins: (0, 0),
                degraded: false,
                steps: 0,
                level_base: 0,
                persisted: false,
            }),
        );
        assert!(admit_cold_cache(
            &cache,
            &uniq,
            partition.units(),
            gates,
            800
        ));
    }

    #[test]
    fn bypass_floor_separates_the_observed_corpus_rates() {
        // The default floor must sit strictly between the two observed
        // huge-bucket hit rates: control-style netlists (~731‰) latch,
        // multiplier-style netlists (~989‰) keep their cache.
        let floor = u64::from(MapConfig::DEFAULT_CACHE_BYPASS_FLOOR_PERMILLE);
        let window = BYPASS_PROBE_WINDOW;
        let control_hits = window * 731 / 1000;
        let mult_hits = window * 989 / 1000;
        assert!(control_hits * 1000 < floor * window);
        assert!(mult_hits * 1000 >= floor * window);
    }
}
