use crate::{Algorithm, MapConfig, Objective};

/// Additive cost vector carried by every DP tuple.
///
/// * `tx` — raw transistor count (logic plus committed discharge),
/// * `wtx` — the same with clock-connected transistors weighted by `k`,
/// * `disch` — committed discharge transistors only,
/// * `level` — domino-gate levels (combines by `max`, not `+`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Cost {
    /// Raw transistors.
    pub tx: u32,
    /// Clock-weighted transistors.
    pub wtx: u32,
    /// Committed discharge transistors.
    pub disch: u32,
    /// Gate levels below (and including) the structure.
    pub level: u32,
}

impl Cost {
    /// Cost of `n` plain transistors at level 0.
    pub fn transistors(n: u32) -> Cost {
        Cost {
            tx: n,
            wtx: n,
            disch: 0,
            level: 0,
        }
    }

    /// Series/parallel combination: transistors add, levels take the max.
    #[must_use]
    pub fn combine(self, other: Cost) -> Cost {
        Cost {
            tx: self.tx + other.tx,
            wtx: self.wtx + other.wtx,
            disch: self.disch + other.disch,
            level: self.level.max(other.level),
        }
    }

    /// Adds `n` committed discharge transistors (clock-connected, weight
    /// `k`).
    #[must_use]
    pub fn with_discharge(self, n: u32, k: u32) -> Cost {
        Cost {
            tx: self.tx + n,
            wtx: self.wtx + n * k,
            disch: self.disch + n,
            level: self.level,
        }
    }
}

/// Total ordering over [`Cost`] according to the configured objective and
/// algorithm, as a lexicographic key. Lower is better.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    objective: Objective,
    algorithm: Algorithm,
    depth_level_weight: u32,
}

impl CostModel {
    /// Builds the model for an algorithm under a configuration.
    pub fn new(config: &MapConfig, algorithm: Algorithm) -> CostModel {
        CostModel {
            objective: config.objective,
            algorithm,
            depth_level_weight: config.depth_level_weight,
        }
    }

    /// The comparison key (lower is better).
    ///
    /// * Area, `Domino_Map`/`RS_Map`: `(tx, level)` — plain transistor
    ///   minimization.
    /// * Area, `SOI_Domino_Map`: `(wtx, tx, level)` — clock-weighted cost
    ///   including committed discharges.
    /// * Depth, `Domino_Map`/`RS_Map`: `(level, tx)` — levels first.
    /// * Depth, `SOI_Domino_Map`: `(level·λ + disch, wtx, tx)` with
    ///   λ = `depth_level_weight` — the paper's "combination of delay and
    ///   number of discharge transistors" (§VI-D), which may trade a level
    ///   for enough discharge savings.
    pub fn key(&self, cost: &Cost) -> (u64, u64, u64) {
        match (self.objective, self.algorithm) {
            (Objective::Area, Algorithm::DominoMap | Algorithm::RsMap) => {
                (u64::from(cost.tx), u64::from(cost.level), 0)
            }
            (Objective::Area, Algorithm::SoiDominoMap) => (
                u64::from(cost.wtx),
                u64::from(cost.tx),
                u64::from(cost.level),
            ),
            (Objective::Depth, Algorithm::DominoMap | Algorithm::RsMap) => {
                (u64::from(cost.level), u64::from(cost.tx), 0)
            }
            (Objective::Depth, Algorithm::SoiDominoMap) => (
                u64::from(cost.level) * u64::from(self.depth_level_weight) + u64::from(cost.disch),
                u64::from(cost.wtx),
                u64::from(cost.tx),
            ),
        }
    }

    /// The comparison key packed into a single `u128` word, ordering
    /// exactly like [`key`](CostModel::key): the second and third tuple
    /// components are always `u32`-valued (they come straight from `Cost`
    /// fields), so `(a << 64) | (b << 32) | c` is order-preserving. The
    /// prune's final sort ranks every surviving candidate of a node;
    /// comparing one precomputed scalar there beats rebuilding a
    /// three-word tuple per comparison.
    pub fn packed_key(&self, cost: &Cost) -> u128 {
        let (a, b, c) = self.key(cost);
        debug_assert!(b >> 32 == 0 && c >> 32 == 0);
        (u128::from(a) << 64) | (u128::from(b) << 32) | u128::from(c)
    }

    /// Whether `a` is strictly better than `b`.
    pub fn better(&self, a: &Cost, b: &Cost) -> bool {
        self.key(a) < self.key(b)
    }

    /// Whether `a` is at least as good as `b`.
    pub fn at_least_as_good(&self, a: &Cost, b: &Cost) -> bool {
        self.key(a) <= self.key(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MapConfig {
        MapConfig::default()
    }

    #[test]
    fn combine_adds_and_maxes() {
        let a = Cost {
            tx: 3,
            wtx: 4,
            disch: 1,
            level: 2,
        };
        let b = Cost {
            tx: 5,
            wtx: 5,
            disch: 0,
            level: 3,
        };
        let c = a.combine(b);
        assert_eq!(c.tx, 8);
        assert_eq!(c.wtx, 9);
        assert_eq!(c.disch, 1);
        assert_eq!(c.level, 3);
    }

    #[test]
    fn discharge_weighting() {
        let c = Cost::transistors(4).with_discharge(2, 3);
        assert_eq!(c.tx, 6);
        assert_eq!(c.wtx, 4 + 6);
        assert_eq!(c.disch, 2);
    }

    #[test]
    fn area_baseline_ignores_weighting() {
        let m = CostModel::new(&cfg(), Algorithm::DominoMap);
        let cheap_raw = Cost {
            tx: 5,
            wtx: 50,
            disch: 0,
            level: 9,
        };
        let heavy_raw = Cost {
            tx: 6,
            wtx: 6,
            disch: 0,
            level: 0,
        };
        assert!(m.better(&cheap_raw, &heavy_raw));
    }

    #[test]
    fn area_soi_uses_weighted() {
        let m = CostModel::new(&cfg(), Algorithm::SoiDominoMap);
        let a = Cost {
            tx: 10,
            wtx: 12,
            disch: 2,
            level: 1,
        };
        let b = Cost {
            tx: 11,
            wtx: 11,
            disch: 0,
            level: 1,
        };
        assert!(m.better(&b, &a));
    }

    #[test]
    fn depth_soi_trades_levels_for_discharges() {
        let cfg = MapConfig {
            objective: Objective::Depth,
            depth_level_weight: 4,
            ..MapConfig::default()
        };
        let m = CostModel::new(&cfg, Algorithm::SoiDominoMap);
        let shallow_heavy = Cost {
            tx: 20,
            wtx: 20,
            disch: 6,
            level: 3,
        };
        let deep_light = Cost {
            tx: 22,
            wtx: 22,
            disch: 0,
            level: 4,
        };
        // 3*4+6 = 18 > 4*4+0 = 16 — the extra level wins.
        assert!(m.better(&deep_light, &shallow_heavy));
    }

    #[test]
    fn depth_baseline_is_level_lexicographic() {
        let cfg = MapConfig {
            objective: Objective::Depth,
            ..MapConfig::default()
        };
        let m = CostModel::new(&cfg, Algorithm::DominoMap);
        let a = Cost {
            tx: 100,
            wtx: 100,
            disch: 9,
            level: 3,
        };
        let b = Cost {
            tx: 5,
            wtx: 5,
            disch: 0,
            level: 4,
        };
        assert!(m.better(&a, &b));
    }
}
