use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use soi_unate::UnateError;

use crate::job::PartialMapping;

/// Errors produced by the technology mappers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MapError {
    /// The configuration is out of bounds.
    InvalidConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// The unate conversion front end failed.
    Unate {
        /// The underlying error.
        source: UnateError,
    },
    /// An output folded to a constant during unate conversion; domino gates
    /// cannot drive constants.
    ConstantOutput {
        /// The output's name.
        name: String,
    },
    /// A node admits no tuple within the `(W_max, H_max)` limits.
    Unmappable {
        /// Description of the node.
        what: String,
    },
    /// A deterministic resource budget from
    /// [`Limits`](crate::Limits) was exhausted.
    BudgetExceeded {
        /// Description of the exhausted budget.
        what: String,
    },
    /// The run's [`CancelToken`](crate::CancelToken) (or the deterministic
    /// `cancel_after_steps` test trip) was observed mid-run.
    Cancelled {
        /// What requested the cancellation.
        what: String,
        /// Work completed before the cancellation was observed.
        partial: Option<Arc<PartialMapping>>,
    },
    /// The wall-clock [`Limits::deadline`](crate::Limits) expired mid-run.
    DeadlineExceeded {
        /// Wall-clock time the run had consumed when the trip was observed.
        elapsed: Duration,
        /// The configured allowance.
        deadline: Duration,
        /// Work completed before the deadline tripped.
        partial: Option<Arc<PartialMapping>>,
    },
    /// A worker panicked while solving a cone unit; the panic was contained
    /// and the remaining workers drained cleanly.
    WorkerPanicked {
        /// Index of the cone unit whose task panicked.
        unit: usize,
        /// The panic payload, rendered as text.
        payload: String,
        /// Work completed by the *other* units before the drain.
        partial: Option<Arc<PartialMapping>>,
    },
    /// A cached cone entry failed an internal consistency check while being
    /// captured or rebound, or a persistent cache store was structurally
    /// damaged (bad magic, unknown version, broken entry framing).
    CacheCorrupt {
        /// Description of the violated invariant.
        what: String,
    },
    /// An I/O failure while saving or loading a persistent cache store.
    Io {
        /// The operation and underlying error, rendered as text (kept as a
        /// string so the error type stays `Clone`).
        what: String,
    },
}

impl MapError {
    /// The salvaged partial result, when this error interrupted a run that
    /// had completed work ([`Cancelled`](MapError::Cancelled),
    /// [`DeadlineExceeded`](MapError::DeadlineExceeded),
    /// [`WorkerPanicked`](MapError::WorkerPanicked)).
    pub fn partial(&self) -> Option<&Arc<PartialMapping>> {
        match self {
            MapError::Cancelled { partial, .. }
            | MapError::DeadlineExceeded { partial, .. }
            | MapError::WorkerPanicked { partial, .. } => partial.as_ref(),
            _ => None,
        }
    }

    /// Attaches a salvaged partial result to the interrupt variants;
    /// identity on every other variant. Only the DP driver calls this —
    /// deep code raises interrupts with `partial: None` and the driver
    /// fills in what survived.
    pub(crate) fn with_partial(mut self, salvage: Arc<PartialMapping>) -> MapError {
        if let MapError::Cancelled { partial, .. }
        | MapError::DeadlineExceeded { partial, .. }
        | MapError::WorkerPanicked { partial, .. } = &mut self
        {
            *partial = Some(salvage);
        }
        self
    }
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            MapError::Unate { source } => write!(f, "unate conversion failed: {source}"),
            MapError::ConstantOutput { name } => {
                write!(
                    f,
                    "output `{name}` is constant and cannot be mapped to domino"
                )
            }
            MapError::Unmappable { what } => write!(f, "no feasible tuple: {what}"),
            MapError::BudgetExceeded { what } => write!(f, "resource budget exceeded: {what}"),
            MapError::Cancelled { what, .. } => write!(f, "mapping cancelled: {what}"),
            MapError::DeadlineExceeded {
                elapsed, deadline, ..
            } => write!(f, "deadline of {deadline:?} exceeded after {elapsed:?}"),
            MapError::WorkerPanicked { unit, payload, .. } => {
                write!(f, "worker panicked on cone unit {unit}: {payload}")
            }
            MapError::CacheCorrupt { what } => write!(f, "cone cache corruption: {what}"),
            MapError::Io { what } => write!(f, "cache store I/O failure: {what}"),
        }
    }
}

impl Error for MapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapError::Unate { source } => Some(source),
            _ => None,
        }
    }
}

impl From<UnateError> for MapError {
    fn from(source: UnateError) -> MapError {
        MapError::Unate { source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MapError::ConstantOutput { name: "f".into() };
        assert!(e.to_string().contains("constant"));
        let e = MapError::InvalidConfig { what: "w".into() };
        assert!(e.to_string().contains("configuration"));
        let e = MapError::BudgetExceeded {
            what: "combine steps".into(),
        };
        assert!(e.to_string().contains("budget"));
        let e = MapError::Cancelled {
            what: "token".into(),
            partial: None,
        };
        assert!(e.to_string().contains("cancelled"));
        let e = MapError::DeadlineExceeded {
            elapsed: Duration::from_millis(7),
            deadline: Duration::from_millis(5),
            partial: None,
        };
        assert!(e.to_string().contains("deadline"));
        let e = MapError::WorkerPanicked {
            unit: 3,
            payload: "boom".into(),
            partial: None,
        };
        assert!(e.to_string().contains("unit 3"));
        let e = MapError::CacheCorrupt { what: "key".into() };
        assert!(e.to_string().contains("corruption"));
        let e = MapError::Io {
            what: "disk".into(),
        };
        assert!(e.to_string().contains("I/O"));
    }

    #[test]
    fn partial_rides_only_on_interrupt_variants() {
        let salvage = Arc::new(PartialMapping::new(
            1,
            0,
            0,
            vec![0],
            0,
            Arc::new(crate::ConeCache::new()),
        ));
        let e = MapError::Cancelled {
            what: "t".into(),
            partial: None,
        }
        .with_partial(Arc::clone(&salvage));
        assert!(e.partial().is_some());
        let e = MapError::BudgetExceeded { what: "b".into() }.with_partial(salvage);
        assert!(e.partial().is_none());
    }

    #[test]
    fn traits() {
        fn assert_err<T: Error + Send + Sync>() {}
        assert_err::<MapError>();
    }
}
