use std::error::Error;
use std::fmt;

use soi_unate::UnateError;

/// Errors produced by the technology mappers.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum MapError {
    /// The configuration is out of bounds.
    InvalidConfig {
        /// Description of the violated constraint.
        what: String,
    },
    /// The unate conversion front end failed.
    Unate {
        /// The underlying error.
        source: UnateError,
    },
    /// An output folded to a constant during unate conversion; domino gates
    /// cannot drive constants.
    ConstantOutput {
        /// The output's name.
        name: String,
    },
    /// A node admits no tuple within the `(W_max, H_max)` limits.
    Unmappable {
        /// Description of the node.
        what: String,
    },
    /// A deterministic resource budget from
    /// [`Limits`](crate::Limits) was exhausted.
    BudgetExceeded {
        /// Description of the exhausted budget.
        what: String,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
            MapError::Unate { source } => write!(f, "unate conversion failed: {source}"),
            MapError::ConstantOutput { name } => {
                write!(
                    f,
                    "output `{name}` is constant and cannot be mapped to domino"
                )
            }
            MapError::Unmappable { what } => write!(f, "no feasible tuple: {what}"),
            MapError::BudgetExceeded { what } => write!(f, "resource budget exceeded: {what}"),
        }
    }
}

impl Error for MapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MapError::Unate { source } => Some(source),
            _ => None,
        }
    }
}

impl From<UnateError> for MapError {
    fn from(source: UnateError) -> MapError {
        MapError::Unate { source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = MapError::ConstantOutput { name: "f".into() };
        assert!(e.to_string().contains("constant"));
        let e = MapError::InvalidConfig { what: "w".into() };
        assert!(e.to_string().contains("configuration"));
        let e = MapError::BudgetExceeded {
            what: "combine steps".into(),
        };
        assert!(e.to_string().contains("budget"));
    }

    #[test]
    fn traits() {
        fn assert_err<T: Error + Send + Sync>() {}
        assert_err::<MapError>();
    }
}
