use std::time::Duration;

use soi_trace::TraceHandle;
use soi_unate::OutputPhase;

use crate::job::CancelToken;

/// Which mapping algorithm a [`Mapper`](crate::Mapper) runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// `Domino_Map`: the ICCAD'98 PBE-blind DP; discharge transistors are
    /// added by post-processing.
    DominoMap,
    /// `RS_Map`: `Domino_Map` plus series-stack rearrangement before the
    /// discharge post-processing.
    RsMap,
    /// `SOI_Domino_Map`: the paper's PBE-aware DP.
    SoiDominoMap,
}

impl Algorithm {
    /// The name used in the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            Algorithm::DominoMap => "Domino_Map",
            Algorithm::RsMap => "RS_Map",
            Algorithm::SoiDominoMap => "SOI_Domino_Map",
        }
    }
}

/// Mapping objective (the DP cost function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimize transistors (Tables I–III).
    #[default]
    Area,
    /// Minimize domino-gate levels; the SOI variant folds the discharge
    /// count into the cost as §VI-D describes (Table IV).
    Depth,
}

/// When domino gates receive a foot n-clock transistor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Footing {
    /// Foot only gates whose PDN is driven by a primary input (the paper's
    /// Listing 2; inputs may be high during precharge, internal domino
    /// outputs are guaranteed low).
    #[default]
    AtPrimaryInputs,
    /// Foot every gate (conservative bulk-CMOS style).
    Always,
}

/// How the AND combination orders its two operands in the series stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AndOrder {
    /// The paper's heuristic: a parallel-bottomed operand goes to the
    /// bottom; if both qualify, the one with more potential discharge
    /// points. Used by `SOI_Domino_Map`.
    #[default]
    PaperHeuristic,
    /// Explore both orders inside the DP (strictly subsumes the heuristic;
    /// ablation A2 in DESIGN.md).
    Exhaustive,
    /// Always put the first operand on top (a neutral PBE-blind order).
    FirstOnTop,
    /// Parallel stacks toward the dynamic node — "a typical configuration
    /// in bulk CMOS" (§III-B): wide sections at the top minimize the
    /// internal diffusion capacitance exposed to charge sharing in bulk,
    /// and are exactly what excites the PBE in SOI. This is what the
    /// PBE-blind `Domino_Map` baseline uses.
    BulkTypical,
}

/// How the DP schedules its work across threads.
///
/// The parallel schedule partitions the unate network into fanout-free
/// cone units and solves them on a persistent work-stealing worker pool
/// driven by per-cone dependency counters, joining only at multi-fanout
/// boundaries. Results are bit-identical across all modes: every per-node
/// computation is a pure function of its fanins' solutions and candidate
/// enumeration order is deterministic, so the only thing parallelism
/// changes is wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use the hardware threads when the estimated DP work is above the
    /// threading break-even; stay serial below it. The cutoff is a cost
    /// model over the gate count (per-gate DP work dwarfs per-unit
    /// scheduling overhead only once the network is big enough) and the
    /// cone-unit count (each worker needs a few units to itself for
    /// stealing to pay).
    #[default]
    Auto,
    /// Single-threaded topological walk (the reference schedule).
    Serial,
    /// Exactly this many worker threads, regardless of network size
    /// (values are clamped to at least 1).
    Threads(usize),
}

impl Parallelism {
    /// Networks with fewer 2-input gates than this run serially under
    /// [`Parallelism::Auto`]. The break-even comes from the pool's fixed
    /// costs — thread spawning (tens of microseconds each) plus per-unit
    /// queue traffic — against per-gate DP work in the hundreds of
    /// nanoseconds: below roughly a thousand gates the whole DP finishes
    /// in well under a millisecond and threads cannot pay for themselves.
    pub const AUTO_MIN_PARALLEL_GATES: usize = 1024;

    /// Under [`Parallelism::Auto`], each worker must have at least this
    /// many cone units on average; otherwise the schedule has too little
    /// independent work for stealing to beat the queue traffic.
    pub const AUTO_UNITS_PER_THREAD: usize = 4;

    /// The worker-thread count for a network of `gates` 2-input gates
    /// partitioned into `units` cone units, on a machine with `hw`
    /// hardware threads. Pure so the cutoff is unit-testable; the DP
    /// passes `std::thread::available_parallelism` for `hw`.
    pub fn resolved_threads(self, hw: usize, gates: usize, units: usize) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => {
                if hw <= 1 || gates < Self::AUTO_MIN_PARALLEL_GATES {
                    return 1;
                }
                let t = hw.min(units / Self::AUTO_UNITS_PER_THREAD);
                if t < 2 {
                    1
                } else {
                    t
                }
            }
        }
    }
}

/// Deterministic resource budget for one mapping run.
///
/// Untrusted or adversarial networks can blow up the tuple DP — wide
/// fanin cones multiply candidate sets, and a hostile shape mix makes the
/// per-node combination loop quadratic in them. The limits below turn
/// "the mapper hangs" into either a typed
/// [`MapError::BudgetExceeded`](crate::MapError::BudgetExceeded) (hard
/// budgets) or a documented precision loss (the per-node tuple cap, which
/// falls back to tighter Pareto capping instead of failing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Limits {
    /// Maximum number of unate nodes the DP will accept. Exceeding it
    /// fails fast with `BudgetExceeded` before any DP work happens.
    pub max_gates: usize,
    /// Cap on the *total* exported candidates of a single node, across all
    /// `(W, H)` shapes. Exceeding it is not an error: the node's sets are
    /// re-pruned with a tighter per-shape Pareto cap (and, if the shape
    /// count alone exceeds the cap, only the cheapest shapes survive).
    pub max_tuples_per_node: usize,
    /// Maximum number of candidate-combination steps summed over the whole
    /// run. Exceeding it aborts with `BudgetExceeded`.
    pub max_combine_steps: u64,
    /// Wall-clock allowance for one run, measured from DP entry. Expiring
    /// aborts with
    /// [`MapError::DeadlineExceeded`](crate::MapError::DeadlineExceeded)
    /// carrying a salvaged [`PartialMapping`](crate::PartialMapping).
    /// `None` (the default) never trips.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation token shared with a controller thread.
    /// Tripping it aborts the run with
    /// [`MapError::Cancelled`](crate::MapError::Cancelled) carrying a
    /// salvaged [`PartialMapping`](crate::PartialMapping). The default
    /// [`CancelToken::none`] never trips.
    pub cancel: CancelToken,
    /// Deterministic cancellation trip for tests: cancel once the global
    /// combine-step count reaches this value. Unlike the wall-clock
    /// deadline this interrupts at a schedule-independent point, which is
    /// what the salvage bit-identity suite keys on. `None` (the default)
    /// never trips.
    pub cancel_after_steps: Option<u64>,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_gates: 1_000_000,
            max_tuples_per_node: 1024,
            max_combine_steps: 100_000_000,
            deadline: None,
            cancel: CancelToken::none(),
            cancel_after_steps: None,
        }
    }
}

impl Limits {
    /// Validates the budget bounds.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidConfig`](crate::MapError::InvalidConfig)
    /// if any budget is zero.
    pub fn validate(&self) -> Result<(), crate::MapError> {
        if self.max_gates == 0 || self.max_tuples_per_node == 0 || self.max_combine_steps == 0 {
            return Err(crate::MapError::InvalidConfig {
                what: "limits must all be at least 1".into(),
            });
        }
        Ok(())
    }
}

/// Full mapper configuration.
///
/// The defaults reproduce the paper's experimental setup: `W_max = 5`,
/// `H_max = 8`, area objective, unweighted clock transistors, footing at
/// primary inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapConfig {
    /// Maximum pull-down-network width (parallel transistors).
    pub w_max: u32,
    /// Maximum pull-down-network height (series transistors).
    pub h_max: u32,
    /// DP objective.
    pub objective: Objective,
    /// Cost multiplier `k` for clock-connected transistors (p-clock,
    /// n-clock and pre-discharge). `1` = plain transistor counting
    /// (Tables I/II); Table III uses `2`.
    pub clock_weight: u32,
    /// Weight of one gate level against one discharge transistor under the
    /// depth objective (`SOI_Domino_Map` only): the DP accepts one extra
    /// level if it saves more than this many discharge transistors.
    pub depth_level_weight: u32,
    /// Foot n-clock policy.
    pub footing: Footing,
    /// AND stack-order policy for `SOI_Domino_Map`.
    pub and_order: AndOrder,
    /// AND stack-order policy for the PBE-blind `Domino_Map`/`RS_Map`
    /// baselines (default [`AndOrder::BulkTypical`]).
    pub baseline_order: AndOrder,
    /// Maximum Pareto candidates kept per `(W, H)` tuple in the SOI DP.
    pub max_candidates: usize,
    /// Output-phase policy of the unate conversion front end.
    pub output_phase: OutputPhase,
    /// Allow the DP to *duplicate* multi-fanout logic into its consumers
    /// when that is cheaper than forming a shared gate (each consumer pays
    /// the full subtree cost). The paper's mapper never duplicates beyond
    /// the unate conversion — this is the replication idea of its §III-C
    /// item 3, exposed as an extension and studied in ablation A5.
    pub allow_duplication: bool,
    /// Deterministic resource budget the DP is charged against.
    pub limits: Limits,
    /// Thread schedule of the DP (results are identical in every mode).
    pub parallelism: Parallelism,
    /// Memoize structurally isomorphic fanout-free cones in a
    /// [`ConeCache`](crate::ConeCache) during the DP, rebinding the cached
    /// solution instead of re-running the per-node solver. Results are
    /// bit-identical with the cache on or off; on repetitive circuits
    /// (adders, multipliers, crypto rounds) most cones are cache hits.
    /// On by default, but gated by [`MapConfig::cone_cache_min_gates`].
    pub cone_cache: bool,
    /// Minimum unate gate count before `cone_cache` actually builds a
    /// per-run cache. On small circuits the hashing and capture overhead
    /// outruns the re-solve it saves (`BENCH_pr5.json` measured
    /// `speedup_cached` of 0.71–0.92 across the registry), so the cache is
    /// effectively off below this threshold. Set to `0` to force it on
    /// regardless of size. A cache *attached* via
    /// [`Mapper::with_cone_cache`](crate::Mapper::with_cone_cache) always
    /// bypasses the threshold — explicit sharing (warm reruns, salvage
    /// resume) is the caller's call.
    pub cone_cache_min_gates: usize,
    /// Adaptive cache-bypass floor, in hits per thousand probes. Each
    /// cache tier (cone, node) tracks its probe outcomes; every
    /// [`BYPASS_PROBE_WINDOW`](crate::ConeCache)-sized batch of probes,
    /// a tier whose cumulative hit rate sits below this floor is latched
    /// off for the rest of the cache's lifetime — no more probes, no more
    /// captures — so a cache that isn't paying for itself (irregular
    /// netlists like `synth-control-120k`) stops taxing the run, while a
    /// high-hit-rate cache (repetitive arrays like `synth-mult136`) keeps
    /// its win. Solutions are bit-identical with the bypass latched or
    /// not (the cache is semantically transparent), so this knob is
    /// excluded from the cache fingerprint. `0` disables the bypass;
    /// values above 1000 are rejected by [`validate`](MapConfig::validate).
    pub cache_bypass_floor_permille: u32,
    /// Fault-injection knob for the containment test suite: panic the
    /// worker solving whichever cone unit contains this unate node index.
    /// The panic is contained by the scheduler and surfaces as
    /// [`MapError::WorkerPanicked`](crate::MapError::WorkerPanicked). Never
    /// set in production configs; `None` by default.
    pub poison_node: Option<u32>,
    /// When a node has no `(W ≤ w_max, H ≤ h_max)` combination, force a
    /// gate boundary there by combining the children's single-gate
    /// candidates even though the resulting shape violates the limits, and
    /// record the node as degraded in the
    /// [`MappingResult`](crate::MappingResult) instead of failing with
    /// [`MapError::Unmappable`](crate::MapError::Unmappable). Off by
    /// default: the strict behaviour is the error.
    pub degrade_unmappable: bool,
    /// Instrumentation handle ([`soi_trace`]): stage spans, counters and
    /// gauges flow to its sink when enabled. Purely observational — the
    /// handle is excluded from the cone-cache config fingerprint and
    /// results are bit-identical with tracing on or off. Off by default
    /// (one dead branch per emission site).
    pub trace: TraceHandle,
}

impl Default for MapConfig {
    fn default() -> MapConfig {
        MapConfig {
            w_max: 5,
            h_max: 8,
            objective: Objective::Area,
            clock_weight: 1,
            depth_level_weight: 4,
            footing: Footing::AtPrimaryInputs,
            and_order: AndOrder::PaperHeuristic,
            baseline_order: AndOrder::BulkTypical,
            max_candidates: 4,
            output_phase: OutputPhase::Positive,
            allow_duplication: false,
            limits: Limits::default(),
            parallelism: Parallelism::default(),
            cone_cache: true,
            cone_cache_min_gates: MapConfig::DEFAULT_CONE_CACHE_MIN_GATES,
            cache_bypass_floor_permille: MapConfig::DEFAULT_CACHE_BYPASS_FLOOR_PERMILLE,
            poison_node: None,
            degrade_unmappable: false,
            trace: TraceHandle::off(),
        }
    }
}

impl MapConfig {
    /// Default [`MapConfig::cone_cache_min_gates`]: every registry
    /// benchmark sits below it (the largest, `des`, converts to a few
    /// thousand unate gates), matching the `BENCH_pr5.json` measurement
    /// that the cache only pays off past repetitive-netlist scale.
    pub const DEFAULT_CONE_CACHE_MIN_GATES: usize = 10_000;

    /// Default [`MapConfig::cache_bypass_floor_permille`]: sits between
    /// the hit rates measured on the huge corpus circuits where the cache
    /// loses (`synth-control-120k`, ~731‰, mapped 0.82× serial speed in
    /// `BENCH_pr7.json`) and where it wins (`synth-mult136`, ~989‰,
    /// 1.23×), so the bypass cuts the former loose and leaves the latter
    /// alone.
    pub const DEFAULT_CACHE_BYPASS_FLOOR_PERMILLE: u32 = 800;

    /// The paper's depth-objective configuration.
    pub fn depth() -> MapConfig {
        MapConfig {
            objective: Objective::Depth,
            ..MapConfig::default()
        }
    }

    /// The paper's Table III configuration with clock weight `k`.
    pub fn with_clock_weight(k: u32) -> MapConfig {
        MapConfig {
            clock_weight: k,
            ..MapConfig::default()
        }
    }

    /// Validates the configuration bounds.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::InvalidConfig`](crate::MapError::InvalidConfig)
    /// if a limit is zero or the candidate cap is zero.
    pub fn validate(&self) -> Result<(), crate::MapError> {
        if self.w_max == 0 || self.h_max == 0 {
            return Err(crate::MapError::InvalidConfig {
                what: "w_max and h_max must be at least 1".into(),
            });
        }
        if self.cache_bypass_floor_permille > 1000 {
            return Err(crate::MapError::InvalidConfig {
                what: "cache_bypass_floor_permille must be at most 1000".into(),
            });
        }
        if self.max_candidates == 0 {
            return Err(crate::MapError::InvalidConfig {
                what: "max_candidates must be at least 1".into(),
            });
        }
        if self.clock_weight == 0 {
            return Err(crate::MapError::InvalidConfig {
                what: "clock_weight must be at least 1".into(),
            });
        }
        self.limits.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = MapConfig::default();
        assert_eq!(c.w_max, 5);
        assert_eq!(c.h_max, 8);
        assert_eq!(c.objective, Objective::Area);
        assert_eq!(c.clock_weight, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn auto_parallelism_stays_serial_below_break_even() {
        let auto = MapConfig::default().parallelism;
        assert_eq!(auto, Parallelism::Auto);
        // Small networks resolve to 1 thread no matter the hardware.
        assert_eq!(auto.resolved_threads(8, 90, 40), 1);
        assert_eq!(auto.resolved_threads(64, 1023, 4096), 1);
        // One hardware thread is always serial.
        assert_eq!(auto.resolved_threads(1, 1_000_000, 100_000), 1);
        // Too few units per worker is serial even past the gate cutoff.
        assert_eq!(auto.resolved_threads(8, 5000, 7), 1);
    }

    #[test]
    fn auto_parallelism_scales_with_hardware_and_units() {
        let auto = Parallelism::Auto;
        assert_eq!(auto.resolved_threads(8, 5000, 400), 8);
        // Unit-starved schedules get fewer workers than the hardware has.
        assert_eq!(auto.resolved_threads(8, 5000, 12), 3);
        assert_eq!(Parallelism::Serial.resolved_threads(8, 5000, 400), 1);
        assert_eq!(Parallelism::Threads(3).resolved_threads(8, 10, 1), 3);
        assert_eq!(Parallelism::Threads(0).resolved_threads(8, 10, 1), 1);
    }

    #[test]
    fn cone_cache_is_on_by_default() {
        assert!(MapConfig::default().cone_cache);
    }

    #[test]
    fn job_control_is_inert_by_default() {
        let c = MapConfig::default();
        assert_eq!(
            c.cone_cache_min_gates,
            MapConfig::DEFAULT_CONE_CACHE_MIN_GATES
        );
        assert!(c.poison_node.is_none());
        assert!(c.limits.deadline.is_none());
        assert!(c.limits.cancel_after_steps.is_none());
        assert!(!c.limits.cancel.is_cancelled());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = MapConfig {
            w_max: 0,
            ..MapConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MapConfig {
            max_candidates: 0,
            ..MapConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MapConfig {
            clock_weight: 0,
            ..MapConfig::default()
        };
        assert!(c.validate().is_err());
        let c = MapConfig {
            limits: Limits {
                max_combine_steps: 0,
                ..Limits::default()
            },
            ..MapConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_limits_are_generous_and_valid() {
        let l = Limits::default();
        assert!(l.validate().is_ok());
        assert!(l.max_gates >= 100_000);
        assert!(l.max_tuples_per_node >= 64);
    }

    #[test]
    fn paper_names() {
        assert_eq!(Algorithm::DominoMap.paper_name(), "Domino_Map");
        assert_eq!(Algorithm::RsMap.paper_name(), "RS_Map");
        assert_eq!(Algorithm::SoiDominoMap.paper_name(), "SOI_Domino_Map");
    }
}
