//! On-disk format for persistent cone-cache stores.
//!
//! Repeated substructure amortizes *within* a run through the
//! [`ConeCache`](crate::ConeCache) tiers; this module lets it amortize
//! *across* runs: [`ConeCache::save`](crate::ConeCache::save) snapshots
//! every entry to a store file and [`ConeCache::load`](crate::ConeCache::load)
//! merges a store back in, marking each revived entry so hits it serves are
//! reported under `persist_hits`. Loaded entries are bit-identical to the
//! captures they snapshot, so a warm-started run maps exactly like a
//! cold-cache run — only faster.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic     8 bytes  b"SOIDCCH1"
//! version   u32      bumped on any layout change; no cross-version reads
//! cone_n    u64      cone-tier entry count
//! node_n    u64      node-tier entry count
//! entries   cone_n cone frames, then node_n node frames
//! ```
//!
//! Each entry frame is self-delimiting and independently checksummed:
//!
//! ```text
//! key       2 × u64  the 128-bit cache key (config fingerprint included)
//! len       u64      payload byte length
//! checksum  u64      chained multiply-xorshift over the key and the
//!                    payload (see [`checksum`])
//! payload   len bytes entry body (see `ConeEntry::encode` / `NodeEntry::encode`)
//! ```
//!
//! ## Versioning and corruption rules
//!
//! * A wrong magic or version, a truncated header, or a frame whose `len`
//!   overruns the store surfaces as a typed
//!   [`MapError::CacheCorrupt`](crate::MapError::CacheCorrupt) — framing is
//!   lost, nothing after the damage can be trusted.
//! * A frame whose checksum mismatches, or whose payload fails to decode
//!   (bad tag, over-long vector, trailing bytes), is **skipped** and
//!   counted in [`CacheLoadStats::skipped_entries`]: the frame boundary is
//!   intact, so the remaining entries still load. Loading never panics.
//! * Keys embed the config fingerprint (hashed with the standard library's
//!   [`DefaultHasher`](std::collections::hash_map::DefaultHasher), whose
//!   keys are fixed), so a store written by a binary with a different
//!   hasher implementation simply never hits — stale entries are inert,
//!   never wrong.

use crate::cache::Mix;
use crate::tuple::{Cand, CandRef, ExportMap, Form, GateSol, NodeSol, TupleKey};
use crate::Cost;
use soi_unate::{Literal, Phase, UId};

/// Store file magic: "SOI Domino Cone CacHe", format 1.
pub(crate) const MAGIC: [u8; 8] = *b"SOIDCCH1";

/// Store format version. Bump on any payload or frame layout change;
/// loading rejects every other version outright.
pub(crate) const VERSION: u32 = 1;

/// Per-entry frame checksum: the cache's chained multiply-xorshift over
/// the frame's key and its payload in 8-byte words (last word
/// zero-padded), seeded with the payload length so truncation to a word
/// boundary still mismatches. Covering the key means a flipped key byte
/// fails the checksum instead of silently filing the entry under a
/// canonical hash it does not belong to.
pub(crate) fn checksum(key: [u64; 2], payload: &[u8]) -> u64 {
    let mut h = Mix(0x7065_7273_6973_7431); // "persist1" domain seed
    h.word(key[0]);
    h.word(key[1]);
    h.word(payload.len() as u64);
    let mut chunks = payload.chunks_exact(8);
    for c in &mut chunks {
        h.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h.word(u64::from_le_bytes(last));
    }
    h.0
}

/// Append-only byte encoder for store payloads.
#[derive(Default)]
pub(crate) struct Enc {
    pub buf: Vec<u8>,
}

impl Enc {
    pub fn new() -> Enc {
        Enc::default()
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    pub fn count(&mut self, n: usize) {
        self.u64(n as u64);
    }

    fn uid(&mut self, id: UId) {
        self.u64(id.index() as u64);
    }

    fn key(&mut self, k: TupleKey) {
        self.u32(k.w);
        self.u32(k.h);
    }

    fn cost(&mut self, c: Cost) {
        self.u32(c.tx);
        self.u32(c.wtx);
        self.u32(c.disch);
        self.u32(c.level);
    }

    fn cand_ref(&mut self, r: CandRef) {
        self.uid(r.node);
        self.key(r.key);
        self.u32(r.idx);
    }

    fn form(&mut self, f: Form) {
        match f {
            Form::Lit(l) => {
                self.u8(0);
                self.u64(l.input as u64);
                self.u8(match l.phase {
                    Phase::Pos => 0,
                    Phase::Neg => 1,
                });
            }
            Form::ChildGate(id) => {
                self.u8(1);
                self.uid(id);
            }
            Form::And { top, bottom } => {
                self.u8(2);
                self.cand_ref(top);
                self.cand_ref(bottom);
            }
            Form::Or { a, b } => {
                self.u8(3);
                self.cand_ref(a);
                self.cand_ref(b);
            }
        }
    }

    fn cand(&mut self, c: &Cand) {
        self.cost(c.g);
        self.cost(c.u);
        self.u32(c.p_spine);
        self.u32(c.p_branch);
        self.bool(c.par_b);
        self.bool(c.touches_pi);
        self.form(c.form);
    }

    fn export_map(&mut self, m: &ExportMap) {
        self.count(m.shape_runs().count());
        for (key, run) in m.shape_runs() {
            self.key(key);
            self.count(run.len());
            for c in run {
                self.cand(c);
            }
        }
    }

    pub fn node_sol(&mut self, s: &NodeSol) {
        self.export_map(&s.exported);
        match &s.gate {
            None => self.u8(0),
            Some(g) => {
                self.u8(1);
                self.cost(g.cost);
                self.bool(g.footed);
                self.form(g.form);
                self.key(g.shape);
            }
        }
        self.u64(s.profile.0);
        self.u32(s.profile.1);
    }
}

/// Bounds-checked byte decoder. Every read can fail; a failure skips the
/// entry (the frame length keeps the rest of the store readable).
pub(crate) struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

/// Decode failure: the payload does not parse. Carries no context — the
/// caller reports the entry as skipped, not why.
pub(crate) struct Malformed;

type DResult<T> = Result<T, Malformed>;

impl<'a> Dec<'a> {
    pub fn new(data: &'a [u8]) -> Dec<'a> {
        Dec { data, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether every byte was consumed — trailing garbage is corruption.
    pub fn finished(&self) -> bool {
        self.remaining() == 0
    }

    pub fn take(&mut self, n: usize) -> DResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(Malformed);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> DResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> DResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn u64(&mut self) -> DResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn bool(&mut self) -> DResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Malformed),
        }
    }

    /// A count whose items each occupy at least `min_item_bytes` — bounds
    /// the claimed length against the bytes actually present, so a
    /// corrupted count can never balloon an allocation.
    pub fn count(&mut self, min_item_bytes: usize) -> DResult<usize> {
        let n = self.u64()?;
        let n = usize::try_from(n).map_err(|_| Malformed)?;
        if n > self.remaining() / min_item_bytes.max(1) {
            return Err(Malformed);
        }
        Ok(n)
    }

    fn uid(&mut self) -> DResult<UId> {
        let raw = self.u64()?;
        let idx = usize::try_from(raw).map_err(|_| Malformed)?;
        if idx > u32::MAX as usize {
            return Err(Malformed);
        }
        Ok(UId::from_index(idx))
    }

    fn key(&mut self) -> DResult<TupleKey> {
        Ok(TupleKey {
            w: self.u32()?,
            h: self.u32()?,
        })
    }

    fn cost(&mut self) -> DResult<Cost> {
        Ok(Cost {
            tx: self.u32()?,
            wtx: self.u32()?,
            disch: self.u32()?,
            level: self.u32()?,
        })
    }

    fn cand_ref(&mut self) -> DResult<CandRef> {
        Ok(CandRef {
            node: self.uid()?,
            key: self.key()?,
            idx: self.u32()?,
        })
    }

    fn form(&mut self) -> DResult<Form> {
        match self.u8()? {
            0 => {
                let input = usize::try_from(self.u64()?).map_err(|_| Malformed)?;
                let phase = match self.u8()? {
                    0 => Phase::Pos,
                    1 => Phase::Neg,
                    _ => return Err(Malformed),
                };
                Ok(Form::Lit(Literal { input, phase }))
            }
            1 => Ok(Form::ChildGate(self.uid()?)),
            2 => Ok(Form::And {
                top: self.cand_ref()?,
                bottom: self.cand_ref()?,
            }),
            3 => Ok(Form::Or {
                a: self.cand_ref()?,
                b: self.cand_ref()?,
            }),
            _ => Err(Malformed),
        }
    }

    fn cand(&mut self) -> DResult<Cand> {
        Ok(Cand {
            g: self.cost()?,
            u: self.cost()?,
            p_spine: self.u32()?,
            p_branch: self.u32()?,
            par_b: self.bool()?,
            touches_pi: self.bool()?,
            form: self.form()?,
        })
    }

    fn export_map(&mut self) -> DResult<ExportMap> {
        // Smallest run frame: key (8) + count (8).
        let runs = self.count(16)?;
        let mut map = ExportMap::default();
        for _ in 0..runs {
            let key = self.key()?;
            // Smallest candidate: 2 costs + 2 u32 + 2 bools + 1-byte form
            // tag + its smallest body (ChildGate: 8) = 51 bytes.
            let n = self.count(51)?;
            let mut cands = Vec::with_capacity(n);
            for _ in 0..n {
                cands.push(self.cand()?);
            }
            // Out-of-order or duplicate shapes are corruption: `append_run`
            // refuses, we report malformed.
            if !map.append_run(key, cands.into_iter()) {
                return Err(Malformed);
            }
        }
        Ok(map)
    }

    pub fn node_sol(&mut self) -> DResult<NodeSol> {
        let exported = self.export_map()?;
        let gate = match self.u8()? {
            0 => None,
            1 => Some(GateSol {
                cost: self.cost()?,
                footed: self.bool()?,
                form: self.form()?,
                shape: self.key()?,
            }),
            _ => return Err(Malformed),
        };
        let profile = (self.u64()?, self.u32()?);
        Ok(NodeSol {
            exported,
            gate,
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_distinguishes_truncation_flips_and_keys() {
        let key = [0xfeed, 0xbeef];
        let payload = b"0123456789abcdef!";
        let full = checksum(key, payload);
        assert_eq!(full, checksum(key, payload));
        assert_ne!(full, checksum(key, &payload[..16]));
        assert_ne!(full, checksum(key, &payload[..8]));
        let mut flipped = payload.to_vec();
        flipped[3] ^= 0x40;
        assert_ne!(full, checksum(key, &flipped));
        assert_ne!(full, checksum([0xfeee, 0xbeef], payload));
        assert_ne!(full, checksum([0xfeed, 0xbeee], payload));
    }

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xdead_beef);
        e.u64(u64::MAX - 3);
        e.bool(true);
        e.bool(false);
        e.count(5);
        let mut d = Dec::new(&e.buf);
        assert_eq!(d.u8().ok(), Some(7));
        assert_eq!(d.u32().ok(), Some(0xdead_beef));
        assert_eq!(d.u64().ok(), Some(u64::MAX - 3));
        assert_eq!(d.bool().ok(), Some(true));
        assert_eq!(d.bool().ok(), Some(false));
        // count(1): five items need five bytes, none remain.
        assert!(d.count(1).is_err());
        let mut zero = Enc::new();
        zero.count(0);
        let mut d = Dec::new(&zero.buf);
        assert_eq!(d.count(1).ok(), Some(0));
        assert!(d.finished());
    }

    #[test]
    fn node_sol_round_trips() {
        let mut sol = NodeSol::default();
        let c = Cand {
            g: Cost::transistors(3),
            u: Cost::transistors(5),
            p_spine: 1,
            p_branch: 2,
            par_b: true,
            touches_pi: false,
            form: Form::And {
                top: CandRef {
                    node: UId::from_index(4),
                    key: TupleKey { w: 1, h: 2 },
                    idx: 0,
                },
                bottom: CandRef {
                    node: UId::from_index(9),
                    key: TupleKey::UNIT,
                    idx: 3,
                },
            },
        };
        assert!(sol.exported.append_run(TupleKey::UNIT, std::iter::once(c)));
        assert!(sol
            .exported
            .append_run(TupleKey { w: 2, h: 1 }, [c, c].into_iter()));
        sol.gate = Some(GateSol {
            cost: Cost::transistors(11),
            footed: true,
            form: Form::ChildGate(UId::from_index(4)),
            shape: TupleKey { w: 2, h: 2 },
        });
        sol.profile = (0x1234_5678_9abc_def0, 7);
        let mut e = Enc::new();
        e.node_sol(&sol);
        let mut d = Dec::new(&e.buf);
        let back = d.node_sol().ok().expect("decodes");
        assert!(d.finished());
        assert_eq!(back.profile, sol.profile);
        assert_eq!(
            back.gate.as_ref().map(|g| g.cost),
            Some(Cost::transistors(11))
        );
        let flat: Vec<_> = back.exported.flat().map(|(k, c)| (k, *c)).collect();
        let orig: Vec<_> = sol.exported.flat().map(|(k, c)| (k, *c)).collect();
        assert_eq!(flat, orig);
    }

    #[test]
    fn malformed_bytes_never_panic() {
        // Every truncation of a valid encoding decodes to Err, not a panic.
        let mut e = Enc::new();
        e.node_sol(&NodeSol::default());
        for cut in 0..e.buf.len() {
            let mut d = Dec::new(&e.buf[..cut]);
            assert!(d.node_sol().is_err() || !d.finished());
        }
        // Bad enum tags fail cleanly.
        let mut d = Dec::new(&[0xff; 64]);
        assert!(d.form().is_err());
        let mut d = Dec::new(&[0xff; 64]);
        assert!(d.bool().is_err());
    }
}
