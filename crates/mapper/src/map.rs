use std::sync::Arc;

use soi_netlist::Network;
use soi_trace::Stage;
use soi_unate::{convert, Options, UnateNetwork};

use crate::{baseline, reconstruct, soi, Algorithm, ConeCache, MapConfig, MapError, MappingResult};

/// A configured technology mapper.
///
/// Construct one per algorithm with [`Mapper::baseline`],
/// [`Mapper::rearrange_stacks`] or [`Mapper::soi`], then call
/// [`Mapper::run`] on a logic network (or [`Mapper::run_unate`] on an
/// already-converted unate network).
///
/// # Example
///
/// ```rust
/// use soi_netlist::Network;
/// use soi_mapper::{MapConfig, Mapper};
///
/// # fn main() -> Result<(), soi_mapper::MapError> {
/// let mut n = Network::new("t");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let c = n.add_input("c");
/// let g1 = n.and2(a, b);
/// let f = n.or2(g1, c);
/// n.add_output("f", f);
///
/// let result = Mapper::soi(MapConfig::default()).run(&n)?;
/// assert_eq!(result.counts.gates, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mapper {
    algorithm: Algorithm,
    config: MapConfig,
    /// Cone cache shared across runs, when attached. `None` means each run
    /// builds (and drops) its own, per [`MapConfig::cone_cache`].
    cache: Option<Arc<ConeCache>>,
}

impl Mapper {
    /// The PBE-blind `Domino_Map` baseline with discharge post-processing.
    pub fn baseline(config: MapConfig) -> Mapper {
        Mapper {
            algorithm: Algorithm::DominoMap,
            config,
            cache: None,
        }
    }

    /// `RS_Map`: the baseline plus series-stack rearrangement before
    /// discharge insertion.
    pub fn rearrange_stacks(config: MapConfig) -> Mapper {
        Mapper {
            algorithm: Algorithm::RsMap,
            config,
            cache: None,
        }
    }

    /// The paper's `SOI_Domino_Map`.
    pub fn soi(config: MapConfig) -> Mapper {
        Mapper {
            algorithm: Algorithm::SoiDominoMap,
            config,
            cache: None,
        }
    }

    /// Attaches a [`ConeCache`] shared across this mapper's runs (and with
    /// any other mapper holding the same `Arc`): later runs of structurally
    /// similar networks start warm. Results are unaffected — the cache only
    /// skips recomputation. Overrides [`MapConfig::cone_cache`] being
    /// `false`.
    pub fn with_cone_cache(mut self, cache: Arc<ConeCache>) -> Mapper {
        self.cache = Some(cache);
        self
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The configuration.
    pub fn config(&self) -> &MapConfig {
        &self.config
    }

    /// Maps an arbitrary logic network: unate conversion, then the tuple
    /// DP, then gate materialization and discharge protection.
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] for invalid configurations, networks that
    /// fail validation, constant outputs, or nodes that do not fit the
    /// `(W_max, H_max)` limits.
    pub fn run(&self, network: &Network) -> Result<MappingResult, MapError> {
        self.config.validate()?;
        let unate = {
            let _span = self.config.trace.span(Stage::UnateConvert);
            convert(
                network,
                &Options {
                    output_phase: self.config.output_phase,
                },
            )?
        };
        self.run_unate(&unate)
    }

    /// Maps an already-unate network.
    ///
    /// # Errors
    ///
    /// As for [`Mapper::run`], minus the unate-conversion failures.
    pub fn run_unate(&self, unate: &UnateNetwork) -> Result<MappingResult, MapError> {
        self.config.validate()?;
        // An attached cache always wins (the caller already paid for it —
        // shared warm caches and salvage resumes bypass the size gate);
        // otherwise build a per-run cache when the config asks for one and
        // the network is big enough to amortize shape hashing
        // (`cone_cache_min_gates` — BENCH_pr5.json showed per-run caching
        // costing 8–29% on the small registry circuits).
        let own_cache = match &self.cache {
            Some(_) => None,
            None if self.config.cone_cache
                && unate.stats().gates() >= self.config.cone_cache_min_gates =>
            {
                Some(ConeCache::new())
            }
            None => None,
        };
        let cache = self.cache.as_deref().or(own_cache.as_ref());
        let trace = self.config.trace;
        let solution = {
            let _span = trace.span(Stage::Dp);
            match self.algorithm {
                Algorithm::DominoMap | Algorithm::RsMap => {
                    baseline::solve(unate, &self.config, cache)?
                }
                Algorithm::SoiDominoMap => soi::solve(unate, &self.config, cache)?,
            }
        };
        let attach_discharge = matches!(self.algorithm, Algorithm::SoiDominoMap);
        let mut circuit = {
            let _span = trace.span(Stage::Reconstruct);
            reconstruct::materialize(unate, &solution.sols, &self.config, attach_discharge)?
        };
        match self.algorithm {
            Algorithm::DominoMap => {
                let _span = trace.span(Stage::PbePostprocess);
                soi_pbe::postprocess::insert_discharge_traced(&mut circuit, trace);
            }
            Algorithm::RsMap => {
                let _span = trace.span(Stage::PbePostprocess);
                soi_pbe::rearrange::rearrange_stacks(&mut circuit);
                soi_pbe::postprocess::insert_discharge_traced(&mut circuit, trace);
            }
            Algorithm::SoiDominoMap => {}
        }
        let counts = circuit.counts();
        let ustats = unate.stats();
        Ok(MappingResult {
            algorithm: self.algorithm,
            circuit,
            counts,
            unate_gates: ustats.gates(),
            unate_depth: ustats.depth,
            degraded_nodes: solution.degraded.iter().map(|id| id.index()).collect(),
            peak_candidates: solution.peak_candidates,
            threads_used: solution.threads_used,
            cone_cache_hits: solution.cache_hits,
            cone_cache_misses: solution.cache_misses,
            combine_steps: solution.combine_steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_pbe::hazard;

    fn fig2a_network() -> Network {
        let mut n = Network::new("fig2a");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let d = n.add_input("d");
        let ab = n.or2(a, b);
        let abc = n.or2(ab, c);
        let f = n.and2(abc, d);
        n.add_output("f", f);
        n
    }

    #[test]
    fn all_three_mappers_are_pbe_safe() {
        let n = fig2a_network();
        for mapper in [
            Mapper::baseline(MapConfig::default()),
            Mapper::rearrange_stacks(MapConfig::default()),
            Mapper::soi(MapConfig::default()),
        ] {
            let result = mapper.run(&n).unwrap();
            result.circuit.validate().unwrap();
            assert!(
                hazard::is_safe(&result.circuit),
                "{:?} left hazards",
                mapper.algorithm()
            );
        }
    }

    #[test]
    fn fig2a_discharge_counts_per_algorithm() {
        let n = fig2a_network();
        let base = Mapper::baseline(MapConfig::default()).run(&n).unwrap();
        let rs = Mapper::rearrange_stacks(MapConfig::default())
            .run(&n)
            .unwrap();
        let soi = Mapper::soi(MapConfig::default()).run(&n).unwrap();
        // The baseline puts the OR stack on top (first operand), needing a
        // discharge transistor; RS and SOI reorder it away.
        assert_eq!(base.counts.discharge, 1);
        assert_eq!(rs.counts.discharge, 0);
        assert_eq!(soi.counts.discharge, 0);
        assert_eq!(soi.counts.total, 9);
        assert_eq!(base.counts.total, 10);
    }

    #[test]
    fn mapped_circuit_computes_the_function() {
        let n = fig2a_network();
        for mapper in [
            Mapper::baseline(MapConfig::default()),
            Mapper::soi(MapConfig::default()),
        ] {
            let result = mapper.run(&n).unwrap();
            for bits in 0..16u32 {
                let v: Vec<bool> = (0..4).map(|k| bits & (1 << k) != 0).collect();
                let want = n.simulate(&v).unwrap();
                let got = result.circuit.evaluate(&v).unwrap();
                assert_eq!(got, want, "bits {bits:04b}");
            }
        }
    }

    #[test]
    fn soi_total_never_exceeds_baseline_plus_discharge() {
        // On this example the SOI total is strictly smaller.
        let n = fig2a_network();
        let base = Mapper::baseline(MapConfig::default()).run(&n).unwrap();
        let soi = Mapper::soi(MapConfig::default()).run(&n).unwrap();
        assert!(soi.counts.total <= base.counts.total);
    }

    #[test]
    fn dp_cost_matches_materialized_counts() {
        let n = fig2a_network();
        let soi = Mapper::soi(MapConfig::default()).run(&n).unwrap();
        // One gate: 4 PDN + 5 overhead + 0 discharge.
        assert_eq!(soi.counts.logic, 9);
        assert_eq!(soi.counts.discharge, 0);
        assert_eq!(soi.counts.gates, 1);
        assert_eq!(soi.counts.levels, 1);
    }

    #[test]
    fn tiny_limits_are_unmappable() {
        let n = fig2a_network();
        let config = MapConfig {
            w_max: 1,
            h_max: 1,
            ..MapConfig::default()
        };
        for mapper in [Mapper::baseline(config), Mapper::soi(config)] {
            assert!(matches!(mapper.run(&n), Err(MapError::Unmappable { .. })));
        }
    }

    #[test]
    fn zero_limits_are_invalid_config() {
        let n = fig2a_network();
        let config = MapConfig {
            w_max: 0,
            ..MapConfig::default()
        };
        assert!(matches!(
            Mapper::soi(config).run(&n),
            Err(MapError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn degradation_recovers_unmappable_networks() {
        let n = fig2a_network();
        let strict = MapConfig {
            w_max: 1,
            h_max: 1,
            ..MapConfig::default()
        };
        let degrade = MapConfig {
            degrade_unmappable: true,
            ..strict
        };
        for (make, _name) in [
            (Mapper::baseline as fn(MapConfig) -> Mapper, "baseline"),
            (Mapper::soi as fn(MapConfig) -> Mapper, "soi"),
        ] {
            assert!(matches!(
                make(strict).run(&n),
                Err(MapError::Unmappable { .. })
            ));
            let result = make(degrade).run(&n).unwrap();
            assert!(result.is_degraded());
            assert!(!result.degraded_nodes.is_empty());
            result.circuit.validate().unwrap();
            assert!(hazard::is_safe(&result.circuit));
            // The degraded circuit still computes the function.
            for bits in 0..16u32 {
                let v: Vec<bool> = (0..4).map(|k| bits & (1 << k) != 0).collect();
                assert_eq!(
                    result.circuit.evaluate(&v).unwrap(),
                    n.simulate(&v).unwrap(),
                    "bits {bits:04b}"
                );
            }
        }
    }

    #[test]
    fn default_limits_leave_results_unchanged() {
        let n = fig2a_network();
        let result = Mapper::soi(MapConfig::default()).run(&n).unwrap();
        assert!(!result.is_degraded());
        assert!(result.degraded_nodes.is_empty());
    }

    #[test]
    fn gate_budget_rejects_oversized_networks() {
        let n = fig2a_network();
        let mut config = MapConfig::default();
        config.limits.max_gates = 2;
        assert!(matches!(
            Mapper::soi(config).run(&n),
            Err(MapError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn combine_budget_trips_on_small_allowance() {
        let n = fig2a_network();
        let mut config = MapConfig::default();
        config.limits.max_combine_steps = 3;
        for mapper in [Mapper::baseline(config), Mapper::soi(config)] {
            assert!(matches!(
                mapper.run(&n),
                Err(MapError::BudgetExceeded { .. })
            ));
        }
    }

    #[test]
    fn binate_network_maps_via_unate_conversion() {
        let mut n = Network::new("binate");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let x = n.xor2(a, b);
        let f = n.nand2(x, c);
        n.add_output("f", f);
        let result = Mapper::soi(MapConfig::default()).run(&n).unwrap();
        assert!(hazard::is_safe(&result.circuit));
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|k| bits & (1 << k) != 0).collect();
            assert_eq!(
                result.circuit.evaluate(&v).unwrap(),
                n.simulate(&v).unwrap(),
                "bits {bits:03b}"
            );
        }
    }

    #[test]
    fn duplication_replicates_cheap_shared_logic() {
        let mut n = Network::new("shared");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let shared = n.and2(a, b);
        let f1 = n.or2(shared, c);
        let f2 = n.and2(shared, c);
        n.add_output("f1", f1);
        n.add_output("f2", f2);
        let plain = Mapper::soi(MapConfig::default()).run(&n).unwrap();
        let dup = Mapper::soi(MapConfig {
            allow_duplication: true,
            ..MapConfig::default()
        })
        .run(&n)
        .unwrap();
        // Duplicating the tiny shared AND beats paying a whole gate.
        assert_eq!(plain.counts.gates, 3);
        assert_eq!(dup.counts.gates, 2);
        assert!(dup.counts.total < plain.counts.total);
        assert!(hazard::is_safe(&dup.circuit));
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|k| bits & (1 << k) != 0).collect();
            assert_eq!(
                dup.circuit.evaluate(&v).unwrap(),
                n.simulate(&v).unwrap(),
                "bits {bits:03b}"
            );
        }
    }

    #[test]
    fn shared_node_becomes_one_gate() {
        let mut n = Network::new("shared");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let shared = n.and2(a, b);
        let f1 = n.or2(shared, c);
        let f2 = n.and2(shared, c);
        n.add_output("f1", f1);
        n.add_output("f2", f2);
        let result = Mapper::soi(MapConfig::default()).run(&n).unwrap();
        // shared AND forms its own gate, plus one per output = 3.
        assert_eq!(result.counts.gates, 3);
        assert_eq!(result.counts.levels, 2);
    }

    #[test]
    fn constant_output_is_a_typed_error() {
        let mut n = Network::new("stuck");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let one = n.add_const(true);
        let f = n.and2(a, b);
        n.add_output("f", f); // a real function, maps fine on its own
        n.add_output("g", one); // stuck-at-1: must be refused, not mapped
        let err = Mapper::soi(MapConfig::default()).run(&n).unwrap_err();
        assert!(
            matches!(err, MapError::ConstantOutput { ref name } if name == "g"),
            "{err}"
        );
    }
}
