//! The `Domino_Map` baseline: the Zhao–Sapatnekar ICCAD'98 dynamic program
//! over `{W, H, cost}` tuples, blind to the parasitic bipolar effect.
//!
//! Each unate node accumulates the cheapest cost for every feasible
//! pull-down shape `(W, H)`; AND stacks combine as
//! `{max(W1,W2), H1+H2}` and OR stacks as `{W1+W2, max(H1,H2)}` (§IV,
//! Listing 1). Stack order inside an AND follows
//! [`MapConfig::baseline_order`] — by default the bulk-CMOS-typical
//! parallel-toward-the-dynamic-node orientation of the paper's §III-B,
//! which is exactly what excites the PBE. The consequences are somebody
//! else's problem, namely `soi_pbe::postprocess` (and `soi_pbe::rearrange`
//! for `RS_Map`).

use soi_unate::{UId, UNode, UnateNetwork};

use crate::arena::CandArena;
use crate::dp::{self, NodeCtx, NodeOutcome, Scratch, SolView};
use crate::tuple::{Cand, CandRef, ExportMap, Form, NodeSol, TupleKey};
use crate::{Algorithm, ConeCache, CostModel, MapConfig, MapError};

/// Runs the baseline DP, producing one [`NodeSol`] per unate node.
pub(crate) fn solve(
    unate: &UnateNetwork,
    config: &MapConfig,
    cache: Option<&ConeCache>,
) -> Result<dp::Solution, MapError> {
    dp::run_dp(unate, config, Algorithm::DominoMap, solve_node, cache)
}

/// Records `cand` in the key-sorted best-per-shape list, keeping the
/// cheaper of it and any incumbent (first seen wins ties, as the model's
/// strict `better` demands). Returns whether a candidate was dropped (the
/// loser of an incumbent comparison) — candidate-balance bookkeeping.
fn consider(
    best: &mut Vec<(TupleKey, u32)>,
    arena: &mut CandArena,
    model: &CostModel,
    key: TupleKey,
    cand: Cand,
) -> bool {
    match best.binary_search_by_key(&key, |&(k, _)| k) {
        Ok(i) => {
            if model.better(&cand.g, &arena.g(best[i].1)) {
                best[i].1 = arena.push(cand);
            }
            true
        }
        Err(i) => {
            best.insert(i, (key, arena.push(cand)));
            false
        }
    }
}

/// Solves one unate node: keep the single best candidate per shape.
fn solve_node(
    ctx: &NodeCtx<'_>,
    view: &SolView<'_>,
    scratch: &mut Scratch,
    id: UId,
    node: UNode,
) -> Result<NodeOutcome, MapError> {
    let config = ctx.config;
    let model = ctx.model;
    let (a, b, is_and) = match node {
        UNode::Lit(l) => return Ok((dp::literal_sol(id, l, config, model), false)),
        UNode::And(a, b) => (a, b, true),
        UNode::Or(a, b) => (a, b, false),
    };
    let (sol_a, sol_b) = (view.get(a), view.get(b));
    // Best candidate per shape, accumulated key-sorted in the reused
    // scratch arena (a handful of shapes — binary search + insert beats
    // hashing at this size, and the order is deterministic for free).
    let Scratch {
        cands,
        pairs: bare,
        left,
        right,
        right_runs,
        shapes,
        staged,
        ..
    } = scratch;
    cands.clear();
    bare.clear();
    // Materialize both export lists once (dense slices for the quadratic
    // loop, with run boundaries on the right so the shape-limit check
    // hoists to run granularity) and bulk-charge the whole cross-product
    // upfront — identical cumulative budget totals, one atomic add per
    // node.
    left.clear();
    left.extend(sol_a.exported_refs(a).map(|(r, c)| (r, *c)));
    right.clear();
    right_runs.clear();
    for (key, run) in sol_b.exported.shape_runs() {
        let start = right.len() as u32;
        right.extend(run.iter().enumerate().map(|(idx, c)| {
            (
                CandRef {
                    node: b,
                    key,
                    idx: idx as u32,
                },
                *c,
            )
        }));
        right_runs.push((key, start, run.len() as u32));
    }
    // Candidate-balance bookkeeping (`generated == pruned + exported` per
    // solved node): every constructed candidate counts as generated, every
    // incumbent comparison drops exactly one.
    let mut generated = 0u64;
    let mut pruned = 0u64;
    ctx.charge_many(left.len() as u64 * right.len() as u64, id)?;
    for &(ra, ca) in left.iter() {
        for &(kb, rstart, rlen) in right_runs.iter() {
            let key = if is_and {
                ra.key.and(kb)
            } else {
                ra.key.or(kb)
            };
            if !key.fits(config.w_max, config.h_max) {
                continue;
            }
            for &(rb, cb) in &right[rstart as usize..(rstart + rlen) as usize] {
                let cand = combine(config.baseline_order, is_and, ra, &ca, rb, &cb);
                generated += 1;
                pruned += u64::from(consider(bare, cands, model, key, cand));
            }
        }
    }
    let mut degraded = false;
    if bare.is_empty() && config.degrade_unmappable {
        // Forced gate boundary: combine the children's single-gate `{1,1}`
        // candidates, accepting the out-of-limits shape, and record the
        // node as degraded.
        let units_a = left
            .iter()
            .filter(|&&(r, _)| r.key == TupleKey::UNIT)
            .count();
        let units_b = right
            .iter()
            .filter(|&&(r, _)| r.key == TupleKey::UNIT)
            .count();
        ctx.charge_many(units_a as u64 * units_b as u64, id)?;
        for &(ra, ca) in left.iter() {
            if ra.key != TupleKey::UNIT {
                continue;
            }
            for &(rb, cb) in right.iter() {
                if rb.key != TupleKey::UNIT {
                    continue;
                }
                let key = if is_and {
                    ra.key.and(rb.key)
                } else {
                    ra.key.or(rb.key)
                };
                let cand = combine(config.baseline_order, is_and, ra, &ca, rb, &cb);
                generated += 1;
                pruned += u64::from(consider(bare, cands, model, key, cand));
            }
        }
        degraded = true;
    }
    if bare.is_empty() {
        return Err(MapError::Unmappable {
            what: format!(
                "node {id} has no (W ≤ {}, H ≤ {}) combination",
                config.w_max, config.h_max
            ),
        });
    }
    // The baseline keeps one candidate per shape, so the tuple cap is a
    // shape cap: `enforce_tuple_cap` keeps the cheapest shapes.
    shapes.clear();
    staged.clear();
    for (i, &(key, h)) in bare.iter().enumerate() {
        staged.push(h);
        shapes.push((key, i as u32, 1));
    }
    crate::soi::enforce_tuple_cap(
        shapes,
        staged,
        cands,
        model,
        config.limits.max_tuples_per_node,
    );
    let survivors: u64 = shapes.iter().map(|&(_, _, len)| u64::from(len)).sum();
    pruned += staged.len() as u64 - survivors;
    // Gate formation runs straight off the staged runs; a shared node
    // never materializes the export set it is about to discard.
    let mut sol = NodeSol {
        gate: dp::form_gate(
            config,
            model,
            shapes.iter().flat_map(|&(key, start, len)| {
                let arena = &*cands;
                staged[start as usize..(start + len) as usize]
                    .iter()
                    .map(move |&h| (key, arena.get(h)))
            }),
        ),
        ..NodeSol::default()
    };
    let gate = sol.gate.as_ref().expect("nonempty bare set");
    let gate_cand = dp::exported_gate_cand(id, gate, ctx.fanouts[id.index()], config);
    let mut bare_exported = survivors;
    if ctx.fanouts[id.index()] <= 1 || config.allow_duplication {
        sol.exported = ExportMap::from_runs_with_unit(shapes, staged, cands, gate_cand);
    } else {
        // A shared node exports only its formed gate: the bare survivors
        // are discarded here, not exported.
        pruned += bare_exported;
        bare_exported = 0;
        sol.exported = ExportMap::unit(gate_cand);
    }
    let trace = config.trace;
    if trace.enabled() {
        trace.count(soi_trace::Counter::CandidatesGenerated, generated);
        trace.count(soi_trace::Counter::CandidatesPruned, pruned);
        trace.count(soi_trace::Counter::CandidatesExported, bare_exported);
    }
    Ok((sol, degraded))
}

/// PBE-blind combination. Potential-point bookkeeping (`p_dis`, `par_b`)
/// is still tracked — not to influence the cost, which stays pure logic,
/// but to drive the bulk-typical stack orientation.
fn combine(
    order: crate::AndOrder,
    is_and: bool,
    ra: CandRef,
    ca: &Cand,
    rb: CandRef,
    cb: &Cand,
) -> Cand {
    let g = ca.g.combine(cb.g);
    let touches_pi = ca.touches_pi || cb.touches_pi;
    if !is_and {
        return Cand {
            g,
            u: g,
            p_spine: 0,
            p_branch: ca.p_dis() + cb.p_dis(),
            par_b: true,
            touches_pi,
            form: Form::Or { a: ra, b: rb },
        };
    }
    let a_on_top = match order {
        // Bulk practice: the parallel-bearing, junction-rich operand goes
        // toward the dynamic node (§III-B "typical configuration").
        crate::AndOrder::BulkTypical => {
            ca.p_branch + u32::from(ca.par_b) >= cb.p_branch + u32::from(cb.par_b)
        }
        _ => true,
    };
    let (rt, ct, rbm, cbm) = if a_on_top {
        (ra, ca, rb, cb)
    } else {
        (rb, cb, ra, ca)
    };
    Cand {
        g,
        u: g,
        p_spine: cbm.p_spine + ct.p_spine + u32::from(!ct.par_b),
        p_branch: cbm.p_branch,
        par_b: cbm.par_b,
        touches_pi,
        form: Form::And {
            top: rt,
            bottom: rbm,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_unate::{Literal, Phase, USignal};

    /// The paper's Fig. 3 network: two 2-input ANDs feeding an OR,
    /// `W_max = H_max = 4`.
    fn fig3_unate() -> UnateNetwork {
        let mut u = UnateNetwork::new((0..4).map(|i| format!("i{i}")).collect());
        let lits: Vec<_> = (0..4)
            .map(|i| {
                u.add_literal(Literal {
                    input: i,
                    phase: Phase::Pos,
                })
            })
            .collect();
        let and1 = u.add_and(lits[0], lits[1]);
        let and2 = u.add_and(lits[2], lits[3]);
        let or = u.add_or(and1, and2);
        u.add_output("f", USignal::Node(or), false);
        u
    }

    fn fig3_config() -> MapConfig {
        MapConfig {
            w_max: 4,
            h_max: 4,
            ..MapConfig::default()
        }
    }

    #[test]
    fn fig3_and_node_tuples() {
        let u = fig3_unate();
        let sols = solve(&u, &fig3_config(), None).unwrap().sols;
        // AND node (index 4): bare {1,2} with cost 2, gate cost 7.
        let and_sol = &sols[4];
        let bare = &and_sol.exported[&TupleKey { w: 1, h: 2 }];
        assert_eq!(bare[0].g.tx, 2);
        let gate = and_sol.gate.as_ref().unwrap();
        assert_eq!(gate.cost.tx, 7); // 2 + 5 (footed: PIs)
                                     // Exported gate tuple carries cost 8 = 7 + the driven transistor.
        let unit = &and_sol.exported[&TupleKey::UNIT];
        assert_eq!(unit[0].g.tx, 8);
    }

    #[test]
    fn fig3_or_node_selects_cost_4_and_gate_cost_9() {
        let u = fig3_unate();
        let sols = solve(&u, &fig3_config(), None).unwrap().sols;
        let or_sol = &sols[6];
        // {2,2}: both ANDs absorbed, cost 4.
        let best = &or_sol.exported[&TupleKey { w: 2, h: 2 }];
        assert_eq!(best[0].g.tx, 4);
        // {2,1}: both as gates, cost 16.
        let gates = &or_sol.exported[&TupleKey { w: 2, h: 1 }];
        assert_eq!(gates[0].g.tx, 16);
        // Final gate: 4 + 5 = 9 (the paper's result).
        assert_eq!(or_sol.gate.as_ref().unwrap().cost.tx, 9);
    }

    #[test]
    fn fig3_mixed_combination_cost_10() {
        // gate + bare = {2,2} cost 10, dominated by the 4.
        // Verify by re-running with H_max = 2 blocking... the {2,2}
        // all-bare solution needs H=2, which fits; instead check the mixed
        // entry loses: the kept {2,2} candidate must cost 4, not 10.
        let u = fig3_unate();
        let sols = solve(&u, &fig3_config(), None).unwrap().sols;
        let or_sol = &sols[6];
        assert_eq!(or_sol.exported[&TupleKey { w: 2, h: 2 }][0].g.tx, 4);
    }

    #[test]
    fn shallow_limits_force_gate_boundaries() {
        let u = fig3_unate();
        let config = MapConfig {
            w_max: 2,
            h_max: 1,
            ..MapConfig::default()
        };
        // H_max = 1 forbids the bare AND stack; ANDs must form gates...
        // but an AND of two {1,1} literals needs H = 2, so the AND node
        // itself is unmappable.
        assert!(matches!(
            solve(&u, &config, None),
            Err(MapError::Unmappable { .. })
        ));
    }

    #[test]
    fn multi_fanout_node_exports_only_gate() {
        let mut u = UnateNetwork::new((0..3).map(|i| format!("i{i}")).collect());
        let a = u.add_literal(Literal {
            input: 0,
            phase: Phase::Pos,
        });
        let b = u.add_literal(Literal {
            input: 1,
            phase: Phase::Pos,
        });
        let c = u.add_literal(Literal {
            input: 2,
            phase: Phase::Pos,
        });
        let shared = u.add_and(a, b);
        let f1 = u.add_or(shared, c);
        let f2 = u.add_and(shared, c);
        u.add_output("f1", USignal::Node(f1), false);
        u.add_output("f2", USignal::Node(f2), false);
        let sols = solve(&u, &MapConfig::default(), None).unwrap().sols;
        let shared_sol = &sols[3];
        assert_eq!(shared_sol.exported.len(), 1);
        let unit = &shared_sol.exported[&TupleKey::UNIT];
        assert_eq!(unit.len(), 1);
        // Shared: consumers see only the driven transistor.
        assert_eq!(unit[0].g.tx, 1);
    }

    #[test]
    fn depth_objective_prefers_flat_structures() {
        let u = fig3_unate();
        let config = MapConfig {
            objective: crate::Objective::Depth,
            w_max: 4,
            h_max: 4,
            ..MapConfig::default()
        };
        let sols = solve(&u, &config, None).unwrap().sols;
        // Single-gate solution: level 1.
        assert_eq!(sols[6].gate.as_ref().unwrap().cost.level, 1);
    }
}
