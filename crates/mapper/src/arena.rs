//! Flat candidate arena for the DP inner loop.
//!
//! The per-node combination loop generates hundreds of candidates, prunes
//! them per shape, and stages the survivors for export. Storing them as
//! `Vec<Cand>` (array-of-structs) made the dominance prune walk 56-byte
//! rows to compare a handful of `u32` coordinates. PR 8 packed each
//! coordinate into its own column (struct-of-arrays); stage profiling
//! then showed the prune's unit of work is a candidate *pair* — every
//! `dominates`/`lex_cmp` call touches all ten coordinates of both
//! candidates, which under the column layout meant ten strided loads per
//! side. The arena now stores the ten dominance coordinates of each
//! candidate as one contiguous 40-byte row in a flat `u32` buffer
//! (stride [`COLS`]): a pair compare reads two dense rows, and the
//! per-column compare loops are fixed-width `chunks_exact` sweeps the
//! compiler unrolls into SIMD lanes (no data-dependent branches).
//! Candidates are addressed by `u32` handles; the buffers (and the
//! per-worker handle vectors around them) are cleared, never dropped, so
//! their capacity is retained across nodes and cone units.
//!
//! The flag pair (`par_b`, `touches_pi`) is pre-encoded as a 2-bit
//! dominance *rank* byte (see [`CandArena::rank`]): `x` is no worse than
//! `y` on both flags exactly when `rank(x) & !rank(y) == 0`, and comparing
//! the byte numerically orders by `par_b` then `touches_pi` — the same
//! coordinate order the dominance check uses.

use std::cmp::Ordering;

use crate::tuple::{Cand, Form};
use crate::{Cost, CostModel};

/// Number of `u32` dominance coordinates per candidate (grounded cost,
/// on-top cost, spine and branch potential points).
const COLS: usize = 10;

/// Row-major candidate storage, indexed by `u32` handles. Each candidate
/// owns one contiguous [`COLS`]-wide row of the flat coordinate buffer.
#[derive(Default)]
pub(crate) struct CandArena {
    /// Flat coordinate rows, stride [`COLS`]; within a row the dominance
    /// order is `g.tx, g.wtx, g.disch, g.level, u.tx, u.wtx, u.disch,
    /// u.level, p_spine, p_branch`.
    coords: Vec<u32>,
    /// Flag dominance ranks: bit 1 = `!par_b`, bit 0 = `touches_pi`
    /// (smaller is better on both, matching the cost columns).
    ranks: Vec<u8>,
    /// Back-pointer forms, row-aligned with the coordinate rows.
    forms: Vec<Form>,
}

impl CandArena {
    /// Number of candidates stored.
    pub fn len(&self) -> usize {
        self.forms.len()
    }

    /// Drops all candidates, keeping every buffer's capacity.
    pub fn clear(&mut self) {
        self.coords.clear();
        self.ranks.clear();
        self.forms.clear();
    }

    /// The ten-coordinate dominance row behind a handle. Returning a
    /// fixed-size array reference lets the compare loops below run with
    /// compile-time bounds — the precondition for autovectorization.
    #[inline]
    fn row(&self, h: u32) -> &[u32; COLS] {
        let i = h as usize * COLS;
        self.coords[i..i + COLS]
            .try_into()
            .expect("coordinate rows have stride COLS")
    }

    /// Appends a candidate, returning its handle.
    pub fn push(&mut self, c: Cand) -> u32 {
        let h = self.forms.len() as u32;
        self.coords.extend_from_slice(&[
            c.g.tx, c.g.wtx, c.g.disch, c.g.level, c.u.tx, c.u.wtx, c.u.disch, c.u.level,
            c.p_spine, c.p_branch,
        ]);
        self.ranks
            .push(u8::from(!c.par_b) << 1 | u8::from(c.touches_pi));
        self.forms.push(c.form);
        h
    }

    /// Materializes the candidate behind a handle.
    pub fn get(&self, h: u32) -> Cand {
        let r = self.row(h);
        let i = h as usize;
        Cand {
            g: Cost {
                tx: r[0],
                wtx: r[1],
                disch: r[2],
                level: r[3],
            },
            u: Cost {
                tx: r[4],
                wtx: r[5],
                disch: r[6],
                level: r[7],
            },
            p_spine: r[8],
            p_branch: r[9],
            par_b: self.ranks[i] & 2 == 0,
            touches_pi: self.ranks[i] & 1 != 0,
            form: self.forms[i],
        }
    }

    /// The grounded cost of a handle (what the cost model ranks by).
    pub fn g(&self, h: u32) -> Cost {
        let r = self.row(h);
        Cost {
            tx: r[0],
            wtx: r[1],
            disch: r[2],
            level: r[3],
        }
    }

    /// Whether `x` dominates `y`: no worse on every coordinate that can
    /// influence any future cost — both cost vectors, both potential-point
    /// counts, and the flag ranks (`par_b` at least as good, `touches_pi`
    /// no worse).
    ///
    /// The coordinate check is branchless: "x worse anywhere" is OR-folded
    /// across the ten columns in two `chunks_exact` strips of five, which
    /// the compiler turns into packed compares over the two contiguous
    /// rows. Giving up the early exit is the point — a data-dependent
    /// branch per column costs more than four extra lane compares.
    pub fn dominates(&self, x: u32, y: u32) -> bool {
        if self.ranks[x as usize] & !self.ranks[y as usize] != 0 {
            return false;
        }
        let (rx, ry) = (self.row(x), self.row(y));
        let mut worse = 0u32;
        for (cx, cy) in rx.chunks_exact(COLS / 2).zip(ry.chunks_exact(COLS / 2)) {
            for k in 0..COLS / 2 {
                worse |= u32::from(cx[k] > cy[k]);
            }
        }
        worse == 0
    }

    /// Total order extending dominance: coordinate-lexicographic over the
    /// row, then the flag rank byte. `x` dominates `y` (component-wise
    /// `<=` everywhere) implies `x <= y` here, so a sweep in this order
    /// only ever meets a candidate's dominators *before* it.
    pub fn lex_cmp(&self, x: u32, y: u32) -> Ordering {
        // Fixed-size array compare over two dense rows; same
        // lexicographic semantics as the old per-column loop.
        match self.row(x).cmp(self.row(y)) {
            Ordering::Equal => self.ranks[x as usize].cmp(&self.ranks[y as usize]),
            other => other,
        }
    }
}

/// Batched replacement for the quadratic insert-scan-retain Pareto prune.
///
/// `group` is one shape's candidate handles in generation order; `order`,
/// `keyed` and `kept` are reused scratch vectors. On return `kept` holds
/// the surviving *handles*, sorted by the model's grounded key with ties
/// broken by generation order and capped at `max` — bit-identical to what
/// the old quadratic loop plus stable sort produced (see DESIGN.md §7.2
/// for the linear-extension argument). Returns the skyline survivor count
/// before the cap.
///
/// The sweep sorts positions by [`CandArena::lex_cmp`] (a linear extension
/// of dominance, ties broken toward earlier generation), then scans
/// forward keeping anything no earlier keeper dominates. Because every
/// dominator of a candidate sorts before it, the backward `retain` pass of
/// the old loop is unnecessary, and each comparison streams column-packed
/// `u32`s. Mutual dominance (coordinate-equal candidates with different
/// forms) resolves to the earliest-generated one, exactly like the old
/// first-wins insertion.
///
/// Both sorts run over *precomputed* scalar keys — the first two row
/// columns packed into a `u64` for the lex sort (falling back to the full
/// row compare only on a prefix tie), the model's packed `u128` key for
/// the final ranking — because `sort_unstable_by_key` re-derives its key
/// on every comparison, which stage profiling showed was the single
/// hottest path of the whole DP.
pub(crate) fn skyline_prune(
    arena: &CandArena,
    group: &[u32],
    order: &mut Vec<(u64, u32)>,
    keyed: &mut Vec<(u128, u32)>,
    kept: &mut Vec<u32>,
    model: &CostModel,
    max: usize,
) -> usize {
    if let ([lone], 1..) = (group, max) {
        // Single-candidate shapes are common (unit tuples, narrow limits)
        // and need no ordering at all.
        kept.clear();
        kept.push(*lone);
        return 1;
    }
    order.clear();
    order.extend(group.iter().enumerate().map(|(pos, &h)| {
        let r = arena.row(h);
        ((u64::from(r[0]) << 32) | u64::from(r[1]), pos as u32)
    }));
    order.sort_unstable_by(|&(px, x), &(py, y)| {
        px.cmp(&py)
            .then_with(|| arena.lex_cmp(group[x as usize], group[y as usize]))
            .then(x.cmp(&y))
    });
    kept.clear();
    'sweep: for &(_, pos) in order.iter() {
        let cand = group[pos as usize];
        for &kpos in kept.iter() {
            if arena.dominates(group[kpos as usize], cand) {
                continue 'sweep;
            }
        }
        kept.push(pos);
    }
    let survivors = kept.len();
    keyed.clear();
    keyed.extend(
        kept.iter()
            .map(|&pos| (model.packed_key(&arena.g(group[pos as usize])), pos)),
    );
    keyed.sort_unstable();
    keyed.truncate(max);
    kept.clear();
    kept.extend(keyed.iter().map(|&(_, pos)| group[pos as usize]));
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_unate::{Literal, Phase};

    fn cand(tag: usize, g: Cost, u: Cost, spine: u32, branch: u32, par_b: bool, pi: bool) -> Cand {
        Cand {
            g,
            u,
            p_spine: spine,
            p_branch: branch,
            par_b,
            touches_pi: pi,
            form: Form::Lit(Literal {
                input: tag,
                phase: Phase::Pos,
            }),
        }
    }

    #[test]
    fn round_trips_candidates() {
        let mut a = CandArena::default();
        let c = cand(
            7,
            Cost {
                tx: 1,
                wtx: 2,
                disch: 3,
                level: 4,
            },
            Cost {
                tx: 5,
                wtx: 6,
                disch: 7,
                level: 8,
            },
            9,
            10,
            true,
            false,
        );
        let h = a.push(c);
        let back = a.get(h);
        assert_eq!(back.g, c.g);
        assert_eq!(back.u, c.u);
        assert_eq!(back.p_spine, 9);
        assert_eq!(back.p_branch, 10);
        assert!(back.par_b);
        assert!(!back.touches_pi);
        assert_eq!(a.g(h), c.g);
        assert!(matches!(back.form, Form::Lit(l) if l.input == 7));
        a.clear();
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn rank_byte_encodes_flag_dominance() {
        let mut a = CandArena::default();
        let base = Cost::transistors(1);
        // par_b=true, touches_pi=false is the best flag pair; it dominates
        // every other combination (costs equal).
        let best = a.push(cand(0, base, base, 0, 0, true, false));
        for (i, (p, t)) in [(true, true), (false, false), (false, true)]
            .into_iter()
            .enumerate()
        {
            let other = a.push(cand(i + 1, base, base, 0, 0, p, t));
            assert!(a.dominates(best, other));
            assert!(!a.dominates(other, best));
            assert_eq!(a.lex_cmp(best, other), Ordering::Less);
        }
    }

    #[test]
    fn lex_order_extends_dominance() {
        let mut a = CandArena::default();
        let cheap = a.push(cand(
            0,
            Cost::transistors(2),
            Cost::transistors(3),
            1,
            0,
            false,
            false,
        ));
        let costly = a.push(cand(
            1,
            Cost::transistors(2),
            Cost::transistors(4),
            1,
            0,
            false,
            false,
        ));
        assert!(a.dominates(cheap, costly));
        assert_eq!(a.lex_cmp(cheap, costly), Ordering::Less);
        assert_eq!(a.lex_cmp(cheap, cheap), Ordering::Equal);
    }
}

/// The batched skyline prune must be a drop-in for the quadratic
/// reference prune: same survivor *set*, same *order*, same cap — over
/// random candidate clouds dense enough to force dominance chains, exact
/// coordinate ties (first-wins), and mutual domination between distinct
/// forms.
#[cfg(test)]
mod equivalence {
    use proptest::prelude::*;
    use soi_unate::{Literal, Phase};

    use super::*;
    use crate::config::{Algorithm, Objective};
    use crate::soi::prune_reference;
    use crate::MapConfig;

    /// Tiny coordinate ranges so a 60-candidate cloud is saturated with
    /// ties and dominated rows — the interesting regime for both prunes.
    fn cost() -> impl Strategy<Value = Cost> {
        (0u32..4, 0u32..4, 0u32..3, 0u32..3).prop_map(|(tx, wtx, disch, level)| Cost {
            tx,
            wtx,
            disch,
            level,
        })
    }

    type RawCand = (Cost, Cost, u32, u32, bool, bool);

    fn cloud() -> impl Strategy<Value = Vec<RawCand>> {
        proptest::collection::vec(
            (
                cost(),
                cost(),
                0u32..3,
                0u32..3,
                any::<bool>(),
                any::<bool>(),
            ),
            0..60,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]
        #[test]
        fn skyline_prune_matches_quadratic_reference(
            raw in cloud(),
            cap in 1usize..6,
            uncapped in any::<bool>(),
            depth_objective in any::<bool>(),
        ) {
            let config = MapConfig {
                objective: if depth_objective { Objective::Depth } else { Objective::Area },
                ..MapConfig::default()
            };
            let model = CostModel::new(&config, Algorithm::SoiDominoMap);
            let max = if uncapped { usize::MAX } else { cap };
            // The `Lit` input doubles as an identity tag: equal lists mean
            // the same candidates in the same order, not just equal costs.
            let cands: Vec<Cand> = raw
                .into_iter()
                .enumerate()
                .map(|(i, (g, u, p_spine, p_branch, par_b, touches_pi))| Cand {
                    g,
                    u,
                    p_spine,
                    p_branch,
                    par_b,
                    touches_pi,
                    form: Form::Lit(Literal {
                        input: i,
                        phase: Phase::Pos,
                    }),
                })
                .collect();

            let mut reference = Vec::new();
            prune_reference(cands.iter().copied(), &mut reference, &model, max);

            let mut arena = CandArena::default();
            let group: Vec<u32> = cands.iter().map(|&c| arena.push(c)).collect();
            let (mut order, mut keyed, mut kept) = (Vec::new(), Vec::new(), Vec::new());
            let survivors =
                skyline_prune(&arena, &group, &mut order, &mut keyed, &mut kept, &model, max);
            let sky: Vec<Cand> = kept.iter().map(|&h| arena.get(h)).collect();

            // Survivor count is reported before the cap truncates.
            prop_assert!(survivors >= sky.len());
            prop_assert!(uncapped || sky.len() <= cap);
            prop_assert_eq!(sky, reference);
        }
    }
}
