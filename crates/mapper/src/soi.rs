//! `SOI_Domino_Map`: the paper's PBE-aware dynamic program (§V).
//!
//! Tuples carry, beyond shape and cost, the potential-discharge-point
//! counts (split into series-*spine* and parallel-*branch* points, see
//! [`Cand`]), the parallel-bottom flag `par_b`, and *two* costs — grounded
//! (`g`) and on-top (`u = g + k·(p_branch + par_b)`). Combination rules:
//!
//! ```text
//! OR(a, b):          g = g_a + g_b
//!                    branch = p_dis_a + p_dis_b     spine = 0   par_b = true
//! AND(top, bottom):  g = u_top + g_bottom                       par_b = par_b_bottom
//!                    spine  = spine_bottom + spine_top + (par_b_top ? 0 : 1)
//!                    branch = branch_bottom
//! ```
//!
//! The AND rule charges the top structure's on-top cost — its branch points
//! can never be grounded, and the junction under a parallel bottom commits —
//! exactly reproducing the paper's Fig. 4(b) and Fig. 5 worked examples
//! (see this module's tests). The spine/branch split formalizes the paper's
//! "conditionally increment" remark and its Fig. 4(a) note that a series
//! junction combined further in series never needs a discharge device.
//!
//! Per `(W, H)` shape we keep a small Pareto set over `(g, u, par_b)`
//! instead of the paper's "two costs"; this keeps the tree DP exact while
//! staying tiny in practice (see DESIGN.md §2.2).

use soi_unate::{UId, UNode, UnateNetwork};

use crate::arena::{skyline_prune, CandArena};
use crate::dp::{self, NodeCtx, NodeOutcome, Scratch, SolView};
use crate::tuple::{Cand, CandRef, ExportMap, Form, NodeSol, TupleKey};
use crate::{Algorithm, AndOrder, ConeCache, Cost, CostModel, MapConfig, MapError};

/// Runs the SOI DP, producing one [`NodeSol`] per unate node.
pub(crate) fn solve(
    unate: &UnateNetwork,
    config: &MapConfig,
    cache: Option<&ConeCache>,
) -> Result<dp::Solution, MapError> {
    dp::run_dp(unate, config, Algorithm::SoiDominoMap, solve_node, cache)
}

/// Solves one unate node given its fanins' solutions: accumulate all
/// in-limit combinations into the scratch arena, Pareto-prune per shape,
/// then form the node's gate and export set.
fn solve_node(
    ctx: &NodeCtx<'_>,
    view: &SolView<'_>,
    scratch: &mut Scratch,
    id: UId,
    node: UNode,
) -> Result<NodeOutcome, MapError> {
    let config = ctx.config;
    let (a, b, is_and) = match node {
        UNode::Lit(l) => return Ok((dp::literal_sol(id, l, config, ctx.model), false)),
        UNode::And(a, b) => (a, b, true),
        UNode::Or(a, b) => (a, b, false),
    };
    let (sol_a, sol_b) = (view.get(a), view.get(b));
    let Scratch {
        cands,
        left,
        right,
        right_runs,
        buckets,
        order,
        keyed,
        kept,
        shapes,
        staged,
        ..
    } = scratch;
    cands.clear();
    // Materialize both export lists once: the quadratic loop below then
    // streams two dense slices instead of re-walking the right-hand side's
    // nested run iterator on every outer candidate. The right side also
    // keeps its shape-run boundaries — all candidates of a run share one
    // `TupleKey`, so the combined shape (symmetric in the operands for
    // both AND and OR) and its limit check hoist to the run level,
    // skipping whole runs whose combinations cannot fit.
    left.clear();
    left.extend(sol_a.exported_refs(a).map(|(r, c)| (r, *c)));
    right.clear();
    right_runs.clear();
    for (key, run) in sol_b.exported.shape_runs() {
        let start = right.len() as u32;
        right.extend(run.iter().enumerate().map(|(idx, c)| {
            (
                CandRef {
                    node: b,
                    key,
                    idx: idx as u32,
                },
                *c,
            )
        }));
        right_runs.push((key, start, run.len() as u32));
    }
    // Candidates land in per-shape buckets as they are generated — bucket
    // `(w-1)·h_grid + (h-1)` in generation order, which is exactly the
    // (shape-lexicographic, then insertion-ordered) sequence the old
    // stable sort over a flat pair list produced. The grid spans the
    // configured limits widened to 2 so the degraded fallback's
    // out-of-limit unit combinations (`{1,2}`/`{2,1}`) always have a slot.
    let w_grid = config.w_max.max(2) as usize;
    let h_grid = config.h_max.max(2) as usize;
    if buckets.len() < w_grid * h_grid {
        buckets.resize_with(w_grid * h_grid, Vec::new);
    }
    for bucket in &mut buckets[..w_grid * h_grid] {
        bucket.clear();
    }
    let mut generated = 0u64;
    // One bulk budget charge for the whole cross-product — same
    // cumulative total (and so the same trip point) as the old
    // charge-per-pair, without an atomic add in the inner loop.
    ctx.charge_many(left.len() as u64 * right.len() as u64, id)?;
    for &(ra, ca) in left.iter() {
        for &(kb, rstart, rlen) in right_runs.iter() {
            // One shape and one limit check per (candidate, run) pair —
            // `TupleKey::and`/`or` are symmetric, so every orientation of
            // every pair in this run lands on the same combined shape.
            let key = if is_and {
                ra.key.and(kb)
            } else {
                ra.key.or(kb)
            };
            if !key.fits(config.w_max, config.h_max) {
                continue;
            }
            let bucket = &mut buckets[(key.w as usize - 1) * h_grid + key.h as usize - 1];
            for &(rb, cb) in &right[rstart as usize..(rstart + rlen) as usize] {
                if is_and {
                    let (orders, n) = and_orders(config.and_order, ra, &ca, rb, &cb);
                    for &(rt, ct, rbm, cbm) in &orders[..n] {
                        generated += 1;
                        bucket.push(cands.push(combine_and(config, rt, ct, rbm, cbm)));
                    }
                } else {
                    generated += 1;
                    bucket.push(cands.push(combine_or(config, ra, &ca, rb, &cb)));
                }
            }
        }
    }
    let mut degraded = false;
    if generated == 0 && config.degrade_unmappable {
        // Forced gate boundary: reduce both children to their single-gate
        // `{1,1}` candidates and combine those, accepting the
        // out-of-limits shape. The gate formed here exceeds
        // `(W_max, H_max)`; the node is recorded as degraded.
        let units_a = left
            .iter()
            .filter(|&&(r, _)| r.key == TupleKey::UNIT)
            .count();
        let units_b = right
            .iter()
            .filter(|&&(r, _)| r.key == TupleKey::UNIT)
            .count();
        ctx.charge_many(units_a as u64 * units_b as u64, id)?;
        for &(ra, ca) in left.iter() {
            if ra.key != TupleKey::UNIT {
                continue;
            }
            for &(rb, cb) in right.iter() {
                if rb.key != TupleKey::UNIT {
                    continue;
                }
                generated += 1;
                let (key, cand) = if is_and {
                    let key = ra.key.and(rb.key);
                    (key, combine_and(config, ra, &ca, rb, &cb))
                } else {
                    let key = ra.key.or(rb.key);
                    (key, combine_or(config, ra, &ca, rb, &cb))
                };
                buckets[(key.w as usize - 1) * h_grid + key.h as usize - 1].push(cands.push(cand));
            }
        }
        degraded = true;
    }
    if generated == 0 {
        return Err(MapError::Unmappable {
            what: format!(
                "node {id} has no (W ≤ {}, H ≤ {}) combination",
                config.w_max, config.h_max
            ),
        });
    }
    // Candidate-balance bookkeeping (`generated == pruned + exported` per
    // solved node): `generated` is everything that entered the frontier;
    // drops are tallied independently at each site so the balance is a
    // genuine cross-check, not an identity.
    let mut pruned = 0u64;
    shapes.clear();
    staged.clear();
    let mut prune_batches = 0u64;
    let mut skyline_survivors = 0u64;
    // Bucket order (w ascending, then h) is exactly `TupleKey`'s
    // lexicographic order, so the staged runs come out key-sorted.
    for w in 1..=w_grid {
        for h in 1..=h_grid {
            let group = &buckets[(w - 1) * h_grid + (h - 1)];
            if group.is_empty() {
                continue;
            }
            let key = TupleKey {
                w: w as u32,
                h: h as u32,
            };
            skyline_survivors += skyline_prune(
                cands,
                group,
                order,
                keyed,
                kept,
                ctx.model,
                config.max_candidates,
            ) as u64;
            prune_batches += 1;
            pruned += (group.len() - kept.len()) as u64;
            let start = staged.len() as u32;
            staged.append(kept);
            shapes.push((key, start, staged.len() as u32 - start));
        }
    }
    enforce_tuple_cap(
        shapes,
        staged,
        cands,
        ctx.model,
        config.limits.max_tuples_per_node,
    );
    let survivors: u64 = shapes.iter().map(|&(_, _, len)| u64::from(len)).sum();
    pruned += staged.len() as u64 - survivors;
    // The gate is formed straight off the staged runs — the same
    // candidates in the same order an ExportMap copy would hold — so a
    // shared node (which discards its bare survivors) never pays for
    // materializing an export set it won't publish.
    let mut sol = NodeSol {
        gate: dp::form_gate(
            config,
            ctx.model,
            shapes.iter().flat_map(|&(key, start, len)| {
                let arena = &*cands;
                staged[start as usize..(start + len) as usize]
                    .iter()
                    .map(move |&h| (key, arena.get(h)))
            }),
        ),
        ..NodeSol::default()
    };
    let gate = sol.gate.as_ref().expect("nonempty bare set");
    let gate_cand = dp::exported_gate_cand(id, gate, ctx.fanouts[id.index()], config);
    let mut bare_exported = survivors;
    if ctx.fanouts[id.index()] <= 1 || config.allow_duplication {
        sol.exported = ExportMap::from_runs_with_unit(shapes, staged, cands, gate_cand);
    } else {
        // A shared node exports only its formed gate: the bare survivors
        // are discarded here, not exported.
        pruned += bare_exported;
        bare_exported = 0;
        sol.exported = ExportMap::unit(gate_cand);
    }
    let trace = config.trace;
    if trace.enabled() {
        trace.count(soi_trace::Counter::CandidatesGenerated, generated);
        trace.count(soi_trace::Counter::CandidatesPruned, pruned);
        trace.count(soi_trace::Counter::CandidatesExported, bare_exported);
        trace.count(soi_trace::Counter::PruneBatches, prune_batches);
        trace.count(soi_trace::Counter::SkylineSurvivors, skyline_survivors);
    }
    Ok((sol, degraded))
}

/// Enforces [`crate::Limits::max_tuples_per_node`]: when a node's total
/// candidate count (across all shapes) exceeds the cap, fall back to a
/// tighter per-shape Pareto cap; when the shape count alone exceeds it,
/// keep only the cheapest shapes. Never an error — precision degrades, the
/// run continues.
///
/// Operates on the staged runs in place: shortening a run leaves a hole in
/// `staged`, which [`ExportMap::from_runs`] compacts when copying out.
pub(crate) fn enforce_tuple_cap(
    shapes: &mut Vec<(TupleKey, u32, u32)>,
    staged: &[u32],
    arena: &CandArena,
    model: &CostModel,
    cap: usize,
) {
    let total: usize = shapes.iter().map(|&(_, _, len)| len as usize).sum();
    if total <= cap {
        return;
    }
    // The prune left each shape's run sorted by the model's grounded key,
    // so truncation keeps the best candidates.
    let per_shape = (cap / shapes.len()).max(1) as u32;
    for run in shapes.iter_mut() {
        run.2 = run.2.min(per_shape);
    }
    if shapes.len() > cap {
        let mut order: Vec<usize> = (0..shapes.len()).collect();
        order.sort_by_key(|&i| {
            let (key, start, _) = shapes[i];
            (model.key(&arena.g(staged[start as usize])), key.w, key.h)
        });
        order.truncate(cap);
        // Restore shape order among the survivors.
        order.sort_unstable();
        let survivors: Vec<(TupleKey, u32, u32)> = order.iter().map(|&i| shapes[i]).collect();
        *shapes = survivors;
    }
}

/// The paper's `combine_or`: bottoms merge and the shared bottom becomes a
/// parallel-stack bottom. Every potential point of either branch — spine
/// junctions included — now sits inside a parallel branch of the result.
fn combine_or(config: &MapConfig, ra: CandRef, ca: &Cand, rb: CandRef, cb: &Cand) -> Cand {
    Cand {
        g: ca.g.combine(cb.g),
        u: Cost::default(),
        p_spine: 0,
        p_branch: ca.p_dis() + cb.p_dis(),
        par_b: true,
        touches_pi: ca.touches_pi || cb.touches_pi,
        form: Form::Or { a: ra, b: rb },
    }
    .derive_ungrounded(config.clock_weight)
}

/// The paper's `combine_and` with a fixed (top, bottom) orientation: the
/// top's branch points (and its parallel bottom, which becomes the new
/// junction) commit now — that is `cost_u(top)`; the top's spine junctions
/// and the new junction (when the top is spine-like) extend the result's
/// spine and stay potential.
fn combine_and(config: &MapConfig, rt: CandRef, ct: &Cand, rb: CandRef, cb: &Cand) -> Cand {
    Cand {
        g: ct.u.combine(cb.g),
        u: Cost::default(),
        p_spine: cb.p_spine + ct.p_spine + u32::from(!ct.par_b),
        p_branch: cb.p_branch,
        par_b: cb.par_b,
        touches_pi: ct.touches_pi || cb.touches_pi,
        form: Form::And {
            top: rt,
            bottom: rb,
        },
    }
    .derive_ungrounded(config.clock_weight)
}

/// Grounding benefit of placing a candidate at the bottom of a stack: the
/// branch points and parallel bottom that would otherwise commit. Spine
/// junctions are absolved by the gate's grounded chain either way.
fn score(c: &Cand) -> u32 {
    c.p_branch + u32::from(c.par_b)
}

type Orientation<'c> = (CandRef, &'c Cand, CandRef, &'c Cand);

/// Yields the (top, bottom) orientations to try for an AND combination:
/// a fixed-size buffer plus the count of valid entries, so the inner DP
/// loop never heap-allocates per candidate pair.
fn and_orders<'c>(
    order: AndOrder,
    ra: CandRef,
    ca: &'c Cand,
    rb: CandRef,
    cb: &'c Cand,
) -> ([Orientation<'c>; 2], usize) {
    let fwd = (ra, ca, rb, cb);
    let rev = (rb, cb, ra, ca);
    match order {
        AndOrder::FirstOnTop => ([fwd, rev], 1),
        AndOrder::Exhaustive => ([fwd, rev], 2),
        AndOrder::BulkTypical => {
            // The adversarial bulk orientation, available to the SOI DP for
            // ablation studies.
            if score(ca) >= score(cb) {
                ([fwd, rev], 1)
            } else {
                ([rev, fwd], 1)
            }
        }
        AndOrder::PaperHeuristic => {
            // The operand with a parallel bottom — or, between two such
            // operands, the one with more potential points — goes to the
            // bottom, in the hope it will eventually be grounded.
            if score(ca) >= score(cb) {
                ([rev, fwd], 1)
            } else {
                ([fwd, rev], 1)
            }
        }
    }
}

/// The original quadratic Pareto prune over `(g, u, par_b)` with
/// component-wise cost dominance, then a cap at `max` candidates ordered by
/// the model's grounded key. Kept as the reference semantics the batched
/// [`skyline_prune`] must reproduce bit-identically; the in-crate
/// equivalence proptest drives both over random candidate clouds.
#[cfg(test)]
pub(crate) fn prune_reference(
    cands: impl Iterator<Item = Cand>,
    kept: &mut Vec<Cand>,
    model: &CostModel,
    max: usize,
) {
    let dominates = |x: &Cand, y: &Cand| -> bool {
        // x dominates y: no worse on every coordinate that can influence
        // any future cost — including `touches_pi`, which decides whether
        // the eventual gate needs a foot n-clock — and at least as good a
        // par_b.
        x.g.tx <= y.g.tx
            && x.g.wtx <= y.g.wtx
            && x.g.disch <= y.g.disch
            && x.g.level <= y.g.level
            && x.u.tx <= y.u.tx
            && x.u.wtx <= y.u.wtx
            && x.u.disch <= y.u.disch
            && x.u.level <= y.u.level
            && x.p_spine <= y.p_spine
            && x.p_branch <= y.p_branch
            && (x.par_b || !y.par_b)
            && (!x.touches_pi || y.touches_pi)
    };
    kept.clear();
    // Stable insertion order keeps earlier (already-sorted-ish) candidates.
    for cand in cands {
        if kept.iter().any(|k| dominates(k, &cand)) {
            continue;
        }
        kept.retain(|k| !dominates(&cand, k));
        kept.push(cand);
    }
    kept.sort_by_key(|c| model.key(&c.g));
    kept.truncate(max);
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_unate::{Literal, Phase, USignal};

    fn lit(u: &mut UnateNetwork, i: usize) -> soi_unate::UId {
        u.add_literal(Literal {
            input: i,
            phase: Phase::Pos,
        })
    }

    fn cfg() -> MapConfig {
        MapConfig::default()
    }

    /// Fig. 4(a): building `A*B + C` yields one potential point, `par_b`.
    #[test]
    fn fig4a_tuple_values() {
        let mut u = UnateNetwork::new((0..3).map(|i| format!("i{i}")).collect());
        let a = lit(&mut u, 0);
        let b = lit(&mut u, 1);
        let c = lit(&mut u, 2);
        let ab = u.add_and(a, b);
        let f = u.add_or(ab, c);
        u.add_output("f", USignal::Node(f), false);
        let sols = solve(&u, &cfg(), None).unwrap().sols;
        let or_sol = &sols[4];
        let cands = &or_sol.exported[&TupleKey { w: 2, h: 2 }];
        let best = &cands[0];
        assert_eq!(best.p_dis(), 1);
        assert!(best.par_b);
        assert_eq!(best.g.tx, 3);
        assert_eq!(best.g.disch, 0);
        // Ungrounded: both the internal junction and the stack bottom.
        assert_eq!(best.u.tx, 5);
    }

    /// Fig. 4(b): `(A*B + C) * (D*E + F)` commits two discharge
    /// transistors; one point stays potential on the grounded side.
    #[test]
    fn fig4b_committed_discharges() {
        let mut u = UnateNetwork::new((0..6).map(|i| format!("i{i}")).collect());
        let lits: Vec<_> = (0..6).map(|i| lit(&mut u, i)).collect();
        let ab = u.add_and(lits[0], lits[1]);
        let abc = u.add_or(ab, lits[2]);
        let de = u.add_and(lits[3], lits[4]);
        let def = u.add_or(de, lits[5]);
        let f = u.add_and(abc, def);
        u.add_output("f", USignal::Node(f), false);
        let sols = solve(&u, &cfg(), None).unwrap().sols;
        let and_sol = &sols[10];
        let cands = &and_sol.exported[&TupleKey { w: 2, h: 4 }];
        let best = cands.iter().min_by_key(|c| (c.g.tx, c.p_dis())).unwrap();
        // 6 logic transistors + 2 committed discharges.
        assert_eq!(best.g.tx, 8);
        assert_eq!(best.g.disch, 2);
        assert_eq!(best.p_dis(), 1);
        assert!(best.par_b);
    }

    /// Fig. 5: ANDing `(A*B + C)` with `E` puts the parallel stack at the
    /// bottom — no committed discharge, two potential points.
    #[test]
    fn fig5_heuristic_orders_stack_to_ground() {
        let mut u = UnateNetwork::new((0..4).map(|i| format!("i{i}")).collect());
        let a = lit(&mut u, 0);
        let b = lit(&mut u, 1);
        let c = lit(&mut u, 2);
        let e = lit(&mut u, 3);
        let ab = u.add_and(a, b);
        let abc = u.add_or(ab, c);
        let f = u.add_and(abc, e);
        u.add_output("f", USignal::Node(f), false);
        let sols = solve(&u, &cfg(), None).unwrap().sols;
        let and_sol = &sols[6];
        let cands = &and_sol.exported[&TupleKey { w: 2, h: 3 }];
        let best = cands.iter().min_by_key(|c| (c.g.tx, c.p_dis())).unwrap();
        assert_eq!(best.g.disch, 0, "no committed discharge");
        assert_eq!(best.p_dis(), 2, "two potential points");
        assert!(best.par_b);
        assert_eq!(best.g.tx, 4);
        // The wrong order would cost 2 discharges:
        if let Form::And { top, bottom } = &best.form {
            // top must be the plain literal E (a {1,1} tuple).
            assert_eq!(top.key, TupleKey::UNIT);
            assert_eq!(bottom.key, TupleKey { w: 2, h: 2 });
        } else {
            panic!("expected an AND form");
        }
    }

    /// Exhaustive ordering can never do worse than the heuristic.
    #[test]
    fn exhaustive_at_least_as_good() {
        let mut u = UnateNetwork::new((0..6).map(|i| format!("i{i}")).collect());
        let lits: Vec<_> = (0..6).map(|i| lit(&mut u, i)).collect();
        let ab = u.add_and(lits[0], lits[1]);
        let abc = u.add_or(ab, lits[2]);
        let de = u.add_and(lits[3], lits[4]);
        let def = u.add_or(de, lits[5]);
        let f = u.add_and(abc, def);
        u.add_output("f", USignal::Node(f), false);

        let heuristic = solve(&u, &cfg(), None).unwrap().sols;
        let exhaustive = solve(
            &u,
            &MapConfig {
                and_order: AndOrder::Exhaustive,
                ..cfg()
            },
            None,
        )
        .unwrap()
        .sols;
        let hg = heuristic[10].gate.as_ref().unwrap().cost;
        let eg = exhaustive[10].gate.as_ref().unwrap().cost;
        assert!(eg.tx <= hg.tx);
    }

    /// Pruning keeps non-dominated candidates and respects the cap — and
    /// the batched skyline path agrees bit-for-bit with the quadratic
    /// reference on both the dominance-tie and cap cases.
    #[test]
    fn prune_respects_dominance_and_cap() {
        let config = cfg();
        let model = CostModel::new(&config, Algorithm::SoiDominoMap);
        let mk = |gtx: u32, utx: u32, par_b: bool| Cand {
            g: Cost::transistors(gtx),
            u: Cost::transistors(utx),
            p_spine: 0,
            p_branch: utx - gtx,
            par_b,
            touches_pi: false,
            form: Form::Lit(Literal {
                input: 0,
                phase: Phase::Pos,
            }),
        };
        // Runs both prunes over the same cloud and returns the skyline
        // survivors materialized, after checking they match the reference.
        let both = |cands: &[Cand], max: usize| -> Vec<Cand> {
            let mut reference = Vec::new();
            prune_reference(cands.iter().copied(), &mut reference, &model, max);
            let mut arena = CandArena::default();
            let group: Vec<u32> = cands.iter().map(|&c| arena.push(c)).collect();
            let (mut order, mut keyed, mut kept) = (Vec::new(), Vec::new(), Vec::new());
            let survivors = skyline_prune(
                &arena, &group, &mut order, &mut keyed, &mut kept, &model, max,
            );
            assert!(survivors >= kept.len());
            let sky: Vec<Cand> = kept.iter().map(|&h| arena.get(h)).collect();
            assert_eq!(sky, reference);
            sky
        };
        // (10, 10, T) dominates (10, 10, F) and (11, 12, F).
        let cands = vec![
            mk(10, 10, true),
            mk(10, 10, false),
            mk(11, 12, false),
            mk(8, 13, false),
        ];
        let kept = both(&cands, 4);
        assert_eq!(kept.len(), 2);
        // The cheap-g/expensive-u candidate survives.
        assert!(kept.iter().any(|c| c.g.tx == 8));
        assert!(kept.iter().any(|c| c.g.tx == 10 && c.par_b));

        let many: Vec<Cand> = (0..10).map(|i| mk(10 + i, 40 - i, false)).collect();
        let kept = both(&many, 3);
        assert_eq!(kept.len(), 3);
        // Cap keeps the best grounded costs.
        assert!(kept.iter().all(|c| c.g.tx <= 12));
    }

    /// The SOI gate for Fig. 2(a)'s function picks the discharge-free
    /// structure (stack at the bottom).
    #[test]
    fn fig2a_gate_has_no_discharge() {
        let mut u = UnateNetwork::new((0..4).map(|i| format!("i{i}")).collect());
        let a = lit(&mut u, 0);
        let b = lit(&mut u, 1);
        let c = lit(&mut u, 2);
        let d = lit(&mut u, 3);
        let ab = u.add_or(a, b);
        let abc = u.add_or(ab, c);
        let f = u.add_and(abc, d);
        u.add_output("f", USignal::Node(f), false);
        let sols = solve(&u, &cfg(), None).unwrap().sols;
        let gate = sols[6].gate.as_ref().unwrap();
        assert_eq!(gate.cost.disch, 0);
        assert_eq!(gate.cost.tx, 4 + 5);
    }
}
