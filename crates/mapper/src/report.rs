use std::fmt;

use soi_domino_ir::{DominoCircuit, TransistorCounts};

use crate::Algorithm;

/// The product of a mapping run: the circuit plus its accounting.
#[derive(Debug, Clone)]
pub struct MappingResult {
    /// Which algorithm produced the circuit.
    pub algorithm: Algorithm,
    /// The mapped, PBE-protected domino circuit.
    pub circuit: DominoCircuit,
    /// The transistor accounting (`T_logic`, `T_disch`, ...).
    pub counts: TransistorCounts,
    /// Gate count of the unate network that was mapped (diagnostics).
    pub unate_gates: usize,
    /// Depth of the unate network in 2-input gate levels (the paper's
    /// Table IV second column).
    pub unate_depth: u32,
    /// Unate-node indices where the mapper fell back to a forced gate
    /// boundary because no `(W ≤ W_max, H ≤ H_max)` combination existed
    /// (only when [`MapConfig::degrade_unmappable`] is set; those gates
    /// exceed the shape limits).
    ///
    /// [`MapConfig::degrade_unmappable`]: crate::MapConfig::degrade_unmappable
    pub degraded_nodes: Vec<usize>,
    /// Largest exported-candidate count any single unate node reached
    /// during the DP — the run's memory high-water mark (deterministic,
    /// identical between serial and parallel schedules).
    pub peak_candidates: usize,
    /// Worker threads the DP schedule actually used (1 for a serial run;
    /// see [`crate::Parallelism`]).
    pub threads_used: usize,
    /// Cone-cache hits of this run: cones whose solution was rebound from
    /// a memoized isomorphic cone instead of re-solved. 0 when the cache
    /// is disabled.
    pub cone_cache_hits: u64,
    /// Cone-cache misses of this run (cones solved and captured). 0 when
    /// the cache is disabled.
    pub cone_cache_misses: u64,
    /// Total DP combine steps charged against the step budget — a
    /// deterministic measure of mapping work that is identical across
    /// serial, parallel, and cone-cached schedules for the same input
    /// and configuration.
    pub combine_steps: u64,
}

impl MappingResult {
    /// Whether the mapper had to relax the shape limits anywhere.
    pub fn is_degraded(&self) -> bool {
        !self.degraded_nodes.is_empty()
    }

    /// Fraction of cone units served from the cone cache, in `[0, 1]`
    /// (`None` when the cache was disabled or the network had no units).
    pub fn cone_cache_hit_rate(&self) -> Option<f64> {
        let total = self.cone_cache_hits + self.cone_cache_misses;
        (total > 0).then(|| self.cone_cache_hits as f64 / total as f64)
    }
}

impl fmt::Display for MappingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (from {} unate gates, depth {})",
            self.algorithm.paper_name(),
            self.counts,
            self.unate_gates,
            self.unate_depth
        )?;
        if self.is_degraded() {
            write!(f, " [degraded at {} nodes]", self.degraded_nodes.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MapConfig, Mapper};
    use soi_netlist::Network;

    fn tiny_result() -> MappingResult {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.and2(a, b);
        n.add_output("f", g);
        Mapper::soi(MapConfig::default()).run(&n).expect("maps")
    }

    #[test]
    fn display_names_the_algorithm_and_counts() {
        let r = tiny_result();
        let text = r.to_string();
        assert!(text.contains("SOI_Domino_Map"));
        assert!(text.contains("T_logic"));
        assert!(text.contains("unate gates"));
    }

    #[test]
    fn result_fields_are_consistent() {
        let r = tiny_result();
        assert_eq!(r.counts, r.circuit.counts());
        assert_eq!(r.unate_gates, 1);
        assert_eq!(r.unate_depth, 1);
    }
}
