//! Persistent work-stealing scheduler for the cone-unit DP.
//!
//! PR 2 parallelized the DP with one `thread::scope` per dependency level
//! of the cone partition: every level paid a full spawn-and-join round
//! trip, and the level barrier idled all workers until the slowest unit of
//! the level finished. On millisecond-scale mapping workloads those fixed
//! costs exceeded the DP itself (BENCH_pr2.json: 0.685× overall).
//!
//! This module replaces that with a pool that spawns its workers **once
//! per run** and drives them with per-unit atomic dependency counters: a
//! unit becomes runnable the moment its last dependency finishes, with no
//! barrier in between. Each worker owns a deque — it pushes and pops work
//! at the back (LIFO, cache-warm) and victims steal from the front (FIFO,
//! the oldest and therefore usually largest subtrees). Idle workers park
//! on a condvar with a short timeout, so a quiet pool costs microseconds,
//! not spins.
//!
//! The schedule remains bit-identical to the serial walk for the same
//! reason the level schedule was: every unit computation is a pure
//! function of its dependencies' published solutions, and the scheduler
//! only decides *when* and *where* a unit runs, never what it reads.
//!
//! # Failure and drain protocol
//!
//! A task that returns an error, a task that panics, and an interrupt
//! observed by the `check` hook all funnel into [`Pool::fail`]: the first
//! failure is recorded, the `abort` flag is raised, and every parked
//! worker is woken. Workers re-check `abort` before popping, so the drain
//! needs no level barrier even though a failed unit's consumers keep
//! nonzero dependency counters forever — nobody will ever pop them.
//! Parks are bounded by [`PARK_TIMEOUT`], so a lost wakeup delays the
//! drain by microseconds, never hangs it. Panics are contained with
//! `catch_unwind` at the task boundary and surface as
//! [`MapError::WorkerPanicked`]; the pool itself never unwinds, and the
//! caller always gets every worker's state back for salvage. The time
//! from the first failure to the last worker returning is emitted as a
//! [`Stage::Drain`] span.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use soi_trace::{Counter, Event, Stage, TraceHandle, WorkerStats};
use soi_unate::ConePartition;

use crate::MapError;

/// How long an idle worker parks before re-polling the queues. A bound on
/// the cost of any lost wakeup; steady-state wakeups go through the
/// condvar and never wait this long.
const PARK_TIMEOUT: Duration = Duration::from_micros(200);

/// Shared state of one pool run.
struct Pool {
    /// Per-worker deques: own end is the back, steals come off the front.
    queues: Vec<Mutex<VecDeque<u32>>>,
    /// Unfinished-dependency counters, one per unit. The worker that
    /// decrements a counter to zero enqueues the unit.
    deps_left: Vec<AtomicU32>,
    /// Reverse dependency edges: `consumers[u]` lists the units waiting on
    /// unit `u`.
    consumers: Vec<Vec<u32>>,
    /// Units currently sitting in some queue (a cheap "is there work?"
    /// hint for parking decisions).
    queued: AtomicUsize,
    /// Units not yet completed; 0 means the run is done.
    remaining: AtomicUsize,
    /// Set on the first failure; workers drain out promptly.
    abort: AtomicBool,
    /// The first error a task (or the interrupt check) produced.
    error: Mutex<Option<MapError>>,
    /// When the first failure was recorded — the start of the drain.
    drain_started: Mutex<Option<Instant>>,
    /// Workers currently parked (wakeup elision hint).
    sleepers: AtomicUsize,
    idle: Mutex<()>,
    wake: Condvar,
}

impl Pool {
    fn new(partition: &ConePartition, workers: usize) -> Pool {
        let units = partition.units();
        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); units.len()];
        let mut deps_left = Vec::with_capacity(units.len());
        for (u, unit) in units.iter().enumerate() {
            deps_left.push(AtomicU32::new(unit.deps().len() as u32));
            for &d in unit.deps() {
                consumers[d].push(u as u32);
            }
        }
        // Seed the initially-runnable units round-robin across workers.
        let mut queues: Vec<VecDeque<u32>> = (0..workers).map(|_| VecDeque::new()).collect();
        let mut seeded = 0usize;
        for (u, unit) in units.iter().enumerate() {
            if unit.deps().is_empty() {
                queues[seeded % workers].push_back(u as u32);
                seeded += 1;
            }
        }
        Pool {
            queues: queues.into_iter().map(Mutex::new).collect(),
            deps_left,
            consumers,
            queued: AtomicUsize::new(seeded),
            remaining: AtomicUsize::new(units.len()),
            abort: AtomicBool::new(false),
            error: Mutex::new(None),
            drain_started: Mutex::new(None),
            sleepers: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// Pops from the caller's own queue, stealing from the others when it
    /// is empty. At most one queue lock is ever held at a time — the own
    /// pop is a standalone statement so its guard drops before stealing
    /// (holding it across the victim locks would deadlock two workers
    /// stealing from each other).
    /// The popped unit is tagged with whether it was stolen from another
    /// worker's queue (instrumentation only).
    fn pop(&self, me: usize) -> Option<(u32, bool)> {
        let own = self.queues[me].lock().expect("queue poisoned").pop_back();
        let found = own.map(|u| (u, false)).or_else(|| {
            (1..self.queues.len()).find_map(|i| {
                let victim = (me + i) % self.queues.len();
                self.queues[victim]
                    .lock()
                    .expect("queue poisoned")
                    .pop_front()
                    .map(|u| (u, true))
            })
        });
        if found.is_some() {
            self.queued.fetch_sub(1, Ordering::Relaxed);
        }
        found
    }

    /// Enqueues a newly-runnable unit on the caller's own queue. Returns
    /// whether a sleeping worker was notified (instrumentation only).
    fn push(&self, me: usize, unit: u32) -> bool {
        self.queues[me]
            .lock()
            .expect("queue poisoned")
            .push_back(unit);
        self.queued.fetch_add(1, Ordering::Release);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.idle.lock().expect("idle lock poisoned");
            self.wake.notify_one();
            return true;
        }
        false
    }

    /// Parks the caller until work might exist, with a bounded timeout.
    fn park(&self) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        {
            let guard = self.idle.lock().expect("idle lock poisoned");
            let busy = self.abort.load(Ordering::Acquire)
                || self.remaining.load(Ordering::Acquire) == 0
                || self.queued.load(Ordering::SeqCst) > 0;
            if !busy {
                let _ = self
                    .wake
                    .wait_timeout(guard, PARK_TIMEOUT)
                    .expect("idle lock poisoned");
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Records the first failure (and the drain start) and drains the
    /// pool.
    fn fail(&self, e: MapError) {
        {
            let mut slot = self.error.lock().expect("error lock poisoned");
            if slot.is_none() {
                *slot = Some(e);
                *self.drain_started.lock().expect("drain lock poisoned") = Some(Instant::now());
            }
        }
        self.abort.store(true, Ordering::Release);
        self.wake_all();
    }

    fn wake_all(&self) {
        let _guard = self.idle.lock().expect("idle lock poisoned");
        self.wake.notify_all();
    }
}

/// One worker's main loop: run units until the pool is drained or aborted.
/// Scheduling tallies (units run, steals, wakeups sent, parks) accumulate
/// in `stats`, worker-locally — zero shared-state cost when tracing is off.
fn work<W>(
    pool: &Pool,
    me: usize,
    state: &mut W,
    stats: &mut WorkerStats,
    task: &(impl Fn(&mut W, usize) -> Result<(), MapError> + Sync),
    check: &(impl Fn() -> Result<(), MapError> + Sync),
    trace: TraceHandle,
) {
    loop {
        if pool.abort.load(Ordering::Acquire) || pool.remaining.load(Ordering::Acquire) == 0 {
            return;
        }
        // Interrupt poll at the schedule boundary: a worker spinning over
        // an empty queue (its peers still solving) observes a cancellation
        // or deadline here even though it never charges a combine step.
        if let Err(e) = check() {
            pool.fail(e);
            return;
        }
        let Some((unit, stolen)) = pool.pop(me) else {
            stats.parks += 1;
            pool.park();
            continue;
        };
        stats.units += 1;
        stats.steals += u64::from(stolen);
        // Second line of panic defense: the DP's per-unit isolation
        // converts its own panics before they reach this frame, so this
        // catch only fires for tasks that unwind past it. Either way a
        // panicking task can never abort the process or strand the pool —
        // the dead unit's consumers keep nonzero dependency counters, but
        // every worker re-checks `abort` before popping, so the drain
        // terminates without a level barrier.
        // AssertUnwindSafe: a failed run abandons all task state; the
        // salvage path only reads units recorded as completed.
        match std::panic::catch_unwind(AssertUnwindSafe(|| task(state, unit as usize))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                pool.fail(e);
                return;
            }
            Err(payload) => {
                trace.count(Counter::PanicsContained, 1);
                pool.fail(MapError::WorkerPanicked {
                    unit: unit as usize,
                    payload: crate::dp::panic_text(payload.as_ref()),
                    partial: None,
                });
                return;
            }
        }
        // Release the consumers whose last dependency this was. The
        // `AcqRel` decrement pairs with the other producers' decrements:
        // whichever worker reaches zero has acquired every producer's
        // published solutions, and the queue mutex hands that visibility
        // to whoever pops the consumer unit.
        for &c in &pool.consumers[unit as usize] {
            if pool.deps_left[c as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                stats.wakeups += u64::from(pool.push(me, c));
            }
        }
        if pool.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            pool.wake_all();
        }
    }
}

/// Runs `task` over every unit of `partition` on `threads` persistent
/// workers (the calling thread is worker 0), respecting unit dependencies.
/// Each worker gets its own `make_worker(index)` state; `check` is polled
/// at every schedule boundary so interrupts reach idle workers too.
///
/// Always returns every worker's state — on failure the caller salvages
/// what the workers completed — alongside the run outcome: `Ok(())`, or
/// the first error any task returned, the first interrupt `check`
/// reported, or a [`MapError::WorkerPanicked`] for a contained panic.
///
/// With `trace` enabled, each worker's scheduling tallies are emitted as a
/// [`WorkerStats`] event at the end of the run, plus aggregate
/// steal/wakeup/park counters; a failed run also emits a [`Stage::Drain`]
/// span covering first-failure-to-last-worker-return.
pub(crate) fn run_units<W: Send>(
    partition: &ConePartition,
    threads: usize,
    make_worker: impl Fn(usize) -> W,
    task: impl Fn(&mut W, usize) -> Result<(), MapError> + Sync,
    check: impl Fn() -> Result<(), MapError> + Sync,
    trace: TraceHandle,
) -> (Vec<W>, Result<(), MapError>) {
    let threads = threads.clamp(1, partition.units().len().max(1));
    let pool = Pool::new(partition, threads);
    let mut states: Vec<W> = (0..threads).map(&make_worker).collect();
    let mut stats: Vec<WorkerStats> = (0..threads)
        .map(|i| WorkerStats {
            worker: i,
            ..WorkerStats::default()
        })
        .collect();
    {
        let (first, rest) = states.split_first_mut().expect("at least one worker");
        let (first_stats, rest_stats) = stats.split_first_mut().expect("at least one worker");
        let pool = &pool;
        let task = &task;
        let check = &check;
        std::thread::scope(|s| {
            let handles: Vec<_> = rest
                .iter_mut()
                .zip(rest_stats.iter_mut())
                .enumerate()
                .map(|(i, (state, stat))| {
                    s.spawn(move || work(pool, i + 1, state, stat, task, check, trace))
                })
                .collect();
            work(pool, 0, first, first_stats, task, check, trace);
            for h in handles {
                // Tasks are panic-isolated above; an unwind here would be a
                // bug in the worker loop itself.
                h.join().expect("DP worker loop panicked");
            }
        });
    }
    // All workers have returned: a recorded drain start means the span is
    // now complete.
    if trace.enabled() {
        if let Some(at) = *pool.drain_started.lock().expect("drain lock poisoned") {
            trace.emit(&Event::Span {
                stage: Stage::Drain,
                nanos: at.elapsed().as_nanos() as u64,
            });
        }
        let (mut steals, mut wakeups, mut parks) = (0u64, 0u64, 0u64);
        for &s in &stats {
            steals += s.steals;
            wakeups += s.wakeups;
            parks += s.parks;
            trace.worker(s);
        }
        trace.count(Counter::SchedSteals, steals);
        trace.count(Counter::SchedWakeups, wakeups);
        trace.count(Counter::SchedParks, parks);
    }
    let error = pool.error.into_inner().expect("error lock poisoned");
    debug_assert!(
        error.is_some() || pool.remaining.load(Ordering::Relaxed) == 0,
        "scheduler drained without completing every unit"
    );
    match error {
        Some(e) => (states, Err(e)),
        None => (states, Ok(())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_unate::{Literal, Phase, USignal, UnateNetwork};

    /// A diamond of shared nodes: enough units and cross-unit dependencies
    /// to exercise counters, stealing and seeding.
    fn diamond(width: usize) -> UnateNetwork {
        let mut u = UnateNetwork::new((0..width).map(|i| format!("i{i}")).collect());
        let lits: Vec<_> = (0..width)
            .map(|i| {
                u.add_literal(Literal {
                    input: i,
                    phase: Phase::Pos,
                })
            })
            .collect();
        // Shared pairwise ANDs (multi-fanout: each feeds two ORs).
        let ands: Vec<_> = (0..width)
            .map(|i| u.add_and(lits[i], lits[(i + 1) % width]))
            .collect();
        for i in 0..width {
            let f = u.add_or(ands[i], ands[(i + 1) % width]);
            u.add_output(format!("f{i}"), USignal::Node(f), false);
        }
        u
    }

    #[test]
    fn pool_visits_every_unit_exactly_once_in_dependency_order() {
        let network = diamond(16);
        let partition = network.cone_partition();
        let n = partition.units().len();
        for threads in [1, 2, 4] {
            let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
            let visits = AtomicUsize::new(0);
            let (states, outcome) = run_units(
                &partition,
                threads,
                |i| i,
                |_, u| {
                    for &d in partition.unit(u).deps() {
                        assert!(
                            done[d].load(Ordering::SeqCst),
                            "unit {u} ran before its dependency {d}"
                        );
                    }
                    assert!(!done[u].swap(true, Ordering::SeqCst), "unit {u} ran twice");
                    visits.fetch_add(1, Ordering::SeqCst);
                    Ok(())
                },
                || Ok(()),
                TraceHandle::off(),
            );
            outcome.expect("no task errors");
            assert_eq!(states.len(), threads.min(n));
            assert_eq!(visits.load(Ordering::SeqCst), n, "{threads} threads");
        }
    }

    #[test]
    fn pool_propagates_the_first_error_and_drains() {
        let network = diamond(12);
        let partition = network.cone_partition();
        let (states, outcome) = run_units(
            &partition,
            4,
            |_| (),
            |_, u| {
                if u % 5 == 3 {
                    Err(MapError::BudgetExceeded {
                        what: format!("synthetic failure at unit {u}"),
                    })
                } else {
                    Ok(())
                }
            },
            || Ok(()),
            TraceHandle::off(),
        );
        assert_eq!(states.len(), 4);
        assert!(matches!(outcome, Err(MapError::BudgetExceeded { .. })));
    }

    #[test]
    fn pool_clamps_thread_count_to_unit_count() {
        let mut u = UnateNetwork::new(vec!["a".into()]);
        let a = u.add_literal(Literal {
            input: 0,
            phase: Phase::Pos,
        });
        u.add_output("f", USignal::Node(a), false);
        let partition = u.cone_partition();
        let (states, outcome) = run_units(
            &partition,
            8,
            |i| i,
            |_, _| Ok(()),
            || Ok(()),
            TraceHandle::off(),
        );
        outcome.expect("runs");
        assert_eq!(states.len(), 1);
    }

    #[test]
    fn pool_contains_task_panics_and_returns_states() {
        let network = diamond(12);
        let partition = network.cone_partition();
        let target = partition.units().len() - 1;
        let (recorder, trace) = soi_trace::Recorder::install();
        let (states, outcome) = run_units(
            &partition,
            4,
            |_| 0u64,
            |ran, u| {
                if u == target {
                    panic!("synthetic panic at unit {u}");
                }
                *ran += 1;
                Ok(())
            },
            || Ok(()),
            trace,
        );
        // Worker states survive the panic for salvage.
        assert_eq!(states.len(), 4);
        match outcome {
            Err(MapError::WorkerPanicked { unit, payload, .. }) => {
                assert_eq!(unit, target);
                assert!(payload.contains("synthetic panic"), "{payload}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        assert_eq!(recorder.counter(Counter::PanicsContained), 1);
        // The drain was timed.
        assert!(recorder.stage_nanos(Stage::Drain).is_some());
    }

    #[test]
    fn pool_observes_interrupts_from_the_check_hook() {
        let network = diamond(12);
        let partition = network.cone_partition();
        let (_, outcome) = run_units(
            &partition,
            2,
            |_| (),
            |_, _| Ok(()),
            || {
                Err(MapError::Cancelled {
                    what: "pre-tripped token".into(),
                    partial: None,
                })
            },
            TraceHandle::off(),
        );
        assert!(matches!(outcome, Err(MapError::Cancelled { .. })));
    }

    #[test]
    fn worker_stats_account_for_every_unit() {
        let network = diamond(16);
        let partition = network.cone_partition();
        let n = partition.units().len() as u64;
        let (recorder, trace) = soi_trace::Recorder::install();
        let (_, outcome) = run_units(&partition, 3, |_| (), |_, _| Ok(()), || Ok(()), trace);
        outcome.expect("runs");
        let workers = recorder.workers();
        assert_eq!(workers.len(), 3);
        // Every unit ran on exactly one worker.
        assert_eq!(workers.iter().map(|w| w.units).sum::<u64>(), n);
        // The aggregate counters match the per-worker tallies.
        assert_eq!(
            recorder.counter(Counter::SchedSteals),
            workers.iter().map(|w| w.steals).sum::<u64>()
        );
        assert_eq!(
            recorder.counter(Counter::SchedParks),
            workers.iter().map(|w| w.parks).sum::<u64>()
        );
        assert_eq!(
            recorder.counter(Counter::SchedWakeups),
            workers.iter().map(|w| w.wakeups).sum::<u64>()
        );
    }
}
