//! Shared pieces of the two tuple DPs, including the driver that walks a
//! unate network — serially, or across independent fanout-free cones on a
//! persistent work-stealing worker pool — and hands each node to an
//! algorithm-specific solver, memoizing structurally isomorphic cones in
//! a [`ConeCache`](crate::ConeCache) along the way.

use std::cell::Cell;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use soi_netlist::fx::FxHashSet;
use soi_trace::{Counter, Gauge, Stage, TraceHandle};
use soi_unate::{ConePartition, ConeUnit, Literal, ShapeScratch, UId, UNode, UnateNetwork};

use crate::arena::CandArena;
use crate::cache::{self, RunCache};
use crate::job::{CancelToken, PartialMapping};
use crate::tuple::{Cand, CandRef, Form, GateSol, NodeSol, TupleKey};
use crate::{Algorithm, ConeCache, Cost, CostModel, Footing, MapConfig, MapError};

/// The product of one DP run over a unate network.
pub(crate) struct Solution {
    /// One solution per unate node.
    pub(crate) sols: Vec<NodeSol>,
    /// Nodes where the degradation fallback forced a gate boundary (empty
    /// unless [`MapConfig::degrade_unmappable`] is set and triggered).
    pub(crate) degraded: Vec<UId>,
    /// Largest exported-candidate count any single node reached — the
    /// memory high-water mark of the DP (diagnostics; deterministic).
    pub(crate) peak_candidates: usize,
    /// Worker threads the schedule actually used.
    pub(crate) threads_used: usize,
    /// Cone-cache hits and misses of this run (both 0 with the cache off).
    pub(crate) cache_hits: u64,
    pub(crate) cache_misses: u64,
    /// Candidate-combination steps the run charged against its budget —
    /// identical across serial, parallel and cached schedules (cache hits
    /// bulk-charge the step count their cached solution originally cost).
    pub(crate) combine_steps: u64,
}

/// Running charge against the per-run combine-step budget
/// ([`crate::Limits::max_combine_steps`]).
///
/// The counter is a shared atomic so cone workers running on different
/// threads charge the same global allowance: the budget stays a single
/// deterministic limit on the *total* amount of combination work, not a
/// per-thread one. Whether a run trips the budget is therefore identical
/// between serial and parallel execution, and between cached and uncached
/// execution (a cache hit charges the exact step count the solver would
/// have performed); only which node reports the exhaustion first may
/// differ under contention.
///
/// The budget doubles as the run's **interrupt poll point**: the shared
/// cancellation token, the deterministic step trip and the wall-clock
/// deadline from [`crate::Limits`] are checked here — once per
/// [`CHECK_STRIDE`] combine steps inside the inner loop, plus at every
/// cone-unit boundary — so every worker observes an interrupt within a
/// bounded amount of work without putting an `Instant::now()` on the hot
/// path.
pub(crate) struct Budget {
    steps: AtomicU64,
    max_steps: u64,
    cancel: CancelToken,
    /// `Limits::cancel_after_steps`, or `u64::MAX` when unset.
    cancel_after: u64,
    /// `(fire instant, configured allowance)` when a deadline is set.
    deadline: Option<(Instant, Duration)>,
    started: Instant,
    /// First-trip latch so `cancels_observed` counts interrupts, not polls.
    tripped: AtomicBool,
    trace: TraceHandle,
}

/// Combine steps between interrupt polls. Coarse enough that the poll
/// (an atomic load, occasionally a clock read) vanishes next to the
/// candidate combination work of a stride; fine enough that a cancel or
/// deadline is observed within microseconds on every schedule.
const CHECK_STRIDE: u64 = 1024;

impl Budget {
    pub(crate) fn new(config: &MapConfig) -> Budget {
        let started = Instant::now();
        Budget {
            steps: AtomicU64::new(0),
            max_steps: config.limits.max_combine_steps,
            cancel: config.limits.cancel,
            cancel_after: config.limits.cancel_after_steps.unwrap_or(u64::MAX),
            deadline: config.limits.deadline.map(|d| (started + d, d)),
            started,
            tripped: AtomicBool::new(false),
            trace: config.trace,
        }
    }

    /// Single-step charge — test convenience over
    /// [`charge_many`](Budget::charge_many).
    #[cfg(test)]
    pub(crate) fn charge(&self, node: UId) -> Result<(), MapError> {
        self.charge_many(1, node)
    }

    /// Charges `n` candidate-combination steps at once — how a cone-cache
    /// hit pays for the combination work its cached solution originally
    /// cost, and how the solvers charge a node's candidate cross-product,
    /// keeping the cumulative total (and with it budget-trip behaviour)
    /// identical across both paths.
    pub(crate) fn charge_many(&self, n: u64, node: UId) -> Result<(), MapError> {
        let before = self.steps.fetch_add(n, Ordering::Relaxed);
        let steps = before + n;
        if steps > self.max_steps {
            return Err(MapError::BudgetExceeded {
                what: format!(
                    "combine-step budget of {} exhausted at node {node}",
                    self.max_steps
                ),
            });
        }
        // Poll interrupts once per stride — and always when this charge
        // crossed the deterministic test trip, so `cancel_after_steps`
        // interrupts at the exact step count regardless of stride phase.
        if before / CHECK_STRIDE != steps / CHECK_STRIDE || steps >= self.cancel_after {
            self.check_interrupt()?;
        }
        Ok(())
    }

    /// Polls the run's interrupt sources: the cancellation token, the
    /// deterministic step trip, then the wall-clock deadline. Called from
    /// the charge stride, at cone-unit boundaries, and by the scheduler's
    /// worker loop.
    pub(crate) fn check_interrupt(&self) -> Result<(), MapError> {
        if self.cancel.is_cancelled() {
            self.trip();
            return Err(MapError::Cancelled {
                what: "cancellation token tripped".into(),
                partial: None,
            });
        }
        if self.steps.load(Ordering::Relaxed) >= self.cancel_after {
            self.trip();
            return Err(MapError::Cancelled {
                what: format!("deterministic trip at {} combine steps", self.cancel_after),
                partial: None,
            });
        }
        if let Some((at, allowance)) = self.deadline {
            if Instant::now() >= at {
                self.trip();
                return Err(MapError::DeadlineExceeded {
                    elapsed: self.started.elapsed(),
                    deadline: allowance,
                    partial: None,
                });
            }
        }
        Ok(())
    }

    /// Counts the first observed interrupt (workers racing to the same
    /// trip report one cancellation, not one per worker).
    fn trip(&self) {
        if !self.tripped.swap(true, Ordering::Relaxed) {
            self.trace.count(Counter::CancelsObserved, 1);
        }
    }

    /// Total steps charged so far across all workers.
    pub(crate) fn total(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }
}

/// Rejects networks larger than the gate budget before any DP work.
pub(crate) fn check_gate_budget(unate: &UnateNetwork, config: &MapConfig) -> Result<(), MapError> {
    if unate.len() > config.limits.max_gates {
        return Err(MapError::BudgetExceeded {
            what: format!(
                "network has {} unate nodes, budget allows {}",
                unate.len(),
                config.limits.max_gates
            ),
        });
    }
    Ok(())
}

/// Per-worker context for solver invocations: the shared read-only run
/// state plus this worker's running step count (used to price cone-cache
/// entries).
pub(crate) struct NodeCtx<'a> {
    pub config: &'a MapConfig,
    pub model: &'a CostModel,
    pub fanouts: &'a [u32],
    budget: &'a Budget,
    steps: Cell<u64>,
}

impl<'a> NodeCtx<'a> {
    pub(crate) fn new(
        config: &'a MapConfig,
        model: &'a CostModel,
        fanouts: &'a [u32],
        budget: &'a Budget,
    ) -> NodeCtx<'a> {
        NodeCtx {
            config,
            model,
            fanouts,
            budget,
            steps: Cell::new(0),
        }
    }

    /// Bulk-charges `n` steps at `node`, keeping the worker tally in step
    /// with the global budget so enclosing cone captures price correctly.
    /// Used by cache hits paying for the work their cached solution
    /// originally cost, and by the solvers' combination loops, which
    /// charge a node's whole candidate cross-product upfront — one atomic
    /// add per node instead of one per pair, with an identical cumulative
    /// total (so budget-trip behaviour is unchanged).
    pub(crate) fn charge_many(&self, n: u64, node: UId) -> Result<(), MapError> {
        self.steps.set(self.steps.get() + n);
        self.budget.charge_many(n, node)
    }

    fn steps_so_far(&self) -> u64 {
        self.steps.get()
    }

    /// Polls the run's interrupt sources (see [`Budget::check_interrupt`]).
    pub(crate) fn check_interrupt(&self) -> Result<(), MapError> {
        self.budget.check_interrupt()
    }
}

/// Per-worker scratch arenas, reused across nodes so per-node accumulation
/// and pruning never allocate in steady state. All candidate payloads live
/// in the row-major [`CandArena`]; the vectors around it carry only `u32`
/// handles. The SOI solver copies both fanins' export lists into
/// `left`/`right`, buckets every combination by shape as it is generated
/// (`buckets`, replacing a stable sort over the whole pair list), prunes
/// each bucket with the batched skyline prune
/// ([`crate::arena::skyline_prune`]) via `order`/`keyed`/`kept`, and
/// stages the survivors in `staged` with their runs described by `shapes`.
/// The baseline keeps its key-sorted best-per-shape list in `pairs`.
/// Everything is cleared — never dropped — between nodes, so capacity is
/// retained across nodes *and* cone units for the lifetime of the worker.
#[derive(Default)]
pub(crate) struct Scratch {
    /// Struct-of-arrays storage for every candidate of the current node.
    pub cands: CandArena,
    /// Key-sorted best-per-shape accumulation list (baseline DP).
    pub pairs: Vec<(TupleKey, u32)>,
    /// Materialized fanin export lists: copied once per node so the
    /// quadratic combination loop reads two dense slices instead of
    /// re-walking nested run iterators on every outer iteration.
    pub left: Vec<(CandRef, Cand)>,
    pub right: Vec<(CandRef, Cand)>,
    /// Shape runs of `right`: `(key, start, len)` — lets the combination
    /// loop test shape limits once per run instead of once per pair.
    pub right_runs: Vec<(TupleKey, u32, u32)>,
    /// Per-shape generation-order candidate buckets, indexed
    /// `(w-1)·h_grid + (h-1)` (SOI DP).
    pub buckets: Vec<Vec<u32>>,
    /// Skyline sweep ordering scratch: `(lex-prefix key, position)`.
    pub order: Vec<(u64, u32)>,
    /// Skyline final-ranking scratch: `(packed model key, position)`.
    pub keyed: Vec<(u128, u32)>,
    /// Pareto-pruning keep buffer for one shape run (handles).
    pub kept: Vec<u32>,
    /// Per-shape survivor runs: `(key, start, len)` into `staged`.
    pub shapes: Vec<(TupleKey, u32, u32)>,
    /// Survivor staging list (handles).
    pub staged: Vec<u32>,
}

/// The published per-node solutions of one DP run.
///
/// Slots are written exactly once — by the single worker that solves (or
/// cache-rebinds) the owning cone — and only read by workers whose cone
/// depends on that one, after the scheduler has established a
/// happens-before edge (dependency-counter release/acquire plus the queue
/// mutex). That write-once/read-after discipline is what makes the
/// `UnsafeCell` sound and buys the O(1) fanin lookup that replaced the
/// old worker-local overlay scan.
pub(crate) struct SolTable {
    slots: Box<[std::cell::UnsafeCell<Option<NodeSol>>]>,
}

// SAFETY: see the type docs — each slot has exactly one writer, and every
// reader is ordered after that write by the scheduler's synchronization.
unsafe impl Sync for SolTable {}

impl SolTable {
    pub(crate) fn new(nodes: usize) -> SolTable {
        SolTable {
            slots: (0..nodes)
                .map(|_| std::cell::UnsafeCell::new(None))
                .collect(),
        }
    }

    /// Publishes the solution of `id`. Must be called at most once per id,
    /// by the worker owning the containing cone.
    pub(crate) fn set(&self, id: UId, sol: NodeSol) {
        // SAFETY: single writer per slot (scheduler invariant).
        unsafe { *self.slots[id.index()].get() = Some(sol) };
    }

    /// The solution of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` has not been solved — a scheduling bug.
    pub(crate) fn get(&self, id: UId) -> &NodeSol {
        // SAFETY: readers run strictly after the slot's unique write.
        unsafe { &*self.slots[id.index()].get() }
            .as_ref()
            .expect("fanin solved before its consumer")
    }

    /// Unwraps the table after a fully successful run.
    fn into_sols(self) -> Vec<NodeSol> {
        self.slots
            .into_vec()
            .into_iter()
            .map(|slot| slot.into_inner().expect("every node solved"))
            .collect()
    }

    /// Exclusive access to a solved slot — the salvage pass uses it to
    /// backfill cache profiles on the nodes of completed units after an
    /// interrupted run (when the workers are gone and the table may be
    /// only partially filled, so [`into_sols`](SolTable::into_sols) is off
    /// the table).
    ///
    /// # Panics
    ///
    /// Panics if `id` has not been solved.
    fn get_mut(&mut self, id: UId) -> &mut NodeSol {
        self.slots[id.index()]
            .get_mut()
            .as_mut()
            .expect("every node of a completed unit is solved")
    }
}

/// View of the already-solved nodes a solver may read. A thin wrapper over
/// [`SolTable`] — fanin lookup is a direct indexed read.
pub(crate) struct SolView<'a> {
    table: &'a SolTable,
}

impl SolView<'_> {
    /// The solution of fanin `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` has not been solved — a scheduling bug.
    pub fn get(&self, id: UId) -> &NodeSol {
        self.table.get(id)
    }
}

/// What a per-node solver returns: the node's solution plus whether the
/// degradation fallback fired.
pub(crate) type NodeOutcome = (NodeSol, bool);

/// A per-node DP step: solves `node` given the solutions of its fanins.
pub(crate) trait NodeSolver: Sync {
    fn solve_node(
        &self,
        ctx: &NodeCtx<'_>,
        view: &SolView<'_>,
        scratch: &mut Scratch,
        id: UId,
        node: UNode,
    ) -> Result<NodeOutcome, MapError>;
}

impl<F> NodeSolver for F
where
    F: Fn(&NodeCtx<'_>, &SolView<'_>, &mut Scratch, UId, UNode) -> Result<NodeOutcome, MapError>
        + Sync,
{
    fn solve_node(
        &self,
        ctx: &NodeCtx<'_>,
        view: &SolView<'_>,
        scratch: &mut Scratch,
        id: UId,
        node: UNode,
    ) -> Result<NodeOutcome, MapError> {
        self(ctx, view, scratch, id, node)
    }
}

/// One cone unit a worker finished, with the combine steps it charged —
/// the unit of account for partial-result salvage.
#[derive(Clone, Copy)]
pub(crate) struct CompletedUnit {
    pub unit: u32,
    pub steps: u64,
}

/// Per-worker accumulator merged into the [`Solution`] at the end.
#[derive(Default)]
pub(crate) struct UnitAcc {
    pub degraded: Vec<UId>,
    pub peak_candidates: usize,
    /// Largest candidate count the worker's scratch arena held for one
    /// node (pre-prune frontier high-water; see `Gauge::ScratchHighWater`).
    pub scratch_high_water: usize,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Units this worker completed, in completion order.
    pub completed: Vec<CompletedUnit>,
}

/// A worker's mutable state: scratch arenas plus the accumulator.
#[derive(Default)]
pub(crate) struct WorkerState {
    pub scratch: Scratch,
    pub acc: UnitAcc,
    /// Reused cone-shape buffers for cached runs (one shape per unit).
    pub shapes: ShapeScratch,
}

/// Solves the given nodes in order, publishing each solution. With a
/// cache, each gate goes through the node tier: probe on (kind, fanout,
/// fanin profiles), rebind on a hit, solve and capture on a miss.
/// Literals are always solved directly (they cost less than a probe).
fn solve_nodes<S: NodeSolver>(
    ctx: &NodeCtx<'_>,
    table: &SolTable,
    unate: &UnateNetwork,
    solver: &S,
    nodes: &[UId],
    state: &mut WorkerState,
    run_cache: Option<&RunCache<'_>>,
) -> Result<(), MapError> {
    for &id in nodes {
        let node = unate.node(id);
        let node_cache = run_cache
            .filter(|rc| rc.node_tier_enabled())
            .filter(|_| match node {
                UNode::And(a, b) | UNode::Or(a, b) => {
                    table.get(a).exported.total_candidates()
                        * table.get(b).exported.total_candidates()
                        >= cache::NODE_TIER_MIN_COMBINATIONS
                }
                UNode::Lit(_) => false,
            });
        let (sol, deg) = if let Some(rc) = node_cache {
            let fanout = ctx.fanouts[id.index()];
            let (key, level_base, hit) = rc.probe_node(node, fanout, table);
            ctx.config.trace.count(Counter::NodeTierProbes, 1);
            if rc.note_node_probe(hit.is_some()) {
                ctx.config.trace.count(Counter::TierBypasses, 1);
            }
            if let Some(entry) = hit {
                ctx.config.trace.count(Counter::NodeTierHits, 1);
                if entry.persisted() {
                    ctx.config.trace.count(Counter::PersistHits, 1);
                }
                rc.record_hits(1);
                state.acc.cache_hits += 1;
                ctx.charge_many(entry.steps(), id)?;
                entry.rebind(id, node, level_base)
            } else {
                ctx.config.trace.count(Counter::NodeTierMisses, 1);
                rc.record_misses(1);
                state.acc.cache_misses += 1;
                let steps_before = ctx.steps_so_far();
                let (mut sol, deg) = {
                    let view = SolView { table };
                    solver.solve_node(ctx, &view, &mut state.scratch, id, node)?
                };
                sol.profile = cache::profile(&sol.exported);
                let steps = ctx.steps_so_far() - steps_before;
                rc.insert_node(
                    key,
                    cache::NodeEntry::capture(id, node, &sol, deg, steps, level_base),
                );
                (sol, deg)
            }
        } else {
            let view = SolView { table };
            let (mut sol, deg) = solver.solve_node(ctx, &view, &mut state.scratch, id, node)?;
            if run_cache.is_some_and(|rc| !rc.fully_bypassed()) {
                // Literal solutions feed gate probes: they need profiles
                // too (all-level-0 candidates, so the min pins base 0).
                // Once both tiers are latched off nothing reads profiles
                // again, so the digest walk is skipped along with them.
                sol.profile = cache::profile(&sol.exported);
            }
            (sol, deg)
        };
        state.acc.peak_candidates = state
            .acc
            .peak_candidates
            .max(sol.exported.total_candidates());
        state.acc.scratch_high_water = state.acc.scratch_high_water.max(state.scratch.cands.len());
        if deg {
            state.acc.degraded.push(id);
        }
        table.set(id, sol);
    }
    Ok(())
}

/// Solves one cone unit, going through the cone cache when enabled: probe
/// by structural signature + boundary profile, rebind on a hit, solve and
/// capture on a miss.
fn solve_unit<S: NodeSolver>(
    ctx: &NodeCtx<'_>,
    table: &SolTable,
    unate: &UnateNetwork,
    unit: &ConeUnit,
    solver: &S,
    run_cache: Option<&RunCache<'_>>,
    state: &mut WorkerState,
) -> Result<(), MapError> {
    if let Some(poisoned) = ctx.config.poison_node {
        // Fault injection (see `MapConfig::poison_node`): blow up before
        // any solving, on every schedule and cache mode alike, so the
        // containment path is exercised deterministically.
        if unit
            .nodes()
            .iter()
            .any(|&id| id.index() == poisoned as usize)
        {
            panic!("injected fault: poisoned unate node {poisoned}");
        }
    }
    let Some(rc) = run_cache else {
        return solve_nodes(ctx, table, unate, solver, unit.nodes(), state, None);
    };
    let gates = unit
        .nodes()
        .iter()
        .filter(|&&id| unate.node(id).is_gate())
        .count();
    if unit.nodes().len() > cache::MAX_CACHED_UNIT_NODES
        || gates < cache::MIN_CACHED_UNIT_GATES
        || !rc.cone_tier_enabled()
    {
        // Too big to snapshot as one entry (the capture clones every
        // solution in the cone), too small to amortize the shape
        // computation, or the adaptive bypass latched the cone tier off;
        // every gate still goes through the node tier (which applies its
        // own bypass latch).
        return solve_nodes(ctx, table, unate, solver, unit.nodes(), state, Some(rc));
    }
    // Borrow dance: the shape buffers move out of `state` so `state` stays
    // free for `solve_nodes`/`rebind`; they move back on the success paths
    // (an error aborts the whole run, so losing them there is harmless).
    let mut shapes = std::mem::take(&mut state.shapes);
    unate.cone_shape_into(unit, &mut shapes);
    let shape = &shapes.shape;
    let root = unit.root();
    // The root's fanout shapes its exported gate candidate (duplication
    // amortization, shared-vs-exclusive cost), so gate-rooted cones keyed
    // on it; literal solutions are fanout-independent.
    let root_fanout = if unate.node(root).is_gate() {
        ctx.fanouts[root.index()]
    } else {
        0
    };
    let (key, level_base, hit) = rc.probe(shape, root_fanout, table, unate);
    if rc.note_cone_probe(hit.is_some()) {
        ctx.config.trace.count(Counter::TierBypasses, 1);
    }
    let gates = gates as u64;
    if let Some(entry) = hit {
        // One cone probe stands in for every gate solve in the unit, so
        // it weighs as many hits; pay the combination steps the cached
        // solution originally cost, so budget accounting is identical to
        // an uncached run.
        ctx.config.trace.count(Counter::ConeTierHits, 1);
        ctx.config.trace.count(Counter::ConeTierGateHits, gates);
        if entry.persisted() {
            ctx.config.trace.count(Counter::PersistHits, gates);
        }
        rc.record_hits(gates);
        state.acc.cache_hits += gates;
        ctx.charge_many(entry.steps(), root)?;
        entry.rebind(shape, unate, table, &mut state.acc, level_base);
        state.shapes = shapes;
        return Ok(());
    }
    // On a cone miss no miss is recorded here: the fill-in solve sends
    // every gate through the node tier, which counts each gate's outcome
    // individually — so each gate solve is counted exactly once, as a
    // cone-tier hit or a node-tier hit/miss.
    let degraded_start = state.acc.degraded.len();
    let steps_before = ctx.steps_so_far();
    solve_nodes(ctx, table, unate, solver, unit.nodes(), state, Some(rc))?;
    let steps = ctx.steps_so_far() - steps_before;
    rc.insert(
        key,
        cache::ConeEntry::capture(
            shape,
            table,
            &state.acc.degraded[degraded_start..],
            steps,
            level_base,
        )?
        .with_kinds(shape, unate),
    );
    state.shapes = shapes;
    Ok(())
}

/// Runs one cone unit with full job control: an interrupt poll at the
/// unit boundary, panic containment around the solve, and completion
/// tracking for salvage. Both schedules funnel through here.
#[allow(clippy::too_many_arguments)]
fn run_unit_isolated<S: NodeSolver>(
    ctx: &NodeCtx<'_>,
    table: &SolTable,
    unate: &UnateNetwork,
    unit: &ConeUnit,
    solver: &S,
    run_cache: Option<&RunCache<'_>>,
    state: &mut WorkerState,
    u: usize,
) -> Result<(), MapError> {
    ctx.check_interrupt()?;
    let steps_before = ctx.steps_so_far();
    // AssertUnwindSafe: on a caught panic the worker's in-progress unit
    // state (scratch arenas, partially filled table slots) is abandoned —
    // the salvage pass only ever reads units recorded as completed.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        solve_unit(ctx, table, unate, unit, solver, run_cache, state)
    }));
    match outcome {
        Ok(Ok(())) => {
            state.acc.completed.push(CompletedUnit {
                unit: u as u32,
                steps: ctx.steps_so_far() - steps_before,
            });
            Ok(())
        }
        Ok(Err(e)) => Err(e),
        Err(payload) => {
            ctx.config.trace.count(Counter::PanicsContained, 1);
            Err(MapError::WorkerPanicked {
                unit: u,
                payload: panic_text(payload.as_ref()),
                partial: None,
            })
        }
    }
}

/// Renders a caught panic payload as text (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Runs a per-node solver over the whole network, serially or on the
/// work-stealing pool according to [`MapConfig::parallelism`], with
/// optional cone memoization.
///
/// Both paths iterate cone units ([`UnateNetwork::cone_partition`]); the
/// serial path walks them in index order (a valid topological order), the
/// parallel path lets [`crate::sched`] schedule them as their dependencies
/// resolve. Because every per-node computation is a pure function of its
/// fanins' solutions — and the sorted [`crate::tuple::ExportMap`] makes
/// candidate enumeration order deterministic — the result is bit-identical
/// across all schedules, and (see [`crate::cache`]) with the cone cache on
/// or off.
pub(crate) fn run_dp<S: NodeSolver>(
    unate: &UnateNetwork,
    config: &MapConfig,
    algorithm: Algorithm,
    solver: S,
    cone_cache: Option<&ConeCache>,
) -> Result<Solution, MapError> {
    check_gate_budget(unate, config)?;
    let trace = config.trace;
    let model = CostModel::new(config, algorithm);
    let fanouts = fanouts(unate);
    let budget = Budget::new(config);
    let partition = {
        let _span = trace.span(Stage::ConePartition);
        unate.cone_partition()
    };
    let gates = unate.iter().filter(|(_, n)| n.is_gate()).count();
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let threads = config
        .parallelism
        .resolved_threads(hw, gates, partition.units().len())
        .clamp(1, partition.units().len().max(1));
    let mut table = SolTable::new(unate.len());
    let run_cache = cone_cache
        .filter(|c| {
            let admitted = crate::cache::admit_cold_cache(
                c,
                unate,
                partition.units(),
                gates,
                config.cache_bypass_floor_permille,
            );
            if !admitted {
                trace.count(Counter::AdmissionSkips, 1);
            }
            admitted
        })
        .map(|c| RunCache::new(c, config, algorithm));

    let (accs, outcome): (Vec<UnitAcc>, Result<(), MapError>) = if threads <= 1 {
        let ctx = NodeCtx::new(config, &model, &fanouts, &budget);
        let mut state = WorkerState::default();
        let mut outcome = Ok(());
        for (u, unit) in partition.units().iter().enumerate() {
            if let Err(e) = run_unit_isolated(
                &ctx,
                &table,
                unate,
                unit,
                &solver,
                run_cache.as_ref(),
                &mut state,
                u,
            ) {
                outcome = Err(e);
                break;
            }
        }
        (vec![state.acc], outcome)
    } else {
        let table_ref = &table;
        let partition_ref = &partition;
        let run_cache = run_cache.as_ref();
        let solver = &solver;
        let budget_ref = &budget;
        let (workers, outcome) = crate::sched::run_units(
            &partition,
            threads,
            |_| {
                (
                    NodeCtx::new(config, &model, &fanouts, &budget),
                    WorkerState::default(),
                )
            },
            |(ctx, state): &mut (NodeCtx<'_>, WorkerState), u: usize| {
                run_unit_isolated(
                    ctx,
                    table_ref,
                    unate,
                    partition_ref.unit(u),
                    solver,
                    run_cache,
                    state,
                    u,
                )
            },
            || budget_ref.check_interrupt(),
            trace,
        );
        (
            workers.into_iter().map(|(_, state)| state.acc).collect(),
            outcome,
        )
    };

    let mut degraded: Vec<UId> = Vec::new();
    let mut completed: Vec<CompletedUnit> = Vec::new();
    let mut peak_candidates = 0usize;
    let mut scratch_high_water = 0usize;
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    for acc in accs {
        degraded.extend(acc.degraded);
        completed.extend(acc.completed);
        peak_candidates = peak_candidates.max(acc.peak_candidates);
        scratch_high_water = scratch_high_water.max(acc.scratch_high_water);
        cache_hits += acc.cache_hits;
        cache_misses += acc.cache_misses;
    }
    // Workers report degradations in unit-completion order; restore the
    // global topological order (what a cache-off serial walk produces).
    degraded.sort_unstable();
    completed.sort_unstable_by_key(|c| c.unit);

    let combine_steps = budget.total();

    if let Err(err) = outcome {
        return Err(match err {
            MapError::Cancelled { .. }
            | MapError::DeadlineExceeded { .. }
            | MapError::WorkerPanicked { .. } => {
                let salvage = build_salvage(
                    unate,
                    config,
                    algorithm,
                    &partition,
                    &completed,
                    &degraded,
                    &mut table,
                    &fanouts,
                    combine_steps,
                    trace,
                );
                err.with_partial(Arc::new(salvage))
            }
            // Deterministic failures (budget trips, unmappable nodes, cache
            // corruption) recur identically on a resume — no salvage.
            other => other,
        });
    }

    if trace.enabled() {
        trace.count(Counter::CombineSteps, combine_steps);
        trace.count(Counter::DegradedNodes, degraded.len() as u64);
        trace.gauge(Gauge::PeakCandidates, peak_candidates as u64);
        trace.gauge(Gauge::ThreadsUsed, threads as u64);
        trace.gauge(Gauge::ScratchHighWater, scratch_high_water as u64);
    }

    Ok(Solution {
        sols: table.into_sols(),
        degraded,
        peak_candidates,
        threads_used: threads,
        cache_hits,
        cache_misses,
        combine_steps,
    })
}

/// Captures everything an interrupted run finished into a fresh
/// [`ConeCache`], producing the [`PartialMapping`] that rides on the
/// interrupt error.
///
/// Each completed unit is keyed exactly as [`solve_unit`] would key it on
/// a cached run — same probe, same capture, same step price — so a resume
/// that attaches the salvage cache rebinds the salvaged cones instead of
/// re-solving them and still charges a bit-identical combine-step total.
/// Units outside the cache's envelope (oversized, or below the gate floor)
/// complete but are not salvaged; a resume re-solves them
/// deterministically.
#[allow(clippy::too_many_arguments)]
fn build_salvage(
    unate: &UnateNetwork,
    config: &MapConfig,
    algorithm: Algorithm,
    partition: &ConePartition,
    completed: &[CompletedUnit],
    degraded: &[UId],
    table: &mut SolTable,
    fanouts: &[u32],
    combine_steps: u64,
    trace: TraceHandle,
) -> PartialMapping {
    let total = partition.units().len();
    let mut done = vec![false; total];
    for c in completed {
        done[c.unit as usize] = true;
    }
    // The frontier: unfinished units whose dependencies all finished — the
    // exact work the interrupt cut off, under any schedule.
    let frontier: Vec<usize> = (0..total)
        .filter(|&u| !done[u] && partition.unit(u).deps().iter().all(|&d| done[d]))
        .collect();
    let degraded: FxHashSet<UId> = degraded.iter().copied().collect();

    // Backfill cache profiles: an uncached interrupted run never computed
    // them, and the probes below read boundary profiles from the table.
    // `profile` is pure, so recomputing them on a cached run is a no-op.
    for c in completed {
        for &id in partition.unit(c.unit as usize).nodes() {
            let sol = table.get_mut(id);
            sol.profile = cache::profile(&sol.exported);
        }
    }

    let salvage_cache = Arc::new(ConeCache::new());
    let rc = RunCache::new(&salvage_cache, config, algorithm);
    let mut shapes = ShapeScratch::default();
    let mut salvaged = 0usize;
    for c in completed {
        let unit = partition.unit(c.unit as usize);
        let gates = unit
            .nodes()
            .iter()
            .filter(|&&id| unate.node(id).is_gate())
            .count();
        if unit.nodes().len() <= cache::MAX_CACHED_UNIT_NODES
            && gates >= cache::MIN_CACHED_UNIT_GATES
        {
            // Cone tier, mirroring `solve_unit`'s miss path.
            unate.cone_shape_into(unit, &mut shapes);
            let shape = &shapes.shape;
            let root = unit.root();
            let root_fanout = if unate.node(root).is_gate() {
                fanouts[root.index()]
            } else {
                0
            };
            let (key, level_base, _) = rc.probe(shape, root_fanout, table, unate);
            let unit_degraded: Vec<UId> = unit
                .nodes()
                .iter()
                .copied()
                .filter(|id| degraded.contains(id))
                .collect();
            if let Ok(entry) =
                cache::ConeEntry::capture(shape, table, &unit_degraded, c.steps, level_base)
            {
                rc.insert(key, entry.with_kinds(shape, unate));
                salvaged += 1;
            }
        } else if gates == 1 {
            // Node tier, mirroring `solve_nodes`' per-gate path. The unit's
            // literals charge no combine steps, so the unit total `c.steps`
            // is exactly what the lone gate's solve cost.
            let Some(&gid) = unit.nodes().iter().find(|&&id| unate.node(id).is_gate()) else {
                continue;
            };
            let node = unate.node(gid);
            let viable = match node {
                UNode::And(a, b) | UNode::Or(a, b) => {
                    table.get(a).exported.total_candidates()
                        * table.get(b).exported.total_candidates()
                        >= cache::NODE_TIER_MIN_COMBINATIONS
                }
                UNode::Lit(_) => false,
            };
            if viable {
                let (key, level_base, _) = rc.probe_node(node, fanouts[gid.index()], table);
                rc.insert_node(
                    key,
                    cache::NodeEntry::capture(
                        gid,
                        node,
                        table.get(gid),
                        degraded.contains(&gid),
                        c.steps,
                        level_base,
                    ),
                );
                salvaged += 1;
            }
        }
        // 0-gate units (bare literal roots) cost nothing to re-solve.
    }
    trace.count(Counter::UnitsSalvaged, salvaged as u64);
    PartialMapping::new(
        total,
        completed.len(),
        salvaged,
        frontier,
        combine_steps,
        salvage_cache,
    )
}

/// Gate-periphery cost: p-clock + output inverter (2) + keeper, plus the
/// foot n-clock when required. Clock-connected devices weigh
/// `config.clock_weight`.
pub(crate) fn gate_overhead(touches_pi: bool, config: &MapConfig) -> (Cost, bool) {
    let footed = matches!(config.footing, Footing::Always) || touches_pi;
    let k = config.clock_weight;
    let cost = Cost {
        tx: 4 + u32::from(footed),
        wtx: k + 2 + 1 + if footed { k } else { 0 },
        disch: 0,
        level: 0,
    };
    (cost, footed)
}

/// Picks the cheapest bare tuple (by the model's grounded key, ties broken
/// toward fewer potential discharge points, then smaller shape) and wraps it
/// into a formed-gate solution. Iterates the candidates in place — no
/// flattened copy of the bare sets is ever built.
pub(crate) fn form_gate(
    config: &MapConfig,
    model: &CostModel,
    bare: impl IntoIterator<Item = (TupleKey, Cand)>,
) -> Option<GateSol> {
    let mut best: Option<(Cost, u32, TupleKey, Cand)> = None;
    for (key, cand) in bare {
        let (overhead, _) = gate_overhead(cand.touches_pi, config);
        let mut cost = cand.g.combine(overhead);
        cost.level = cand.g.level + 1;
        let better = match &best {
            None => true,
            Some((bcost, bp, bkey, _)) => {
                let (ka, kb) = (model.key(&cost), model.key(bcost));
                ka < kb
                    || (ka == kb
                        && (cand.p_dis() < *bp
                            || (cand.p_dis() == *bp && (key.w, key.h) < (bkey.w, bkey.h))))
            }
        };
        if better {
            best = Some((cost, cand.p_dis(), key, cand));
        }
    }
    best.map(|(cost, _, shape, cand)| {
        let (_, footed) = gate_overhead(cand.touches_pi, config);
        GateSol {
            cost,
            footed,
            form: cand.form,
            shape,
        }
    })
}

/// The gate-as-input candidate a node exports to its consumers: a single
/// transistor at `{1,1}` driven by the node's formed gate. A fanout-1 node
/// carries the gate's whole cost (it is paid exactly once, here); shared
/// nodes charge their gate cost globally and expose only the transistor —
/// unless duplication is allowed, in which case each consumer sees an
/// *amortized* share so that replicating the logic can compete fairly
/// (final counts are always recomputed from the materialized circuit).
pub(crate) fn exported_gate_cand(
    node: UId,
    gate: &GateSol,
    fanout: u32,
    config: &MapConfig,
) -> Cand {
    let g = if fanout <= 1 {
        gate.cost.combine(Cost::transistors(1))
    } else if config.allow_duplication {
        Cost {
            tx: gate.cost.tx.div_ceil(fanout) + 1,
            wtx: gate.cost.wtx.div_ceil(fanout) + 1,
            disch: gate.cost.disch.div_ceil(fanout),
            level: gate.cost.level,
        }
    } else {
        Cost {
            tx: 1,
            wtx: 1,
            disch: 0,
            level: gate.cost.level,
        }
    };
    Cand {
        g,
        u: g,
        p_spine: 0,
        p_branch: 0,
        par_b: false,
        touches_pi: false,
        form: Form::ChildGate(node),
    }
}

/// The single candidate of a literal leaf: one transistor driven by a
/// primary input.
pub(crate) fn literal_cand(literal: Literal) -> Cand {
    let g = Cost::transistors(1);
    Cand {
        g,
        u: g,
        p_spine: 0,
        p_branch: 0,
        par_b: false,
        touches_pi: true,
        form: Form::Lit(literal),
    }
}

/// Builds the literal node's solution (exported literal tuple plus a
/// buffer-style gate for the rare case a literal drives a primary output).
pub(crate) fn literal_sol(
    _node: UId,
    literal: Literal,
    config: &MapConfig,
    model: &CostModel,
) -> NodeSol {
    let mut sol = NodeSol::default();
    let cand = literal_cand(literal);
    sol.gate = form_gate(config, model, [(TupleKey::UNIT, cand)]);
    sol.exported.push(TupleKey::UNIT, cand);
    sol
}

/// Fanout counts of every node, where primary outputs count as consumers.
pub(crate) fn fanouts(unate: &UnateNetwork) -> Vec<u32> {
    unate.fanout_counts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use soi_unate::Phase;

    fn lit() -> Literal {
        Literal {
            input: 0,
            phase: Phase::Pos,
        }
    }

    #[test]
    fn overhead_footed_vs_footless() {
        let config = MapConfig::default();
        let (c, footed) = gate_overhead(true, &config);
        assert!(footed);
        assert_eq!(c.tx, 5);
        let (c, footed) = gate_overhead(false, &config);
        assert!(!footed);
        assert_eq!(c.tx, 4);
    }

    #[test]
    fn overhead_clock_weighting() {
        let config = MapConfig::with_clock_weight(3);
        let (c, _) = gate_overhead(true, &config);
        assert_eq!(c.tx, 5);
        assert_eq!(c.wtx, 3 + 2 + 1 + 3);
    }

    #[test]
    fn always_footed_policy() {
        let config = MapConfig {
            footing: Footing::Always,
            ..MapConfig::default()
        };
        let (c, footed) = gate_overhead(false, &config);
        assert!(footed);
        assert_eq!(c.tx, 5);
    }

    #[test]
    fn literal_gate_is_buffer() {
        let config = MapConfig::default();
        let model = CostModel::new(&config, Algorithm::DominoMap);
        let sol = literal_sol(UId::from_index(0), lit(), &config, &model);
        let gate = sol.gate.expect("literal has a gate");
        // 1 transistor + 5 overhead (touches a PI), level 1.
        assert_eq!(gate.cost.tx, 6);
        assert_eq!(gate.cost.level, 1);
        assert!(gate.footed);
    }

    #[test]
    fn budget_charges_and_trips() {
        let mut config = MapConfig::default();
        config.limits.max_combine_steps = 2;
        let b = Budget::new(&config);
        assert!(b.charge(UId::from_index(0)).is_ok());
        assert!(b.charge(UId::from_index(0)).is_ok());
        assert!(matches!(
            b.charge(UId::from_index(0)),
            Err(MapError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn budget_charge_many_matches_singles() {
        let mut config = MapConfig::default();
        config.limits.max_combine_steps = 10;
        let singles = Budget::new(&config);
        let bulk = Budget::new(&config);
        for _ in 0..7 {
            singles.charge(UId::from_index(0)).unwrap();
        }
        bulk.charge_many(7, UId::from_index(0)).unwrap();
        // Both have 3 steps left: a 4-step bulk charge trips either.
        assert!(singles.charge_many(3, UId::from_index(1)).is_ok());
        assert!(bulk.charge_many(3, UId::from_index(1)).is_ok());
        assert!(singles.charge_many(1, UId::from_index(2)).is_err());
        assert!(bulk.charge(UId::from_index(2)).is_err());
    }

    #[test]
    fn budget_is_shareable_across_threads() {
        let mut config = MapConfig::default();
        config.limits.max_combine_steps = 100;
        let b = Budget::new(&config);
        let trips: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        (0..50)
                            .filter(|_| b.charge(UId::from_index(0)).is_err())
                            .count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // 200 charges against a budget of 100: exactly 100 must fail,
        // regardless of interleaving.
        assert_eq!(trips, 100);
    }

    #[test]
    fn shared_gate_exports_unit_cost() {
        let config = MapConfig::default();
        let model = CostModel::new(&config, Algorithm::DominoMap);
        let sol = literal_sol(UId::from_index(0), lit(), &config, &model);
        let gate = sol.gate.as_ref().unwrap();
        let shared = exported_gate_cand(UId::from_index(0), gate, 3, &config);
        assert_eq!(shared.g.tx, 1);
        assert_eq!(shared.g.level, gate.cost.level);
        let exclusive = exported_gate_cand(UId::from_index(0), gate, 1, &config);
        assert_eq!(exclusive.g.tx, gate.cost.tx + 1);
    }

    #[test]
    fn sol_table_round_trips() {
        let table = SolTable::new(2);
        let config = MapConfig::default();
        let model = CostModel::new(&config, Algorithm::DominoMap);
        table.set(
            UId::from_index(1),
            literal_sol(UId::from_index(1), lit(), &config, &model),
        );
        let view = SolView { table: &table };
        assert_eq!(view.get(UId::from_index(1)).exported.total_candidates(), 1);
    }
}
