//! Shared pieces of the two tuple DPs.

use soi_unate::{Literal, UId, UnateNetwork};

use crate::tuple::{Cand, Form, GateSol, NodeSol, TupleKey};
use crate::{Cost, CostModel, Footing, MapConfig, MapError};

/// The product of one DP run over a unate network.
pub(crate) struct Solution {
    /// One solution per unate node.
    pub(crate) sols: Vec<NodeSol>,
    /// Nodes where the degradation fallback forced a gate boundary (empty
    /// unless [`MapConfig::degrade_unmappable`] is set and triggered).
    pub(crate) degraded: Vec<UId>,
}

/// Running charge against the per-run combine-step budget
/// ([`crate::Limits::max_combine_steps`]).
pub(crate) struct Budget {
    steps: u64,
    max_steps: u64,
}

impl Budget {
    pub(crate) fn new(config: &MapConfig) -> Budget {
        Budget {
            steps: 0,
            max_steps: config.limits.max_combine_steps,
        }
    }

    /// Charges one candidate-combination step at `node`.
    pub(crate) fn charge(&mut self, node: UId) -> Result<(), MapError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(MapError::BudgetExceeded {
                what: format!(
                    "combine-step budget of {} exhausted at node {node}",
                    self.max_steps
                ),
            });
        }
        Ok(())
    }
}

/// Rejects networks larger than the gate budget before any DP work.
pub(crate) fn check_gate_budget(unate: &UnateNetwork, config: &MapConfig) -> Result<(), MapError> {
    if unate.len() > config.limits.max_gates {
        return Err(MapError::BudgetExceeded {
            what: format!(
                "network has {} unate nodes, budget allows {}",
                unate.len(),
                config.limits.max_gates
            ),
        });
    }
    Ok(())
}

/// Gate-periphery cost: p-clock + output inverter (2) + keeper, plus the
/// foot n-clock when required. Clock-connected devices weigh
/// `config.clock_weight`.
pub(crate) fn gate_overhead(touches_pi: bool, config: &MapConfig) -> (Cost, bool) {
    let footed = matches!(config.footing, Footing::Always) || touches_pi;
    let k = config.clock_weight;
    let cost = Cost {
        tx: 4 + u32::from(footed),
        wtx: k + 2 + 1 + if footed { k } else { 0 },
        disch: 0,
        level: 0,
    };
    (cost, footed)
}

/// Picks the cheapest bare tuple (by the model's grounded key, ties broken
/// toward fewer potential discharge points, then smaller shape) and wraps it
/// into a formed-gate solution.
pub(crate) fn form_gate(
    sol: &NodeSol,
    config: &MapConfig,
    model: &CostModel,
    bare: &[(TupleKey, Cand)],
) -> Option<GateSol> {
    let _ = sol;
    let mut best: Option<(Cost, u32, TupleKey, &Cand)> = None;
    for (key, cand) in bare {
        let (overhead, _) = gate_overhead(cand.touches_pi, config);
        let mut cost = cand.g.combine(overhead);
        cost.level = cand.g.level + 1;
        let better = match &best {
            None => true,
            Some((bcost, bp, bkey, _)) => {
                let (ka, kb) = (model.key(&cost), model.key(bcost));
                ka < kb
                    || (ka == kb
                        && (cand.p_dis() < *bp
                            || (cand.p_dis() == *bp && (key.w, key.h) < (bkey.w, bkey.h))))
            }
        };
        if better {
            best = Some((cost, cand.p_dis(), *key, cand));
        }
    }
    best.map(|(cost, _, shape, cand)| {
        let (_, footed) = gate_overhead(cand.touches_pi, config);
        GateSol {
            cost,
            footed,
            form: cand.form.clone(),
            shape,
        }
    })
}

/// The gate-as-input candidate a node exports to its consumers: a single
/// transistor at `{1,1}` driven by the node's formed gate. A fanout-1 node
/// carries the gate's whole cost (it is paid exactly once, here); shared
/// nodes charge their gate cost globally and expose only the transistor —
/// unless duplication is allowed, in which case each consumer sees an
/// *amortized* share so that replicating the logic can compete fairly
/// (final counts are always recomputed from the materialized circuit).
pub(crate) fn exported_gate_cand(
    node: UId,
    gate: &GateSol,
    fanout: u32,
    config: &MapConfig,
) -> Cand {
    let g = if fanout <= 1 {
        gate.cost.combine(Cost::transistors(1))
    } else if config.allow_duplication {
        Cost {
            tx: gate.cost.tx.div_ceil(fanout) + 1,
            wtx: gate.cost.wtx.div_ceil(fanout) + 1,
            disch: gate.cost.disch.div_ceil(fanout),
            level: gate.cost.level,
        }
    } else {
        Cost {
            tx: 1,
            wtx: 1,
            disch: 0,
            level: gate.cost.level,
        }
    };
    Cand {
        g,
        u: g,
        p_spine: 0,
        p_branch: 0,
        par_b: false,
        touches_pi: false,
        form: Form::ChildGate(node),
    }
}

/// The single candidate of a literal leaf: one transistor driven by a
/// primary input.
pub(crate) fn literal_cand(literal: Literal) -> Cand {
    let g = Cost::transistors(1);
    Cand {
        g,
        u: g,
        p_spine: 0,
        p_branch: 0,
        par_b: false,
        touches_pi: true,
        form: Form::Lit(literal),
    }
}

/// Builds the literal node's solution (exported literal tuple plus a
/// buffer-style gate for the rare case a literal drives a primary output).
pub(crate) fn literal_sol(
    _node: UId,
    literal: Literal,
    config: &MapConfig,
    model: &CostModel,
) -> NodeSol {
    let mut sol = NodeSol::default();
    let cand = literal_cand(literal);
    let bare = vec![(TupleKey::UNIT, cand.clone())];
    sol.gate = form_gate(&sol, config, model, &bare);
    sol.exported.insert(TupleKey::UNIT, vec![cand]);
    sol
}

/// Fanout counts of every node, where primary outputs count as consumers.
pub(crate) fn fanouts(unate: &UnateNetwork) -> Vec<u32> {
    unate.fanout_counts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use soi_unate::Phase;

    fn lit() -> Literal {
        Literal {
            input: 0,
            phase: Phase::Pos,
        }
    }

    #[test]
    fn overhead_footed_vs_footless() {
        let config = MapConfig::default();
        let (c, footed) = gate_overhead(true, &config);
        assert!(footed);
        assert_eq!(c.tx, 5);
        let (c, footed) = gate_overhead(false, &config);
        assert!(!footed);
        assert_eq!(c.tx, 4);
    }

    #[test]
    fn overhead_clock_weighting() {
        let config = MapConfig::with_clock_weight(3);
        let (c, _) = gate_overhead(true, &config);
        assert_eq!(c.tx, 5);
        assert_eq!(c.wtx, 3 + 2 + 1 + 3);
    }

    #[test]
    fn always_footed_policy() {
        let config = MapConfig {
            footing: Footing::Always,
            ..MapConfig::default()
        };
        let (c, footed) = gate_overhead(false, &config);
        assert!(footed);
        assert_eq!(c.tx, 5);
    }

    #[test]
    fn literal_gate_is_buffer() {
        let config = MapConfig::default();
        let model = CostModel::new(&config, Algorithm::DominoMap);
        let sol = literal_sol(UId::from_index(0), lit(), &config, &model);
        let gate = sol.gate.expect("literal has a gate");
        // 1 transistor + 5 overhead (touches a PI), level 1.
        assert_eq!(gate.cost.tx, 6);
        assert_eq!(gate.cost.level, 1);
        assert!(gate.footed);
    }

    #[test]
    fn budget_charges_and_trips() {
        let mut config = MapConfig::default();
        config.limits.max_combine_steps = 2;
        let mut b = Budget::new(&config);
        assert!(b.charge(UId::from_index(0)).is_ok());
        assert!(b.charge(UId::from_index(0)).is_ok());
        assert!(matches!(
            b.charge(UId::from_index(0)),
            Err(MapError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn shared_gate_exports_unit_cost() {
        let config = MapConfig::default();
        let model = CostModel::new(&config, Algorithm::DominoMap);
        let sol = literal_sol(UId::from_index(0), lit(), &config, &model);
        let gate = sol.gate.as_ref().unwrap();
        let shared = exported_gate_cand(UId::from_index(0), gate, 3, &config);
        assert_eq!(shared.g.tx, 1);
        assert_eq!(shared.g.level, gate.cost.level);
        let exclusive = exported_gate_cand(UId::from_index(0), gate, 1, &config);
        assert_eq!(exclusive.g.tx, gate.cost.tx + 1);
    }
}
