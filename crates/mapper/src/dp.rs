//! Shared pieces of the two tuple DPs, including the driver that walks a
//! unate network — serially or across independent fanout-free cones on
//! scoped threads — and hands each node to an algorithm-specific solver.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use soi_unate::{ConePartition, Literal, UId, UNode, UnateNetwork};

use crate::tuple::{Cand, Form, GateSol, NodeSol, TupleKey};
use crate::{Algorithm, Cost, CostModel, Footing, MapConfig, MapError};

/// The product of one DP run over a unate network.
pub(crate) struct Solution {
    /// One solution per unate node.
    pub(crate) sols: Vec<NodeSol>,
    /// Nodes where the degradation fallback forced a gate boundary (empty
    /// unless [`MapConfig::degrade_unmappable`] is set and triggered).
    pub(crate) degraded: Vec<UId>,
    /// Largest exported-candidate count any single node reached — the
    /// memory high-water mark of the DP (diagnostics; deterministic).
    pub(crate) peak_candidates: usize,
}

/// Running charge against the per-run combine-step budget
/// ([`crate::Limits::max_combine_steps`]).
///
/// The counter is a shared atomic so cone workers running on different
/// threads charge the same global allowance: the budget stays a single
/// deterministic limit on the *total* amount of combination work, not a
/// per-thread one. Whether a run trips the budget is therefore identical
/// between serial and parallel execution (the same combinations are
/// performed either way); only which node reports the exhaustion first may
/// differ under contention.
pub(crate) struct Budget {
    steps: AtomicU64,
    max_steps: u64,
}

impl Budget {
    pub(crate) fn new(config: &MapConfig) -> Budget {
        Budget {
            steps: AtomicU64::new(0),
            max_steps: config.limits.max_combine_steps,
        }
    }

    /// Charges one candidate-combination step at `node`.
    pub(crate) fn charge(&self, node: UId) -> Result<(), MapError> {
        let steps = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if steps > self.max_steps {
            return Err(MapError::BudgetExceeded {
                what: format!(
                    "combine-step budget of {} exhausted at node {node}",
                    self.max_steps
                ),
            });
        }
        Ok(())
    }
}

/// Rejects networks larger than the gate budget before any DP work.
pub(crate) fn check_gate_budget(unate: &UnateNetwork, config: &MapConfig) -> Result<(), MapError> {
    if unate.len() > config.limits.max_gates {
        return Err(MapError::BudgetExceeded {
            what: format!(
                "network has {} unate nodes, budget allows {}",
                unate.len(),
                config.limits.max_gates
            ),
        });
    }
    Ok(())
}

/// Read-only context shared by every per-node solver invocation.
pub(crate) struct NodeCtx<'a> {
    pub config: &'a MapConfig,
    pub model: &'a CostModel,
    pub fanouts: &'a [u32],
    pub budget: &'a Budget,
}

/// Per-worker scratch arenas, reused across nodes so the per-node
/// accumulation maps and pruning buffers are allocated once per worker
/// instead of once per node.
#[derive(Default)]
pub(crate) struct Scratch {
    /// SOI accumulation: all surviving candidates per shape.
    pub bare: HashMap<TupleKey, Vec<Cand>>,
    /// Baseline accumulation: the single best candidate per shape.
    pub best: HashMap<TupleKey, Cand>,
    /// Pareto-pruning keep buffer.
    pub kept: Vec<Cand>,
}

/// View of the already-solved nodes a solver may read: the globally
/// published solutions of earlier scheduling levels plus the solutions the
/// current worker produced in this level (not yet published).
pub(crate) struct SolView<'a> {
    global: &'a [Option<NodeSol>],
    local: &'a [(usize, NodeSol)],
}

impl SolView<'_> {
    /// The solution of fanin `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` has not been solved — a scheduling bug.
    pub fn get(&self, id: UId) -> &NodeSol {
        let index = id.index();
        if let Some(sol) = self.global[index].as_ref() {
            return sol;
        }
        // Within a cone, fanins are usually the most recently solved
        // nodes; scan the worker-local overlay from the back.
        self.local
            .iter()
            .rev()
            .find(|(i, _)| *i == index)
            .map(|(_, sol)| sol)
            .expect("fanin solved before its consumer")
    }
}

/// What a per-node solver returns: the node's solution plus whether the
/// degradation fallback fired.
pub(crate) type NodeOutcome = (NodeSol, bool);

/// A per-node DP step: solves `node` given the solutions of its fanins.
pub(crate) trait NodeSolver: Sync {
    fn solve_node(
        &self,
        ctx: &NodeCtx<'_>,
        view: &SolView<'_>,
        scratch: &mut Scratch,
        id: UId,
        node: UNode,
    ) -> Result<NodeOutcome, MapError>;
}

impl<F> NodeSolver for F
where
    F: Fn(&NodeCtx<'_>, &SolView<'_>, &mut Scratch, UId, UNode) -> Result<NodeOutcome, MapError>
        + Sync,
{
    fn solve_node(
        &self,
        ctx: &NodeCtx<'_>,
        view: &SolView<'_>,
        scratch: &mut Scratch,
        id: UId,
        node: UNode,
    ) -> Result<NodeOutcome, MapError> {
        self(ctx, view, scratch, id, node)
    }
}

/// Runs a per-node solver over the whole network, serially or in parallel
/// according to [`MapConfig::parallelism`].
///
/// The parallel path partitions the topological order into fanout-free
/// cone units ([`UnateNetwork::cone_partition`]) and processes each
/// dependency level of that partition with `std::thread::scope`, joining
/// only at multi-fanout boundaries. Because every per-node computation is
/// a pure function of its fanins' solutions — and the sorted
/// [`crate::tuple::ExportMap`] makes candidate enumeration order
/// deterministic — the parallel result is bit-identical to the serial one.
pub(crate) fn run_dp<S: NodeSolver>(
    unate: &UnateNetwork,
    config: &MapConfig,
    algorithm: Algorithm,
    solver: S,
) -> Result<Solution, MapError> {
    check_gate_budget(unate, config)?;
    let model = CostModel::new(config, algorithm);
    let fanouts = fanouts(unate);
    let budget = Budget::new(config);
    let ctx = NodeCtx {
        config,
        model: &model,
        fanouts: &fanouts,
        budget: &budget,
    };
    let threads = config.parallelism.threads(unate.len());
    let mut sols: Vec<Option<NodeSol>> = (0..unate.len()).map(|_| None).collect();
    let mut degraded: Vec<UId> = Vec::new();
    let mut peak_candidates = 0usize;

    if threads <= 1 {
        let mut scratch = Scratch::default();
        for (id, node) in unate.iter() {
            let (sol, deg) = {
                let view = SolView {
                    global: &sols,
                    local: &[],
                };
                solver.solve_node(&ctx, &view, &mut scratch, id, node)?
            };
            peak_candidates = peak_candidates.max(sol.exported.total_candidates());
            if deg {
                degraded.push(id);
            }
            sols[id.index()] = Some(sol);
        }
    } else {
        let partition = unate.cone_partition();
        for level in partition.levels() {
            let chunk_size = level.len().div_ceil(threads.min(level.len()).max(1));
            let outcomes: Vec<Result<UnitBatch, MapError>> = std::thread::scope(|s| {
                let handles: Vec<_> = level
                    .chunks(chunk_size)
                    .map(|units| {
                        let sols = &sols;
                        let ctx = &ctx;
                        let partition = &partition;
                        let solver = &solver;
                        s.spawn(move || solve_units(ctx, sols, partition, unate, solver, units))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("DP worker panicked"))
                    .collect()
            });
            for outcome in outcomes {
                let batch = outcome?;
                peak_candidates = peak_candidates.max(batch.peak_candidates);
                degraded.extend(batch.degraded);
                for (index, sol) in batch.sols {
                    sols[index] = Some(sol);
                }
            }
        }
        // Workers report degradations in unit order; restore the global
        // topological order the serial path produces.
        degraded.sort_unstable();
    }

    Ok(Solution {
        sols: sols
            .into_iter()
            .map(|s| s.expect("every node solved"))
            .collect(),
        degraded,
        peak_candidates,
    })
}

/// Output of one worker's pass over a slice of cone units.
struct UnitBatch {
    sols: Vec<(usize, NodeSol)>,
    degraded: Vec<UId>,
    peak_candidates: usize,
}

fn solve_units<S: NodeSolver>(
    ctx: &NodeCtx<'_>,
    global: &[Option<NodeSol>],
    partition: &ConePartition,
    unate: &UnateNetwork,
    solver: &S,
    units: &[usize],
) -> Result<UnitBatch, MapError> {
    let mut scratch = Scratch::default();
    let mut batch = UnitBatch {
        sols: Vec::new(),
        degraded: Vec::new(),
        peak_candidates: 0,
    };
    for &unit in units {
        for &id in partition.unit(unit).nodes() {
            let (sol, deg) = {
                let view = SolView {
                    global,
                    local: &batch.sols,
                };
                solver.solve_node(ctx, &view, &mut scratch, id, unate.node(id))?
            };
            batch.peak_candidates = batch.peak_candidates.max(sol.exported.total_candidates());
            if deg {
                batch.degraded.push(id);
            }
            batch.sols.push((id.index(), sol));
        }
    }
    Ok(batch)
}

/// Gate-periphery cost: p-clock + output inverter (2) + keeper, plus the
/// foot n-clock when required. Clock-connected devices weigh
/// `config.clock_weight`.
pub(crate) fn gate_overhead(touches_pi: bool, config: &MapConfig) -> (Cost, bool) {
    let footed = matches!(config.footing, Footing::Always) || touches_pi;
    let k = config.clock_weight;
    let cost = Cost {
        tx: 4 + u32::from(footed),
        wtx: k + 2 + 1 + if footed { k } else { 0 },
        disch: 0,
        level: 0,
    };
    (cost, footed)
}

/// Picks the cheapest bare tuple (by the model's grounded key, ties broken
/// toward fewer potential discharge points, then smaller shape) and wraps it
/// into a formed-gate solution. Iterates the candidates in place — no
/// flattened copy of the bare sets is ever built.
pub(crate) fn form_gate<'a>(
    config: &MapConfig,
    model: &CostModel,
    bare: impl IntoIterator<Item = (TupleKey, &'a Cand)>,
) -> Option<GateSol> {
    let mut best: Option<(Cost, u32, TupleKey, &Cand)> = None;
    for (key, cand) in bare {
        let (overhead, _) = gate_overhead(cand.touches_pi, config);
        let mut cost = cand.g.combine(overhead);
        cost.level = cand.g.level + 1;
        let better = match &best {
            None => true,
            Some((bcost, bp, bkey, _)) => {
                let (ka, kb) = (model.key(&cost), model.key(bcost));
                ka < kb
                    || (ka == kb
                        && (cand.p_dis() < *bp
                            || (cand.p_dis() == *bp && (key.w, key.h) < (bkey.w, bkey.h))))
            }
        };
        if better {
            best = Some((cost, cand.p_dis(), key, cand));
        }
    }
    best.map(|(cost, _, shape, cand)| {
        let (_, footed) = gate_overhead(cand.touches_pi, config);
        GateSol {
            cost,
            footed,
            form: cand.form,
            shape,
        }
    })
}

/// The gate-as-input candidate a node exports to its consumers: a single
/// transistor at `{1,1}` driven by the node's formed gate. A fanout-1 node
/// carries the gate's whole cost (it is paid exactly once, here); shared
/// nodes charge their gate cost globally and expose only the transistor —
/// unless duplication is allowed, in which case each consumer sees an
/// *amortized* share so that replicating the logic can compete fairly
/// (final counts are always recomputed from the materialized circuit).
pub(crate) fn exported_gate_cand(
    node: UId,
    gate: &GateSol,
    fanout: u32,
    config: &MapConfig,
) -> Cand {
    let g = if fanout <= 1 {
        gate.cost.combine(Cost::transistors(1))
    } else if config.allow_duplication {
        Cost {
            tx: gate.cost.tx.div_ceil(fanout) + 1,
            wtx: gate.cost.wtx.div_ceil(fanout) + 1,
            disch: gate.cost.disch.div_ceil(fanout),
            level: gate.cost.level,
        }
    } else {
        Cost {
            tx: 1,
            wtx: 1,
            disch: 0,
            level: gate.cost.level,
        }
    };
    Cand {
        g,
        u: g,
        p_spine: 0,
        p_branch: 0,
        par_b: false,
        touches_pi: false,
        form: Form::ChildGate(node),
    }
}

/// The single candidate of a literal leaf: one transistor driven by a
/// primary input.
pub(crate) fn literal_cand(literal: Literal) -> Cand {
    let g = Cost::transistors(1);
    Cand {
        g,
        u: g,
        p_spine: 0,
        p_branch: 0,
        par_b: false,
        touches_pi: true,
        form: Form::Lit(literal),
    }
}

/// Builds the literal node's solution (exported literal tuple plus a
/// buffer-style gate for the rare case a literal drives a primary output).
pub(crate) fn literal_sol(
    _node: UId,
    literal: Literal,
    config: &MapConfig,
    model: &CostModel,
) -> NodeSol {
    let mut sol = NodeSol::default();
    let cand = literal_cand(literal);
    sol.gate = form_gate(config, model, [(TupleKey::UNIT, &cand)]);
    sol.exported.push(TupleKey::UNIT, cand);
    sol
}

/// Fanout counts of every node, where primary outputs count as consumers.
pub(crate) fn fanouts(unate: &UnateNetwork) -> Vec<u32> {
    unate.fanout_counts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;
    use soi_unate::Phase;

    fn lit() -> Literal {
        Literal {
            input: 0,
            phase: Phase::Pos,
        }
    }

    #[test]
    fn overhead_footed_vs_footless() {
        let config = MapConfig::default();
        let (c, footed) = gate_overhead(true, &config);
        assert!(footed);
        assert_eq!(c.tx, 5);
        let (c, footed) = gate_overhead(false, &config);
        assert!(!footed);
        assert_eq!(c.tx, 4);
    }

    #[test]
    fn overhead_clock_weighting() {
        let config = MapConfig::with_clock_weight(3);
        let (c, _) = gate_overhead(true, &config);
        assert_eq!(c.tx, 5);
        assert_eq!(c.wtx, 3 + 2 + 1 + 3);
    }

    #[test]
    fn always_footed_policy() {
        let config = MapConfig {
            footing: Footing::Always,
            ..MapConfig::default()
        };
        let (c, footed) = gate_overhead(false, &config);
        assert!(footed);
        assert_eq!(c.tx, 5);
    }

    #[test]
    fn literal_gate_is_buffer() {
        let config = MapConfig::default();
        let model = CostModel::new(&config, Algorithm::DominoMap);
        let sol = literal_sol(UId::from_index(0), lit(), &config, &model);
        let gate = sol.gate.expect("literal has a gate");
        // 1 transistor + 5 overhead (touches a PI), level 1.
        assert_eq!(gate.cost.tx, 6);
        assert_eq!(gate.cost.level, 1);
        assert!(gate.footed);
    }

    #[test]
    fn budget_charges_and_trips() {
        let mut config = MapConfig::default();
        config.limits.max_combine_steps = 2;
        let b = Budget::new(&config);
        assert!(b.charge(UId::from_index(0)).is_ok());
        assert!(b.charge(UId::from_index(0)).is_ok());
        assert!(matches!(
            b.charge(UId::from_index(0)),
            Err(MapError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn budget_is_shareable_across_threads() {
        let mut config = MapConfig::default();
        config.limits.max_combine_steps = 100;
        let b = Budget::new(&config);
        let trips: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        (0..50)
                            .filter(|_| b.charge(UId::from_index(0)).is_err())
                            .count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // 200 charges against a budget of 100: exactly 100 must fail,
        // regardless of interleaving.
        assert_eq!(trips, 100);
    }

    #[test]
    fn shared_gate_exports_unit_cost() {
        let config = MapConfig::default();
        let model = CostModel::new(&config, Algorithm::DominoMap);
        let sol = literal_sol(UId::from_index(0), lit(), &config, &model);
        let gate = sol.gate.as_ref().unwrap();
        let shared = exported_gate_cand(UId::from_index(0), gate, 3, &config);
        assert_eq!(shared.g.tx, 1);
        assert_eq!(shared.g.level, gate.cost.level);
        let exclusive = exported_gate_cand(UId::from_index(0), gate, 1, &config);
        assert_eq!(exclusive.g.tx, gate.cost.tx + 1);
    }
}
