//! Job control for a mapping run: cooperative cancellation and
//! partial-result salvage.
//!
//! A long mapping can be interrupted three ways — an external
//! [`CancelToken`] trips, the wall-clock [`Limits::deadline`](crate::Limits)
//! expires, or a worker panics on a poisoned cone unit. All three surface
//! as a typed [`MapError`](crate::MapError) variant carrying a
//! [`PartialMapping`]: every cone unit the run finished, captured under the
//! structural cone cache's canonical keys, plus the unfinished frontier. A
//! resumed run attaches the salvaged cache
//! ([`Mapper::with_cone_cache`](crate::Mapper::with_cone_cache)) and only
//! re-solves what was lost — bit-identically to an uninterrupted run.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::cache::ConeCache;

/// A shared flag for cancelling an in-flight mapping run from another
/// thread.
///
/// The token is `Copy` like [`TraceHandle`](crate::TraceHandle): it wraps a
/// leaked `&'static AtomicBool`, so handing it to a config struct and to a
/// controller thread needs no reference counting. [`CancelToken::none`]
/// (the default) can never trip and costs one branch per check.
///
/// Equality and hashing are by identity — two tokens are equal when they
/// share the same flag.
#[derive(Clone, Copy)]
pub struct CancelToken {
    flag: Option<&'static AtomicBool>,
}

impl CancelToken {
    /// A token that can never be cancelled (the default).
    pub const fn none() -> CancelToken {
        CancelToken { flag: None }
    }

    /// Creates a fresh, untripped token.
    ///
    /// The backing flag is leaked: tokens are tiny and meant to be created
    /// per long-running job, mirroring the recorder-installation idiom in
    /// `soi-trace`.
    pub fn new() -> CancelToken {
        CancelToken {
            flag: Some(Box::leak(Box::new(AtomicBool::new(false)))),
        }
    }

    /// Trips the token. Every run sharing it observes the cancellation at
    /// its next check; a no-op on [`CancelToken::none`].
    pub fn cancel(&self) {
        if let Some(flag) = self.flag {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Identity of the backing flag, for [`Eq`]/[`Hash`].
    fn addr(&self) -> usize {
        self.flag.map_or(0, |f| f as *const AtomicBool as usize)
    }
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::none()
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.flag {
            None => write!(f, "CancelToken::none"),
            Some(flag) => f
                .debug_struct("CancelToken")
                .field("cancelled", &flag.load(Ordering::Relaxed))
                .finish(),
        }
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &CancelToken) -> bool {
        self.addr() == other.addr()
    }
}

impl Eq for CancelToken {}

impl Hash for CancelToken {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.addr().hash(state);
    }
}

/// What an interrupted mapping run managed to finish.
///
/// Carried by the interrupt variants of [`MapError`](crate::MapError)
/// (`Cancelled`, `DeadlineExceeded`, `WorkerPanicked`). The salvaged cone
/// units live in a [`ConeCache`] keyed exactly as a clean cached run would
/// key them, so resuming is just re-running with
/// [`Mapper::with_cone_cache`](crate::Mapper::with_cone_cache)`(partial.cache())`:
/// salvaged cones rebind instead of re-solving, and the result is
/// bit-identical to an uninterrupted run.
#[derive(Debug, Clone)]
pub struct PartialMapping {
    total_units: usize,
    completed_units: usize,
    salvaged_units: usize,
    frontier: Vec<usize>,
    combine_steps: u64,
    cache: Arc<ConeCache>,
}

impl PartialMapping {
    pub(crate) fn new(
        total_units: usize,
        completed_units: usize,
        salvaged_units: usize,
        frontier: Vec<usize>,
        combine_steps: u64,
        cache: Arc<ConeCache>,
    ) -> PartialMapping {
        PartialMapping {
            total_units,
            completed_units,
            salvaged_units,
            frontier,
            combine_steps,
            cache,
        }
    }

    /// Cone units in the run's partition.
    pub fn total_units(&self) -> usize {
        self.total_units
    }

    /// Cone units the run finished before the interrupt.
    pub fn completed_units(&self) -> usize {
        self.completed_units
    }

    /// Completed units captured into [`PartialMapping::cache`] (units too
    /// large or too trivial for the cache complete but are not salvaged —
    /// a resume re-solves them deterministically).
    pub fn salvaged_units(&self) -> usize {
        self.salvaged_units
    }

    /// Unfinished cone units whose dependencies all completed — the work
    /// the interrupt actually cut off. Empty only when every unit finished
    /// (an interrupt observed after the last unit).
    pub fn frontier(&self) -> &[usize] {
        &self.frontier
    }

    /// Combine steps charged before the interrupt.
    pub fn combine_steps(&self) -> u64 {
        self.combine_steps
    }

    /// The salvage cache: attach it to a new
    /// [`Mapper`](crate::Mapper) via
    /// [`with_cone_cache`](crate::Mapper::with_cone_cache) to resume.
    pub fn cache(&self) -> Arc<ConeCache> {
        Arc::clone(&self.cache)
    }

    /// Whether the interrupt arrived before any unit completed.
    pub fn is_empty(&self) -> bool {
        self.completed_units == 0
    }
}

impl fmt::Display for PartialMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} cone units completed ({} salvaged, {} on the frontier) after {} combine steps",
            self.completed_units,
            self.total_units,
            self.salvaged_units,
            self.frontier.len(),
            self.combine_steps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_token_never_trips() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(!t.is_cancelled());
        assert_eq!(t, CancelToken::default());
    }

    #[test]
    fn fresh_token_trips_once_for_every_copy() {
        let t = CancelToken::new();
        let copy = t;
        assert!(!copy.is_cancelled());
        t.cancel();
        assert!(copy.is_cancelled());
        assert_eq!(t, copy);
        assert_ne!(t, CancelToken::new());
        assert_ne!(t, CancelToken::none());
    }

    #[test]
    fn partial_mapping_reports_progress() {
        let p = PartialMapping::new(10, 4, 3, vec![4, 7], 1234, Arc::new(ConeCache::new()));
        assert_eq!(p.total_units(), 10);
        assert_eq!(p.completed_units(), 4);
        assert_eq!(p.salvaged_units(), 3);
        assert_eq!(p.frontier(), &[4, 7]);
        assert_eq!(p.combine_steps(), 1234);
        assert!(!p.is_empty());
        let s = p.to_string();
        assert!(s.contains("4/10"), "{s}");
        assert!(s.contains("3 salvaged"), "{s}");
    }
}
