//! # soi-mapper
//!
//! Library-free technology mapping of unate logic networks into domino
//! circuits — the paper's core contribution and both baselines it compares
//! against:
//!
//! * **`Domino_Map`** ([`Mapper::baseline`]) — the Zhao–Sapatnekar
//!   (ICCAD'98) dynamic program over `{W, H, cost}` tuples, blind to the
//!   parasitic bipolar effect; pre-discharge transistors are inserted by a
//!   post-processing pass.
//! * **`RS_Map`** ([`Mapper::rearrange_stacks`]) — `Domino_Map` followed by
//!   series-stack rearrangement before discharge insertion (§VI-A).
//! * **`SOI_Domino_Map`** ([`Mapper::soi`]) — the paper's algorithm: tuples
//!   are extended with the potential-discharge-point count `p_dis`, the
//!   parallel-bottom flag `par_b`, and grounded/ungrounded costs, so the DP
//!   minimizes implementation cost *including* the discharge transistors it
//!   will need (§V).
//!
//! The mapping pipeline is [`Mapper::run`]: binate network → unate
//! conversion (`soi-unate`) → tuple DP → gate materialization → (baselines
//! only) discharge post-processing. Every mapped circuit is PBE-safe by
//! construction; `soi-pbe`'s hazard checker and body simulator validate
//! this in the test suite.
//!
//! The DP itself runs over the network's fanout-free cone partition — on a
//! persistent work-stealing worker pool when [`MapConfig::parallelism`]
//! resolves to more than one thread, and through a structural [`ConeCache`]
//! (on by default, [`MapConfig::cone_cache`]) that memoizes isomorphic
//! cones so repetitive netlists solve each distinct cone once. Both are
//! pure scheduling concerns: results are bit-identical across thread
//! counts and with the cache on or off. A cache can be shared across runs
//! with [`Mapper::with_cone_cache`].
//!
//! The whole pipeline is observable through `soi-trace`: attach a sink
//! via [`MapConfig::trace`] (e.g. a [`soi_trace::Recorder`]) to receive
//! stage spans, candidate/cache/scheduler counters and per-worker stats.
//! Instrumentation is purely observational — results are bit-identical
//! with tracing on or off, and a detached handle costs one branch per
//! emission site.
//!
//! Long runs are under **job control**: a [`CancelToken`] and a wall-clock
//! deadline ([`Limits`]) interrupt the DP cooperatively, worker panics are
//! contained per cone unit, and all three interrupts surface as typed
//! [`MapError`] variants carrying a [`PartialMapping`] — the completed
//! cone units captured under the cache's canonical keys, so a resumed run
//! re-seeds a [`ConeCache`] and only re-solves what was lost.
//!
//! # Example
//!
//! ```rust
//! use soi_netlist::Network;
//! use soi_mapper::{MapConfig, Mapper};
//!
//! # fn main() -> Result<(), soi_mapper::MapError> {
//! // The paper's Fig. 2(a) function: f = (a + b + c) * d.
//! let mut n = Network::new("fig2a");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let c = n.add_input("c");
//! let d = n.add_input("d");
//! let ab = n.or2(a, b);
//! let abc = n.or2(ab, c);
//! let f = n.and2(abc, d);
//! n.add_output("f", f);
//!
//! let baseline = Mapper::baseline(MapConfig::default()).run(&n)?;
//! let soi = Mapper::soi(MapConfig::default()).run(&n)?;
//! // The SOI mapper never needs more total transistors than the baseline.
//! assert!(soi.counts.total <= baseline.counts.total);
//! # Ok(())
//! # }
//! ```

mod arena;
mod baseline;
mod cache;
mod config;
mod cost;
mod dp;
mod error;
mod job;
mod map;
mod persist;
mod reconstruct;
mod report;
mod sched;
mod soi;
mod tuple;

pub use cache::{CacheLoadStats, ConeCache};
pub use config::{Algorithm, AndOrder, Footing, Limits, MapConfig, Objective, Parallelism};
pub use cost::{Cost, CostModel};
pub use error::MapError;
pub use job::{CancelToken, PartialMapping};
pub use map::Mapper;
pub use report::MappingResult;
pub use soi_trace::TraceHandle;
pub use tuple::TupleKey;
