//! Gate materialization: turning DP back-pointers into a
//! [`DominoCircuit`].

use soi_domino_ir::{DominoCircuit, DominoGate, GateId, Pdn, Signal};
use soi_unate::{UId, USignal, UnateNetwork};

use crate::tuple::{CandRef, Form, NodeSol};
use crate::{MapConfig, MapError};

/// Builds the final circuit from per-node DP solutions. When
/// `attach_discharge` is set (the SOI mapper), every materialized gate
/// immediately receives pre-discharge transistors on its committed points;
/// the baselines leave that to post-processing.
pub(crate) fn materialize(
    unate: &UnateNetwork,
    sols: &[NodeSol],
    config: &MapConfig,
    attach_discharge: bool,
) -> Result<DominoCircuit, MapError> {
    let mut ctx = Ctx {
        unate,
        sols,
        config,
        attach_discharge,
        circuit: DominoCircuit::new(unate.input_names().to_vec()),
        built: vec![None; unate.len()],
    };
    for out in unate.outputs() {
        match out.signal {
            USignal::Const(_) => {
                return Err(MapError::ConstantOutput {
                    name: out.name.clone(),
                })
            }
            USignal::Node(id) => {
                let gate = ctx.build_gate(id);
                ctx.circuit
                    .bind_output(out.name.clone(), gate, out.inverted);
            }
        }
    }
    Ok(ctx.circuit)
}

struct Ctx<'a> {
    unate: &'a UnateNetwork,
    sols: &'a [NodeSol],
    config: &'a MapConfig,
    attach_discharge: bool,
    circuit: DominoCircuit,
    /// Materialized gate per unate node, dense by `UId` (the id space is
    /// contiguous, so `Vec` indexing beats a map probe per fanin edge).
    built: Vec<Option<GateId>>,
}

impl Ctx<'_> {
    fn build_gate(&mut self, node: UId) -> GateId {
        if let Some(id) = self.built[node.index()] {
            return id;
        }
        let gate_sol = self.sols[node.index()]
            .gate
            .as_ref()
            .expect("every node has a gate solution")
            .clone();
        let pdn = self.build_pdn(&gate_sol.form);
        debug_assert_eq!(
            crate::TupleKey {
                w: pdn.width(),
                h: pdn.height()
            },
            gate_sol.shape,
            "materialized PDN shape disagrees with the DP tuple at {node}"
        );
        let footed = match self.config.footing {
            crate::Footing::Always => true,
            crate::Footing::AtPrimaryInputs => pdn.touches_primary_input(),
        };
        debug_assert_eq!(footed, gate_sol.footed, "footing mismatch at {node}");
        let mut gate = if footed {
            DominoGate::footed(pdn)
        } else {
            DominoGate::footless(pdn)
        };
        if self.attach_discharge {
            let analysis = soi_pbe::points::analyze(gate.pdn());
            let discharge = analysis.into_grounded_discharge();
            self.config.trace.count(
                soi_trace::Counter::DischargesInserted,
                discharge.len() as u64,
            );
            gate.set_discharge(discharge);
        }
        let id = self.circuit.add_gate(gate);
        self.built[node.index()] = Some(id);
        id
    }

    fn build_pdn(&mut self, form: &Form) -> Pdn {
        match form {
            Form::Lit(l) => Pdn::transistor(Signal::Input {
                index: l.input,
                phase: match l.phase {
                    soi_unate::Phase::Pos => soi_domino_ir::Phase::Pos,
                    soi_unate::Phase::Neg => soi_domino_ir::Phase::Neg,
                },
            }),
            Form::ChildGate(node) => {
                let gate = self.build_gate(*node);
                Pdn::transistor(Signal::Gate(gate))
            }
            Form::And { top, bottom } => {
                let top_pdn = self.build_ref(top);
                let bottom_pdn = self.build_ref(bottom);
                Pdn::series(vec![top_pdn, bottom_pdn])
            }
            Form::Or { a, b } => {
                let pa = self.build_ref(a);
                let pb = self.build_ref(b);
                Pdn::parallel(vec![pa, pb])
            }
        }
    }

    fn build_ref(&mut self, cand: &CandRef) -> Pdn {
        let form = self.sols[cand.node.index()].exported[&cand.key][cand.idx as usize].form;
        let _ = self.unate; // structure comes entirely from the back-pointers
        self.build_pdn(&form)
    }
}
