use std::collections::HashMap;
use std::fmt;

use soi_unate::{Literal, UId};

use crate::Cost;

/// A `(W, H)` pull-down-network shape — the index of the paper's tuple
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleKey {
    /// Width (parallel transistors).
    pub w: u32,
    /// Height (series transistors).
    pub h: u32,
}

impl TupleKey {
    /// The unit shape of a single transistor.
    pub const UNIT: TupleKey = TupleKey { w: 1, h: 1 };

    /// Shape of a series (AND) combination.
    pub fn and(self, other: TupleKey) -> TupleKey {
        TupleKey {
            w: self.w.max(other.w),
            h: self.h + other.h,
        }
    }

    /// Shape of a parallel (OR) combination.
    pub fn or(self, other: TupleKey) -> TupleKey {
        TupleKey {
            w: self.w + other.w,
            h: self.h.max(other.h),
        }
    }

    /// Whether the shape fits the configured limits.
    pub fn fits(self, w_max: u32, h_max: u32) -> bool {
        self.w <= w_max && self.h <= h_max
    }
}

impl fmt::Display for TupleKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.w, self.h)
    }
}

/// Reference to an exported candidate of a node: `idx` into the node's
/// exported list under `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CandRef {
    pub node: UId,
    pub key: TupleKey,
    pub idx: usize,
}

/// How a candidate structure was formed — the DP back-pointer used to
/// materialize the pull-down network.
#[derive(Debug, Clone)]
pub(crate) enum Form {
    /// A single transistor driven by a primary-input literal.
    Lit(Literal),
    /// A single transistor driven by the formed gate of node `UId`.
    ChildGate(UId),
    /// Series stack: `top` above `bottom`.
    And { top: CandRef, bottom: CandRef },
    /// Parallel stack.
    Or { a: CandRef, b: CandRef },
}

/// A DP candidate: costs, PBE bookkeeping and the back-pointer.
///
/// Potential discharge points are tracked in two flavours — the paper's
/// single `p_dis` conflates them, but its Fig. 4(a) prose ("if A·B were …
/// combined with other transistors in series, there would be no need to
/// discharge this point") requires the distinction:
///
/// * **spine** points are series junctions on the structure's
///   bottom-reaching path. Stacking the structure on top of something
///   merely extends the spine, so they stay potential and are absolved
///   when the final gate grounds its chain;
/// * **branch** points sit inside parallel branches. They are absolved
///   only by grounding *this* structure's bottom; on top of a stack they
///   must be discharged.
#[derive(Debug, Clone)]
pub(crate) struct Cand {
    /// Cost if the structure's bottom is eventually grounded.
    pub g: Cost,
    /// Cost if it is stacked on top of something (`g` plus the discharge
    /// of all branch points and the parallel bottom). Equal to `g` in the
    /// PBE-blind baseline.
    pub u: Cost,
    /// Potential points on the series spine.
    pub p_spine: u32,
    /// Potential points inside parallel branches.
    pub p_branch: u32,
    /// Whether the bottom is a parallel-stack bottom (the paper's `par_b`).
    pub par_b: bool,
    /// Whether any transistor is driven directly by a primary input.
    pub touches_pi: bool,
    pub form: Form,
}

impl Cand {
    /// The paper's `p_dis`: all potential points.
    pub fn p_dis(&self) -> u32 {
        self.p_spine + self.p_branch
    }

    /// Recomputes `u` from `g` under clock weight `k`: branch points and
    /// the parallel bottom commit when the structure sits on top; spine
    /// points join the outer spine for free.
    pub fn derive_ungrounded(mut self, k: u32) -> Cand {
        self.u = self
            .g
            .with_discharge(self.p_branch + u32::from(self.par_b), k);
        self
    }
}

/// The formed-gate solution of a node.
#[derive(Debug, Clone)]
pub(crate) struct GateSol {
    /// Full gate cost: PDN + overhead; `level` is the gate's level.
    pub cost: Cost,
    /// Whether the gate carries a foot n-clock transistor.
    pub footed: bool,
    /// The winning tuple's structure.
    pub form: Form,
    /// Shape of the winning PDN (diagnostics).
    pub shape: TupleKey,
}

/// Per-node DP state.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeSol {
    /// Candidates visible to consumers (bare tuples for fanout-1 nodes,
    /// plus the gate-as-input tuple).
    pub exported: HashMap<TupleKey, Vec<Cand>>,
    /// The formed-gate solution (every node has one; it is only
    /// materialized when referenced).
    pub gate: Option<GateSol>,
}

impl NodeSol {
    /// Flat iterator over all exported candidates with their references.
    pub fn exported_refs<'a>(
        &'a self,
        node: UId,
    ) -> impl Iterator<Item = (CandRef, &'a Cand)> + 'a {
        self.exported.iter().flat_map(move |(key, cands)| {
            cands.iter().enumerate().map(move |(idx, c)| {
                (
                    CandRef {
                        node,
                        key: *key,
                        idx,
                    },
                    c,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_algebra() {
        let a = TupleKey { w: 2, h: 1 };
        let b = TupleKey { w: 1, h: 3 };
        assert_eq!(a.and(b), TupleKey { w: 2, h: 4 });
        assert_eq!(a.or(b), TupleKey { w: 3, h: 3 });
        assert!(a.fits(5, 8));
        assert!(!a.and(b).fits(5, 3));
        assert_eq!(TupleKey::UNIT.to_string(), "{1, 1}");
    }

    #[test]
    fn derive_ungrounded_counts_parallel_bottom() {
        let cand = Cand {
            g: Cost::transistors(4),
            u: Cost::default(),
            p_spine: 1,
            p_branch: 2,
            par_b: true,
            touches_pi: false,
            form: Form::Lit(Literal {
                input: 0,
                phase: soi_unate::Phase::Pos,
            }),
        };
        let cand = cand.derive_ungrounded(3);
        assert_eq!(cand.p_dis(), 3);
        // Only branch points and the parallel bottom commit on top: 3.
        assert_eq!(cand.u.tx, 4 + 3);
        assert_eq!(cand.u.wtx, 4 + 9);
        assert_eq!(cand.u.disch, 3);
    }
}
