use std::fmt;
use std::ops::Index;

use soi_unate::{Literal, UId};

use crate::arena::CandArena;
use crate::Cost;

/// A `(W, H)` pull-down-network shape — the index of the paper's tuple
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleKey {
    /// Width (parallel transistors).
    pub w: u32,
    /// Height (series transistors).
    pub h: u32,
}

impl TupleKey {
    /// The unit shape of a single transistor.
    pub const UNIT: TupleKey = TupleKey { w: 1, h: 1 };

    /// Shape of a series (AND) combination.
    pub fn and(self, other: TupleKey) -> TupleKey {
        TupleKey {
            w: self.w.max(other.w),
            h: self.h + other.h,
        }
    }

    /// Shape of a parallel (OR) combination.
    pub fn or(self, other: TupleKey) -> TupleKey {
        TupleKey {
            w: self.w + other.w,
            h: self.h.max(other.h),
        }
    }

    /// Whether the shape fits the configured limits.
    pub fn fits(self, w_max: u32, h_max: u32) -> bool {
        self.w <= w_max && self.h <= h_max
    }
}

impl fmt::Display for TupleKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.w, self.h)
    }
}

/// Reference to an exported candidate of a node: `idx` into the node's
/// exported list under `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CandRef {
    pub node: UId,
    pub key: TupleKey,
    pub idx: u32,
}

/// How a candidate structure was formed — the DP back-pointer used to
/// materialize the pull-down network.
///
/// Forms are flat: combinations store [`CandRef`] back-pointers into the
/// children's exported sets, never owned subtrees, so a `Form` (and with it
/// a whole [`Cand`]) is `Copy` — candidate pruning and gate formation move
/// plain words instead of cloning heap structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Form {
    /// A single transistor driven by a primary-input literal.
    Lit(Literal),
    /// A single transistor driven by the formed gate of node `UId`.
    ChildGate(UId),
    /// Series stack: `top` above `bottom`.
    And { top: CandRef, bottom: CandRef },
    /// Parallel stack.
    Or { a: CandRef, b: CandRef },
}

/// A DP candidate: costs, PBE bookkeeping and the back-pointer.
///
/// Potential discharge points are tracked in two flavours — the paper's
/// single `p_dis` conflates them, but its Fig. 4(a) prose ("if A·B were …
/// combined with other transistors in series, there would be no need to
/// discharge this point") requires the distinction:
///
/// * **spine** points are series junctions on the structure's
///   bottom-reaching path. Stacking the structure on top of something
///   merely extends the spine, so they stay potential and are absolved
///   when the final gate grounds its chain;
/// * **branch** points sit inside parallel branches. They are absolved
///   only by grounding *this* structure's bottom; on top of a stack they
///   must be discharged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Cand {
    /// Cost if the structure's bottom is eventually grounded.
    pub g: Cost,
    /// Cost if it is stacked on top of something (`g` plus the discharge
    /// of all branch points and the parallel bottom). Equal to `g` in the
    /// PBE-blind baseline.
    pub u: Cost,
    /// Potential points on the series spine.
    pub p_spine: u32,
    /// Potential points inside parallel branches.
    pub p_branch: u32,
    /// Whether the bottom is a parallel-stack bottom (the paper's `par_b`).
    pub par_b: bool,
    /// Whether any transistor is driven directly by a primary input.
    pub touches_pi: bool,
    pub form: Form,
}

impl Cand {
    /// The paper's `p_dis`: all potential points.
    pub fn p_dis(&self) -> u32 {
        self.p_spine + self.p_branch
    }

    /// Recomputes `u` from `g` under clock weight `k`: branch points and
    /// the parallel bottom commit when the structure sits on top; spine
    /// points join the outer spine for free.
    pub fn derive_ungrounded(mut self, k: u32) -> Cand {
        self.u = self
            .g
            .with_discharge(self.p_branch + u32::from(self.par_b), k);
        self
    }
}

/// The formed-gate solution of a node.
#[derive(Debug, Clone)]
pub(crate) struct GateSol {
    /// Full gate cost: PDN + overhead; `level` is the gate's level.
    pub cost: Cost,
    /// Whether the gate carries a foot n-clock transistor.
    pub footed: bool,
    /// The winning tuple's structure.
    pub form: Form,
    /// Shape of the winning PDN (diagnostics).
    pub shape: TupleKey,
}

/// One shape's contiguous candidate run inside an [`ExportMap`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ShapeRun {
    key: TupleKey,
    start: u32,
    len: u32,
}

/// A node's exported candidate sets, keyed by shape.
///
/// Runs are kept sorted by [`TupleKey`], so iteration order is
/// deterministic — a requirement for the parallel DP to be bit-identical
/// to the serial one (a per-node `HashMap` would enumerate candidates in
/// seed-dependent order and let hash order decide cost ties). Lookup is a
/// binary search over a handful of shapes.
///
/// All candidates live in one flat arena (`cands`), with per-shape runs
/// described by `(start, len)` — most shapes hold fewer than eight
/// candidates, so per-shape `Vec<Cand>` allocations would cost one heap
/// allocation per shape per node. The flat layout makes an `ExportMap`
/// exactly two allocations regardless of shape count.
#[derive(Debug, Clone, Default)]
pub(crate) struct ExportMap {
    runs: Vec<ShapeRun>,
    cands: Vec<Cand>,
}

impl ExportMap {
    /// Builds an export set from per-shape runs of staged handles into a
    /// [`CandArena`], in run order. `shapes` must be sorted by key with no
    /// duplicates; each `(key, start, len)` selects
    /// `staged[start..start + len]`. The runs may leave holes in `staged`
    /// (capped shapes); the copy compacts them while materializing the
    /// arena rows into the export's own row-major storage (exports are
    /// read whole-candidate-at-a-time by consumers, so they stay AoS —
    /// see DESIGN.md §7.1).
    ///
    /// The solvers now always export the gate-as-input tuple alongside
    /// the bare runs and so call [`from_runs_with_unit`] instead; this
    /// plain variant remains as the reference constructor its oracle
    /// test compares against.
    ///
    /// [`from_runs_with_unit`]: ExportMap::from_runs_with_unit
    #[cfg(test)]
    pub fn from_runs(
        shapes: &[(TupleKey, u32, u32)],
        staged: &[u32],
        arena: &CandArena,
    ) -> ExportMap {
        debug_assert!(shapes.windows(2).all(|w| w[0].0 < w[1].0));
        let total: usize = shapes.iter().map(|&(_, _, len)| len as usize).sum();
        let mut map = ExportMap {
            runs: Vec::with_capacity(shapes.len()),
            cands: Vec::with_capacity(total),
        };
        for &(key, start, len) in shapes {
            map.runs.push(ShapeRun {
                key,
                start: map.cands.len() as u32,
                len,
            });
            map.cands.extend(
                staged[start as usize..(start + len) as usize]
                    .iter()
                    .map(|&h| arena.get(h)),
            );
        }
        map
    }

    /// An export set holding exactly one `{1,1}` candidate — what a
    /// shared node exports (its formed gate as an input transistor). A
    /// dedicated constructor so the hot solver path never goes through
    /// [`push`](ExportMap::push)'s general insert machinery.
    pub fn unit(cand: Cand) -> ExportMap {
        ExportMap {
            runs: vec![ShapeRun {
                key: TupleKey::UNIT,
                start: 0,
                len: 1,
            }],
            cands: vec![cand],
        }
    }

    /// [`from_runs`](ExportMap::from_runs) plus an appended `{1,1}` extra
    /// candidate (the node's gate-as-input tuple), fused into the single
    /// copy pass: produces byte-for-byte what
    /// `from_runs(..).push(TupleKey::UNIT, extra)` would — the extra
    /// candidate lands at the *end* of the unit run — without `push`'s
    /// front-of-arena `Vec::insert`, which memmoved the entire candidate
    /// arena once per solved node.
    pub fn from_runs_with_unit(
        shapes: &[(TupleKey, u32, u32)],
        staged: &[u32],
        arena: &CandArena,
        extra: Cand,
    ) -> ExportMap {
        debug_assert!(shapes.windows(2).all(|w| w[0].0 < w[1].0));
        let total: usize = shapes.iter().map(|&(_, _, len)| len as usize).sum();
        let mut map = ExportMap {
            runs: Vec::with_capacity(shapes.len() + 1),
            cands: Vec::with_capacity(total + 1),
        };
        // `{1,1}` is the minimum shape, so an existing unit run can only
        // be the first one; otherwise the extra forms a new leading run.
        let extend_first = shapes
            .first()
            .is_some_and(|&(key, _, _)| key == TupleKey::UNIT);
        if !extend_first {
            map.runs.push(ShapeRun {
                key: TupleKey::UNIT,
                start: 0,
                len: 1,
            });
            map.cands.push(extra);
        }
        for (i, &(key, start, len)) in shapes.iter().enumerate() {
            let run_start = map.cands.len() as u32;
            map.cands.extend(
                staged[start as usize..(start + len) as usize]
                    .iter()
                    .map(|&h| arena.get(h)),
            );
            let mut run_len = len;
            if i == 0 && extend_first {
                map.cands.push(extra);
                run_len += 1;
            }
            map.runs.push(ShapeRun {
                key,
                start: run_start,
                len: run_len,
            });
        }
        map
    }

    /// The candidates exported under `key`, if any.
    ///
    /// A node rarely exports more than a few dozen shapes, so a forward
    /// scan comparing packed `(w, h)` words (the same order as
    /// `TupleKey`'s derived `Ord`) beats a binary search's unpredictable
    /// probes — this lookup runs once per fanin edge during reconstruct.
    pub fn get(&self, key: &TupleKey) -> Option<&[Cand]> {
        let want = (u64::from(key.w) << 32) | u64::from(key.h);
        for (i, r) in self.runs.iter().enumerate() {
            let have = (u64::from(r.key.w) << 32) | u64::from(r.key.h);
            if have >= want {
                return (have == want).then(|| self.run(i));
            }
        }
        None
    }

    fn run(&self, i: usize) -> &[Cand] {
        let r = self.runs[i];
        &self.cands[r.start as usize..(r.start + r.len) as usize]
    }

    /// Appends a candidate under `key`, creating the run when missing.
    pub fn push(&mut self, key: TupleKey, cand: Cand) {
        match self.runs.binary_search_by_key(&key, |r| r.key) {
            Ok(i) => {
                let at = (self.runs[i].start + self.runs[i].len) as usize;
                self.cands.insert(at, cand);
                self.runs[i].len += 1;
                for r in &mut self.runs[i + 1..] {
                    r.start += 1;
                }
            }
            Err(i) => {
                let at = self
                    .runs
                    .get(i)
                    .map_or(self.cands.len(), |r| r.start as usize);
                self.cands.insert(at, cand);
                self.runs.insert(
                    i,
                    ShapeRun {
                        key,
                        start: at as u32,
                        len: 1,
                    },
                );
                for r in &mut self.runs[i + 1..] {
                    r.start += 1;
                }
            }
        }
    }

    /// Number of distinct shapes (exercised by tests; the DP itself only
    /// needs the flat iteration and totals).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Total candidate count across all shapes.
    pub fn total_candidates(&self) -> usize {
        self.cands.len()
    }

    /// Iterator over `(shape, candidate)` pairs in shape order.
    pub fn flat(&self) -> impl Iterator<Item = (TupleKey, &Cand)> + '_ {
        self.runs
            .iter()
            .enumerate()
            .flat_map(|(i, r)| self.run(i).iter().map(move |c| (r.key, c)))
    }

    /// Mutable access to the whole candidate arena — used by the cone
    /// cache to rewrite `Form` back-pointers when rebinding a cached
    /// solution onto a new cone.
    pub fn cands_mut(&mut self) -> &mut [Cand] {
        &mut self.cands
    }

    /// Iterator over `(shape, run)` pairs in shape order — the
    /// serialization view used by the persistent cache store.
    pub fn shape_runs(&self) -> impl Iterator<Item = (TupleKey, &[Cand])> + '_ {
        self.runs
            .iter()
            .enumerate()
            .map(|(i, r)| (r.key, self.run(i)))
    }

    /// Appends a whole run under `key`, which must sort strictly after
    /// every existing run — the deserialization counterpart of
    /// [`shape_runs`](ExportMap::shape_runs). Returns `false` (leaving the
    /// map untouched) when the ordering invariant would break.
    #[must_use]
    pub fn append_run(&mut self, key: TupleKey, cands: impl Iterator<Item = Cand>) -> bool {
        if self.runs.last().is_some_and(|r| r.key >= key) {
            return false;
        }
        let start = self.cands.len() as u32;
        self.cands.extend(cands);
        self.runs.push(ShapeRun {
            key,
            start,
            len: self.cands.len() as u32 - start,
        });
        true
    }
}

impl Index<&TupleKey> for ExportMap {
    type Output = [Cand];

    fn index(&self, key: &TupleKey) -> &[Cand] {
        self.get(key).expect("no candidates exported for shape")
    }
}

/// Per-node DP state.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeSol {
    /// Candidates visible to consumers (bare tuples for fanout-1 nodes,
    /// plus the gate-as-input tuple).
    pub exported: ExportMap,
    /// The formed-gate solution (every node has one; it is only
    /// materialized when referenced).
    pub gate: Option<GateSol>,
    /// Memoized cone-cache profile of `exported`: `(digest of the full
    /// candidate list with levels taken relative to their minimum, that
    /// minimum level)`. Computed once when the solution is published (only
    /// in cached runs; `(0, 0)` otherwise) so cache probes hash a pair per
    /// fanin instead of re-walking every candidate. The digest half is
    /// invariant under uniform level shifts; rebinding shifts the minimum
    /// along with the levels.
    pub profile: (u64, u32),
}

impl NodeSol {
    /// Flat iterator over all exported candidates with their references,
    /// in deterministic shape order.
    pub fn exported_refs<'a>(
        &'a self,
        node: UId,
    ) -> impl Iterator<Item = (CandRef, &'a Cand)> + 'a {
        self.exported
            .runs
            .iter()
            .enumerate()
            .flat_map(move |(i, r)| {
                self.exported
                    .run(i)
                    .iter()
                    .enumerate()
                    .map(move |(idx, c)| {
                        (
                            CandRef {
                                node,
                                key: r.key,
                                idx: idx as u32,
                            },
                            c,
                        )
                    })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_algebra() {
        let a = TupleKey { w: 2, h: 1 };
        let b = TupleKey { w: 1, h: 3 };
        assert_eq!(a.and(b), TupleKey { w: 2, h: 4 });
        assert_eq!(a.or(b), TupleKey { w: 3, h: 3 });
        assert!(a.fits(5, 8));
        assert!(!a.and(b).fits(5, 3));
        assert_eq!(TupleKey::UNIT.to_string(), "{1, 1}");
    }

    fn cand(tx: u32) -> Cand {
        Cand {
            g: Cost::transistors(tx),
            u: Cost::transistors(tx),
            p_spine: 0,
            p_branch: 0,
            par_b: false,
            touches_pi: false,
            form: Form::Lit(Literal {
                input: 0,
                phase: soi_unate::Phase::Pos,
            }),
        }
    }

    #[test]
    fn export_map_push_keeps_runs_sorted_and_contiguous() {
        let (k1, k2, k3) = (
            TupleKey { w: 1, h: 2 },
            TupleKey { w: 2, h: 1 },
            TupleKey::UNIT,
        );
        let mut m = ExportMap::default();
        m.push(k2, cand(20));
        m.push(k1, cand(10));
        m.push(k3, cand(1));
        m.push(k1, cand(11));
        assert_eq!(m.len(), 3);
        assert_eq!(m.total_candidates(), 4);
        let keys: Vec<TupleKey> = m.flat().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![k3, k1, k1, k2], "shape order, run order");
        assert_eq!(m.get(&k1).unwrap().len(), 2);
        assert_eq!(m.get(&k1).unwrap()[1].g.tx, 11);
        assert_eq!(m[&k2][0].g.tx, 20);
    }

    #[test]
    fn export_map_from_runs_compacts_holes() {
        // Staging handles with a capped (shortened) middle run: the copy
        // drops the hole.
        let mut arena = CandArena::default();
        let staged: Vec<u32> = [1, 2, 3, 4]
            .iter()
            .map(|&tx| arena.push(cand(tx)))
            .collect();
        let shapes = vec![
            (TupleKey::UNIT, 0u32, 1u32),
            (TupleKey { w: 1, h: 2 }, 1, 1), // run of 2, capped to 1
            (TupleKey { w: 2, h: 2 }, 3, 1),
        ];
        let m = ExportMap::from_runs(&shapes, &staged, &arena);
        assert_eq!(m.total_candidates(), 3);
        let txs: Vec<u32> = m.flat().map(|(_, c)| c.g.tx).collect();
        assert_eq!(txs, vec![1, 2, 4]);
    }

    #[test]
    fn from_runs_with_unit_matches_from_runs_plus_push() {
        // The fused constructor must be byte-for-byte what the reference
        // two-step build produces, whether or not a `{1,1}` run already
        // exists in the staged shapes.
        let mut arena = CandArena::default();
        let staged: Vec<u32> = [1, 2, 3].iter().map(|&tx| arena.push(cand(tx))).collect();
        let with_unit = vec![
            (TupleKey::UNIT, 0u32, 1u32),
            (TupleKey { w: 2, h: 1 }, 1, 2),
        ];
        let without_unit = vec![
            (TupleKey { w: 1, h: 2 }, 0u32, 2u32),
            (TupleKey { w: 2, h: 1 }, 2, 1),
        ];
        for shapes in [with_unit, without_unit] {
            let extra = cand(99);
            let fused = ExportMap::from_runs_with_unit(&shapes, &staged, &arena, extra);
            let mut reference = ExportMap::from_runs(&shapes, &staged, &arena);
            reference.push(TupleKey::UNIT, extra);
            let a: Vec<(TupleKey, u32)> = fused.flat().map(|(k, c)| (k, c.g.tx)).collect();
            let b: Vec<(TupleKey, u32)> = reference.flat().map(|(k, c)| (k, c.g.tx)).collect();
            assert_eq!(a, b);
            assert_eq!(fused.len(), reference.len());
            for (key, run) in reference.shape_runs() {
                assert_eq!(fused.get(&key).unwrap(), run);
            }
        }
    }

    #[test]
    fn derive_ungrounded_counts_parallel_bottom() {
        let cand = Cand {
            g: Cost::transistors(4),
            u: Cost::default(),
            p_spine: 1,
            p_branch: 2,
            par_b: true,
            touches_pi: false,
            form: Form::Lit(Literal {
                input: 0,
                phase: soi_unate::Phase::Pos,
            }),
        };
        let cand = cand.derive_ungrounded(3);
        assert_eq!(cand.p_dis(), 3);
        // Only branch points and the parallel bottom commit on top: 3.
        assert_eq!(cand.u.tx, 4 + 3);
        assert_eq!(cand.u.wtx, 4 + 9);
        assert_eq!(cand.u.disch, 3);
    }
}
