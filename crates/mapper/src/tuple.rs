use std::collections::HashMap;
use std::fmt;
use std::ops::Index;

use soi_unate::{Literal, UId};

use crate::Cost;

/// A `(W, H)` pull-down-network shape — the index of the paper's tuple
/// space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleKey {
    /// Width (parallel transistors).
    pub w: u32,
    /// Height (series transistors).
    pub h: u32,
}

impl TupleKey {
    /// The unit shape of a single transistor.
    pub const UNIT: TupleKey = TupleKey { w: 1, h: 1 };

    /// Shape of a series (AND) combination.
    pub fn and(self, other: TupleKey) -> TupleKey {
        TupleKey {
            w: self.w.max(other.w),
            h: self.h + other.h,
        }
    }

    /// Shape of a parallel (OR) combination.
    pub fn or(self, other: TupleKey) -> TupleKey {
        TupleKey {
            w: self.w + other.w,
            h: self.h.max(other.h),
        }
    }

    /// Whether the shape fits the configured limits.
    pub fn fits(self, w_max: u32, h_max: u32) -> bool {
        self.w <= w_max && self.h <= h_max
    }
}

impl fmt::Display for TupleKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.w, self.h)
    }
}

/// Reference to an exported candidate of a node: `idx` into the node's
/// exported list under `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CandRef {
    pub node: UId,
    pub key: TupleKey,
    pub idx: usize,
}

/// How a candidate structure was formed — the DP back-pointer used to
/// materialize the pull-down network.
///
/// Forms are flat: combinations store [`CandRef`] back-pointers into the
/// children's exported sets, never owned subtrees, so a `Form` (and with it
/// a whole [`Cand`]) is `Copy` — candidate pruning and gate formation move
/// plain words instead of cloning heap structures.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Form {
    /// A single transistor driven by a primary-input literal.
    Lit(Literal),
    /// A single transistor driven by the formed gate of node `UId`.
    ChildGate(UId),
    /// Series stack: `top` above `bottom`.
    And { top: CandRef, bottom: CandRef },
    /// Parallel stack.
    Or { a: CandRef, b: CandRef },
}

/// A DP candidate: costs, PBE bookkeeping and the back-pointer.
///
/// Potential discharge points are tracked in two flavours — the paper's
/// single `p_dis` conflates them, but its Fig. 4(a) prose ("if A·B were …
/// combined with other transistors in series, there would be no need to
/// discharge this point") requires the distinction:
///
/// * **spine** points are series junctions on the structure's
///   bottom-reaching path. Stacking the structure on top of something
///   merely extends the spine, so they stay potential and are absolved
///   when the final gate grounds its chain;
/// * **branch** points sit inside parallel branches. They are absolved
///   only by grounding *this* structure's bottom; on top of a stack they
///   must be discharged.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cand {
    /// Cost if the structure's bottom is eventually grounded.
    pub g: Cost,
    /// Cost if it is stacked on top of something (`g` plus the discharge
    /// of all branch points and the parallel bottom). Equal to `g` in the
    /// PBE-blind baseline.
    pub u: Cost,
    /// Potential points on the series spine.
    pub p_spine: u32,
    /// Potential points inside parallel branches.
    pub p_branch: u32,
    /// Whether the bottom is a parallel-stack bottom (the paper's `par_b`).
    pub par_b: bool,
    /// Whether any transistor is driven directly by a primary input.
    pub touches_pi: bool,
    pub form: Form,
}

impl Cand {
    /// The paper's `p_dis`: all potential points.
    pub fn p_dis(&self) -> u32 {
        self.p_spine + self.p_branch
    }

    /// Recomputes `u` from `g` under clock weight `k`: branch points and
    /// the parallel bottom commit when the structure sits on top; spine
    /// points join the outer spine for free.
    pub fn derive_ungrounded(mut self, k: u32) -> Cand {
        self.u = self
            .g
            .with_discharge(self.p_branch + u32::from(self.par_b), k);
        self
    }
}

/// The formed-gate solution of a node.
#[derive(Debug, Clone)]
pub(crate) struct GateSol {
    /// Full gate cost: PDN + overhead; `level` is the gate's level.
    pub cost: Cost,
    /// Whether the gate carries a foot n-clock transistor.
    pub footed: bool,
    /// The winning tuple's structure.
    pub form: Form,
    /// Shape of the winning PDN (diagnostics).
    pub shape: TupleKey,
}

/// A node's exported candidate sets, keyed by shape.
///
/// Entries are kept sorted by [`TupleKey`], so iteration order is
/// deterministic — a requirement for the parallel DP to be bit-identical
/// to the serial one (a per-node `HashMap` would enumerate candidates in
/// seed-dependent order and let hash order decide cost ties). Lookup is a
/// binary search over a handful of shapes, and the flat layout spares the
/// per-node hash-table allocation the old representation paid.
#[derive(Debug, Clone, Default)]
pub(crate) struct ExportMap {
    entries: Vec<(TupleKey, Vec<Cand>)>,
}

impl ExportMap {
    /// Drains a scratch accumulation map into a sorted export set. The
    /// scratch map keeps its capacity for the next node.
    pub fn from_scratch(scratch: &mut HashMap<TupleKey, Vec<Cand>>) -> ExportMap {
        let mut entries: Vec<(TupleKey, Vec<Cand>)> = scratch.drain().collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        ExportMap { entries }
    }

    /// The candidates exported under `key`, if any.
    pub fn get(&self, key: &TupleKey) -> Option<&[Cand]> {
        self.entries
            .binary_search_by_key(key, |(k, _)| *k)
            .ok()
            .map(|i| self.entries[i].1.as_slice())
    }

    /// Appends a candidate under `key`, creating the entry when missing.
    pub fn push(&mut self, key: TupleKey, cand: Cand) {
        match self.entries.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => self.entries[i].1.push(cand),
            Err(i) => self.entries.insert(i, (key, vec![cand])),
        }
    }

    /// Number of distinct shapes (exercised by tests; the DP itself only
    /// needs the flat iteration and totals).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total candidate count across all shapes.
    pub fn total_candidates(&self) -> usize {
        self.entries.iter().map(|(_, cs)| cs.len()).sum()
    }

    /// Iterator over `(shape, candidate)` pairs in shape order.
    pub fn flat(&self) -> impl Iterator<Item = (TupleKey, &Cand)> + '_ {
        self.entries
            .iter()
            .flat_map(|(k, cs)| cs.iter().map(move |c| (*k, c)))
    }
}

impl Index<&TupleKey> for ExportMap {
    type Output = [Cand];

    fn index(&self, key: &TupleKey) -> &[Cand] {
        self.get(key).expect("no candidates exported for shape")
    }
}

/// Per-node DP state.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeSol {
    /// Candidates visible to consumers (bare tuples for fanout-1 nodes,
    /// plus the gate-as-input tuple).
    pub exported: ExportMap,
    /// The formed-gate solution (every node has one; it is only
    /// materialized when referenced).
    pub gate: Option<GateSol>,
}

impl NodeSol {
    /// Flat iterator over all exported candidates with their references,
    /// in deterministic shape order.
    pub fn exported_refs<'a>(
        &'a self,
        node: UId,
    ) -> impl Iterator<Item = (CandRef, &'a Cand)> + 'a {
        self.exported.entries.iter().flat_map(move |(key, cands)| {
            cands.iter().enumerate().map(move |(idx, c)| {
                (
                    CandRef {
                        node,
                        key: *key,
                        idx,
                    },
                    c,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_algebra() {
        let a = TupleKey { w: 2, h: 1 };
        let b = TupleKey { w: 1, h: 3 };
        assert_eq!(a.and(b), TupleKey { w: 2, h: 4 });
        assert_eq!(a.or(b), TupleKey { w: 3, h: 3 });
        assert!(a.fits(5, 8));
        assert!(!a.and(b).fits(5, 3));
        assert_eq!(TupleKey::UNIT.to_string(), "{1, 1}");
    }

    #[test]
    fn derive_ungrounded_counts_parallel_bottom() {
        let cand = Cand {
            g: Cost::transistors(4),
            u: Cost::default(),
            p_spine: 1,
            p_branch: 2,
            par_b: true,
            touches_pi: false,
            form: Form::Lit(Literal {
                input: 0,
                phase: soi_unate::Phase::Pos,
            }),
        };
        let cand = cand.derive_ungrounded(3);
        assert_eq!(cand.p_dis(), 3);
        // Only branch points and the parallel bottom commit on top: 3.
        assert_eq!(cand.u.tx, 4 + 3);
        assert_eq!(cand.u.wtx, 4 + 9);
        assert_eq!(cand.u.disch, 3);
    }
}
