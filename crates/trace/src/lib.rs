//! # soi-trace
//!
//! Zero-cost-when-disabled instrumentation for the mapping pipeline:
//! hierarchical stage spans, typed counters and gauges, and pluggable
//! sinks.
//!
//! The pipeline threads a [`TraceHandle`] — a `Copy` wrapper over an
//! optional `&'static dyn Sink` — through every stage. With the handle
//! off (the default), every emission site is a single `None` branch and
//! no clock is ever read; with a sink attached, events flow to it as
//! they happen. Because the handle only *observes*, results are
//! bit-identical with tracing on or off; the test suite asserts this
//! across serial, parallel and cached runs.
//!
//! Three sinks ship with the crate:
//!
//! * [`Recorder`] — lock-free counter/gauge aggregation plus span and
//!   per-worker logs, for tests and metric oracles.
//! * [`JsonLines`] — one JSON object per event, for offline analysis
//!   (the bench bin writes one next to its summary JSON).
//! * [`Recorder::summary_table`] — a human-readable rollup of whatever a
//!   recorder saw.
//!
//! The typed vocabulary ([`Stage`], [`Counter`], [`Gauge`]) is the
//! contract that turns metrics into *oracles*: e.g. for every node the
//! DP actually solves, `candidates_generated ==
//! candidates_pruned + candidates_exported`, and per cache tier
//! `probes == hits + misses`. See `tests/trace_invariants.rs` at the
//! workspace root.
//!
//! # Example
//!
//! ```rust
//! use soi_trace::{Counter, Recorder, Stage};
//!
//! let (recorder, trace) = Recorder::install();
//! {
//!     let _span = trace.span(Stage::Dp);
//!     trace.count(Counter::CandidatesGenerated, 3);
//! }
//! assert_eq!(recorder.counter(Counter::CandidatesGenerated), 3);
//! assert_eq!(recorder.spans().len(), 1);
//! ```

use std::fmt;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A named pipeline stage, in flow order. Spans are emitted when a stage
/// finishes, carrying its wall-clock duration; nested stages (the DP span
/// encloses the cone-partition span) simply emit both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Front-end ingest: reading and parsing the source artifact (BLIF
    /// text, AIGER binary, or a generated corpus entry) into a
    /// [`Network`](../soi_netlist/struct.Network.html). Emitted by the
    /// caller that owns the I/O (the bench harness wraps its corpus
    /// loads); in-memory flows that never touch a front-end emit nothing.
    Ingest,
    /// BLIF text parsing (only flows that start from text emit this).
    Parse,
    /// Structural netlist validation (guard pipeline).
    NetlistValidate,
    /// Binate-to-unate conversion.
    UnateConvert,
    /// Fanout-free cone partitioning inside the DP driver.
    ConePartition,
    /// The whole mapping stage as the guard pipeline sees it.
    Map,
    /// The tuple dynamic program proper.
    Dp,
    /// Gate materialization from DP back-pointers.
    Reconstruct,
    /// Baseline discharge insertion (`Domino_Map`/`RS_Map` only).
    PbePostprocess,
    /// Discharge-coverage verification (guard pipeline).
    DischargeProtect,
    /// The cross-stage consistency audit (guard pipeline).
    Audit,
    /// Scheduler drain after an interrupt or contained panic: from the
    /// first failure observation until the last worker returned.
    Drain,
    /// SAT-based combinational equivalence check of the mapped circuit
    /// against the source network, plus the SAT-formulated PBE-safety
    /// proof (the opt-in guard pipeline post-map stage).
    Cec,
}

impl Stage {
    /// Every stage, in flow order.
    pub const ALL: [Stage; 13] = [
        Stage::Ingest,
        Stage::Parse,
        Stage::NetlistValidate,
        Stage::UnateConvert,
        Stage::ConePartition,
        Stage::Map,
        Stage::Dp,
        Stage::Reconstruct,
        Stage::PbePostprocess,
        Stage::DischargeProtect,
        Stage::Audit,
        Stage::Drain,
        Stage::Cec,
    ];

    /// The stage's kebab-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::Parse => "parse",
            Stage::NetlistValidate => "netlist-validate",
            Stage::UnateConvert => "unate-convert",
            Stage::ConePartition => "cone-partition",
            Stage::Map => "map",
            Stage::Dp => "dp",
            Stage::Reconstruct => "reconstruct",
            Stage::PbePostprocess => "pbe-postprocess",
            Stage::DischargeProtect => "discharge-protect",
            Stage::Audit => "audit",
            Stage::Drain => "drain",
            Stage::Cec => "cec",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A monotone counter. Emission sites add deltas; sinks accumulate.
///
/// The counters are designed to satisfy balance invariants (asserted in
/// `tests/trace_invariants.rs`):
///
/// * `CandidatesGenerated == CandidatesPruned + CandidatesExported`,
///   summed over the nodes the per-node solver actually ran on (cache
///   hits rebind a memoized solution and generate nothing).
/// * `NodeTierProbes == NodeTierHits + NodeTierMisses`.
/// * `ConeTierGateHits + NodeTierHits` equals the run's reported
///   cone-cache hits, and `NodeTierMisses` its misses.
/// * `CombineSteps` is identical across serial, parallel and cached
///   schedules (cache hits bulk-charge their original step count).
/// * `DischargesInserted` equals the circuit's `counts.discharge`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Bare tuple candidates that entered a node's frontier.
    CandidatesGenerated,
    /// Candidates dropped by Pareto pruning, the per-node tuple cap, or a
    /// multi-fanout boundary discarding the bare set.
    CandidatesPruned,
    /// Bare candidates a node exports to its consumers (the `{1,1}`
    /// formed-gate candidate is bookkept separately).
    CandidatesExported,
    /// Candidate-combination steps charged against the run budget.
    CombineSteps,
    /// Cone-tier cache hits, in units (one whole cone rebound per hit).
    ConeTierHits,
    /// Cone-tier cache hits, gate-weighted (one cone hit stands in for
    /// every gate solve in the unit).
    ConeTierGateHits,
    /// Node-tier cache probes.
    NodeTierProbes,
    /// Node-tier cache hits.
    NodeTierHits,
    /// Node-tier cache misses (the node was solved and captured).
    NodeTierMisses,
    /// Units a scheduler worker obtained from another worker's queue.
    SchedSteals,
    /// Condvar wakeups sent by workers publishing new runnable units.
    SchedWakeups,
    /// Times a worker parked on the idle condvar (bounded idle-spins).
    SchedParks,
    /// Nodes where the degradation fallback forced a gate boundary.
    DegradedNodes,
    /// Pre-discharge transistors inserted (DP-attached or post-processed).
    DischargesInserted,
    /// Pre-discharge transistors removed by excitability pruning.
    DischargesPruned,
    /// Input vectors the guard audit simulated.
    AuditVectors,
    /// Interrupts (cancellation, deterministic trip, deadline) a run
    /// observed — latched to one per trip, however many workers race to it.
    CancelsObserved,
    /// Worker panics caught and converted to typed errors.
    PanicsContained,
    /// Completed cone units an interrupted run captured into its salvage
    /// cache.
    UnitsSalvaged,
    /// Per-shape candidate groups the batched skyline prune processed.
    PruneBatches,
    /// Candidates the skyline sweep kept (before the per-shape cap).
    SkylineSurvivors,
    /// Cache hits served by entries loaded from a persistent store.
    PersistHits,
    /// Cache tiers the adaptive bypass disabled mid-run (at most one per
    /// tier per run).
    TierBypasses,
    /// Runs where the cold-cache admission pre-scan found too little cone
    /// repetition and skipped the cache entirely.
    AdmissionSkips,
    /// SAT queries the equivalence/PBE-safety checkers issued (miter
    /// closures, excitability proofs).
    CecSatCalls,
    /// Candidate equivalences the bit-parallel simulation filter
    /// discharged without a SAT call (signature-distinct pairs plus
    /// output miters settled by a simulated counterexample).
    CecSimFiltered,
    /// CDCL conflicts across every SAT query of a run — the solver-effort
    /// analogue of `combine_steps`.
    Conflicts,
    /// SAT counterexamples replayed through the scalar simulator before
    /// being believed (every cex is replayed; the count equals the
    /// counterexamples reported).
    CexReplays,
}

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; 28] = [
        Counter::CandidatesGenerated,
        Counter::CandidatesPruned,
        Counter::CandidatesExported,
        Counter::CombineSteps,
        Counter::ConeTierHits,
        Counter::ConeTierGateHits,
        Counter::NodeTierProbes,
        Counter::NodeTierHits,
        Counter::NodeTierMisses,
        Counter::SchedSteals,
        Counter::SchedWakeups,
        Counter::SchedParks,
        Counter::DegradedNodes,
        Counter::DischargesInserted,
        Counter::DischargesPruned,
        Counter::AuditVectors,
        Counter::CancelsObserved,
        Counter::PanicsContained,
        Counter::UnitsSalvaged,
        Counter::PruneBatches,
        Counter::SkylineSurvivors,
        Counter::PersistHits,
        Counter::TierBypasses,
        Counter::AdmissionSkips,
        Counter::CecSatCalls,
        Counter::CecSimFiltered,
        Counter::Conflicts,
        Counter::CexReplays,
    ];

    /// The counter's snake_case display name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::CandidatesGenerated => "candidates_generated",
            Counter::CandidatesPruned => "candidates_pruned",
            Counter::CandidatesExported => "candidates_exported",
            Counter::CombineSteps => "combine_steps",
            Counter::ConeTierHits => "cone_tier_hits",
            Counter::ConeTierGateHits => "cone_tier_gate_hits",
            Counter::NodeTierProbes => "node_tier_probes",
            Counter::NodeTierHits => "node_tier_hits",
            Counter::NodeTierMisses => "node_tier_misses",
            Counter::SchedSteals => "sched_steals",
            Counter::SchedWakeups => "sched_wakeups",
            Counter::SchedParks => "sched_parks",
            Counter::DegradedNodes => "degraded_nodes",
            Counter::DischargesInserted => "discharges_inserted",
            Counter::DischargesPruned => "discharges_pruned",
            Counter::AuditVectors => "audit_vectors",
            Counter::CancelsObserved => "cancels_observed",
            Counter::PanicsContained => "panics_contained",
            Counter::UnitsSalvaged => "units_salvaged",
            Counter::PruneBatches => "prune_batches",
            Counter::SkylineSurvivors => "skyline_survivors",
            Counter::PersistHits => "persist_hits",
            Counter::TierBypasses => "tier_bypasses",
            Counter::AdmissionSkips => "admission_skips",
            Counter::CecSatCalls => "cec_sat_calls",
            Counter::CecSimFiltered => "cec_sim_filtered",
            Counter::Conflicts => "conflicts",
            Counter::CexReplays => "cex_replays",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A high-water-mark gauge. Sinks keep the maximum of all emitted values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// Largest exported-candidate count any single node reached — the
    /// tuple-frontier high-water mark.
    PeakCandidates,
    /// Worker threads the DP schedule actually used.
    ThreadsUsed,
    /// Largest candidate count a worker's scratch arena held for one node
    /// — the pre-prune frontier high-water mark (capacity the reused
    /// arenas retain across nodes and cone units).
    ScratchHighWater,
}

impl Gauge {
    /// Every gauge, in declaration order.
    pub const ALL: [Gauge; 3] = [
        Gauge::PeakCandidates,
        Gauge::ThreadsUsed,
        Gauge::ScratchHighWater,
    ];

    /// The gauge's snake_case display name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::PeakCandidates => "peak_candidates",
            Gauge::ThreadsUsed => "threads_used",
            Gauge::ScratchHighWater => "scratch_high_water",
        }
    }
}

impl fmt::Display for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduler worker's tallies for a single DP run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Worker index (0 is the calling thread).
    pub worker: usize,
    /// Units this worker executed.
    pub units: u64,
    /// Units it popped from another worker's queue.
    pub steals: u64,
    /// Condvar wakeups it sent while publishing runnable units.
    pub wakeups: u64,
    /// Times it parked on the idle condvar.
    pub parks: u64,
}

/// One instrumentation event, as delivered to a [`Sink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// `delta` added to a monotone counter.
    Counter {
        /// Which counter.
        id: Counter,
        /// The amount added.
        delta: u64,
    },
    /// A gauge observation (sinks keep the maximum).
    Gauge {
        /// Which gauge.
        id: Gauge,
        /// The observed value.
        value: u64,
    },
    /// A finished stage span with its wall-clock duration.
    Span {
        /// Which stage finished.
        stage: Stage,
        /// Duration in nanoseconds.
        nanos: u64,
    },
    /// One scheduler worker's per-run tallies.
    Worker(WorkerStats),
}

/// Where events go. Implementations must be cheap and thread-safe: the DP
/// emits from every worker concurrently.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: &Event);
}

/// The `Copy` handle the pipeline threads through every stage.
///
/// Disabled (the [`TraceHandle::off`] default) it is a `None` and every
/// emission method returns after one branch — no clock reads, no
/// allocation, no atomics. Enabled, it forwards to a `&'static dyn Sink`.
///
/// The `'static` bound is what keeps the handle `Copy` and lets it live
/// inside `MapConfig` (itself `Copy`); [`Recorder::install`] leaks one
/// small allocation per recorder to provide it, which is bounded in
/// practice (tests and benches install a few dozen recorders per
/// process).
#[derive(Clone, Copy)]
pub struct TraceHandle {
    sink: Option<&'static dyn Sink>,
}

impl TraceHandle {
    /// The disabled handle (the default everywhere).
    pub const fn off() -> TraceHandle {
        TraceHandle { sink: None }
    }

    /// A handle forwarding to `sink`.
    pub fn to_sink(sink: &'static dyn Sink) -> TraceHandle {
        TraceHandle { sink: Some(sink) }
    }

    /// Whether a sink is attached.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits a raw event.
    pub fn emit(&self, event: &Event) {
        if let Some(sink) = self.sink {
            sink.record(event);
        }
    }

    /// Adds `delta` to `id`.
    pub fn count(&self, id: Counter, delta: u64) {
        if let Some(sink) = self.sink {
            sink.record(&Event::Counter { id, delta });
        }
    }

    /// Observes `value` on gauge `id`.
    pub fn gauge(&self, id: Gauge, value: u64) {
        if let Some(sink) = self.sink {
            sink.record(&Event::Gauge { id, value });
        }
    }

    /// Reports one scheduler worker's tallies.
    pub fn worker(&self, stats: WorkerStats) {
        if let Some(sink) = self.sink {
            sink.record(&Event::Worker(stats));
        }
    }

    /// Starts a stage span. The span records its duration when dropped
    /// (or on [`Span::finish`]); with the handle off, no clock is read.
    pub fn span(&self, stage: Stage) -> Span {
        Span {
            armed: self.sink.map(|sink| (sink, stage, Instant::now())),
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.sink {
            None => f.write_str("TraceHandle(off)"),
            Some(sink) => write!(f, "TraceHandle({:p})", sink as *const dyn Sink),
        }
    }
}

/// Handles compare by sink identity: two handles are equal when both are
/// off or both forward to the same sink object.
impl PartialEq for TraceHandle {
    fn eq(&self, other: &TraceHandle) -> bool {
        match (self.sink, other.sink) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                // Compare data pointers only: vtable pointers may differ
                // across codegen units for the same object.
                std::ptr::eq(
                    a as *const dyn Sink as *const u8,
                    b as *const dyn Sink as *const u8,
                )
            }
            _ => false,
        }
    }
}

impl Eq for TraceHandle {}

impl Default for TraceHandle {
    fn default() -> TraceHandle {
        TraceHandle::off()
    }
}

/// A live stage timer returned by [`TraceHandle::span`]. Dropping it (or
/// calling [`Span::finish`]) emits the [`Event::Span`].
#[must_use = "a span measures until it is dropped; binding it to `_` drops it immediately"]
pub struct Span {
    armed: Option<(&'static dyn Sink, Stage, Instant)>,
}

impl Span {
    /// Ends the span now, emitting its duration.
    pub fn finish(mut self) {
        self.emit();
    }

    fn emit(&mut self) {
        if let Some((sink, stage, start)) = self.armed.take() {
            sink.record(&Event::Span {
                stage,
                nanos: start.elapsed().as_nanos() as u64,
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit();
    }
}

/// In-memory aggregating sink: atomic counters, max-gauges, and span and
/// worker logs behind mutexes. The workhorse of the instrumentation test
/// suite and the bench bin's metric blocks.
#[derive(Debug, Default)]
pub struct Recorder {
    counters: [AtomicU64; Counter::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    spans: Mutex<Vec<(Stage, u64)>>,
    workers: Mutex<Vec<WorkerStats>>,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Leaks a fresh recorder into a `'static` allocation and returns it
    /// together with a [`TraceHandle`] forwarding to it.
    ///
    /// The leak is the price of a `Copy` handle with no lifetime; it is
    /// one small struct per call, reusable across any number of runs via
    /// [`Recorder::reset`].
    pub fn install() -> (&'static Recorder, TraceHandle) {
        let recorder: &'static Recorder = Box::leak(Box::new(Recorder::new()));
        (recorder, TraceHandle::to_sink(recorder))
    }

    /// The accumulated value of `id`.
    pub fn counter(&self, id: Counter) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    /// The maximum observed value of `id` (0 if never observed).
    pub fn gauge(&self, id: Gauge) -> u64 {
        self.gauges[id as usize].load(Ordering::Relaxed)
    }

    /// All finished spans, in completion order, as `(stage, nanos)`.
    pub fn spans(&self) -> Vec<(Stage, u64)> {
        self.spans.lock().expect("span log poisoned").clone()
    }

    /// The total time spent in `stage` across all its spans, or `None`
    /// if the stage never finished a span.
    pub fn stage_nanos(&self, stage: Stage) -> Option<u64> {
        let spans = self.spans.lock().expect("span log poisoned");
        let mut total = None;
        for &(s, nanos) in spans.iter() {
            if s == stage {
                *total.get_or_insert(0) += nanos;
            }
        }
        total
    }

    /// All reported scheduler worker tallies, sorted by worker index.
    pub fn workers(&self) -> Vec<WorkerStats> {
        let mut w = self.workers.lock().expect("worker log poisoned").clone();
        w.sort_by_key(|s| s.worker);
        w
    }

    /// Clears every counter, gauge, span and worker record, making the
    /// recorder ready for the next run.
    pub fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
        self.spans.lock().expect("span log poisoned").clear();
        self.workers.lock().expect("worker log poisoned").clear();
    }

    /// A human-readable rollup: stage timings, then non-zero counters and
    /// gauges, then per-worker scheduler tallies.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str("stage                 total_ms\n");
        for stage in Stage::ALL {
            if let Some(nanos) = self.stage_nanos(stage) {
                let _ = writeln!(out, "  {:<20} {:.3}", stage.name(), nanos as f64 / 1e6);
            }
        }
        out.push_str("counter                          value\n");
        for counter in Counter::ALL {
            let v = self.counter(counter);
            if v != 0 {
                let _ = writeln!(out, "  {:<30} {v}", counter.name());
            }
        }
        for gauge in Gauge::ALL {
            let v = self.gauge(gauge);
            if v != 0 {
                let _ = writeln!(out, "  {:<30} {v} (max)", gauge.name());
            }
        }
        let workers = self.workers();
        if !workers.is_empty() {
            out.push_str("worker  units  steals  wakeups  parks\n");
            for w in workers {
                let _ = writeln!(
                    out,
                    "  {:<5} {:>6} {:>7} {:>8} {:>6}",
                    w.worker, w.units, w.steals, w.wakeups, w.parks
                );
            }
        }
        out
    }
}

impl Sink for Recorder {
    fn record(&self, event: &Event) {
        match *event {
            Event::Counter { id, delta } => {
                self.counters[id as usize].fetch_add(delta, Ordering::Relaxed);
            }
            Event::Gauge { id, value } => {
                self.gauges[id as usize].fetch_max(value, Ordering::Relaxed);
            }
            Event::Span { stage, nanos } => {
                self.spans
                    .lock()
                    .expect("span log poisoned")
                    .push((stage, nanos));
            }
            Event::Worker(stats) => {
                self.workers
                    .lock()
                    .expect("worker log poisoned")
                    .push(stats);
            }
        }
    }
}

/// A sink writing one JSON object per event, newline-delimited — the
/// bench bin's offline-analysis format. The writer sits behind a mutex;
/// ordering between concurrent emitters is arbitrary but each line is
/// written atomically.
#[derive(Debug)]
pub struct JsonLines<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonLines<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> JsonLines<W> {
        JsonLines {
            out: Mutex::new(out),
        }
    }

    /// Unwraps the writer (e.g. to inspect a `Vec<u8>` in tests).
    pub fn into_inner(self) -> W {
        self.out.into_inner().expect("jsonl writer poisoned")
    }
}

impl<W: Write + Send> Sink for JsonLines<W> {
    fn record(&self, event: &Event) {
        let line = match *event {
            Event::Counter { id, delta } => {
                format!("{{\"kind\":\"counter\",\"name\":\"{}\",\"delta\":{delta}}}", id.name())
            }
            Event::Gauge { id, value } => {
                format!("{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}", id.name())
            }
            Event::Span { stage, nanos } => {
                format!("{{\"kind\":\"span\",\"stage\":\"{}\",\"nanos\":{nanos}}}", stage.name())
            }
            Event::Worker(w) => format!(
                "{{\"kind\":\"worker\",\"worker\":{},\"units\":{},\"steals\":{},\"wakeups\":{},\"parks\":{}}}",
                w.worker, w.units, w.steals, w.wakeups, w.parks
            ),
        };
        let mut out = self.out.lock().expect("jsonl writer poisoned");
        // Instrumentation must never take the pipeline down: I/O errors
        // on a diagnostics stream are swallowed.
        let _ = writeln!(out, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert_and_default() {
        let t = TraceHandle::off();
        assert!(!t.enabled());
        assert_eq!(t, TraceHandle::default());
        // Emissions on an off handle are no-ops (and must not panic).
        t.count(Counter::CombineSteps, 5);
        t.gauge(Gauge::PeakCandidates, 5);
        t.span(Stage::Dp).finish();
        t.worker(WorkerStats::default());
    }

    #[test]
    fn recorder_accumulates_counters_and_max_gauges() {
        let (r, t) = Recorder::install();
        t.count(Counter::CandidatesGenerated, 2);
        t.count(Counter::CandidatesGenerated, 3);
        t.gauge(Gauge::PeakCandidates, 7);
        t.gauge(Gauge::PeakCandidates, 4);
        assert_eq!(r.counter(Counter::CandidatesGenerated), 5);
        assert_eq!(r.counter(Counter::CandidatesPruned), 0);
        assert_eq!(r.gauge(Gauge::PeakCandidates), 7);
    }

    #[test]
    fn spans_record_stage_and_duration() {
        let (r, t) = Recorder::install();
        {
            let _dp = t.span(Stage::Dp);
            t.span(Stage::ConePartition).finish();
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        // Inner span finishes first.
        assert_eq!(spans[0].0, Stage::ConePartition);
        assert_eq!(spans[1].0, Stage::Dp);
        assert!(r.stage_nanos(Stage::Dp).is_some());
        assert!(r.stage_nanos(Stage::Audit).is_none());
    }

    #[test]
    fn reset_clears_everything() {
        let (r, t) = Recorder::install();
        t.count(Counter::CombineSteps, 9);
        t.gauge(Gauge::ThreadsUsed, 4);
        t.span(Stage::Map).finish();
        t.worker(WorkerStats {
            worker: 1,
            units: 3,
            ..WorkerStats::default()
        });
        r.reset();
        assert_eq!(r.counter(Counter::CombineSteps), 0);
        assert_eq!(r.gauge(Gauge::ThreadsUsed), 0);
        assert!(r.spans().is_empty());
        assert!(r.workers().is_empty());
    }

    #[test]
    fn handle_equality_is_sink_identity() {
        let (r1, t1) = Recorder::install();
        let (_r2, t2) = Recorder::install();
        assert_eq!(t1, TraceHandle::to_sink(r1));
        assert_ne!(t1, t2);
        assert_ne!(t1, TraceHandle::off());
    }

    #[test]
    fn recorder_is_thread_safe() {
        let (r, t) = Recorder::install();
        std::thread::scope(|s| {
            for w in 0..4 {
                s.spawn(move || {
                    for _ in 0..1000 {
                        t.count(Counter::SchedSteals, 1);
                    }
                    t.worker(WorkerStats {
                        worker: w,
                        units: 1000,
                        ..WorkerStats::default()
                    });
                });
            }
        });
        assert_eq!(r.counter(Counter::SchedSteals), 4000);
        let workers = r.workers();
        assert_eq!(workers.len(), 4);
        // `workers()` sorts by index regardless of completion order.
        assert!(workers.windows(2).all(|w| w[0].worker < w[1].worker));
    }

    #[test]
    fn json_lines_formats_one_object_per_event() {
        let sink = JsonLines::new(Vec::new());
        sink.record(&Event::Counter {
            id: Counter::NodeTierHits,
            delta: 2,
        });
        sink.record(&Event::Span {
            stage: Stage::UnateConvert,
            nanos: 1500,
        });
        sink.record(&Event::Worker(WorkerStats {
            worker: 1,
            units: 8,
            steals: 2,
            wakeups: 1,
            parks: 3,
        }));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"kind\":\"counter\",\"name\":\"node_tier_hits\",\"delta\":2}"
        );
        assert_eq!(
            lines[1],
            "{\"kind\":\"span\",\"stage\":\"unate-convert\",\"nanos\":1500}"
        );
        assert_eq!(
            lines[2],
            "{\"kind\":\"worker\",\"worker\":1,\"units\":8,\"steals\":2,\"wakeups\":1,\"parks\":3}"
        );
    }

    #[test]
    fn summary_table_names_what_it_saw() {
        let (r, t) = Recorder::install();
        t.count(Counter::DischargesInserted, 12);
        t.gauge(Gauge::PeakCandidates, 9);
        t.span(Stage::Dp).finish();
        let table = r.summary_table();
        assert!(table.contains("dp"));
        assert!(table.contains("discharges_inserted"));
        assert!(table.contains("12"));
        assert!(table.contains("peak_candidates"));
        // Untouched counters stay out of the rollup.
        assert!(!table.contains("audit_vectors"));
    }

    #[test]
    fn vocabulary_is_complete_and_distinct() {
        // `ALL` drives array sizing: indices must be dense and unique.
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(*g as usize, i);
        }
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        names.extend(Stage::ALL.iter().map(|s| s.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}
