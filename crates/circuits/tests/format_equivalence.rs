//! Cross-format equivalence over the benchmark registry: every registry
//! circuit serialized through both front-ends (BLIF text and AIGER, both
//! flavors) must parse back to networks equivalent to the original and to
//! each other — the two readers agree on what the circuit *is*.

use soi_circuits::registry;
use soi_netlist::{aiger, blif, sim};

#[test]
fn registry_circuits_roundtrip_identically_through_blif_and_aiger() {
    let mut checked = 0usize;
    for name in registry::names() {
        let net = registry::benchmark(name).expect("registry name resolves");
        // Keep the sweep fast in debug CI: the big registry entries add
        // simulation time without adding front-end coverage.
        if net.stats().binary_gates > 3_000 {
            continue;
        }
        let from_blif = blif::parse(&blif::write(&net))
            .unwrap_or_else(|e| panic!("{name}: blif roundtrip: {e}"));
        let from_aag = aiger::parse_ascii(&aiger::write_ascii(&net))
            .unwrap_or_else(|e| panic!("{name}: aag roundtrip: {e}"));
        let from_aig = aiger::parse_binary(&aiger::write_binary(&net))
            .unwrap_or_else(|e| panic!("{name}: aig roundtrip: {e}"));
        for (fmt, parsed) in [("blif", &from_blif), ("aag", &from_aag), ("aig", &from_aig)] {
            parsed
                .validate()
                .unwrap_or_else(|e| panic!("{name}/{fmt}: invalid: {e}"));
            assert!(
                sim::random_equivalent(&net, parsed, 4, 0xEC).unwrap(),
                "{name}: {fmt} roundtrip changed the function"
            );
        }
        assert!(
            sim::random_equivalent(&from_blif, &from_aag, 4, 0xED).unwrap(),
            "{name}: BLIF and AIGER readers disagree"
        );
        checked += 1;
    }
    assert!(checked >= 10, "only {checked} registry circuits swept");
}
