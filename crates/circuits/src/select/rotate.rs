//! Barrel rotator — the functional family of the MCNC `rot` benchmark.

use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

/// A barrel rotator: rotates `width` data bits left by the `shift_bits`-bit
/// amount, in `shift_bits` mux stages.
///
/// # Panics
///
/// Panics if `width == 0` or `shift_bits == 0`.
///
/// # Example
///
/// ```rust
/// let n = soi_circuits::select::rotate::barrel(4, 2);
/// // 0b0001 rotated left by 1 = 0b0010.
/// let out = n
///     .simulate(&[true, false, false, false, true, false])
///     .unwrap();
/// assert_eq!(out, vec![false, true, false, false]);
/// ```
pub fn barrel(width: usize, shift_bits: usize) -> Network {
    assert!(
        width > 0 && shift_bits > 0,
        "width and shift_bits must be positive"
    );
    let mut b = NetworkBuilder::new(format!("rot{width}x{shift_bits}"));
    let data = b.inputs("d", width);
    let shift = b.inputs("s", shift_bits);
    let mut stage: Vec<NodeId> = data;
    for (k, &s) in shift.iter().enumerate() {
        let amount = 1usize << k;
        stage = (0..width)
            .map(|i| {
                let rotated = stage[(i + width - amount % width) % width];
                b.mux(s, stage[i], rotated)
            })
            .collect();
    }
    for (i, o) in stage.iter().enumerate() {
        b.output(format!("o{i}"), *o);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_all_amounts() {
        let n = barrel(8, 3);
        let data = 0b1011_0001u32;
        for amount in 0..8usize {
            let mut v: Vec<bool> = (0..8).map(|i| data >> i & 1 == 1).collect();
            v.extend((0..3).map(|i| amount >> i & 1 == 1));
            let out = n.simulate(&v).unwrap();
            let got: u32 = out
                .iter()
                .enumerate()
                .map(|(i, &b)| u32::from(b) << i)
                .sum();
            let want = ((data << amount) | (data >> (8 - amount))) & 0xFF;
            let want = if amount == 0 { data } else { want };
            assert_eq!(got, want, "amount {amount}");
        }
    }

    #[test]
    fn io_counts() {
        let n = barrel(16, 4);
        assert_eq!(n.inputs().len(), 20);
        assert_eq!(n.outputs().len(), 16);
    }
}
