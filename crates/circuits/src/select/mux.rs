//! Multiplexer trees — the functional content of the MCNC `cm150a` and
//! `mux` benchmarks (both 16-to-1 multiplexers).

use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

/// A `2^select_bits`-to-1 multiplexer built as a binary tree of 2:1 muxes,
/// with an active-high enable. Inputs `d0..`, `s0..` (LSB first), `en`;
/// output `y`.
///
/// # Panics
///
/// Panics if `select_bits == 0`.
///
/// # Example
///
/// ```rust
/// let n = soi_circuits::select::mux::tree(2);
/// // d = [a,b,c,d], select 2, enabled → d2.
/// let out = n
///     .simulate(&[false, false, true, false, false, true, true])
///     .unwrap();
/// assert_eq!(out, vec![true]);
/// ```
pub fn tree(select_bits: usize) -> Network {
    assert!(select_bits > 0, "select_bits must be positive");
    let mut b = NetworkBuilder::new(format!("mux{}", 1 << select_bits));
    let data = b.inputs("d", 1 << select_bits);
    let sel = b.inputs("s", select_bits);
    let en = b.input("en");
    let y = tree_into(&mut b, &data, &sel);
    let gated = b.and(y, en);
    b.output("y", gated);
    b.finish()
}

/// Builds a mux tree in an existing builder; `data.len()` must equal
/// `2^sel.len()`.
///
/// # Panics
///
/// Panics on a width mismatch.
pub fn tree_into(b: &mut NetworkBuilder, data: &[NodeId], sel: &[NodeId]) -> NodeId {
    assert_eq!(data.len(), 1 << sel.len(), "data width != 2^select bits");
    let mut level: Vec<NodeId> = data.to_vec();
    for &s in sel {
        let mut next = Vec::with_capacity(level.len() / 2);
        for pair in level.chunks(2) {
            next.push(b.mux(s, pair[0], pair[1]));
        }
        level = next;
    }
    level[0]
}

/// A 16-to-1 multiplexer built *flat* (two-level AND-OR over a 4-to-16
/// decode) rather than as a tree — functionally identical to [`tree`]`(4)`
/// but with a very different structure for the mapper to chew on (this is
/// the `mux` to `cm150a`'s tree).
pub fn flat16() -> Network {
    let mut b = NetworkBuilder::new("mux16flat");
    let data = b.inputs("d", 16);
    let sel = b.inputs("s", 4);
    let en = b.input("en");
    let mut terms = Vec::with_capacity(16);
    for (i, &d) in data.iter().enumerate() {
        let mut lits = vec![d];
        for (k, &s) in sel.iter().enumerate() {
            lits.push(if i >> k & 1 == 1 { s } else { b.inv(s) });
        }
        terms.push(b.and_all(&lits));
    }
    let y = b.or_all(&terms);
    let gated = b.and(y, en);
    b.output("y", gated);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(n: &Network, data: u32, sel: usize, bits: usize, en: bool) -> bool {
        let mut v = Vec::new();
        for i in 0..(1 << bits) {
            v.push(data >> i & 1 == 1);
        }
        for i in 0..bits {
            v.push(sel >> i & 1 == 1);
        }
        v.push(en);
        n.simulate(&v).unwrap()[0]
    }

    #[test]
    fn tree_selects_each_lane() {
        let n = tree(3);
        for lane in 0..8 {
            assert!(select(&n, 1 << lane, lane, 3, true), "lane {lane}");
            assert!(!select(&n, !(1u32 << lane), lane, 3, true));
        }
    }

    #[test]
    fn enable_gates_output() {
        let n = tree(2);
        assert!(!select(&n, 0xF, 2, 2, false));
    }

    #[test]
    fn flat_matches_tree() {
        let t = tree(4);
        let f = flat16();
        assert!(soi_netlist::sim::random_equivalent(&t, &f, 16, 5).unwrap());
    }
}
