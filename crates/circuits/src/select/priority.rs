//! Priority logic — the functional family of `c432` (a 27-channel
//! interrupt controller).

use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

/// An n-channel priority encoder: outputs the binary index of the
/// highest-priority (lowest-index) active request plus a `valid` flag.
///
/// # Panics
///
/// Panics if `channels < 2`.
///
/// # Example
///
/// ```rust
/// let n = soi_circuits::select::priority::encoder(4);
/// // requests 2 and 3 active → index 2 (10 LSB first), valid.
/// let out = n.simulate(&[false, false, true, true]).unwrap();
/// assert_eq!(out, vec![false, true, true]);
/// ```
pub fn encoder(channels: usize) -> Network {
    assert!(channels >= 2, "need at least two channels");
    let mut b = NetworkBuilder::new(format!("prio{channels}"));
    let reqs = b.inputs("r", channels);
    let bits = usize::BITS as usize - (channels - 1).leading_zeros() as usize;

    // grant[i] = r[i] & !r[0..i]
    let mut blocked = b.zero();
    let mut grants = Vec::with_capacity(channels);
    for &r in &reqs {
        let nb = b.inv(blocked);
        grants.push(b.and(r, nb));
        blocked = b.or(blocked, r);
    }
    let valid = blocked;
    for bit in 0..bits {
        let contributors: Vec<NodeId> = grants
            .iter()
            .enumerate()
            .filter(|(i, _)| i >> bit & 1 == 1)
            .map(|(_, &g)| g)
            .collect();
        let o = b.or_all(&contributors);
        b.output(format!("i{bit}"), o);
    }
    b.output("valid", valid);
    b.finish()
}

/// A masked interrupt controller in the style of `c432`: `channels`
/// request lines gated by per-group mask lines (one mask per group of
/// `group` channels), feeding a priority encoder, with per-group "any
/// request" outputs.
///
/// # Panics
///
/// Panics if `channels < 2`, `group == 0`, or `group` does not divide
/// `channels`.
pub fn interrupt_controller(channels: usize, group: usize) -> Network {
    assert!(channels >= 2, "need at least two channels");
    assert!(
        group > 0 && channels.is_multiple_of(group),
        "group must divide channels"
    );
    let mut b = NetworkBuilder::new(format!("intctl{channels}x{group}"));
    let reqs = b.inputs("r", channels);
    let masks = b.inputs("m", channels / group);

    let gated: Vec<NodeId> = reqs
        .iter()
        .enumerate()
        .map(|(i, &r)| b.and(r, masks[i / group]))
        .collect();

    // Priority chain over gated requests.
    let mut blocked = b.zero();
    let mut grants = Vec::with_capacity(channels);
    for &g in &gated {
        let nb = b.inv(blocked);
        grants.push(b.and(g, nb));
        blocked = b.or(blocked, g);
    }
    let bits = usize::BITS as usize - (channels - 1).leading_zeros() as usize;
    for bit in 0..bits {
        let contributors: Vec<NodeId> = grants
            .iter()
            .enumerate()
            .filter(|(i, _)| i >> bit & 1 == 1)
            .map(|(_, &g)| g)
            .collect();
        let o = b.or_all(&contributors);
        b.output(format!("i{bit}"), o);
    }
    b.output("valid", blocked);
    for (g, chunk) in gated.chunks(group).enumerate() {
        let any = b.or_all(chunk);
        b.output(format!("grp{g}"), any);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_prefers_lowest_index() {
        let n = encoder(8);
        for first in 0..8usize {
            let mut v = vec![false; 8];
            for slot in v.iter_mut().skip(first) {
                *slot = true;
            }
            let out = n.simulate(&v).unwrap();
            let idx: usize = out[..3]
                .iter()
                .enumerate()
                .map(|(i, &b)| usize::from(b) << i)
                .sum();
            assert_eq!(idx, first);
            assert!(out[3], "valid");
        }
    }

    #[test]
    fn encoder_invalid_when_quiet() {
        let n = encoder(4);
        let out = n.simulate(&[false; 4]).unwrap();
        assert!(!out[2]);
    }

    #[test]
    fn controller_masks_requests() {
        let n = interrupt_controller(9, 3);
        // Request 0 active but group 0 masked off; request 4 active with
        // group 1 enabled → grant 4.
        let mut v = vec![false; 9];
        v[0] = true;
        v[4] = true;
        v.extend([false, true, false]); // masks
        let out = n.simulate(&v).unwrap();
        let idx: usize = out[..4]
            .iter()
            .enumerate()
            .map(|(i, &b)| usize::from(b) << i)
            .sum();
        assert_eq!(idx, 4);
        assert!(out[4], "valid");
        // Group outputs: only group 1.
        assert_eq!(&out[5..], &[false, true, false]);
    }
}
