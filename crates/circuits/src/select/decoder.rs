//! Binary decoders.

use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

/// An n-to-2^n decoder with enable: output `o{k}` is high iff the select
/// value equals `k` and `en` is high.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Example
///
/// ```rust
/// let n = soi_circuits::select::decoder::binary(2);
/// // sel = 2, enabled → o2 only.
/// let out = n.simulate(&[false, true, true]).unwrap();
/// assert_eq!(out, vec![false, false, true, false]);
/// ```
pub fn binary(bits: usize) -> Network {
    assert!(bits > 0, "decoder bits must be positive");
    let mut b = NetworkBuilder::new(format!("dec{bits}"));
    let sel = b.inputs("s", bits);
    let en = b.input("en");
    let outs = binary_into(&mut b, &sel, Some(en));
    for (k, o) in outs.iter().enumerate() {
        b.output(format!("o{k}"), *o);
    }
    b.finish()
}

/// Builds decoder logic in an existing builder; with `enable`, every output
/// is gated by it.
pub fn binary_into(b: &mut NetworkBuilder, sel: &[NodeId], enable: Option<NodeId>) -> Vec<NodeId> {
    let inv: Vec<NodeId> = sel.iter().map(|&s| b.inv(s)).collect();
    (0..(1usize << sel.len()))
        .map(|k| {
            let mut lits: Vec<NodeId> = sel
                .iter()
                .enumerate()
                .map(|(i, &s)| if k >> i & 1 == 1 { s } else { inv[i] })
                .collect();
            if let Some(en) = enable {
                lits.push(en);
            }
            b.and_all(&lits)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_property() {
        let n = binary(3);
        for k in 0..8usize {
            let mut v: Vec<bool> = (0..3).map(|i| k >> i & 1 == 1).collect();
            v.push(true);
            let out = n.simulate(&v).unwrap();
            assert_eq!(out.iter().filter(|&&b| b).count(), 1);
            assert!(out[k], "select {k}");
        }
    }

    #[test]
    fn disabled_is_all_zero() {
        let n = binary(2);
        let out = n.simulate(&[true, true, false]).unwrap();
        assert!(out.iter().all(|&b| !b));
    }
}
