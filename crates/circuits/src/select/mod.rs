//! Selection and steering logic: multiplexers, decoders, priority encoders
//! and barrel rotators.

pub mod decoder;
pub mod mux;
pub mod priority;
pub mod rotate;
