//! # soi-circuits
//!
//! Parametric benchmark-circuit generators for the SOI domino mapping flow.
//!
//! The paper evaluates on ISCAS'85 and MCNC benchmark netlists, which are
//! not distributed with this repository. Instead, this crate provides
//! *functionally faithful* generators for the circuit families those
//! benchmarks implement (multiplexer trees, adders, ALUs, error-correcting
//! decoders, symmetric functions, a DES round, CORDIC stages, priority
//! interrupt logic, barrel rotators) plus a seeded random-control-logic
//! generator for the benchmarks whose function is unstructured. The
//! [`registry`] maps each benchmark name used in the paper's tables to a
//! generated circuit of comparable two-input-gate size and depth; see
//! `DESIGN.md` §3 for the substitution rationale. Real netlists in BLIF
//! format can be dropped in through `soi_netlist::blif` at any time.
//!
//! All generators are deterministic: the same parameters (and seed, where
//! applicable) always produce the identical network.
//!
//! # Example
//!
//! ```rust
//! use soi_circuits::{arith, registry};
//!
//! let adder = arith::adder::ripple(8);
//! assert_eq!(adder.inputs().len(), 17); // 2×8 bits + carry-in
//! assert_eq!(adder.outputs().len(), 9); // 8 sum bits + carry-out
//!
//! let bench = registry::benchmark("cm150").expect("known benchmark");
//! assert!(bench.stats().binary_gates > 0);
//! ```

pub mod arith;
pub mod code;
pub mod corpus;
pub mod misc;
pub mod registry;
pub mod select;
