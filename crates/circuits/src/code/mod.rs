//! Coding circuits: parity trees, Hamming single-error correction, and a
//! DES round function.

pub mod des;
pub mod hamming;
pub mod parity;
