//! Hamming single-error-correcting codes — the functional family of the
//! ISCAS `c499`/`c1355` (32-bit SEC) and `c1908` (16-bit SEC/DED)
//! benchmarks.

use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

/// Number of check bits needed to protect `data_bits` of payload.
pub fn check_bits(data_bits: usize) -> usize {
    let mut r = 1;
    while (1usize << r) < data_bits + r + 1 {
        r += 1;
    }
    r
}

/// Positions (1-based, as in the classic construction) covered by check bit
/// `k` in a codeword of `total` bits.
fn covered(k: usize, total: usize) -> impl Iterator<Item = usize> {
    let mask = 1usize << k;
    (1..=total).filter(move |pos| pos & mask != 0 && !pos.is_power_of_two())
}

/// Maps data-bit index → codeword position (1-based non-power-of-two
/// positions in order).
fn data_positions(data_bits: usize) -> Vec<usize> {
    (1..)
        .filter(|p: &usize| !p.is_power_of_two())
        .take(data_bits)
        .collect()
}

/// A Hamming SEC encoder: inputs `d0..`, outputs the check bits `c0..`.
///
/// # Panics
///
/// Panics if `data_bits == 0`.
///
/// # Example
///
/// ```rust
/// use soi_circuits::code::hamming;
/// let n = hamming::sec_encoder(4);
/// assert_eq!(n.outputs().len(), hamming::check_bits(4));
/// ```
pub fn sec_encoder(data_bits: usize) -> Network {
    assert!(data_bits > 0, "data width must be positive");
    let r = check_bits(data_bits);
    let total = data_bits + r;
    let mut b = NetworkBuilder::new(format!("hamenc{data_bits}"));
    let data = b.inputs("d", data_bits);
    let dpos = data_positions(data_bits);
    for k in 0..r {
        let terms: Vec<NodeId> = covered(k, total)
            .filter_map(|pos| dpos.iter().position(|&p| p == pos).map(|i| data[i]))
            .collect();
        let c = b.xor_all(&terms);
        b.output(format!("c{k}"), c);
    }
    b.finish()
}

/// A Hamming SEC decoder: inputs are the received data `d0..` and check
/// bits `c0..`; outputs are the corrected data bits `o0..` plus an `err`
/// flag (nonzero syndrome).
///
/// # Panics
///
/// Panics if `data_bits == 0`.
pub fn sec_decoder(data_bits: usize) -> Network {
    assert!(data_bits > 0, "data width must be positive");
    let r = check_bits(data_bits);
    let total = data_bits + r;
    let mut b = NetworkBuilder::new(format!("hamdec{data_bits}"));
    let data = b.inputs("d", data_bits);
    let checks = b.inputs("c", r);
    let dpos = data_positions(data_bits);

    // Syndrome bit k: received check XOR recomputed parity.
    let mut syndrome = Vec::with_capacity(r);
    for (k, &check) in checks.iter().enumerate() {
        let mut terms: Vec<NodeId> = covered(k, total)
            .filter_map(|pos| dpos.iter().position(|&p| p == pos).map(|i| data[i]))
            .collect();
        terms.push(check);
        syndrome.push(b.xor_all(&terms));
    }
    let err = b.or_all(&syndrome);

    // Correct data bit i when the syndrome equals its position.
    for (i, &pos) in dpos.iter().enumerate() {
        let match_terms: Vec<NodeId> = (0..r)
            .map(|k| {
                if pos >> k & 1 == 1 {
                    syndrome[k]
                } else {
                    b.inv(syndrome[k])
                }
            })
            .collect();
        let flip = b.and_all(&match_terms);
        let corrected = b.xor(data[i], flip);
        b.output(format!("o{i}"), corrected);
    }
    b.output("err", err);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_sw(data: u32, data_bits: usize) -> Vec<bool> {
        let r = check_bits(data_bits);
        let total = data_bits + r;
        let dpos = data_positions(data_bits);
        let mut checks = vec![false; r];
        for (k, check) in checks.iter_mut().enumerate() {
            let mut p = false;
            for pos in covered(k, total) {
                if let Some(i) = dpos.iter().position(|&q| q == pos) {
                    p ^= data >> i & 1 == 1;
                }
            }
            *check = p;
        }
        checks
    }

    #[test]
    fn check_bit_counts() {
        assert_eq!(check_bits(4), 3);
        assert_eq!(check_bits(11), 4);
        assert_eq!(check_bits(16), 5);
        assert_eq!(check_bits(32), 6);
    }

    #[test]
    fn encoder_matches_reference() {
        let n = sec_encoder(8);
        for data in [0u32, 0x5A, 0xFF, 0x13] {
            let v: Vec<bool> = (0..8).map(|i| data >> i & 1 == 1).collect();
            assert_eq!(
                n.simulate(&v).unwrap(),
                encode_sw(data, 8),
                "data {data:#x}"
            );
        }
    }

    #[test]
    fn decoder_passes_clean_words() {
        let n = sec_decoder(8);
        for data in [0u32, 0xA5, 0x0F] {
            let mut v: Vec<bool> = (0..8).map(|i| data >> i & 1 == 1).collect();
            v.extend(encode_sw(data, 8));
            let out = n.simulate(&v).unwrap();
            for (i, &bit) in out.iter().take(8).enumerate() {
                assert_eq!(bit, data >> i & 1 == 1);
            }
            assert!(!out[8], "no error flagged");
        }
    }

    #[test]
    fn decoder_corrects_any_single_data_error() {
        let n = sec_decoder(8);
        let data = 0x6Cu32;
        let checks = encode_sw(data, 8);
        for flip in 0..8 {
            let mut v: Vec<bool> = (0..8).map(|i| data >> i & 1 == 1).collect();
            v[flip] = !v[flip];
            v.extend(checks.clone());
            let out = n.simulate(&v).unwrap();
            for (i, &bit) in out.iter().take(8).enumerate() {
                assert_eq!(bit, data >> i & 1 == 1, "bit {i} after flip {flip}");
            }
            assert!(out[8], "error flagged");
        }
    }

    #[test]
    fn decoder_flags_check_bit_errors_without_corrupting() {
        let n = sec_decoder(8);
        let data = 0x3Au32;
        let checks = encode_sw(data, 8);
        for flip in 0..checks.len() {
            let mut v: Vec<bool> = (0..8).map(|i| data >> i & 1 == 1).collect();
            let mut c = checks.clone();
            c[flip] = !c[flip];
            v.extend(c);
            let out = n.simulate(&v).unwrap();
            for (i, &bit) in out.iter().take(8).enumerate() {
                assert_eq!(bit, data >> i & 1 == 1, "bit {i} after check flip {flip}");
            }
            assert!(out[8]);
        }
    }
}
