//! Parity trees and chains.

use soi_netlist::{builder::NetworkBuilder, Network};

/// An n-input odd-parity function as a balanced XOR tree.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Example
///
/// ```rust
/// let n = soi_circuits::code::parity::tree(5);
/// let out = n.simulate(&[true, true, true, false, false]).unwrap();
/// assert_eq!(out, vec![true]); // three ones → odd
/// ```
pub fn tree(width: usize) -> Network {
    assert!(width > 0, "parity width must be positive");
    let mut b = NetworkBuilder::new(format!("parity{width}"));
    let bits = b.inputs("d", width);
    let p = b.xor_all(&bits);
    b.output("p", p);
    b.finish()
}

/// The same function as a linear XOR chain — maximal depth, for exercising
/// the depth objective (and the shape of `c1355` versus `c499`).
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn chain(width: usize) -> Network {
    assert!(width > 0, "parity width must be positive");
    let mut b = NetworkBuilder::new(format!("paritychain{width}"));
    let bits = b.inputs("d", width);
    let mut acc = bits[0];
    for &bit in &bits[1..] {
        acc = b.xor(acc, bit);
    }
    b.output("p", acc);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_matches_chain() {
        let t = tree(9);
        let c = chain(9);
        assert!(soi_netlist::sim::random_equivalent(&t, &c, 8, 3).unwrap());
    }

    #[test]
    fn chain_is_deeper() {
        assert!(chain(16).stats().depth > tree(16).stats().depth);
    }

    #[test]
    fn empty_input_parity_is_zero_ones() {
        let n = tree(1);
        assert_eq!(n.simulate(&[true]).unwrap(), vec![true]);
        assert_eq!(n.simulate(&[false]).unwrap(), vec![false]);
    }
}
