//! The DES round function — the functional family of the MCNC `des`
//! benchmark (the largest circuit in the paper's tables).
//!
//! A round computes `(L', R') = (R, L ⊕ f(R, K))` where `f` expands `R`
//! from 32 to 48 bits, XORs the round key, substitutes through the eight
//! standard S-boxes and permutes the result. S-boxes are synthesized as
//! 6-input lookup logic via multiplexer trees over constant leaves (the
//! builder's constant folding collapses them into plain AND/OR/XOR
//! networks). The table constants below are the published FIPS 46-3
//! values.
//!
//! Bit convention: input index `i` (0-based, LSB-style naming `r0..`)
//! corresponds to DES bit `i + 1`; the software reference in the tests uses
//! the identical convention, so the circuit and reference are
//! self-consistent.

use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

/// The DES expansion table `E` (FIPS 46-3): output bit `i` reads input bit
/// `E[i]` (1-based).
pub const E: [usize; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18,
    19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// The DES permutation table `P` (FIPS 46-3).
pub const P: [usize; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// The eight DES S-boxes (FIPS 46-3), row-major: `S_BOX[box][row * 16 + col]`.
pub const S_BOX: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12,
        11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2, 4, 9,
        1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1,
        10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1, 3, 15,
        4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10, 1,
        13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15,
        10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7, 1, 14,
        2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13,
        14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12, 9, 5,
        15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5,
        12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8, 1, 4,
        10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6,
        11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4, 10,
        8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Looks an S-box up in software (used by the circuit tests and by anything
/// needing a reference model). `input` is a 6-bit value whose bit `k` is
/// the `k`-th wire of the S-box input group.
pub fn sbox_lookup(sbox: usize, input: u8) -> u8 {
    let bit = |k: u8| (input >> k) & 1;
    let row = (bit(0) << 1 | bit(5)) as usize;
    let col = (bit(1) << 3 | bit(2) << 2 | bit(3) << 1 | bit(4)) as usize;
    S_BOX[sbox][row * 16 + col]
}

/// Synthesizes one S-box output bit as a mux tree over the 64-entry truth
/// table; `sel` are the 6 input wires (wire `k` = bit `k` of the lookup
/// index).
fn sbox_bit(b: &mut NetworkBuilder, sel: &[NodeId; 6], sbox: usize, out_bit: u8) -> NodeId {
    let leaves: Vec<NodeId> = (0..64u8)
        .map(|idx| {
            if sbox_lookup(sbox, idx) >> out_bit & 1 == 1 {
                b.one()
            } else {
                b.zero()
            }
        })
        .collect();
    crate::select::mux::tree_into(b, &leaves, sel.as_slice())
}

/// One DES round: inputs `l0..l31`, `r0..r31`, `k0..k47`; outputs
/// `nl0..nl31` (= R) and `nr0..nr31` (= L ⊕ f(R, K)).
pub fn round() -> Network {
    let mut b = NetworkBuilder::new("des_round");
    let l = b.inputs("l", 32);
    let r = b.inputs("r", 32);
    let k = b.inputs("k", 48);
    let (nl, nr) = round_into(&mut b, &l, &r, &k);
    for (i, o) in nl.iter().enumerate() {
        b.output(format!("nl{i}"), *o);
    }
    for (i, o) in nr.iter().enumerate() {
        b.output(format!("nr{i}"), *o);
    }
    b.finish()
}

/// `rounds` chained DES rounds, each with its own 48-bit key input —
/// `64 + 48 × rounds` primary inputs, 64 outputs. Four rounds give a
/// 256-input circuit the size class of the MCNC `des` benchmark.
///
/// # Panics
///
/// Panics if `rounds == 0`.
pub fn rounds(count: usize) -> Network {
    assert!(count > 0, "need at least one round");
    let mut b = NetworkBuilder::new(format!("des{count}"));
    let mut l = b.inputs("l", 32);
    let mut r = b.inputs("r", 32);
    let keys: Vec<Vec<NodeId>> = (0..count)
        .map(|round| b.inputs(&format!("k{round}_"), 48))
        .collect();
    for key in &keys {
        let (nl, nr) = round_into(&mut b, &l, &r, key);
        l = nl;
        r = nr;
    }
    for (i, o) in l.iter().enumerate() {
        b.output(format!("l{i}"), *o);
    }
    for (i, o) in r.iter().enumerate() {
        b.output(format!("r{i}"), *o);
    }
    b.finish()
}

/// Builds one round in an existing builder, returning `(L', R')`.
pub fn round_into(
    b: &mut NetworkBuilder,
    l: &[NodeId],
    r: &[NodeId],
    k: &[NodeId],
) -> (Vec<NodeId>, Vec<NodeId>) {
    assert_eq!(l.len(), 32);
    assert_eq!(r.len(), 32);
    assert_eq!(k.len(), 48);
    // Expansion + key mixing.
    let mixed: Vec<NodeId> = E
        .iter()
        .zip(k)
        .map(|(&src, &key)| b.xor(r[src - 1], key))
        .collect();
    // Eight S-boxes, 6 bits in / 4 bits out each.
    let mut substituted = Vec::with_capacity(32);
    for sbox in 0..8 {
        let group = &mixed[sbox * 6..sbox * 6 + 6];
        let sel = [group[0], group[1], group[2], group[3], group[4], group[5]];
        // S-box output bit 3 is the DES MSB; emit DES bit order (MSB
        // first) to match the software reference.
        for out_bit in (0..4).rev() {
            substituted.push(sbox_bit(b, &sel, sbox, out_bit));
        }
    }
    // Permutation P and XOR with L.
    let nr: Vec<NodeId> = P
        .iter()
        .zip(l)
        .map(|(&src, &left)| b.xor(substituted[src - 1], left))
        .collect();
    (r.to_vec(), nr)
}

/// Software reference of one round, mirroring the circuit's bit
/// conventions exactly (wire `i` = DES bit `i + 1`).
pub fn round_reference(l: &[bool; 32], r: &[bool; 32], k: &[bool; 48]) -> ([bool; 32], [bool; 32]) {
    let mut mixed = [false; 48];
    for (i, &src) in E.iter().enumerate() {
        mixed[i] = r[src - 1] ^ k[i];
    }
    let mut substituted = [false; 32];
    for sbox in 0..8 {
        let mut idx = 0u8;
        for bit in 0..6 {
            if mixed[sbox * 6 + bit] {
                idx |= 1 << bit;
            }
        }
        let value = sbox_lookup(sbox, idx);
        for (pos, out_bit) in (0..4).rev().enumerate() {
            substituted[sbox * 4 + pos] = value >> out_bit & 1 == 1;
        }
    }
    let mut nr = [false; 32];
    for (i, &src) in P.iter().enumerate() {
        nr[i] = substituted[src - 1] ^ l[i];
    }
    (*r, nr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sbox_tables_have_valid_entries() {
        for sbox in &S_BOX {
            assert!(sbox.iter().all(|&v| v < 16));
            // Every row of a DES S-box is a permutation of 0..16.
            for row in 0..4 {
                let mut seen = [false; 16];
                for col in 0..16 {
                    seen[sbox[row * 16 + col] as usize] = true;
                }
                assert!(seen.iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn round_circuit_matches_reference() {
        let n = round();
        let mut rng = SmallRng::seed_from_u64(2001);
        for _ in 0..20 {
            let l: [bool; 32] = std::array::from_fn(|_| rng.gen());
            let r: [bool; 32] = std::array::from_fn(|_| rng.gen());
            let k: [bool; 48] = std::array::from_fn(|_| rng.gen());
            let mut v = Vec::new();
            v.extend_from_slice(&l);
            v.extend_from_slice(&r);
            v.extend_from_slice(&k);
            let out = n.simulate(&v).unwrap();
            let (nl, nr) = round_reference(&l, &r, &k);
            assert_eq!(&out[..32], &nl[..]);
            assert_eq!(&out[32..], &nr[..]);
        }
    }

    #[test]
    fn four_rounds_match_iterated_reference() {
        let n = rounds(2);
        let mut rng = SmallRng::seed_from_u64(7);
        let l: [bool; 32] = std::array::from_fn(|_| rng.gen());
        let r: [bool; 32] = std::array::from_fn(|_| rng.gen());
        let k1: [bool; 48] = std::array::from_fn(|_| rng.gen());
        let k2: [bool; 48] = std::array::from_fn(|_| rng.gen());
        let mut v = Vec::new();
        v.extend_from_slice(&l);
        v.extend_from_slice(&r);
        v.extend_from_slice(&k1);
        v.extend_from_slice(&k2);
        let out = n.simulate(&v).unwrap();
        let (l1, r1) = round_reference(&l, &r, &k1);
        let (l2, r2) = round_reference(&l1, &r1, &k2);
        assert_eq!(&out[..32], &l2[..]);
        assert_eq!(&out[32..], &r2[..]);
    }

    #[test]
    fn four_round_version_has_des_scale_inputs() {
        let n = rounds(4);
        assert_eq!(n.inputs().len(), 256);
        assert_eq!(n.outputs().len(), 64);
        assert!(n.stats().binary_gates > 1500, "{}", n.stats());
    }
}
