//! Totally symmetric functions — the family of `9symml` (output high iff
//! the number of high inputs lies in a given range).

use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

use crate::arith::adder;

/// An n-input symmetric threshold-band function: output is high iff the
/// population count of the inputs is within `lo..=hi`. `9symml` is
/// `count_range(9, 3, 6)`.
///
/// Built as an adder-tree popcount followed by two magnitude comparisons.
///
/// # Panics
///
/// Panics if `width == 0` or `lo > hi`.
///
/// # Example
///
/// ```rust
/// let n = soi_circuits::misc::symmetric::count_range(9, 3, 6);
/// let four_ones = [true, true, true, true, false, false, false, false, false];
/// assert_eq!(n.simulate(&four_ones).unwrap(), vec![true]);
/// ```
pub fn count_range(width: usize, lo: u32, hi: u32) -> Network {
    assert!(width > 0, "width must be positive");
    assert!(lo <= hi, "empty range");
    let mut b = NetworkBuilder::new(format!("sym{width}_{lo}_{hi}"));
    let bits = b.inputs("x", width);
    let count = popcount(&mut b, &bits);
    let in_range = range_check(&mut b, &count, lo, hi);
    b.output("f", in_range);
    b.finish()
}

/// Builds a popcount over the given signals (LSB-first result) using a
/// tree of ripple adders.
pub fn popcount(b: &mut NetworkBuilder, bits: &[NodeId]) -> Vec<NodeId> {
    let mut groups: Vec<Vec<NodeId>> = bits.iter().map(|&x| vec![x]).collect();
    while groups.len() > 1 {
        let mut next = Vec::with_capacity(groups.len().div_ceil(2));
        let mut iter = groups.into_iter();
        while let Some(mut a) = iter.next() {
            match iter.next() {
                Some(mut bb) => {
                    // Pad to equal width and add.
                    while a.len() < bb.len() {
                        a.push(b.zero());
                    }
                    while bb.len() < a.len() {
                        bb.push(b.zero());
                    }
                    let zero = b.zero();
                    let (mut sum, carry) = adder::ripple_into(b, &a, &bb, zero);
                    sum.push(carry);
                    next.push(sum);
                }
                None => next.push(a),
            }
        }
        groups = next;
    }
    groups.pop().unwrap_or_default()
}

/// `lo <= value <= hi` over an unsigned LSB-first bit vector, with the
/// bounds as constants baked into the logic.
fn range_check(b: &mut NetworkBuilder, value: &[NodeId], lo: u32, hi: u32) -> NodeId {
    let ge_lo = ge_const(b, value, lo);
    let gt_hi = ge_const(b, value, hi + 1);
    let le_hi = b.inv(gt_hi);
    b.and(ge_lo, le_hi)
}

/// `value >= bound` for a constant bound.
fn ge_const(b: &mut NetworkBuilder, value: &[NodeId], bound: u32) -> NodeId {
    if bound == 0 {
        return b.one();
    }
    if bound >> value.len() != 0 {
        return b.zero();
    }
    // Fold LSB→MSB so the most significant bit binds outermost:
    // ge = bound_bit ? (v & ge_lower) : (v | ge_lower).
    let mut acc = b.one(); // all-equal means >=.
    for (i, &v) in value.iter().enumerate() {
        let bound_bit = bound >> i & 1 == 1;
        acc = if bound_bit {
            // Need v high to stay >=; if v high, defer to lower bits.
            b.and(v, acc)
        } else {
            // v high makes us strictly greater; otherwise defer.
            b.or(v, acc)
        };
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_sym_exhaustive() {
        let n = count_range(9, 3, 6);
        for bits in 0..512u32 {
            let v: Vec<bool> = (0..9).map(|i| bits >> i & 1 == 1).collect();
            let ones = bits.count_ones();
            let expect = (3..=6).contains(&ones);
            assert_eq!(n.simulate(&v).unwrap(), vec![expect], "{bits:09b}");
        }
    }

    #[test]
    fn exact_threshold() {
        let n = count_range(5, 2, 2);
        for bits in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                n.simulate(&v).unwrap(),
                vec![bits.count_ones() == 2],
                "{bits:05b}"
            );
        }
    }

    #[test]
    fn degenerate_all_range() {
        let n = count_range(4, 0, 4);
        for bits in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(n.simulate(&v).unwrap(), vec![true]);
        }
    }

    #[test]
    fn popcount_widths() {
        let mut b = NetworkBuilder::new("pc");
        let bits = b.inputs("x", 9);
        let count = popcount(&mut b, &bits);
        // The adder tree may carry one redundant top bit beyond the
        // minimal ceil(log2(n+1)) = 4.
        assert!(count.len() == 4 || count.len() == 5, "{}", count.len());
    }
}
