//! Loadable counter increment logic — the family of the MCNC `count`
//! benchmark.

use soi_netlist::{builder::NetworkBuilder, Network};

/// The combinational next-state logic of an n-bit loadable up-counter:
/// `next = load ? din : (en ? count + 1 : count)`, plus a terminal-count
/// output. Inputs `c0..`, `d0..`, `load`, `en`; outputs `n0..`, `tc`.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Example
///
/// ```rust
/// let n = soi_circuits::misc::counter::increment(3);
/// // count = 3, enabled, not loading → 4.
/// let v = [true, true, false,  false, false, false,  false, true];
/// let out = n.simulate(&v).unwrap();
/// assert_eq!(&out[..3], &[false, false, true]);
/// ```
pub fn increment(width: usize) -> Network {
    assert!(width > 0, "counter width must be positive");
    let mut b = NetworkBuilder::new(format!("count{width}"));
    let count = b.inputs("c", width);
    let din = b.inputs("d", width);
    let load = b.input("load");
    let en = b.input("en");

    // Half-adder ripple: carry chain of ANDs.
    let mut carry = en;
    let mut next = Vec::with_capacity(width);
    for &c in &count {
        let sum = b.xor(c, carry);
        carry = b.and(c, carry);
        next.push(sum);
    }
    let tc = carry;

    for (i, (&inc, &d)) in next.iter().zip(&din).enumerate() {
        let o = b.mux(load, inc, d);
        b.output(format!("n{i}"), o);
    }
    b.output("tc", tc);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: &Network, count: u32, din: u32, load: bool, en: bool, width: usize) -> (u32, bool) {
        let mut v = Vec::new();
        for i in 0..width {
            v.push(count >> i & 1 == 1);
        }
        for i in 0..width {
            v.push(din >> i & 1 == 1);
        }
        v.push(load);
        v.push(en);
        let out = n.simulate(&v).unwrap();
        let next: u32 = out[..width]
            .iter()
            .enumerate()
            .map(|(i, &b)| u32::from(b) << i)
            .sum();
        (next, out[width])
    }

    #[test]
    fn counts_up() {
        let n = increment(4);
        for c in 0..15u32 {
            assert_eq!(run(&n, c, 0, false, true, 4), (c + 1, false));
        }
        // Wrap with terminal count.
        assert_eq!(run(&n, 15, 0, false, true, 4), (0, true));
    }

    #[test]
    fn hold_when_disabled() {
        let n = increment(4);
        assert_eq!(run(&n, 9, 0, false, false, 4), (9, false));
    }

    #[test]
    fn load_overrides() {
        let n = increment(4);
        assert_eq!(run(&n, 9, 5, true, true, 4), (5, false));
    }
}
