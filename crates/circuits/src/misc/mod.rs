//! Miscellaneous generators: symmetric functions, CORDIC stages, counters,
//! and seeded random control logic.

pub mod cordic;
pub mod counter;
pub mod random;
pub mod symmetric;
