//! CORDIC rotation stages — the family of the MCNC `cordic` benchmark.

use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

use crate::arith::adder;

/// `stages` CORDIC vectoring iterations on `width`-bit unsigned x/y with a
/// per-stage direction input: stage `k` computes
///
/// ```text
/// x' = d ? x + (y >> k) : x - (y >> k)
/// y' = d ? y - (x >> k) : y + (x >> k)
/// ```
///
/// Shifts are free wiring; each stage costs two adder/subtractor pairs and
/// a mux row. Outputs `x0..`, `y0..`.
///
/// # Panics
///
/// Panics if `width == 0` or `stages == 0`.
///
/// # Example
///
/// ```rust
/// let n = soi_circuits::misc::cordic::stages(8, 1);
/// assert_eq!(n.inputs().len(), 8 + 8 + 1);
/// assert_eq!(n.outputs().len(), 16);
/// ```
pub fn stages(width: usize, stages: usize) -> Network {
    assert!(width > 0 && stages > 0, "width and stages must be positive");
    let mut b = NetworkBuilder::new(format!("cordic{width}x{stages}"));
    let mut x = b.inputs("x", width);
    let mut y = b.inputs("y", width);
    let dirs = b.inputs("d", stages);

    for (k, &d) in dirs.iter().enumerate() {
        let ys = shift_right(&mut b, &y, k);
        let xs = shift_right(&mut b, &x, k);
        let zero = b.zero();
        let (x_add, _) = adder::ripple_into(&mut b, &x, &ys, zero);
        let (x_sub, _) = adder::subtract_into(&mut b, &x, &ys);
        let zero = b.zero();
        let (y_add, _) = adder::ripple_into(&mut b, &y, &xs, zero);
        let (y_sub, _) = adder::subtract_into(&mut b, &y, &xs);
        x = x_add
            .iter()
            .zip(&x_sub)
            .map(|(&add, &sub)| b.mux(d, sub, add))
            .collect();
        y = y_add
            .iter()
            .zip(&y_sub)
            .map(|(&add, &sub)| b.mux(d, add, sub))
            .collect();
    }
    for (i, o) in x.iter().enumerate() {
        b.output(format!("x{i}"), *o);
    }
    for (i, o) in y.iter().enumerate() {
        b.output(format!("y{i}"), *o);
    }
    b.finish()
}

fn shift_right(b: &mut NetworkBuilder, bits: &[NodeId], amount: usize) -> Vec<NodeId> {
    (0..bits.len())
        .map(|i| bits.get(i + amount).copied().unwrap_or_else(|| b.zero()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: &Network, x: u32, y: u32, dirs: u32, width: usize, stages: usize) -> (u32, u32) {
        let mut v = Vec::new();
        for i in 0..width {
            v.push(x >> i & 1 == 1);
        }
        for i in 0..width {
            v.push(y >> i & 1 == 1);
        }
        for i in 0..stages {
            v.push(dirs >> i & 1 == 1);
        }
        let out = n.simulate(&v).unwrap();
        let gx: u32 = out[..width]
            .iter()
            .enumerate()
            .map(|(i, &b)| u32::from(b) << i)
            .sum();
        let gy: u32 = out[width..]
            .iter()
            .enumerate()
            .map(|(i, &b)| u32::from(b) << i)
            .sum();
        (gx, gy)
    }

    fn reference(mut x: u32, mut y: u32, dirs: u32, width: usize, stages: usize) -> (u32, u32) {
        let mask = (1u32 << width) - 1;
        for k in 0..stages {
            let (xs, ys) = (x >> k, y >> k);
            if dirs >> k & 1 == 1 {
                let nx = x.wrapping_add(ys) & mask;
                let ny = y.wrapping_sub(xs) & mask;
                x = nx;
                y = ny;
            } else {
                let nx = x.wrapping_sub(ys) & mask;
                let ny = y.wrapping_add(xs) & mask;
                x = nx;
                y = ny;
            }
        }
        (x, y)
    }

    #[test]
    fn matches_reference_model() {
        let n = stages(6, 3);
        for (x, y, d) in [
            (5u32, 9u32, 0b101u32),
            (63, 1, 0b010),
            (17, 17, 0b111),
            (0, 0, 0),
        ] {
            let got = run(&n, x, y, d, 6, 3);
            let want = reference(x, y, d, 6, 3);
            assert_eq!(got, want, "x={x} y={y} d={d:03b}");
        }
    }

    #[test]
    fn single_stage_identity_shift() {
        // Stage 0 shifts by 0: d=1 gives x+y, y-x.
        let n = stages(4, 1);
        let (gx, gy) = run(&n, 3, 2, 1, 4, 1);
        assert_eq!(gx, 5);
        assert_eq!(gy, (2u32.wrapping_sub(3)) & 0xF);
    }
}
