//! Seeded random control-logic generator.
//!
//! Several MCNC benchmarks in the paper's tables (`frg1`, `b9`, `apex6`,
//! `apex7`, `k2`, `x1`, `i6`, `c8`, `t481`, ...) are unstructured control
//! logic whose exact netlists are not distributed here. This generator
//! produces deterministic random networks of a requested size and I/O
//! profile that exercise the mappers the same way: mixed AND/OR/NAND/NOR
//! with a dash of XOR, fanout from a locality window, and everything
//! reachable from the outputs by construction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

/// Specification of a random control-logic network.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomSpec {
    /// Model name.
    pub name: String,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Approximate two-input gate count (the collector trees that keep all
    /// logic live add a few percent).
    pub gates: usize,
    /// Fraction of XOR/XNOR gates (binate logic that the unate conversion
    /// must duplicate).
    pub xor_ratio: f64,
    /// Fraction of inverting gates (NAND/NOR) among the non-XOR gates.
    pub invert_ratio: f64,
    /// Operand locality window: operands are drawn from the most recent
    /// `locality` signals with high probability, which controls depth.
    pub locality: usize,
    /// Probability that the second operand reuses an *internal* signal
    /// (raising internal fanout and forcing gate boundaries in the mapper)
    /// instead of tapping a primary input. Optimized netlists are mostly
    /// trees over high-fanout inputs, so this defaults low.
    pub reuse_ratio: f64,
    /// Probability of AND/OR *alternation*: when an operand was produced by
    /// an OR-flavoured gate, pick an AND-flavoured one (and vice versa).
    /// Factored multi-level logic alternates heavily, which is what creates
    /// series stacks of parallel sections — the PBE-susceptible structures
    /// of the paper's §III-B.
    pub alternation: f64,
    /// Target depth in 2-input gate levels (0 = automatic). Operand picks
    /// that would exceed it are redirected to shallower signals, keeping
    /// the network in the depth class of the original benchmark (the
    /// paper's Table IV `L` column).
    pub depth_target: u32,
    /// RNG seed.
    pub seed: u64,
}

impl RandomSpec {
    /// A reasonable profile for control logic of a given size.
    pub fn control(
        name: &str,
        inputs: usize,
        outputs: usize,
        gates: usize,
        seed: u64,
    ) -> RandomSpec {
        RandomSpec {
            name: name.to_string(),
            inputs,
            outputs,
            gates,
            xor_ratio: 0.06,
            invert_ratio: 0.4,
            locality: (gates / 8).clamp(8, 128),
            reuse_ratio: 0.25,
            alternation: 0.75,
            depth_target: 0,
            seed,
        }
    }

    /// Sets the target gate depth.
    #[must_use]
    pub fn with_depth(mut self, depth_target: u32) -> RandomSpec {
        self.depth_target = depth_target;
        self
    }

    /// A wide, shallow two-level-flavoured profile (PLA-style benchmarks
    /// like `i6`/`k2`).
    pub fn two_level(
        name: &str,
        inputs: usize,
        outputs: usize,
        gates: usize,
        seed: u64,
    ) -> RandomSpec {
        RandomSpec {
            name: name.to_string(),
            inputs,
            outputs,
            gates,
            xor_ratio: 0.0,
            invert_ratio: 0.25,
            locality: gates.max(8),
            reuse_ratio: 0.3,
            alternation: 0.9,
            depth_target: 0,
            seed,
        }
    }
}

/// Generates the network described by `spec`. Deterministic in the spec.
///
/// Every gate is reachable from some output: leftover unconsumed signals
/// are folded into the output collector trees.
///
/// # Panics
///
/// Panics if `inputs == 0`, `outputs == 0` or `gates == 0`.
///
/// # Example
///
/// ```rust
/// use soi_circuits::misc::random::{generate, RandomSpec};
///
/// let spec = RandomSpec::control("demo", 16, 4, 120, 42);
/// let a = generate(&spec);
/// let b = generate(&spec);
/// assert_eq!(a, b); // fully deterministic
/// assert_eq!(a.outputs().len(), 4);
/// ```
pub fn generate(spec: &RandomSpec) -> Network {
    assert!(spec.inputs > 0, "need at least one input");
    assert!(spec.outputs > 0, "need at least one output");
    assert!(spec.gates > 0, "need at least one gate");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut b = NetworkBuilder::new(spec.name.clone());
    let inputs = b.inputs("x", spec.inputs);

    let mut pool: Vec<NodeId> = inputs;
    let mut consumed: Vec<bool> = vec![false; pool.len()];
    let mut depths: Vec<u32> = vec![0; pool.len()];
    let mut next_unconsumed = 0usize;
    let depth_target = if spec.depth_target > 0 {
        spec.depth_target
    } else {
        // Automatic: a few times the balanced-tree depth.
        2 * (usize::BITS - spec.gates.leading_zeros()) + 8
    };

    // Count binary gates incrementally: `stats()` rescans the whole network
    // (O(n) per call), which makes the loop quadratic at the 100k+ gate
    // sizes the corpus generators ask for. The builder strashes and
    // constant-folds, so a gate call may add zero nodes — only nodes
    // appended since the last iteration are scanned.
    let mut binary_gates = b.network().stats().binary_gates;
    let mut scanned = b.network().len();
    while binary_gates < spec.gates {
        // Advance the sweep pointer over consumed signals and over signals
        // already at the depth ceiling (those wait for the collector).
        while next_unconsumed < pool.len()
            && (consumed[next_unconsumed] || depths[next_unconsumed] + 1 > depth_target)
        {
            next_unconsumed += 1;
        }
        // First operand: sweep unconsumed signals so everything feeds
        // forward and internal fanout stays near one. Second operand:
        // often another fresh internal signal (merging two complex
        // subtrees, as optimized multi-level netlists do), else a primary
        // input, else a reused signal from the locality window.
        let mut a_idx = if next_unconsumed < pool.len() && rng.gen_bool(0.8) {
            next_unconsumed
        } else {
            rng.gen_range(0..pool.len())
        };
        let roll: f64 = rng.gen();
        let second_sweep = next_unconsumed + 1;
        let mut b_idx = if roll < 0.55
            && second_sweep < pool.len()
            && !consumed[second_sweep]
            && depths[second_sweep] < depth_target
        {
            second_sweep
        } else if roll < 1.0 - spec.reuse_ratio {
            rng.gen_range(0..spec.inputs)
        } else {
            let lo = pool.len().saturating_sub(spec.locality);
            rng.gen_range(lo..pool.len())
        };
        // Depth ceiling: redirect picks that would overshoot toward
        // shallower signals (primary inputs as the last resort).
        let mut tries = 0;
        while depths[a_idx].max(depths[b_idx]) + 1 > depth_target && tries < 8 {
            if depths[a_idx] >= depths[b_idx] {
                a_idx = rng.gen_range(0..pool.len());
            } else {
                b_idx = rng.gen_range(0..pool.len());
            }
            tries += 1;
        }
        if depths[a_idx].max(depths[b_idx]) + 1 > depth_target {
            a_idx = rng.gen_range(0..spec.inputs);
            b_idx = rng.gen_range(0..spec.inputs);
        }
        let (x, y) = (pool[a_idx], pool[b_idx]);
        // Flavour of the operands' producing gates, for alternation: an
        // AND after ORs (and vice versa) builds the stacked
        // parallel-section structures factored logic is full of.
        let flavour = |id: NodeId| match b.network().node(id) {
            soi_netlist::Node::Binary { op, .. } => match op {
                soi_netlist::BinOp::And | soi_netlist::BinOp::Nand => Some(true),
                soi_netlist::BinOp::Or | soi_netlist::BinOp::Nor => Some(false),
                _ => None,
            },
            _ => None,
        };
        let want_and = match (flavour(x), flavour(y)) {
            (Some(fx), _) if rng.gen_bool(spec.alternation) => !fx,
            (_, Some(fy)) if rng.gen_bool(spec.alternation) => !fy,
            _ => rng.gen_bool(0.5),
        };
        let gate = if rng.gen_bool(spec.xor_ratio) {
            if rng.gen_bool(0.5) {
                b.xor(x, y)
            } else {
                b.xnor(x, y)
            }
        } else if rng.gen_bool(spec.invert_ratio) {
            if want_and {
                b.nand(x, y)
            } else {
                b.nor(x, y)
            }
        } else if want_and {
            b.and(x, y)
        } else {
            b.or(x, y)
        };
        consumed[a_idx] = true;
        consumed[b_idx] = true;
        pool.push(gate);
        consumed.push(false);
        depths.push(depths[a_idx].max(depths[b_idx]) + 1);
        let net = b.network();
        while scanned < net.len() {
            if matches!(
                net.node(NodeId::from_index(scanned)),
                soi_netlist::Node::Binary { .. }
            ) {
                binary_gates += 1;
            }
            scanned += 1;
        }
    }

    // Collector: fold every unconsumed signal into the outputs, round-robin.
    let unconsumed: Vec<NodeId> = pool
        .iter()
        .zip(&consumed)
        .filter(|(_, &c)| !c)
        .map(|(&n, _)| n)
        .collect();
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); spec.outputs];
    for (i, sig) in unconsumed.into_iter().enumerate() {
        buckets[i % spec.outputs].push(sig);
    }
    for (k, bucket) in buckets.iter_mut().enumerate() {
        while bucket.len() < 2 {
            bucket.push(pool[rng.gen_range(0..pool.len())]);
        }
        // Fold the bucket as a balanced tree of mixed OR/AND, skipping any
        // combination that would collapse to a constant (a signal can be
        // the complement of its partner); outputs must stay non-constant
        // for the domino mapper, and balanced folding keeps the depth
        // ceiling intact.
        let one = b.one();
        let zero = b.zero();
        let mut layer: Vec<NodeId> = bucket.clone();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 1 || pair[0] == pair[1] {
                    next.push(pair[0]);
                    continue;
                }
                let alt = if rng.gen_bool(0.7) {
                    b.or(pair[0], pair[1])
                } else {
                    b.and(pair[0], pair[1])
                };
                if alt != one && alt != zero {
                    next.push(alt);
                } else {
                    // Complement pair: keep one side, orphan the other.
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        let mut acc = layer[0];
        if acc == one || acc == zero {
            acc = pool[spec.inputs - 1];
        }
        b.output(format!("y{k}"), acc);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_netlist::topo;

    #[test]
    fn deterministic() {
        let spec = RandomSpec::control("d", 10, 3, 80, 7);
        assert_eq!(generate(&spec), generate(&spec));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&RandomSpec::control("d", 10, 3, 80, 7));
        let b = generate(&RandomSpec::control("d", 10, 3, 80, 8));
        assert_ne!(a, b);
    }

    #[test]
    fn almost_everything_is_live_and_outputs_are_not_constant() {
        for seed in [3u64, 4, 5] {
            let n = generate(&RandomSpec::control("d", 12, 4, 150, seed));
            let live = topo::live_nodes(&n).len();
            // The complement-skipping collector may orphan the odd node;
            // the tolerable count scales with the network, not a fixed RNG
            // stream.
            assert!(
                n.len() - live <= n.len() / 20,
                "{} dead nodes of {}",
                n.len() - live,
                n.len()
            );
            for port in n.outputs() {
                assert!(
                    !matches!(n.node(port.driver), soi_netlist::Node::Const { .. }),
                    "constant output {}",
                    port.name
                );
            }
        }
    }

    #[test]
    fn gate_count_close_to_target() {
        for target in [50usize, 200, 800] {
            let n = generate(&RandomSpec::control("d", 16, 5, target, 11));
            let gates = n.stats().binary_gates;
            assert!(
                gates >= target && gates <= target + target / 3 + 16,
                "target {target}, got {gates}"
            );
        }
    }

    #[test]
    fn two_level_profile_is_shallower() {
        let deep = generate(&RandomSpec::control("d", 16, 4, 300, 5));
        let flat = generate(&RandomSpec::two_level("f", 64, 16, 300, 5));
        assert!(flat.stats().gate_depth <= deep.stats().gate_depth);
    }

    #[test]
    fn io_profile_respected() {
        let n = generate(&RandomSpec::control("d", 23, 7, 60, 1));
        assert_eq!(n.inputs().len(), 23);
        assert_eq!(n.outputs().len(), 7);
        n.validate().unwrap();
    }
}
