//! The named benchmark registry.
//!
//! Maps every circuit name appearing in the paper's Tables I–IV to a
//! generated stand-in (see `DESIGN.md` §3 for the substitution rationale):
//! functionally faithful where the benchmark's function is public knowledge
//! (multiplexers, adders, ALUs, SEC decoders, symmetric functions, DES,
//! CORDIC, rotators, counters, interrupt priority logic), seeded random
//! control logic otherwise. Absolute sizes are of the same order as the
//! originals; the experiments report relative improvements, which is what
//! the paper's claims are about.

use soi_netlist::Network;

use crate::misc::random::{generate, RandomSpec};
use crate::{arith, code, misc, select};

/// Circuits of Table I (`Domino_Map` vs `RS_Map`), in the paper's order.
pub const TABLE1: &[&str] = &[
    "cm150", "mux", "z4ml", "cordic", "frg1", "b9", "apex7", "c432", "c880", "t481", "c1355",
    "apex6", "c1908", "k2", "c2670", "c5315", "c7552", "des",
];

/// Circuits of Table II (`Domino_Map` vs `SOI_Domino_Map`).
pub const TABLE2: &[&str] = &[
    "cm150", "mux", "z4ml", "cordic", "frg1", "f51m", "count", "b9", "9symml", "apex7", "c432",
    "c880", "t481", "c1355", "apex6", "c1908", "k2", "c2670", "c5315", "c7552", "des",
];

/// Circuits of Table III (clock-weight sweep).
pub const TABLE3: &[&str] = &[
    "cm150", "mux", "z4ml", "cordic", "frg1", "count", "b9", "c8", "f51m", "9symml", "apex7", "x1",
    "c432", "i6", "c1908", "t481", "c499", "c1355", "dalu", "k2", "apex6", "rot", "c2670", "c5315",
    "c3540", "des", "c7552",
];

/// Circuits of Table IV (depth objective).
pub const TABLE4: &[&str] = &[
    "z4ml", "cm150", "mux", "cordic", "f51m", "c8", "frg1", "b9", "count", "c432", "apex7",
    "9symml", "c1908", "x1", "i6", "c1355", "t481", "rot", "apex6", "k2", "c2670", "dalu", "c3540",
    "c5315", "c7552", "des",
];

/// Every registered benchmark name, sorted.
pub fn names() -> Vec<&'static str> {
    let mut all: Vec<&str> = TABLE1
        .iter()
        .chain(TABLE2)
        .chain(TABLE3)
        .chain(TABLE4)
        .copied()
        .collect();
    all.sort_unstable();
    all.dedup();
    all
}

/// Generates the stand-in network for a benchmark name, or `None` for an
/// unknown name.
///
/// # Example
///
/// ```rust
/// let n = soi_circuits::registry::benchmark("9symml").expect("registered");
/// assert_eq!(n.inputs().len(), 9);
/// assert_eq!(n.outputs().len(), 1);
/// ```
pub fn benchmark(name: &str) -> Option<Network> {
    // Functional stand-ins are run through a light "make it look
    // synthesized" pass (random reassociation + some distributive-law
    // rewrites): textbook-regular trees have almost no *forced* discharge
    // points, while the SIS-optimized originals do — see EXPERIMENTS.md
    // §5.2. Deterministic in the benchmark name.
    let roughen = |n: Network, seed: u64| -> Network {
        soi_netlist::restructure::synthesize_like(&n, 0.25, seed)
    };
    let mut n = match name {
        // 16-to-1 multiplexers, as a tree and flat (cm150a / mux).
        "cm150" => roughen(select::mux::tree(4), 0xC150),
        "mux" => roughen(select::mux::flat16(), 0x30F),
        // Small arithmetic.
        "z4ml" => roughen(arith::adder::ripple(4), 0x24),
        "f51m" => roughen(arith::multiplier::array(3), 0x51),
        "cordic" => roughen(misc::cordic::stages(4, 1), 0xC0DE),
        "count" => roughen(misc::counter::increment(14), 0xC0),
        "9symml" => roughen(misc::symmetric::count_range(9, 3, 6), 0x95),
        // ALUs.
        "c880" => roughen(arith::alu::alu(8), 0x880),
        "dalu" => roughen(arith::alu::alu(9), 0xDA),
        // Interrupt priority controller (c432's function).
        "c432" => roughen(select::priority::interrupt_controller(27, 3), 0x432),
        // Error correction (c499 and c1355 implement the same function).
        "c499" | "c1355" => roughen(code::hamming::sec_decoder(32), 0x499),
        "c1908" => roughen(code::hamming::sec_decoder(24), 0x1908),
        // Barrel rotator.
        "rot" => roughen(select::rotate::barrel(32, 5), 0x707),
        // DES (two rounds land in the size class of the MCNC des once the
        // unate conversion has duplicated the XOR-heavy logic).
        "des" => code::des::rounds(2),
        // Unstructured control logic: seeded random stand-ins, with I/O
        // profiles matching the originals.
        // Depth targets are the paper's Table IV `L` column for the
        // original 2-input networks.
        "frg1" => generate(&RandomSpec::control("frg1", 28, 3, 90, 0xF861).with_depth(14)),
        "b9" => generate(&RandomSpec::control("b9", 41, 21, 90, 0xB9).with_depth(10)),
        "c8" => generate(&RandomSpec::control("c8", 28, 18, 85, 0xC8).with_depth(11)),
        "apex7" => generate(&RandomSpec::control("apex7", 49, 37, 160, 0xA7).with_depth(17)),
        "x1" => generate(&RandomSpec::control("x1", 51, 35, 210, 0x11).with_depth(12)),
        "t481" => generate(&RandomSpec::control("t481", 16, 1, 330, 0x481).with_depth(23)),
        "i6" => generate(&RandomSpec::two_level("i6", 138, 67, 290, 0x16).with_depth(6)),
        "k2" => generate(&RandomSpec::two_level("k2", 45, 45, 620, 0x12).with_depth(21)),
        "apex6" => generate(&RandomSpec::control("apex6", 135, 99, 480, 0xA6).with_depth(21)),
        "c2670" => generate(&RandomSpec::control("c2670", 157, 64, 620, 0x2670).with_depth(31)),
        "c3540" => generate(&RandomSpec::control("c3540", 50, 22, 1600, 0x3540).with_depth(42)),
        "c5315" => generate(&RandomSpec::control("c5315", 178, 123, 1300, 0x5315).with_depth(36)),
        "c7552" => generate(&RandomSpec::control("c7552", 207, 108, 1900, 0x7552).with_depth(42)),
        _ => return None,
    };
    n.set_name(name);
    Some(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_name_resolves() {
        for name in names() {
            let n = benchmark(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(n.stats().binary_gates > 0, "{name} has no gates");
            n.validate().unwrap();
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(benchmark("s38417").is_none());
    }

    #[test]
    fn benchmarks_are_deterministic() {
        assert_eq!(benchmark("k2"), benchmark("k2"));
        assert_eq!(benchmark("des"), benchmark("des"));
    }

    #[test]
    fn c499_equals_c1355_functionally() {
        assert_eq!(
            benchmark("c499").map(|n| n.stats()),
            benchmark("c1355").map(|n| n.stats())
        );
    }

    #[test]
    fn sizes_are_ordered_sensibly() {
        // The large ISCAS stand-ins should dwarf the small MCNC ones.
        let small = benchmark("cm150").unwrap().stats().binary_gates;
        let large = benchmark("c7552").unwrap().stats().binary_gates;
        assert!(large > 10 * small, "{small} vs {large}");
    }

    #[test]
    fn table_lists_match_paper_lengths() {
        assert_eq!(TABLE1.len(), 18);
        assert_eq!(TABLE2.len(), 21);
        assert_eq!(TABLE3.len(), 27);
        assert_eq!(TABLE4.len(), 26);
    }
}
