//! A multi-function ALU slice array, standing in for the ISCAS ALU/control
//! benchmarks (`c880`, `c3540`, `dalu`).

use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

use super::adder;

/// An n-bit ALU with a 3-bit opcode.
///
/// | op | function        |
/// |----|-----------------|
/// | 0  | `a + b`         |
/// | 1  | `a - b`         |
/// | 2  | `a & b`         |
/// | 3  | `a \| b`        |
/// | 4  | `a ^ b`         |
/// | 5  | `!(a & b)`      |
/// | 6  | `a` (pass)      |
/// | 7  | `b` (pass)      |
///
/// Outputs: `r0..r(n-1)`, `cout` (valid for op 0/1), `zero` (NOR of all
/// result bits) and `parity` (XOR of all result bits).
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn alu(width: usize) -> Network {
    assert!(width > 0, "alu width must be positive");
    let mut b = NetworkBuilder::new(format!("alu{width}"));
    let a_bits = b.inputs("a", width);
    let b_bits = b.inputs("b", width);
    let op = b.inputs("op", 3);

    let zero = b.zero();
    let (add, add_c) = adder::ripple_into(&mut b, &a_bits, &b_bits, zero);
    let (sub, sub_c) = adder::subtract_into(&mut b, &a_bits, &b_bits);
    let ands: Vec<NodeId> = a_bits
        .iter()
        .zip(&b_bits)
        .map(|(&x, &y)| b.and(x, y))
        .collect();
    let ors: Vec<NodeId> = a_bits
        .iter()
        .zip(&b_bits)
        .map(|(&x, &y)| b.or(x, y))
        .collect();
    let xors: Vec<NodeId> = a_bits
        .iter()
        .zip(&b_bits)
        .map(|(&x, &y)| b.xor(x, y))
        .collect();
    let nands: Vec<NodeId> = ands.iter().map(|&x| b.inv(x)).collect();

    let mut results = Vec::with_capacity(width);
    for i in 0..width {
        let choices = [
            add[i], sub[i], ands[i], ors[i], xors[i], nands[i], a_bits[i], b_bits[i],
        ];
        results.push(mux8(&mut b, &op, &choices));
    }
    let cout = {
        let zero = b.zero();
        let choices = [add_c, sub_c, zero, zero, zero, zero, zero, zero];
        mux8(&mut b, &op, &choices)
    };

    let any = b.or_all(&results);
    let is_zero = b.inv(any);
    let parity = b.xor_all(&results);

    for (i, r) in results.iter().enumerate() {
        b.output(format!("r{i}"), *r);
    }
    b.output("cout", cout);
    b.output("zero", is_zero);
    b.output("parity", parity);
    b.finish()
}

fn mux8(b: &mut NetworkBuilder, sel: &[NodeId], choices: &[NodeId; 8]) -> NodeId {
    let lo0 = b.mux(sel[0], choices[0], choices[1]);
    let lo1 = b.mux(sel[0], choices[2], choices[3]);
    let lo2 = b.mux(sel[0], choices[4], choices[5]);
    let lo3 = b.mux(sel[0], choices[6], choices[7]);
    let m0 = b.mux(sel[1], lo0, lo1);
    let m1 = b.mux(sel[1], lo2, lo3);
    b.mux(sel[2], m0, m1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: &Network, a: u32, bb: u32, op: u32, width: usize) -> (u32, bool, bool, bool) {
        let mut v = Vec::new();
        for i in 0..width {
            v.push(a >> i & 1 == 1);
        }
        for i in 0..width {
            v.push(bb >> i & 1 == 1);
        }
        for i in 0..3 {
            v.push(op >> i & 1 == 1);
        }
        let out = n.simulate(&v).unwrap();
        let r: u32 = out[..width]
            .iter()
            .enumerate()
            .map(|(i, &b)| u32::from(b) << i)
            .sum();
        (r, out[width], out[width + 1], out[width + 2])
    }

    #[test]
    fn all_ops_width_4() {
        let n = alu(4);
        let mask = 0xF;
        for (a, bb) in [(3u32, 5u32), (0, 0), (15, 1), (9, 9)] {
            let expect = [
                (a + bb) & mask,
                a.wrapping_sub(bb) & mask,
                a & bb,
                a | bb,
                (a ^ bb) & mask,
                !(a & bb) & mask,
                a,
                bb,
            ];
            for (op, want) in expect.iter().enumerate() {
                let (r, _, z, p) = run(&n, a, bb, op as u32, 4);
                assert_eq!(r, *want, "op {op} on {a},{bb}");
                assert_eq!(z, r == 0);
                assert_eq!(p, r.count_ones() % 2 == 1);
            }
        }
    }

    #[test]
    fn carry_out_of_add() {
        let n = alu(4);
        let (r, c, _, _) = run(&n, 15, 1, 0, 4);
        assert_eq!(r, 0);
        assert!(c);
    }

    #[test]
    fn io_counts() {
        let n = alu(8);
        assert_eq!(n.inputs().len(), 19);
        assert_eq!(n.outputs().len(), 11);
    }
}
