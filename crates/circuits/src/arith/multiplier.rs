//! Array multiplier.

use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

use super::adder;

/// An n×n array multiplier: partial products ANDed and accumulated with
/// ripple adders; inputs `a0..`, `b0..`; outputs `p0..p(2n-1)`.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Example
///
/// ```rust
/// let n = soi_circuits::arith::multiplier::array(3);
/// // 5 * 6 = 30
/// let v = [true, false, true, false, true, true]; // a=5, b=6 (LSB first)
/// let out = n.simulate(&v).unwrap();
/// let p: u32 = out.iter().enumerate().map(|(i, &b)| u32::from(b) << i).sum();
/// assert_eq!(p, 30);
/// ```
pub fn array(width: usize) -> Network {
    assert!(width > 0, "multiplier width must be positive");
    let mut b = NetworkBuilder::new(format!("mult{width}"));
    let a_bits = b.inputs("a", width);
    let b_bits = b.inputs("b", width);

    // Row 0: a * b0.
    let mut acc: Vec<NodeId> = a_bits.iter().map(|&x| b.and(x, b_bits[0])).collect();
    let mut products = vec![acc[0]];
    let zero = b.zero();
    acc.remove(0);
    acc.push(zero);

    for (row, &bb) in b_bits.iter().enumerate().skip(1) {
        let pp: Vec<NodeId> = a_bits.iter().map(|&x| b.and(x, bb)).collect();
        let zero = b.zero();
        let (sums, cout) = adder::ripple_into(&mut b, &acc, &pp, zero);
        products.push(sums[0]);
        acc = sums[1..].to_vec();
        acc.push(cout);
        let _ = row;
    }
    products.extend(acc);
    for (i, p) in products.iter().enumerate() {
        b.output(format!("p{i}"), *p);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplies_exhaustively_3x3() {
        let n = array(3);
        for a in 0u32..8 {
            for bb in 0u32..8 {
                let mut v = Vec::new();
                for i in 0..3 {
                    v.push(a >> i & 1 == 1);
                }
                for i in 0..3 {
                    v.push(bb >> i & 1 == 1);
                }
                let out = n.simulate(&v).unwrap();
                let p: u32 = out
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| u32::from(b) << i)
                    .sum();
                assert_eq!(p, a * bb, "{a} * {bb}");
            }
        }
    }

    #[test]
    fn output_width_is_double() {
        let n = array(4);
        assert_eq!(n.outputs().len(), 8);
        assert_eq!(n.inputs().len(), 8);
    }

    #[test]
    fn one_bit_multiplier_is_an_and() {
        let n = array(1);
        assert_eq!(n.simulate(&[true, true]).unwrap(), vec![true, false]);
        assert_eq!(n.simulate(&[true, false]).unwrap(), vec![false, false]);
    }
}
