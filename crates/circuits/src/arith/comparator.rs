//! Magnitude comparator.

use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

/// An n-bit unsigned magnitude comparator with outputs `eq`, `lt`, `gt`.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Example
///
/// ```rust
/// let n = soi_circuits::arith::comparator::compare(3);
/// // a = 2, b = 5 (LSB first): lt.
/// let out = n.simulate(&[false, true, false, true, false, true]).unwrap();
/// assert_eq!(out, vec![false, true, false]); // eq, lt, gt
/// ```
pub fn compare(width: usize) -> Network {
    assert!(width > 0, "comparator width must be positive");
    let mut b = NetworkBuilder::new(format!("cmp{width}"));
    let a_bits = b.inputs("a", width);
    let b_bits = b.inputs("b", width);
    let (eq, lt) = compare_into(&mut b, &a_bits, &b_bits);
    let ge = b.or(eq, lt);
    let gt = b.inv(ge);
    b.output("eq", eq);
    b.output("lt", lt);
    b.output("gt", gt);
    b.finish()
}

/// Builds comparator logic in an existing builder, returning `(eq, lt)` for
/// `a` versus `b` (unsigned, LSB first).
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn compare_into(b: &mut NetworkBuilder, a: &[NodeId], bb: &[NodeId]) -> (NodeId, NodeId) {
    assert_eq!(a.len(), bb.len(), "operand widths differ");
    assert!(!a.is_empty(), "comparator width must be positive");
    // From LSB to MSB: eq and lt accumulate.
    let mut eq = b.one();
    let mut lt = b.zero();
    for (&x, &y) in a.iter().zip(bb) {
        let bit_eq = b.xnor(x, y);
        let nx = b.inv(x);
        let bit_lt = b.and(nx, y);
        // lt = bit_lt | (bit_eq & lt)
        let keep = b.and(bit_eq, lt);
        lt = b.or(bit_lt, keep);
        eq = b.and(eq, bit_eq);
    }
    (eq, lt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_3bit() {
        let n = compare(3);
        for a in 0u32..8 {
            for bb in 0u32..8 {
                let mut v = Vec::new();
                for i in 0..3 {
                    v.push(a >> i & 1 == 1);
                }
                for i in 0..3 {
                    v.push(bb >> i & 1 == 1);
                }
                let out = n.simulate(&v).unwrap();
                assert_eq!(out[0], a == bb, "eq {a},{bb}");
                assert_eq!(out[1], a < bb, "lt {a},{bb}");
                assert_eq!(out[2], a > bb, "gt {a},{bb}");
            }
        }
    }

    #[test]
    fn single_bit() {
        let n = compare(1);
        assert_eq!(
            n.simulate(&[false, true]).unwrap(),
            vec![false, true, false]
        );
    }
}
