//! Ripple-carry and carry-select adders.

use soi_netlist::{builder::NetworkBuilder, Network, NodeId};

/// An n-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`; outputs
/// `s0..` and `cout`.
///
/// # Panics
///
/// Panics if `width == 0`.
///
/// # Example
///
/// ```rust
/// let n = soi_circuits::arith::adder::ripple(4);
/// // 3 + 5 = 8: a = 0011, b = 0101 (LSB first)
/// let mut v = vec![true, true, false, false]; // a = 3
/// v.extend([true, false, true, false]); // b = 5
/// v.push(false); // cin
/// let out = n.simulate(&v).unwrap();
/// let sum: u32 = out
///     .iter()
///     .enumerate()
///     .map(|(i, &b)| u32::from(b) << i)
///     .sum();
/// assert_eq!(sum, 8);
/// ```
pub fn ripple(width: usize) -> Network {
    assert!(width > 0, "adder width must be positive");
    let mut b = NetworkBuilder::new(format!("ripple{width}"));
    let a_bits = b.inputs("a", width);
    let b_bits = b.inputs("b", width);
    let cin = b.input("cin");
    let (sums, cout) = ripple_into(&mut b, &a_bits, &b_bits, cin);
    for (i, s) in sums.iter().enumerate() {
        b.output(format!("s{i}"), *s);
    }
    b.output("cout", cout);
    b.finish()
}

/// Builds ripple-adder logic inside an existing builder, returning the sum
/// bits and the carry-out.
///
/// # Panics
///
/// Panics if `a` and `b` have different widths or are empty.
pub fn ripple_into(
    b: &mut NetworkBuilder,
    a: &[NodeId],
    bb: &[NodeId],
    cin: NodeId,
) -> (Vec<NodeId>, NodeId) {
    assert_eq!(a.len(), bb.len(), "operand widths differ");
    assert!(!a.is_empty(), "adder width must be positive");
    let mut carry = cin;
    let mut sums = Vec::with_capacity(a.len());
    for (x, y) in a.iter().zip(bb) {
        let (s, c) = b.full_adder(*x, *y, carry);
        sums.push(s);
        carry = c;
    }
    (sums, carry)
}

/// Two's-complement subtractor built from the ripple adder
/// (`a - b = a + !b + 1`), returning difference bits and the borrow-free
/// carry.
pub fn subtract_into(b: &mut NetworkBuilder, a: &[NodeId], bb: &[NodeId]) -> (Vec<NodeId>, NodeId) {
    let inverted: Vec<NodeId> = bb.iter().map(|&x| b.inv(x)).collect();
    let one = b.one();
    ripple_into(b, a, &inverted, one)
}

/// An n-bit carry-select adder with the given block size: each block is
/// computed for both carry-in values and selected by the rippled carry —
/// wider and shallower than [`ripple`], exercising different mapper
/// shapes.
///
/// # Panics
///
/// Panics if `width == 0` or `block == 0`.
pub fn carry_select(width: usize, block: usize) -> Network {
    assert!(width > 0 && block > 0, "width and block must be positive");
    let mut b = NetworkBuilder::new(format!("csel{width}x{block}"));
    let a_bits = b.inputs("a", width);
    let b_bits = b.inputs("b", width);
    let cin = b.input("cin");

    let mut carry = cin;
    let mut sums = Vec::with_capacity(width);
    let mut lo = 0;
    while lo < width {
        let hi = (lo + block).min(width);
        let ab = &a_bits[lo..hi];
        let bbts = &b_bits[lo..hi];
        // Both speculative blocks.
        let zero = b.zero();
        let one = b.one();
        let (s0, c0) = ripple_into(&mut b, ab, bbts, zero);
        let (s1, c1) = ripple_into(&mut b, ab, bbts, one);
        for (x0, x1) in s0.iter().zip(&s1) {
            let s = b.mux(carry, *x0, *x1);
            sums.push(s);
        }
        carry = b.mux(carry, c0, c1);
        lo = hi;
    }
    for (i, s) in sums.iter().enumerate() {
        b.output(format!("s{i}"), *s);
    }
    b.output("cout", carry);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_adder(n: &Network, width: usize) {
        for (a, b, c) in [(0u64, 0u64, 0u64), (3, 5, 0), (7, 9, 1), (u64::MAX, 1, 0)] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            let (a, b) = (a & mask, b & mask);
            let mut v = Vec::new();
            for i in 0..width {
                v.push(a >> i & 1 == 1);
            }
            for i in 0..width {
                v.push(b >> i & 1 == 1);
            }
            v.push(c == 1);
            let out = n.simulate(&v).unwrap();
            let got: u64 = out
                .iter()
                .enumerate()
                .map(|(i, &bit)| u64::from(bit) << i)
                .sum();
            assert_eq!(got, a + b + c, "{a} + {b} + {c} (width {width})");
        }
    }

    #[test]
    fn ripple_adds() {
        for width in [1, 4, 8] {
            check_adder(&ripple(width), width);
        }
    }

    #[test]
    fn carry_select_adds() {
        check_adder(&carry_select(8, 3), 8);
        check_adder(&carry_select(6, 2), 6);
    }

    #[test]
    fn carry_select_matches_ripple_exhaustively() {
        let r = ripple(3);
        let c = carry_select(3, 2);
        assert!(soi_netlist::sim::random_equivalent(&r, &c, 8, 17).unwrap());
    }

    #[test]
    fn subtractor() {
        let mut b = NetworkBuilder::new("sub");
        let a = b.inputs("a", 4);
        let bb = b.inputs("b", 4);
        let (d, _) = subtract_into(&mut b, &a, &bb);
        for (i, bit) in d.iter().enumerate() {
            b.output(format!("d{i}"), *bit);
        }
        let n = b.finish();
        for (x, y) in [(9u32, 4u32), (5, 5), (3, 7)] {
            let mut v = Vec::new();
            for i in 0..4 {
                v.push(x >> i & 1 == 1);
            }
            for i in 0..4 {
                v.push(y >> i & 1 == 1);
            }
            let out = n.simulate(&v).unwrap();
            let got: u32 = out
                .iter()
                .enumerate()
                .map(|(i, &b)| u32::from(b) << i)
                .sum();
            assert_eq!(got, x.wrapping_sub(y) & 0xF, "{x} - {y}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = ripple(0);
    }
}
