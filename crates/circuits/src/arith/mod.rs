//! Arithmetic circuit generators: adders, multipliers, ALUs, comparators.

pub mod adder;
pub mod alu;
pub mod comparator;
pub mod multiplier;
