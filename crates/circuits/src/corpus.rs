//! Benchmark corpus: vendored AIGER circuits plus large synthetic networks.
//!
//! The EPFL/HWMCC-style evaluation flow wants two kinds of material that the
//! parametric generators alone don't give us:
//!
//! * **Vendored AIGs** — small, committed `.aag`/`.aig` files under
//!   `crates/circuits/corpus/`, embedded with `include_str!` /
//!   `include_bytes!` so CI exercises the real AIGER front-end without any
//!   network access or filesystem layout assumptions. Each was produced by
//!   writing a generator network through `soi_netlist::aiger` and verified
//!   equivalent by bit-parallel simulation.
//! * **Synthetic ≥100k-gate networks** — EPFL-style arithmetic (a wide
//!   array multiplier) and control (seeded random control logic) profiles,
//!   materialized on demand by the deterministic generators. These are what
//!   the scale benchmarks and the worklist-parser perf bounds run against;
//!   nothing that large is committed to the repository.
//!
//! [`load`] resolves a corpus name to a [`Network`]; [`load_path`] reads a
//! file from disk dispatching on extension (`.aag`, `.aig`, `.blif`). Both
//! return a typed [`CorpusError`] — an unreadable or malformed corpus file
//! is a reportable error, never a skip or a panic. [`SizeBucket`] is the
//! size classification the bench harness groups its rows by.

use std::fmt;
use std::path::Path;

use soi_netlist::{aiger, blif, Network, NetworkError};

use crate::arith::multiplier;
use crate::misc::random::{generate, RandomSpec};

/// Error raised while resolving or materializing a corpus circuit.
#[derive(Debug)]
pub enum CorpusError {
    /// The requested name is not in the corpus; the message lists what is.
    UnknownCircuit {
        /// The name that failed to resolve.
        name: String,
    },
    /// A file path had an extension other than `.aag`, `.aig` or `.blif`.
    UnsupportedExtension {
        /// The offending path.
        path: String,
    },
    /// The file could not be read from disk.
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O error, stringified.
        message: String,
    },
    /// The circuit text/bytes failed to parse or validate.
    Net {
        /// Which corpus entry or file was being loaded.
        context: String,
        /// The underlying netlist error.
        source: NetworkError,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::UnknownCircuit { name } => {
                write!(f, "unknown corpus circuit `{name}`")
            }
            CorpusError::UnsupportedExtension { path } => {
                write!(
                    f,
                    "`{path}`: unsupported extension (expected .aag, .aig or .blif)"
                )
            }
            CorpusError::Io { path, message } => write!(f, "`{path}`: {message}"),
            CorpusError::Net { context, source } => write!(f, "{context}: {source}"),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Net { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Size class of a circuit, by two-input gate count. The bench harness
/// groups its corpus rows by bucket so the ≥100k-gate tier is visible at a
/// glance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SizeBucket {
    /// Fewer than 1 000 gates.
    Small,
    /// 1 000 – 9 999 gates.
    Medium,
    /// 10 000 – 99 999 gates.
    Large,
    /// 100 000 gates or more.
    Huge,
}

impl SizeBucket {
    /// Classifies a gate count.
    pub fn of(gates: usize) -> SizeBucket {
        match gates {
            0..=999 => SizeBucket::Small,
            1_000..=9_999 => SizeBucket::Medium,
            10_000..=99_999 => SizeBucket::Large,
            _ => SizeBucket::Huge,
        }
    }
}

impl fmt::Display for SizeBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SizeBucket::Small => "small",
            SizeBucket::Medium => "medium",
            SizeBucket::Large => "large",
            SizeBucket::Huge => "huge",
        })
    }
}

/// Where a corpus entry's bits come from.
#[derive(Debug, Clone, Copy)]
pub enum Source {
    /// Vendored ASCII AIGER, embedded in the binary.
    VendoredAscii(&'static str),
    /// Vendored binary AIGER, embedded in the binary.
    VendoredBinary(&'static [u8]),
    /// Materialized on demand by a deterministic generator.
    Synthetic,
}

/// One corpus circuit: a name [`load`] resolves plus enough metadata to plan
/// a benchmark run without materializing the network.
#[derive(Debug, Clone, Copy)]
pub struct CorpusEntry {
    /// Corpus-unique name (`load` key).
    pub name: &'static str,
    /// Where the bits come from.
    pub source: Source,
    /// Approximate two-input gate count (exact for vendored entries is
    /// whatever the file holds; synthetic generators overshoot slightly).
    pub approx_gates: usize,
    /// One-line description.
    pub description: &'static str,
}

impl CorpusEntry {
    /// The size class this entry lands in.
    pub fn bucket(&self) -> SizeBucket {
        SizeBucket::of(self.approx_gates)
    }
}

const ADD8_AAG: &str = include_str!("../corpus/add8.aag");
const CMP8_AAG: &str = include_str!("../corpus/cmp8.aag");
const COUNT4OF8_AAG: &str = include_str!("../corpus/count4of8.aag");
const MUX16_AAG: &str = include_str!("../corpus/mux16.aag");
const PARITY8_AAG: &str = include_str!("../corpus/parity8.aag");
const MULT4_AIG: &[u8] = include_bytes!("../corpus/mult4.aig");

/// The corpus manifest, vendored entries first, then synthetic tiers in
/// increasing size.
pub const ENTRIES: &[CorpusEntry] = &[
    CorpusEntry {
        name: "add8",
        source: Source::VendoredAscii(ADD8_AAG),
        approx_gates: 80,
        description: "8-bit ripple-carry adder, vendored ASCII AIGER",
    },
    CorpusEntry {
        name: "cmp8",
        source: Source::VendoredAscii(CMP8_AAG),
        approx_gates: 60,
        description: "8-bit magnitude comparator, vendored ASCII AIGER",
    },
    CorpusEntry {
        name: "count4of8",
        source: Source::VendoredAscii(COUNT4OF8_AAG),
        approx_gates: 70,
        description: "symmetric popcount==4 detector, vendored ASCII AIGER",
    },
    CorpusEntry {
        name: "mux16",
        source: Source::VendoredAscii(MUX16_AAG),
        approx_gates: 60,
        description: "16-way multiplexer tree, vendored ASCII AIGER",
    },
    CorpusEntry {
        name: "parity8",
        source: Source::VendoredAscii(PARITY8_AAG),
        approx_gates: 25,
        description: "8-bit parity tree, vendored ASCII AIGER",
    },
    CorpusEntry {
        name: "mult4",
        source: Source::VendoredBinary(MULT4_AIG),
        approx_gates: 90,
        description: "4x4 array multiplier, vendored binary AIGER",
    },
    CorpusEntry {
        name: "synth-mult32",
        source: Source::Synthetic,
        approx_gates: 6_000,
        description: "32x32 array multiplier (EPFL arithmetic profile)",
    },
    CorpusEntry {
        name: "synth-control-25k",
        source: Source::Synthetic,
        approx_gates: 30_000,
        description: "seeded random control logic, ~30k gates",
    },
    CorpusEntry {
        name: "synth-mult136",
        source: Source::Synthetic,
        approx_gates: 110_000,
        description: "136x136 array multiplier, >=100k gates (EPFL arithmetic profile)",
    },
    CorpusEntry {
        name: "synth-control-120k",
        source: Source::Synthetic,
        approx_gates: 145_000,
        description: "seeded random control logic, >=100k gates (EPFL control profile)",
    },
];

/// Returns the manifest entry for `name`, if any.
pub fn entry(name: &str) -> Option<&'static CorpusEntry> {
    ENTRIES.iter().find(|e| e.name == name)
}

/// All corpus circuit names, manifest order.
pub fn names() -> Vec<&'static str> {
    ENTRIES.iter().map(|e| e.name).collect()
}

/// Materializes the named corpus circuit.
///
/// Vendored entries parse their embedded AIGER bits; synthetic entries run
/// their deterministic generator (same name → identical network, always).
///
/// # Errors
///
/// [`CorpusError::UnknownCircuit`] for names outside the manifest and
/// [`CorpusError::Net`] if a vendored file fails to parse (which would mean
/// corrupt vendored data — the tests parse every entry).
pub fn load(name: &str) -> Result<Network, CorpusError> {
    let e = entry(name).ok_or_else(|| CorpusError::UnknownCircuit {
        name: name.to_string(),
    })?;
    let net_err = |source| CorpusError::Net {
        context: format!("corpus circuit `{name}`"),
        source,
    };
    match e.source {
        Source::VendoredAscii(text) => aiger::parse_ascii(text).map_err(net_err),
        Source::VendoredBinary(bytes) => aiger::parse_binary(bytes).map_err(net_err),
        Source::Synthetic => Ok(synthesize(name)),
    }
}

/// Builds a synthetic corpus entry by name. Panics on unknown names — the
/// manifest and this match are kept in sync by `load` and the tests.
fn synthesize(name: &str) -> Network {
    match name {
        "synth-mult32" => multiplier::array(32),
        "synth-mult136" => multiplier::array(136),
        "synth-control-25k" => generate(&control_spec(name, 128, 32, 25_000)),
        "synth-control-120k" => generate(&control_spec(name, 256, 64, 120_000)),
        other => unreachable!("synthetic corpus entry `{other}` has no generator"),
    }
}

/// Control-profile spec shared by the synthetic control entries: a low XOR
/// ratio keeps the unate conversion's binate duplication from dominating
/// the downstream mapping benchmarks.
fn control_spec(name: &str, inputs: usize, outputs: usize, gates: usize) -> RandomSpec {
    let mut spec = RandomSpec::control(name, inputs, outputs, gates, 0xC0FFEE);
    spec.xor_ratio = 0.02;
    spec
}

/// Reads a circuit from disk, dispatching on the file extension: `.aag`
/// (ASCII AIGER), `.aig` (binary AIGER) or `.blif`.
///
/// # Errors
///
/// [`CorpusError::UnsupportedExtension`] for anything else,
/// [`CorpusError::Io`] when the file cannot be read, and
/// [`CorpusError::Net`] when it fails to parse.
pub fn load_path(path: &Path) -> Result<Network, CorpusError> {
    let display = path.display().to_string();
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .map(str::to_ascii_lowercase);
    let net_err = |source| CorpusError::Net {
        context: format!("`{display}`"),
        source,
    };
    match ext.as_deref() {
        Some("aag") => {
            let text = read_text(path)?;
            aiger::parse_ascii(&text).map_err(net_err)
        }
        Some("aig") => {
            let bytes = std::fs::read(path).map_err(|e| CorpusError::Io {
                path: display.clone(),
                message: e.to_string(),
            })?;
            aiger::parse_binary(&bytes).map_err(net_err)
        }
        Some("blif") => {
            let text = read_text(path)?;
            blif::parse(&text).map_err(net_err)
        }
        _ => Err(CorpusError::UnsupportedExtension { path: display }),
    }
}

fn read_text(path: &Path) -> Result<String, CorpusError> {
    std::fs::read_to_string(path).map_err(|e| CorpusError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_vendored_entry_parses_and_validates() {
        for e in ENTRIES {
            if matches!(e.source, Source::Synthetic) {
                continue;
            }
            let net = load(e.name).unwrap_or_else(|err| panic!("{}: {err}", e.name));
            net.validate().unwrap();
            assert!(net.stats().binary_gates > 0, "{} is trivial", e.name);
        }
    }

    #[test]
    fn small_synthetics_materialize_deterministically() {
        let a = load("synth-mult32").unwrap();
        let b = load("synth-mult32").unwrap();
        assert_eq!(a, b);
        a.validate().unwrap();
    }

    #[test]
    fn buckets_classify_entries() {
        assert_eq!(entry("add8").unwrap().bucket(), SizeBucket::Small);
        assert_eq!(entry("synth-mult32").unwrap().bucket(), SizeBucket::Medium);
        assert_eq!(
            entry("synth-control-25k").unwrap().bucket(),
            SizeBucket::Large
        );
        assert_eq!(entry("synth-mult136").unwrap().bucket(), SizeBucket::Huge);
        assert_eq!(SizeBucket::of(0), SizeBucket::Small);
        assert_eq!(SizeBucket::of(100_000), SizeBucket::Huge);
        assert!(SizeBucket::Small < SizeBucket::Huge);
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let err = load("no-such-circuit").unwrap_err();
        assert!(matches!(err, CorpusError::UnknownCircuit { .. }));
        assert!(err.to_string().contains("no-such-circuit"));
    }

    #[test]
    fn load_path_dispatches_on_extension() {
        let dir = std::env::temp_dir().join("soi_corpus_test");
        std::fs::create_dir_all(&dir).unwrap();
        let aag = dir.join("t.aag");
        std::fs::write(&aag, ADD8_AAG).unwrap();
        let net = load_path(&aag).unwrap();
        net.validate().unwrap();

        let aig = dir.join("t.aig");
        std::fs::write(&aig, MULT4_AIG).unwrap();
        load_path(&aig).unwrap().validate().unwrap();

        let err = load_path(&dir.join("t.v")).unwrap_err();
        assert!(matches!(err, CorpusError::UnsupportedExtension { .. }));

        let err = load_path(&dir.join("missing.aag")).unwrap_err();
        assert!(matches!(err, CorpusError::Io { .. }));

        let bad = dir.join("bad.aag");
        std::fs::write(&bad, "aag oops\n").unwrap();
        let err = load_path(&bad).unwrap_err();
        assert!(matches!(err, CorpusError::Net { .. }), "{err}");
    }

    #[test]
    fn vendored_ascii_and_binary_agree_for_mult4() {
        let from_binary = load("mult4").unwrap();
        let reference = crate::arith::multiplier::array(4);
        assert!(soi_netlist::sim::random_equivalent(&from_binary, &reference, 64, 9).unwrap());
    }
}
