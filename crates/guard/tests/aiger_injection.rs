//! Fault-injection sweep over the AIGER front-end.
//!
//! Every corpus circuit is serialized to both AIGER flavors, corrupted by
//! each byte-stream mutator across a seed range, and fed back through
//! `aiger::parse_bytes` and the guard pipeline's `run_aiger` ingest stage.
//! The property: the parser never panics — each mutated stream either
//! yields a typed [`soi_netlist::NetworkError`] (surfaced by the pipeline
//! as a `parse`-stage [`StageError`]) or parses into a network that passes
//! its own validator.

use soi_circuits::corpus::{self, Source};
use soi_guard::inject;
use soi_guard::pipeline::{Pipeline, Stage};
use soi_mapper::{MapConfig, Mapper};
use soi_netlist::aiger;

/// Corpus payloads in both flavors, vendored entries only (the synthetic
/// tiers are far too large to sweep).
fn payloads() -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    for e in corpus::ENTRIES {
        if matches!(e.source, Source::Synthetic) {
            continue;
        }
        let net = corpus::load(e.name).expect("vendored entries parse");
        out.push((
            format!("{}.aag", e.name),
            aiger::write_ascii(&net).into_bytes(),
        ));
        out.push((format!("{}.aig", e.name), aiger::write_binary(&net)));
    }
    out
}

#[test]
fn mutated_aiger_streams_never_panic_and_errors_stay_typed() {
    type Mutator = fn(&[u8], u64) -> Option<Vec<u8>>;
    let mutators: [(&str, Mutator); 3] = [
        ("truncate", inject::truncate_aiger),
        ("garble", inject::garble_aiger),
        ("perturb-header", inject::perturb_aiger_header),
    ];
    let mut parsed_ok = 0usize;
    let mut rejected = 0usize;
    for (name, bytes) in payloads() {
        for (mutator_name, mutate) in mutators {
            for seed in 0..25u64 {
                let Some(corrupt) = mutate(&bytes, seed) else {
                    continue;
                };
                match aiger::parse_bytes(&corrupt) {
                    Ok(net) => {
                        // A stream that still parses must yield a coherent
                        // network — the mutation may be benign (e.g. a
                        // garbled symbol name).
                        net.validate().unwrap_or_else(|e| {
                            panic!("{name}/{mutator_name}/{seed}: parsed invalid network: {e}")
                        });
                        parsed_ok += 1;
                    }
                    Err(e) => {
                        // Typed and displayable, never a panic.
                        assert!(!e.to_string().is_empty());
                        rejected += 1;
                    }
                }
            }
        }
    }
    // The sweep must actually exercise both outcomes to mean anything.
    assert!(rejected > 0, "no mutation was ever rejected");
    assert!(
        parsed_ok + rejected > 100,
        "sweep too small: {parsed_ok} ok + {rejected} rejected"
    );
}

#[test]
fn pipeline_ingests_clean_aiger_and_rejects_corrupt_aiger_at_parse() {
    let pipeline = Pipeline::new(Mapper::soi(MapConfig::default()));

    let net = corpus::load("parity8").expect("vendored entry");
    let ascii = aiger::write_ascii(&net).into_bytes();
    let report = pipeline.run_aiger(&ascii).expect("clean .aag maps");
    assert!(report.audit.is_some());
    let binary = aiger::write_binary(&net);
    pipeline.run_aiger(&binary).expect("clean .aig maps");

    let corrupt = inject::perturb_aiger_header(&ascii, 3).unwrap();
    match pipeline.run_aiger(&corrupt) {
        Ok(_) => {} // a benign perturbation can still parse; that's fine
        Err(err) => {
            assert_eq!(err.stage, Stage::Parse);
            assert_eq!(err.context, "<aiger>");
        }
    }
    // A guaranteed-fatal corruption: no header at all.
    let err = pipeline.run_aiger(b"garbage\n").unwrap_err();
    assert_eq!(err.stage, Stage::Parse);
    assert!(err.to_string().contains("parse"));
}
