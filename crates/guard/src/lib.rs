//! # soi-guard
//!
//! Hardening layer for the SOI domino technology-mapping flow: everything
//! needed to *trust* a mapping, and to prove that corrupted inputs cannot
//! slip through it silently.
//!
//! Three pieces:
//!
//! * [`pipeline`] — a staged runner (`netlist-validate → unate-convert →
//!   map → discharge-protect → audit`, plus an opt-in post-map `cec`
//!   stage that SAT-proves the mapped circuit equivalent to the source
//!   network and its PBE protection safe) whose failures all surface as
//!   one typed [`StageError`], naming the stage and wrapping the
//!   underlying crate error. Optional graceful degradation retries an
//!   `Unmappable` mapping with forced gate boundaries.
//! * [`audit`] — the cross-stage consistency check [`check_pipeline`]:
//!   unate-network equivalence to the source netlist, circuit structural
//!   validity, PBE-safety, transistor-accounting consistency, and a
//!   differential functional check of the mapped circuit against the
//!   source network.
//! * [`inject`] — a seeded fault-injection harness: deterministic mutators
//!   that corrupt each intermediate representation (netlist graphs, BLIF
//!   bytes, domino circuits) so the test suite can assert that every
//!   corruption is caught by a typed error or by the audit — never by a
//!   panic, and never silently.
//!
//! # Example
//!
//! ```rust
//! use soi_guard::{Pipeline, StageError};
//! use soi_mapper::{MapConfig, Mapper};
//! use soi_netlist::Network;
//!
//! # fn main() -> Result<(), StageError> {
//! let mut n = Network::new("t");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.nand2(a, b);
//! n.add_output("f", g);
//!
//! let report = Pipeline::new(Mapper::soi(MapConfig::default())).run(&n)?;
//! assert!(report.audit.is_some()); // the audit ran and passed
//! # Ok(())
//! # }
//! ```

pub mod audit;
pub mod inject;
pub mod pipeline;

pub use audit::{check_partial, check_pipeline, AuditConfig, AuditError, AuditReport};
pub use pipeline::{CecVerification, Pipeline, PipelineReport, Stage, StageError, StageFailure};
