//! The staged pipeline runner with unified, typed stage errors.
//!
//! [`Pipeline::run`] executes the full flow — `netlist-validate` →
//! `unate-convert` → `map` → `discharge-protect` → `audit` — and converts
//! every failure into a [`StageError`] that names the [`Stage`] and wraps
//! the underlying crate error, so a caller can always tell *where* the flow
//! broke and *why*, without any stage being able to panic its way out.
//! [`Pipeline::run_blif`] prepends a `parse` stage that reads BLIF text.
//!
//! Each stage is wrapped in a `soi-trace` span derived from the mapper's
//! [`MapConfig::trace`](soi_mapper::MapConfig) handle, and the audit stage
//! reports its vector count through
//! [`soi_trace::Counter::AuditVectors`] — attach a
//! [`soi_trace::Recorder`] to the config to observe the flow.

use std::error::Error;
use std::fmt;

use soi_cec::{CecError, CecOptions, CecReport, CecVerdict, Counterexample, PbeSafetyReport};
use soi_domino_ir::DominoError;
use soi_mapper::{Algorithm, MapError, Mapper, MappingResult};
use soi_netlist::{Network, NetworkError};
use soi_pbe::excite::InputConstraints;
use soi_pbe::{hazard, PbeError};
use soi_trace::{Counter, Stage as TraceStage};
use soi_unate::{convert, Options, UnateError, UnateNetwork};

use crate::audit::{self, AuditConfig, AuditError, AuditReport};

/// The named stages of the hardened flow, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// BLIF text parsing (only in [`Pipeline::run_blif`] flows).
    Parse,
    /// Structural validation of the input [`Network`].
    NetlistValidate,
    /// Binate-to-unate conversion.
    UnateConvert,
    /// The tuple-DP technology mapping.
    Map,
    /// Verification that the mapped circuit is structurally valid and that
    /// its pre-discharge set covers every PBE-susceptible junction.
    DischargeProtect,
    /// The cross-stage consistency audit ([`crate::audit::check_pipeline`]).
    Audit,
    /// SAT-based combinational equivalence of the mapped circuit against
    /// the source network, plus the SAT-formulated PBE-safety proof
    /// (opt-in via [`Pipeline::with_cec`]).
    Cec,
}

impl Stage {
    /// The stage's kebab-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::NetlistValidate => "netlist-validate",
            Stage::UnateConvert => "unate-convert",
            Stage::Map => "map",
            Stage::DischargeProtect => "discharge-protect",
            Stage::Audit => "audit",
            Stage::Cec => "cec",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The underlying cause of a stage failure: one wrapper per layer of the
/// flow, so no information is lost crossing the stage boundary.
#[derive(Debug)]
pub enum StageFailure {
    /// A [`NetworkError`] from the netlist layer.
    Network(NetworkError),
    /// A [`UnateError`] from the unate-conversion layer.
    Unate(UnateError),
    /// A [`MapError`] from the mapper.
    Map(MapError),
    /// A [`DominoError`] from the circuit layer.
    Domino(DominoError),
    /// A [`PbeError`] from the PBE analysis layer.
    Pbe(PbeError),
    /// The discharge set left PBE-susceptible junctions uncovered.
    Hazards {
        /// Number of unprotected committed discharge points.
        count: usize,
        /// `gate/junction` description of the first one.
        first: String,
    },
    /// The cross-stage audit failed.
    Audit(AuditError),
    /// The equivalence checker could not run ([`CecError`]).
    Cec(CecError),
    /// The mapped circuit is **not** equivalent to the source network: a
    /// replay-confirmed counterexample.
    CecMismatch(Counterexample),
    /// The equivalence check left output miters unproven within the
    /// conflict budget — treated as a failure, never silently passed.
    CecUnproven {
        /// Number of unproven output miters.
        unproven: usize,
    },
    /// The SAT PBE-safety proof flagged unprotected committed junctions.
    CecUnsafe {
        /// Junctions that failed the proof (excitable or unknown).
        count: usize,
        /// `gate/junction` description of the first one.
        first: String,
    },
}

impl fmt::Display for StageFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageFailure::Network(e) => write!(f, "{e}"),
            StageFailure::Unate(e) => write!(f, "{e}"),
            StageFailure::Map(e) => write!(f, "{e}"),
            StageFailure::Domino(e) => write!(f, "{e}"),
            StageFailure::Pbe(e) => write!(f, "{e}"),
            StageFailure::Hazards { count, first } => {
                write!(
                    f,
                    "{count} unprotected discharge point(s), first at {first}"
                )
            }
            StageFailure::Audit(e) => write!(f, "{e}"),
            StageFailure::Cec(e) => write!(f, "{e}"),
            StageFailure::CecMismatch(cex) => write!(
                f,
                "mapped circuit differs from the source at output {} (lhs {}, rhs {})",
                cex.output, cex.lhs, cex.rhs
            ),
            StageFailure::CecUnproven { unproven } => {
                write!(f, "{unproven} output miter(s) unproven within budget")
            }
            StageFailure::CecUnsafe { count, first } => {
                write!(
                    f,
                    "{count} junction(s) failed the PBE-safety proof, first at {first}"
                )
            }
        }
    }
}

/// A failure of one named pipeline stage.
#[derive(Debug)]
pub struct StageError {
    /// The stage that failed.
    pub stage: Stage,
    /// What the stage was working on (network name, typically).
    pub context: String,
    /// The wrapped cause.
    pub failure: StageFailure,
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage {} failed on `{}`: {}",
            self.stage, self.context, self.failure
        )
    }
}

impl Error for StageError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.failure {
            StageFailure::Network(e) => Some(e),
            StageFailure::Unate(e) => Some(e),
            StageFailure::Map(e) => Some(e),
            StageFailure::Domino(e) => Some(e),
            StageFailure::Pbe(e) => Some(e),
            StageFailure::Audit(e) => Some(e),
            StageFailure::Cec(e) => Some(e),
            StageFailure::Hazards { .. }
            | StageFailure::CecMismatch(_)
            | StageFailure::CecUnproven { .. }
            | StageFailure::CecUnsafe { .. } => None,
        }
    }
}

/// What the opt-in CEC stage proved.
#[derive(Debug, Clone)]
pub struct CecVerification {
    /// The miter-based equivalence report (verdict is
    /// [`CecVerdict::Equivalent`] on a successful run).
    pub equivalence: CecReport,
    /// The SAT PBE-safety report (`safe` on a successful run).
    pub safety: PbeSafetyReport,
}

/// Everything a successful pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The unate network the mapper consumed (kept for re-auditing).
    pub unate: UnateNetwork,
    /// The mapping itself.
    pub result: MappingResult,
    /// Whether the run needed the graceful-degradation retry (or the
    /// mapper's own in-config degradation fired).
    pub degraded: bool,
    /// Interrupted map attempts recovered by resuming from their salvaged
    /// partial results (0 on a clean first attempt).
    pub salvage_retries: u32,
    /// The audit report, when auditing was enabled.
    pub audit: Option<AuditReport>,
    /// The CEC + PBE-safety proofs, when the CEC stage was enabled.
    pub cec: Option<CecVerification>,
}

/// The hardened flow runner. Build one around a [`Mapper`] and feed it
/// networks; see the crate-level example.
#[derive(Debug, Clone)]
pub struct Pipeline {
    mapper: Mapper,
    unate_options: Options,
    degrade_on_unmappable: bool,
    salvage_retries: u32,
    audit: Option<AuditConfig>,
    cec: Option<CecOptions>,
}

impl Pipeline {
    /// Creates a pipeline around a mapper, with default unate-conversion
    /// options, auditing enabled at [`AuditConfig::default`], and no
    /// degradation or salvage retries.
    pub fn new(mapper: Mapper) -> Pipeline {
        Pipeline {
            mapper,
            unate_options: Options::default(),
            degrade_on_unmappable: false,
            salvage_retries: 0,
            audit: Some(AuditConfig::default()),
            cec: None,
        }
    }

    /// Replaces the unate-conversion options.
    pub fn with_unate_options(mut self, options: Options) -> Pipeline {
        self.unate_options = options;
        self
    }

    /// Enables or disables the graceful-degradation retry: when the map
    /// stage fails with [`MapError::Unmappable`], rerun it with
    /// [`degrade_unmappable`](soi_mapper::MapConfig::degrade_unmappable)
    /// set, forcing gate boundaries at
    /// the offending nodes instead of failing the flow.
    pub fn with_degradation(mut self, enabled: bool) -> Pipeline {
        self.degrade_on_unmappable = enabled;
        self
    }

    /// Allows up to `retries` map-stage resumes from salvaged partial
    /// results: when the map stage is interrupted (cancellation trip,
    /// deadline, contained worker panic) and the error carries a non-empty
    /// [`PartialMapping`](soi_mapper::PartialMapping), the stage reruns
    /// with the salvaged cone cache attached — re-solving only what the
    /// interrupt cut off — instead of failing the flow. The deterministic
    /// `cancel_after_steps` test trip is cleared on resume (it would
    /// re-fire identically); a wall-clock deadline grants each attempt a
    /// fresh allowance over strictly less work, and a tripped
    /// [`CancelToken`](soi_mapper::CancelToken) stays honored — the resume
    /// fails fast.
    pub fn with_salvage_retry(mut self, retries: u32) -> Pipeline {
        self.salvage_retries = retries;
        self
    }

    /// Sets the audit configuration; `None` disables the audit stage.
    pub fn with_audit(mut self, audit: Option<AuditConfig>) -> Pipeline {
        self.audit = audit;
        self
    }

    /// Enables the opt-in post-map `cec` stage: SAT-based equivalence of
    /// the mapped circuit against the source network plus the
    /// SAT-formulated PBE-safety proof. `None` (the default) skips the
    /// stage; use [`Pipeline::cec_options`] for budgets derived from the
    /// mapper's [`Limits`](soi_mapper::Limits).
    pub fn with_cec(mut self, cec: Option<CecOptions>) -> Pipeline {
        self.cec = cec;
        self
    }

    /// CEC options with conflict budgets derived from the mapper's
    /// limits: the output-miter budget scales with `max_combine_steps`
    /// (the knob that already expresses how much compute the caller will
    /// spend on this flow), clamped to a sane band, and the per-node
    /// budget is a small fraction of it.
    pub fn cec_options(&self) -> CecOptions {
        let limits = &self.mapper.config().limits;
        let output_conflict_budget = (limits.max_combine_steps / 1_000).clamp(10_000, 10_000_000);
        CecOptions {
            output_conflict_budget,
            node_conflict_budget: (output_conflict_budget / 500).clamp(50, 2_000),
            ..CecOptions::default()
        }
    }

    /// Runs the full flow on `network`.
    ///
    /// # Errors
    ///
    /// Returns the first [`StageError`], naming the stage that rejected the
    /// input and wrapping the layer's own typed error.
    pub fn run(&self, network: &Network) -> Result<PipelineReport, StageError> {
        let trace = self.mapper.config().trace;
        let ctx = |stage: Stage, failure: StageFailure| StageError {
            stage,
            context: network.name().to_string(),
            failure,
        };

        // Stage 1: netlist-validate.
        {
            let _span = trace.span(TraceStage::NetlistValidate);
            network
                .validate()
                .map_err(|e| ctx(Stage::NetlistValidate, StageFailure::Network(e)))?;
        }

        // Stage 2: unate-convert.
        let unate = {
            let _span = trace.span(TraceStage::UnateConvert);
            convert(network, &self.unate_options)
                .map_err(|e| ctx(Stage::UnateConvert, StageFailure::Unate(e)))?
        };

        // Stage 3: map, with the optional degradation and salvage retries.
        // The span covers the whole stage; the mapper opens its own `dp` /
        // `reconstruct` / `pbe-postprocess` child spans inside it.
        let map_span = trace.span(TraceStage::Map);
        let rebuild = |algorithm: Algorithm, config| match algorithm {
            Algorithm::DominoMap => Mapper::baseline(config),
            Algorithm::RsMap => Mapper::rearrange_stacks(config),
            Algorithm::SoiDominoMap => Mapper::soi(config),
        };
        let mut mapper = self.mapper.clone();
        let mut degrade_retried = false;
        let mut salvage_retries = 0u32;
        let result = loop {
            match mapper.run_unate(&unate) {
                Ok(result) => break result,
                Err(MapError::Unmappable { .. })
                    if self.degrade_on_unmappable && !mapper.config().degrade_unmappable =>
                {
                    // Graceful degradation: force gate boundaries at the
                    // offending nodes instead of failing the flow.
                    let mut config = *mapper.config();
                    config.degrade_unmappable = true;
                    mapper = rebuild(mapper.algorithm(), config);
                    degrade_retried = true;
                }
                Err(e) => {
                    let salvage = e.partial().filter(|p| !p.is_empty()).map(|p| p.cache());
                    match salvage {
                        Some(cache) if salvage_retries < self.salvage_retries => {
                            salvage_retries += 1;
                            let mut config = *mapper.config();
                            // The deterministic test trip would re-fire at
                            // the same step count; the deadline and token
                            // stay honored (see `with_salvage_retry`).
                            config.limits.cancel_after_steps = None;
                            mapper = rebuild(mapper.algorithm(), config).with_cone_cache(cache);
                        }
                        _ => return Err(ctx(Stage::Map, StageFailure::Map(e))),
                    }
                }
            }
        };
        map_span.finish();
        let retried = degrade_retried;

        // Stage 4: discharge-protect — the circuit must be structurally
        // sound and every committed discharge point covered.
        {
            let _span = trace.span(TraceStage::DischargeProtect);
            result
                .circuit
                .validate()
                .map_err(|e| ctx(Stage::DischargeProtect, StageFailure::Domino(e)))?;
            let hazards = hazard::check(&result.circuit);
            if !hazards.is_empty() {
                let h = &hazards[0];
                return Err(ctx(
                    Stage::DischargeProtect,
                    StageFailure::Hazards {
                        count: hazards.len(),
                        first: format!("gate {} junction {}", h.gate, h.junction),
                    },
                ));
            }
        }

        // Stage 5: audit.
        let audit_report = match &self.audit {
            Some(cfg) => {
                let _span = trace.span(TraceStage::Audit);
                let report = audit::check_pipeline(network, &unate, &result, cfg)
                    .map_err(|e| ctx(Stage::Audit, StageFailure::Audit(e)))?;
                trace.count(Counter::AuditVectors, report.vectors_checked as u64);
                Some(report)
            }
            None => None,
        };

        // Stage 6 (opt-in): cec — SAT equivalence of the mapped circuit
        // against the source network, then the SAT PBE-safety proof.
        let cec_report = match &self.cec {
            Some(opts) => {
                let _span = trace.span(TraceStage::Cec);
                let equivalence =
                    soi_cec::check_mapped_traced(network, &result.circuit, opts, trace)
                        .map_err(|e| ctx(Stage::Cec, StageFailure::Cec(e)))?;
                match equivalence.verdict {
                    CecVerdict::Equivalent => {}
                    CecVerdict::NotEquivalent(ref cex) => {
                        return Err(ctx(Stage::Cec, StageFailure::CecMismatch(cex.clone())));
                    }
                    CecVerdict::Undecided { unproven } => {
                        return Err(ctx(Stage::Cec, StageFailure::CecUnproven { unproven }));
                    }
                }
                let safety = soi_cec::verify_safe_sat_traced(
                    &result.circuit,
                    &InputConstraints::none(),
                    opts.output_conflict_budget,
                    trace,
                );
                if !safety.safe {
                    let first = safety
                        .first_flagged
                        .as_ref()
                        .map(|(g, j)| format!("gate {g} junction {j}"))
                        .unwrap_or_else(|| "<unknown>".to_string());
                    return Err(ctx(
                        Stage::Cec,
                        StageFailure::CecUnsafe {
                            count: safety.excitable + safety.unknown,
                            first,
                        },
                    ));
                }
                Some(CecVerification {
                    equivalence,
                    safety,
                })
            }
            None => None,
        };

        let degraded = retried || result.is_degraded();
        Ok(PipelineReport {
            unate,
            result,
            degraded,
            salvage_retries,
            audit: audit_report,
            cec: cec_report,
        })
    }

    /// Parses BLIF text and runs the full flow on the resulting network —
    /// [`Pipeline::run`] with a leading `parse` stage, so text-driven
    /// callers get the same typed stage errors (and a `parse` trace span)
    /// instead of handling the parser separately.
    ///
    /// # Errors
    ///
    /// Parse failures surface as [`Stage::Parse`] with the netlist layer's
    /// [`NetworkError`]; everything after parsing behaves exactly like
    /// [`Pipeline::run`].
    pub fn run_blif(&self, text: &str) -> Result<PipelineReport, StageError> {
        let trace = self.mapper.config().trace;
        let network = {
            let _span = trace.span(TraceStage::Parse);
            soi_netlist::blif::parse(text).map_err(|e| StageError {
                stage: Stage::Parse,
                context: "<blif>".to_string(),
                failure: StageFailure::Network(e),
            })?
        };
        self.run(&network)
    }

    /// Parses an AIGER document (ASCII `aag` or binary `aig`, sniffed from
    /// the magic) and runs the full flow on the resulting network — the
    /// AIGER counterpart of [`Pipeline::run_blif`].
    ///
    /// # Errors
    ///
    /// Parse failures surface as [`Stage::Parse`] with the netlist layer's
    /// [`NetworkError`] (including [`NetworkError::TooManyNodes`] for
    /// headers past the id space); everything after parsing behaves exactly
    /// like [`Pipeline::run`].
    pub fn run_aiger(&self, bytes: &[u8]) -> Result<PipelineReport, StageError> {
        let trace = self.mapper.config().trace;
        let network = {
            let _span = trace.span(TraceStage::Parse);
            soi_netlist::aiger::parse_bytes(bytes).map_err(|e| StageError {
                stage: Stage::Parse,
                context: "<aiger>".to_string(),
                failure: StageFailure::Network(e),
            })?
        };
        self.run(&network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_mapper::MapConfig;
    use soi_netlist::NodeId;

    fn nand_or() -> Network {
        let mut n = Network::new("nand-or");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g = n.nand2(a, b);
        let f = n.or2(g, c);
        n.add_output("f", f);
        n
    }

    #[test]
    fn healthy_network_passes_all_stages() {
        let report = Pipeline::new(Mapper::soi(MapConfig::default()))
            .run(&nand_or())
            .expect("pipeline passes");
        assert!(!report.degraded);
        let audit = report.audit.expect("audit ran");
        assert!(audit.vectors_checked > 0);
    }

    #[test]
    fn corrupt_network_fails_at_validate_stage() {
        let mut n = nand_or();
        n.set_output_driver_unchecked(0, NodeId::from_index(999));
        let err = Pipeline::new(Mapper::soi(MapConfig::default()))
            .run(&n)
            .expect_err("must fail");
        assert_eq!(err.stage, Stage::NetlistValidate);
        assert!(matches!(
            err.failure,
            StageFailure::Network(NetworkError::DanglingOutput { .. })
        ));
        assert!(err.to_string().contains("netlist-validate"));
    }

    #[test]
    fn unmappable_fails_map_stage_then_degrades_when_asked() {
        let config = MapConfig {
            w_max: 1,
            h_max: 1,
            ..MapConfig::default()
        };
        let strict = Pipeline::new(Mapper::soi(config));
        let err = strict.run(&nand_or()).expect_err("h_max 1 is unmappable");
        assert_eq!(err.stage, Stage::Map);
        assert!(matches!(
            err.failure,
            StageFailure::Map(MapError::Unmappable { .. })
        ));

        let report = strict
            .with_degradation(true)
            .run(&nand_or())
            .expect("degradation recovers the flow");
        assert!(report.degraded);
        assert!(report.result.is_degraded());
        assert!(report.audit.is_some());
    }

    #[test]
    fn stage_error_exposes_source() {
        let mut n = nand_or();
        n.set_output_driver_unchecked(0, NodeId::from_index(999));
        let err = Pipeline::new(Mapper::soi(MapConfig::default()))
            .run(&n)
            .unwrap_err();
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn traced_run_emits_stage_spans_and_audit_vectors() {
        let (rec, trace) = soi_trace::Recorder::install();
        let config = MapConfig {
            trace,
            ..MapConfig::default()
        };
        let report = Pipeline::new(Mapper::soi(config))
            .run(&nand_or())
            .expect("pipeline passes");
        for stage in [
            TraceStage::NetlistValidate,
            TraceStage::UnateConvert,
            TraceStage::Map,
            TraceStage::Dp,
            TraceStage::Reconstruct,
            TraceStage::DischargeProtect,
            TraceStage::Audit,
        ] {
            assert!(
                rec.stage_nanos(stage).is_some(),
                "missing span for {stage:?}"
            );
        }
        let audit = report.audit.expect("audit ran");
        assert_eq!(
            rec.counter(Counter::AuditVectors),
            audit.vectors_checked as u64
        );
    }

    #[test]
    fn run_blif_parses_and_spans_the_parse_stage() {
        let (rec, trace) = soi_trace::Recorder::install();
        let config = MapConfig {
            trace,
            ..MapConfig::default()
        };
        let text = "\
.model blif-t
.inputs a b c
.outputs f
.names a b g
11 1
.names g c f
1- 1
-1 1
.end
";
        let report = Pipeline::new(Mapper::soi(config))
            .run_blif(text)
            .expect("blif flow passes");
        assert!(rec.stage_nanos(TraceStage::Parse).is_some());
        assert!(!report.degraded);
    }

    #[test]
    fn run_blif_surfaces_parse_failures_as_the_parse_stage() {
        let err = Pipeline::new(Mapper::soi(MapConfig::default()))
            .run_blif(".model broken\n.names ghost f\n1 1\n.end\n")
            .expect_err("unparsable BLIF must fail");
        assert_eq!(err.stage, Stage::Parse);
        assert!(err.to_string().contains("parse"));
    }

    /// Several disjoint output cones, so an interrupt midway through the
    /// serial unit walk leaves completed units to salvage.
    fn many_cones(outputs: usize) -> Network {
        let mut n = Network::new("many-cones");
        let inputs: Vec<_> = (0..outputs + 3)
            .map(|i| n.add_input(format!("i{i}")))
            .collect();
        for o in 0..outputs {
            let a = n.and2(inputs[o], inputs[o + 1]);
            let b = n.or2(a, inputs[o + 2]);
            let c = n.and2(b, inputs[o + 3]);
            n.add_output(format!("f{o}"), c);
        }
        n
    }

    #[test]
    fn salvage_retry_resumes_an_interrupted_map_stage() {
        let network = many_cones(8);
        let clean = Pipeline::new(Mapper::soi(MapConfig::default()))
            .run(&network)
            .expect("clean run passes");
        assert_eq!(clean.salvage_retries, 0);
        let steps = clean.result.combine_steps;
        assert!(steps > 4, "test circuit must do real combination work");

        let mut config = MapConfig::default();
        config.limits.cancel_after_steps = Some(steps / 2);
        let interruptible = Pipeline::new(Mapper::soi(config));

        // Without the retry the interrupt fails the stage (typed).
        let err = interruptible.run(&network).expect_err("trip fails the map");
        assert_eq!(err.stage, Stage::Map);
        match &err.failure {
            StageFailure::Map(e @ MapError::Cancelled { .. }) => {
                let partial = e.partial().expect("interrupts carry salvage");
                assert!(!partial.is_empty(), "midway trip must complete units");
            }
            other => panic!("expected a cancelled map failure, got {other}"),
        }

        // With it, the stage resumes from the salvage and the flow (audit
        // included) completes identically to the clean run.
        let report = interruptible
            .with_salvage_retry(2)
            .run(&network)
            .expect("salvage retry recovers the flow");
        assert_eq!(report.salvage_retries, 1);
        assert_eq!(report.result.combine_steps, clean.result.combine_steps);
        assert_eq!(report.result.counts, clean.result.counts);
        assert!(report.audit.is_some());
    }

    #[test]
    fn salvage_retry_honors_a_tripped_cancel_token() {
        let token = soi_mapper::CancelToken::new();
        token.cancel();
        let mut config = MapConfig::default();
        config.limits.cancel = token;
        let err = Pipeline::new(Mapper::soi(config))
            .with_salvage_retry(3)
            .run(&many_cones(4))
            .expect_err("a tripped token is a command, not a hiccup");
        assert_eq!(err.stage, Stage::Map);
        assert!(matches!(
            err.failure,
            StageFailure::Map(MapError::Cancelled { .. })
        ));
    }

    #[test]
    fn cec_stage_proves_a_healthy_flow_and_spans() {
        let (rec, trace) = soi_trace::Recorder::install();
        let config = MapConfig {
            trace,
            ..MapConfig::default()
        };
        let pipeline = Pipeline::new(Mapper::soi(config));
        let opts = pipeline.cec_options();
        let report = pipeline
            .with_cec(Some(opts))
            .run(&nand_or())
            .expect("pipeline passes with cec");
        let cec = report.cec.expect("cec ran");
        assert!(cec.equivalence.is_equivalent());
        assert_eq!(cec.equivalence.unproven(), 0);
        assert!(cec.safety.safe);
        assert!(rec.stage_nanos(TraceStage::Cec).is_some());
        // The equivalence and safety counters both land in the recorder.
        assert_eq!(
            rec.counter(Counter::CecSatCalls),
            cec.equivalence.sat_calls + cec.safety.sat_calls
        );
    }

    #[test]
    fn cec_stage_is_off_by_default() {
        let report = Pipeline::new(Mapper::soi(MapConfig::default()))
            .run(&nand_or())
            .expect("pipeline passes");
        assert!(report.cec.is_none());
    }

    #[test]
    fn cec_budgets_derive_from_limits() {
        let mut config = MapConfig::default();
        config.limits.max_combine_steps = 5_000_000_000;
        let opts = Pipeline::new(Mapper::soi(config)).cec_options();
        assert_eq!(opts.output_conflict_budget, 5_000_000);
        assert_eq!(opts.node_conflict_budget, 2_000);
        let mut config = MapConfig::default();
        config.limits.max_combine_steps = 1;
        let opts = Pipeline::new(Mapper::soi(config)).cec_options();
        assert_eq!(opts.output_conflict_budget, 10_000);
        assert_eq!(opts.node_conflict_budget, 50);
    }

    #[test]
    fn cec_stage_catches_a_corrupted_mapping() {
        // Run the normal flow, then corrupt the mapped circuit and
        // re-check it through the same stage logic via check_mapped.
        let network = nand_or();
        let pipeline = Pipeline::new(Mapper::soi(MapConfig::default()));
        let report = pipeline.run(&network).expect("clean run");
        let (circuit, witness) = crate::inject::retarget_fanin(&report.result.circuit, 7)
            .expect("mutator applies to this circuit");
        let verdict = soi_cec::check_mapped(&network, &circuit, &pipeline.cec_options())
            .expect("checker runs");
        match verdict.verdict {
            soi_cec::CecVerdict::NotEquivalent(cex) => {
                // The injected witness is itself a distinguishing input.
                let lhs = network.simulate(&witness).unwrap();
                let rhs = circuit.evaluate(&witness).unwrap();
                assert_ne!(lhs, rhs, "witness distinguishes");
                let _ = cex;
            }
            other => panic!("corruption must be caught, got {other:?}"),
        }
    }

    #[test]
    fn audit_can_be_disabled() {
        let report = Pipeline::new(Mapper::baseline(MapConfig::default()))
            .with_audit(None)
            .run(&nand_or())
            .expect("pipeline passes");
        assert!(report.audit.is_none());
    }
}
