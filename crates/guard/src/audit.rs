//! The cross-stage audit: end-to-end consistency checks over a completed
//! pipeline run.
//!
//! [`check_pipeline`] re-derives everything the flow claims from first
//! principles and compares:
//!
//! 1. the unate network is functionally equivalent to the source netlist
//!    (randomized simulation, [`soi_unate::verify::equivalent`]);
//! 2. the mapped circuit is structurally valid
//!    ([`DominoCircuit::validate`](soi_domino_ir::DominoCircuit::validate));
//! 3. the circuit is PBE-safe: no committed discharge point is left
//!    unprotected ([`soi_pbe::hazard::check`]);
//! 4. the transistor accounting is consistent: the reported
//!    [`TransistorCounts`] match a recount from the circuit, and the
//!    repo's accounting invariant `total == logic + discharge` holds.
//!    (The paper's tables tally `T_clock` as a *separate, overlapping*
//!    column — clock devices are already inside the per-gate overhead that
//!    `logic` includes — so the invariant here is deliberately **not**
//!    `total == logic + discharge + clock`.)
//! 5. the mapped circuit computes the same function as the source netlist
//!    on corner and seeded-random vectors (differential simulation).
//!
//! Each violation is a distinct [`AuditError`] variant, so a fault-injection
//! harness can assert not just *that* corruption is caught but *which*
//! check catches it.

use std::error::Error;
use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use soi_domino_ir::{DominoError, TransistorCounts};
use soi_mapper::{MappingResult, PartialMapping};
use soi_netlist::{Network, NetworkError};
use soi_pbe::hazard;
use soi_unate::{verify, UnateError, UnateNetwork};

/// Effort and seeding knobs for the audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Rounds of 64-wide random vectors for the unate-equivalence check.
    pub equivalence_rounds: usize,
    /// Number of seeded-random vectors for the differential functional
    /// check (corner vectors are always included on top).
    pub functional_vectors: usize,
    /// Seed for both randomized checks.
    pub seed: u64,
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            equivalence_rounds: 8,
            functional_vectors: 64,
            seed: 0x5001_d0e5,
        }
    }
}

/// A violated cross-stage invariant.
#[derive(Debug)]
pub enum AuditError {
    /// Random simulation distinguished the unate network from the source.
    UnateMismatch {
        /// How many rounds were tried before the mismatch surfaced.
        rounds: usize,
    },
    /// The equivalence checker itself failed (arity mismatch, typically a
    /// corrupted intermediate).
    Equivalence(UnateError),
    /// The mapped circuit is structurally invalid.
    CircuitInvalid(DominoError),
    /// The circuit's discharge set leaves committed points unprotected.
    Hazards {
        /// Number of unprotected points.
        count: usize,
    },
    /// The reported counts disagree with a recount from the circuit.
    CountsMismatch {
        /// Counts recomputed from the circuit.
        recomputed: TransistorCounts,
        /// Counts the mapping result reported.
        reported: TransistorCounts,
    },
    /// The accounting identity `total == logic + discharge` is broken.
    AccountingBroken {
        /// The recomputed counts that violate the identity.
        counts: TransistorCounts,
    },
    /// The mapped circuit disagrees with the source netlist on a vector.
    FunctionalMismatch {
        /// The distinguishing input vector.
        vector: Vec<bool>,
        /// What the source netlist computes.
        expected: Vec<bool>,
        /// What the mapped circuit computes.
        got: Vec<bool>,
    },
    /// Simulating the source netlist failed.
    NetworkSim(NetworkError),
    /// Evaluating the mapped circuit failed.
    CircuitEval(DominoError),
    /// A salvaged [`PartialMapping`](soi_mapper::PartialMapping) violates
    /// its own accounting invariants.
    PartialInconsistent {
        /// The violated invariant.
        what: String,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::UnateMismatch { rounds } => write!(
                f,
                "unate network is not equivalent to the source netlist ({rounds} rounds)"
            ),
            AuditError::Equivalence(e) => write!(f, "equivalence check failed: {e}"),
            AuditError::CircuitInvalid(e) => write!(f, "mapped circuit is invalid: {e}"),
            AuditError::Hazards { count } => {
                write!(f, "{count} PBE-susceptible junction(s) left unprotected")
            }
            AuditError::CountsMismatch {
                recomputed,
                reported,
            } => write!(
                f,
                "transistor accounting drifted: recomputed [{recomputed}] != reported [{reported}]"
            ),
            AuditError::AccountingBroken { counts } => write!(
                f,
                "accounting identity total == logic + discharge broken: [{counts}]"
            ),
            AuditError::FunctionalMismatch {
                vector,
                expected,
                got,
            } => write!(
                f,
                "mapped circuit disagrees with the source on {vector:?}: expected {expected:?}, got {got:?}"
            ),
            AuditError::NetworkSim(e) => write!(f, "source simulation failed: {e}"),
            AuditError::CircuitEval(e) => write!(f, "circuit evaluation failed: {e}"),
            AuditError::PartialInconsistent { what } => {
                write!(f, "salvaged partial mapping is inconsistent: {what}")
            }
        }
    }
}

impl Error for AuditError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AuditError::Equivalence(e) => Some(e),
            AuditError::CircuitInvalid(e) | AuditError::CircuitEval(e) => Some(e),
            AuditError::NetworkSim(e) => Some(e),
            _ => None,
        }
    }
}

/// What a passing audit actually exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditReport {
    /// Rounds of 64-wide vectors used by the equivalence check.
    pub equivalence_rounds: usize,
    /// Vectors used by the differential functional check.
    pub vectors_checked: usize,
}

/// Runs every cross-stage check; see the module docs for the list.
///
/// # Errors
///
/// Returns the first violated invariant as an [`AuditError`].
pub fn check_pipeline(
    network: &Network,
    unate: &UnateNetwork,
    result: &MappingResult,
    cfg: &AuditConfig,
) -> Result<AuditReport, AuditError> {
    // 1. Unate network still computes the source function.
    match verify::equivalent(network, unate, cfg.equivalence_rounds, cfg.seed) {
        Ok(true) => {}
        Ok(false) => {
            return Err(AuditError::UnateMismatch {
                rounds: cfg.equivalence_rounds,
            })
        }
        Err(e) => return Err(AuditError::Equivalence(e)),
    }

    // 2. Structural validity of the mapped circuit.
    result
        .circuit
        .validate()
        .map_err(AuditError::CircuitInvalid)?;

    // 3. PBE safety.
    let hazards = hazard::check(&result.circuit);
    if !hazards.is_empty() {
        return Err(AuditError::Hazards {
            count: hazards.len(),
        });
    }

    // 4. Transistor accounting.
    let recomputed = result.circuit.counts();
    if recomputed != result.counts {
        return Err(AuditError::CountsMismatch {
            recomputed,
            reported: result.counts,
        });
    }
    if recomputed.total != recomputed.logic + recomputed.discharge {
        return Err(AuditError::AccountingBroken { counts: recomputed });
    }

    // 5. Differential function check: source netlist vs mapped circuit.
    let arity = network.inputs().len();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut vectors_checked = 0;
    let check = |vector: Vec<bool>| -> Result<(), AuditError> {
        let expected = network.simulate(&vector).map_err(AuditError::NetworkSim)?;
        let got = result
            .circuit
            .evaluate(&vector)
            .map_err(AuditError::CircuitEval)?;
        if expected != got {
            return Err(AuditError::FunctionalMismatch {
                vector,
                expected,
                got,
            });
        }
        Ok(())
    };
    check(vec![false; arity])?;
    check(vec![true; arity])?;
    vectors_checked += 2;
    for _ in 0..cfg.functional_vectors {
        check((0..arity).map(|_| rng.gen()).collect())?;
        vectors_checked += 1;
    }

    Ok(AuditReport {
        equivalence_rounds: cfg.equivalence_rounds,
        vectors_checked,
    })
}

/// Checks a salvaged [`PartialMapping`]'s internal accounting: unit counts
/// are conserved and the frontier is exactly the cut between completed and
/// unfinished work.
///
/// Invariants checked:
///
/// * `completed ≤ total` and `salvaged ≤ completed`;
/// * the frontier is empty exactly when every unit completed (an interrupt
///   observed after the last unit finished);
/// * the frontier fits in the unfinished remainder, and its indices are
///   in range, sorted, and distinct.
///
/// # Errors
///
/// Returns [`AuditError::PartialInconsistent`] naming the first violated
/// invariant.
pub fn check_partial(partial: &PartialMapping) -> Result<(), AuditError> {
    let fail = |what: String| Err(AuditError::PartialInconsistent { what });
    let total = partial.total_units();
    let completed = partial.completed_units();
    let salvaged = partial.salvaged_units();
    if completed > total {
        return fail(format!("{completed} completed units out of {total}"));
    }
    if salvaged > completed {
        return fail(format!(
            "{salvaged} salvaged units but only {completed} completed"
        ));
    }
    let frontier = partial.frontier();
    if frontier.is_empty() != (completed == total) {
        return fail(format!(
            "frontier of {} units with {completed}/{total} completed",
            frontier.len()
        ));
    }
    if frontier.len() > total - completed {
        return fail(format!(
            "frontier of {} units exceeds the {} unfinished",
            frontier.len(),
            total - completed
        ));
    }
    if let Some(&u) = frontier.iter().find(|&&u| u >= total) {
        return fail(format!("frontier unit {u} out of range ({total} units)"));
    }
    if let Some(w) = frontier.windows(2).find(|w| w[0] >= w[1]) {
        return fail(format!("frontier not sorted-unique at {}..{}", w[0], w[1]));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_domino_ir::GateId;
    use soi_mapper::{MapConfig, Mapper};
    use soi_unate::{convert, Options};

    fn mapped() -> (Network, UnateNetwork, MappingResult) {
        let mut n = Network::new("aoi");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.and2(a, b);
        let f = n.nor2(ab, c);
        n.add_output("f", f);
        let unate = convert(&n, &Options::default()).expect("converts");
        let result = Mapper::soi(MapConfig::default())
            .run_unate(&unate)
            .expect("maps");
        (n, unate, result)
    }

    #[test]
    fn clean_run_passes_and_reports_effort() {
        let (n, u, r) = mapped();
        let report = check_pipeline(&n, &u, &r, &AuditConfig::default()).expect("audit passes");
        assert_eq!(report.vectors_checked, 66);
        assert_eq!(report.equivalence_rounds, 8);
    }

    #[test]
    fn stripped_protection_is_caught_as_hazard() {
        // The baseline mapper leans on post-inserted discharge transistors
        // (the SOI mapper often needs none, by construction), so its output
        // is the right victim for a protection-stripping fault.
        let mut n = Network::new("oa");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let t = n.or2(a, b);
        let f = n.and2(t, c);
        n.add_output("f", f);
        let u = convert(&n, &Options::default()).expect("converts");
        let mut r = Mapper::baseline(MapConfig::default())
            .run_unate(&u)
            .expect("maps");
        let mut stripped = false;
        for id in 0..r.circuit.gate_count() {
            let gate = r.circuit.gate_mut(GateId::from_index(id));
            if !gate.discharge().is_empty() {
                gate.set_discharge_unchecked(Vec::new());
                stripped = true;
            }
        }
        assert!(stripped, "the bulk-typical OA mapping needs protection");
        // Keep the reported counts in sync so the *hazard* check is what
        // trips, not the accounting comparison.
        r.counts = r.circuit.counts();
        assert!(matches!(
            check_pipeline(&n, &u, &r, &AuditConfig::default()),
            Err(AuditError::Hazards { .. })
        ));
    }

    #[test]
    fn stale_counts_are_caught() {
        let (n, u, mut r) = mapped();
        r.counts.total += 1;
        assert!(matches!(
            check_pipeline(&n, &u, &r, &AuditConfig::default()),
            Err(AuditError::CountsMismatch { .. })
        ));
    }

    #[test]
    fn retargeted_output_is_caught_functionally_or_structurally() {
        let (n, u, mut r) = mapped();
        // Point the output at gate 0 instead of the final gate; with more
        // than one gate this either breaks validation or the function.
        if r.circuit.gate_count() < 2 {
            return;
        }
        r.circuit
            .set_output_gate_unchecked(0, GateId::from_index(0));
        let err = check_pipeline(&n, &u, &r, &AuditConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            AuditError::FunctionalMismatch { .. } | AuditError::CircuitInvalid(_)
        ));
    }
}
