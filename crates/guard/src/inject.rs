//! Seeded fault injection: deterministic mutators that corrupt each
//! intermediate representation of the flow.
//!
//! Every mutator takes an intact artifact plus a `seed`, and returns
//! `Some(corrupted)` — or `None` when the artifact offers no opportunity
//! for that fault (no gates, no discharge transistors, ...). Mutators
//! **self-check effectfulness**: a returned artifact is guaranteed to be
//! detectably corrupt — rejected by the representation's own `validate`,
//! flagged by [`soi_pbe::hazard::check`], or (for the functional mutators)
//! accompanied by a witness input vector on which it computes the wrong
//! value. The guarantee is what lets the test suite assert *every* injected
//! fault is caught, rather than merely that most are.
//!
//! BLIF mutators are the exception: a mutated byte stream has no defined
//! "effect", so they only guarantee the bytes changed. The property under
//! test there is that [`soi_netlist::blif::parse`] never panics and never
//! returns an invalid network.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use soi_domino_ir::{DominoCircuit, GateId, JunctionRef, Pdn, Signal};
use soi_mapper::MapConfig;
use soi_netlist::{Network, Node, NodeId};
use soi_pbe::hazard;
use soi_unate::{convert, Options};

// ---- Network mutators ----------------------------------------------------

/// Node ids of the network's gate nodes (unary or binary).
fn gate_nodes(network: &Network) -> Vec<NodeId> {
    network
        .iter()
        .filter(|(_, n)| matches!(n, Node::Unary { .. } | Node::Binary { .. }))
        .map(|(id, _)| id)
        .collect()
}

/// Rebuilds a node with its `which`-th fanin replaced.
fn with_fanin(node: &Node, which: usize, fanin: NodeId) -> Option<Node> {
    match *node {
        Node::Unary { op, .. } if which == 0 => Some(Node::Unary { op, a: fanin }),
        Node::Binary { op, a, b } => match which {
            0 => Some(Node::Binary { op, a: fanin, b }),
            1 => Some(Node::Binary { op, a, b: fanin }),
            _ => None,
        },
        _ => None,
    }
}

/// Only returns the mutated network if its own validator rejects it — the
/// self-check every structural network mutator shares.
fn checked_invalid(network: Network) -> Option<Network> {
    network.validate().is_err().then_some(network)
}

/// Points a random gate fanin past the end of the node array.
pub fn dangling_fanin(network: &Network, seed: u64) -> Option<Network> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let gates = gate_nodes(network);
    if gates.is_empty() {
        return None;
    }
    let id = gates[rng.gen_range(0..gates.len())];
    let node = network.node(id);
    let which = rng.gen_range(0..node.fanins().count());
    let bogus = NodeId::from_index(network.len() + rng.gen_range(1..1000usize));
    let mutated_node = with_fanin(node, which, bogus)?;
    let mut mutated = network.clone();
    mutated.set_node_unchecked(id, mutated_node);
    checked_invalid(mutated)
}

/// Points a random gate fanin at itself or a later node, breaking the
/// topological invariant.
pub fn forward_fanin(network: &Network, seed: u64) -> Option<Network> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let gates = gate_nodes(network);
    if gates.is_empty() {
        return None;
    }
    let id = gates[rng.gen_range(0..gates.len())];
    let node = network.node(id);
    let which = rng.gen_range(0..node.fanins().count());
    let target = NodeId::from_index(rng.gen_range(id.index()..network.len()));
    let mutated_node = with_fanin(node, which, target)?;
    let mut mutated = network.clone();
    mutated.set_node_unchecked(id, mutated_node);
    checked_invalid(mutated)
}

/// Points a random output port at a node that does not exist.
pub fn dangling_output(network: &Network, seed: u64) -> Option<Network> {
    let mut rng = SmallRng::seed_from_u64(seed);
    if network.outputs().is_empty() {
        return None;
    }
    let port = rng.gen_range(0..network.outputs().len());
    let bogus = NodeId::from_index(network.len() + rng.gen_range(1..1000usize));
    let mut mutated = network.clone();
    mutated.set_output_driver_unchecked(port, bogus);
    checked_invalid(mutated)
}

/// Swaps a gate node with one of its (gate) fanins, so the stored order is
/// no longer topological.
pub fn break_topo_order(network: &Network, seed: u64) -> Option<Network> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    for id in gate_nodes(network) {
        for fanin in network.node(id).fanins() {
            if matches!(
                network.node(fanin),
                Node::Unary { .. } | Node::Binary { .. }
            ) {
                candidates.push((id, fanin));
            }
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let (a, b) = candidates[rng.gen_range(0..candidates.len())];
    let mut mutated = network.clone();
    mutated.swap_nodes_unchecked(a, b);
    checked_invalid(mutated)
}

/// Renames one primary input to collide with another.
pub fn duplicate_input_name(network: &Network, seed: u64) -> Option<Network> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let inputs = network.inputs();
    if inputs.len() < 2 {
        return None;
    }
    let victim = inputs[rng.gen_range(0..inputs.len())];
    let donor = inputs[rng.gen_range(0..inputs.len())];
    if victim == donor {
        return duplicate_input_name(network, seed.wrapping_add(1));
    }
    let name = match network.node(donor) {
        Node::Input { name } => name.clone(),
        _ => return None,
    };
    let mut mutated = network.clone();
    mutated.set_node_unchecked(victim, Node::Input { name });
    checked_invalid(mutated)
}

// ---- Mapper job-control mutators -----------------------------------------

/// Poisons one seeded-random cone unit of `network`'s unate form: the
/// returned config makes any mapping run of `network` panic the worker
/// that picks up that unit (see
/// [`poison_node`](soi_mapper::MapConfig::poison_node)), exercising panic
/// containment end-to-end. The fault is guaranteed effectful and
/// deterministic: the poisoned node is the unit's *root*, every schedule
/// visits each unit exactly once, and the panic fires before any solving —
/// so the same unit blows up on serial, parallel and cached runs alike,
/// and the mapper must surface it as
/// [`MapError::WorkerPanicked`](soi_mapper::MapError) for that unit index.
///
/// Returns the poisoned config together with the unit's partition index;
/// `None` when the network does not convert under the config's output
/// phase (nothing to poison).
pub fn poison_unit(config: &MapConfig, network: &Network, seed: u64) -> Option<(MapConfig, usize)> {
    let unate = convert(
        network,
        &Options {
            output_phase: config.output_phase,
        },
    )
    .ok()?;
    let partition = unate.cone_partition();
    if partition.units().is_empty() {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let unit_index = rng.gen_range(0..partition.units().len());
    let mut poisoned = *config;
    poisoned.poison_node = Some(partition.unit(unit_index).root().index() as u32);
    Some((poisoned, unit_index))
}

// ---- BLIF byte-stream mutators -------------------------------------------

/// Truncates the byte stream at a random position.
pub fn truncate_blif(bytes: &[u8], seed: u64) -> Option<Vec<u8>> {
    if bytes.is_empty() {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let cut = rng.gen_range(0..bytes.len());
    Some(bytes[..cut].to_vec())
}

/// Overwrites a handful of random bytes with random printable-ish garbage.
pub fn garble_blif(bytes: &[u8], seed: u64) -> Option<Vec<u8>> {
    if bytes.is_empty() {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = bytes.to_vec();
    for _ in 0..rng.gen_range(1..5usize) {
        let at = rng.gen_range(0..out.len());
        // XOR guarantees the byte actually changes.
        out[at] ^= rng.gen_range(1..128u8);
    }
    Some(out)
}

/// Deletes a random line.
pub fn drop_blif_line(bytes: &[u8], seed: u64) -> Option<Vec<u8>> {
    let text = String::from_utf8_lossy(bytes);
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() < 2 {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let victim = rng.gen_range(0..lines.len());
    let kept: Vec<&str> = lines
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != victim)
        .map(|(_, l)| *l)
        .collect();
    Some(kept.join("\n").into_bytes())
}

/// Swaps two distinct random lines.
pub fn swap_blif_lines(bytes: &[u8], seed: u64) -> Option<Vec<u8>> {
    let text = String::from_utf8_lossy(bytes);
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    if lines.len() < 2 {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let a = rng.gen_range(0..lines.len());
    let b = rng.gen_range(0..lines.len() - 1);
    let b = if b >= a { b + 1 } else { b };
    lines.swap(a, b);
    Some(lines.join("\n").into_bytes())
}

// ---- AIGER byte-stream mutators ------------------------------------------
//
// Like the BLIF mutators, these only guarantee the bytes changed: the
// property under test is that `soi_netlist::aiger` never panics on the
// result — it either parses a network that passes `validate` or returns a
// typed `NetworkError`. They work on both flavors (ASCII `aag` and binary
// `aig`), since both are just byte streams to a fuzzer.

/// Truncates an AIGER byte stream at a random position.
pub fn truncate_aiger(bytes: &[u8], seed: u64) -> Option<Vec<u8>> {
    truncate_blif(bytes, seed)
}

/// Overwrites a handful of random bytes of an AIGER stream; XOR guarantees
/// each touched byte actually changes, so binary varint sections get
/// corrupted too, not just ASCII lines.
pub fn garble_aiger(bytes: &[u8], seed: u64) -> Option<Vec<u8>> {
    garble_blif(bytes, seed)
}

/// Perturbs one numeric field of the AIGER header line (`aag M I L O A` or
/// `aig M I L O A`): off-by-one in either direction, zeroed, or inflated to
/// an implausibly huge value — the last probing the parser's id-space
/// budget check. Returns `None` when the stream has no parseable header to
/// perturb (then `garble_aiger` is the right tool).
pub fn perturb_aiger_header(bytes: &[u8], seed: u64) -> Option<Vec<u8>> {
    let line_end = bytes.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&bytes[..line_end]).ok()?;
    let mut tokens: Vec<String> = header.split_whitespace().map(str::to_string).collect();
    // magic + the five size fields
    if tokens.len() < 6 || !(tokens[0] == "aag" || tokens[0] == "aig") {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let field = rng.gen_range(1..6usize);
    let old: u64 = tokens[field].parse().ok()?;
    let new = match rng.gen_range(0..4u8) {
        0 => old.wrapping_add(1),
        1 => old.saturating_sub(1),
        2 => 0,
        _ => u64::MAX / 2 + rng.gen_range(0..1000u64),
    };
    if new == old {
        return perturb_aiger_header(bytes, seed.wrapping_add(1));
    }
    tokens[field] = new.to_string();
    let mut out = tokens.join(" ").into_bytes();
    out.extend_from_slice(&bytes[line_end..]);
    Some(out)
}

// ---- Domino-circuit mutators ---------------------------------------------

/// Removes one pre-discharge transistor whose absence actually exposes a
/// committed discharge point (skipping redundant ones).
pub fn drop_discharge(circuit: &DominoCircuit, seed: u64) -> Option<DominoCircuit> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let baseline = hazard::check(circuit).len();
    let mut candidates: Vec<(GateId, usize)> = Vec::new();
    for (id, gate) in circuit.iter() {
        for j in 0..gate.discharge().len() {
            candidates.push((id, j));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    // Seeded starting point, then walk all candidates looking for one whose
    // removal is detectable.
    let start = rng.gen_range(0..candidates.len());
    for k in 0..candidates.len() {
        let (id, j) = candidates[(start + k) % candidates.len()];
        let mut mutated = circuit.clone();
        let mut discharge = mutated.gate(id).discharge().to_vec();
        discharge.remove(j);
        mutated.gate_mut(id).set_discharge_unchecked(discharge);
        if hazard::check(&mutated).len() > baseline {
            return Some(mutated);
        }
    }
    None
}

/// Retargets one pre-discharge transistor at a junction that does not exist
/// in its gate's PDN.
pub fn retarget_discharge(circuit: &DominoCircuit, seed: u64) -> Option<DominoCircuit> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let candidates: Vec<GateId> = circuit
        .iter()
        .filter(|(_, g)| !g.discharge().is_empty())
        .map(|(id, _)| id)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let id = candidates[rng.gen_range(0..candidates.len())];
    let mut mutated = circuit.clone();
    let mut discharge = mutated.gate(id).discharge().to_vec();
    let j = rng.gen_range(0..discharge.len());
    discharge[j] = JunctionRef::new(vec![rng.gen_range(500..1000u32)], 0);
    mutated.gate_mut(id).set_discharge_unchecked(discharge);
    mutated.validate().is_err().then_some(mutated)
}

/// Number of `Series` subtrees in a PDN.
fn count_series(pdn: &Pdn) -> usize {
    match pdn {
        Pdn::Transistor(_) => 0,
        Pdn::Series(children) => 1 + children.iter().map(count_series).sum::<usize>(),
        Pdn::Parallel(children) => children.iter().map(count_series).sum(),
    }
}

/// Rebuilds a PDN with the `target`-th `Series` subtree's children reversed
/// (pre-order numbering via `k`).
fn reverse_nth_series(pdn: &Pdn, target: usize, k: &mut usize) -> Pdn {
    match pdn {
        Pdn::Transistor(s) => Pdn::transistor(*s),
        Pdn::Series(children) => {
            let here = *k;
            *k += 1;
            let rebuilt: Vec<Pdn> = children
                .iter()
                .map(|c| reverse_nth_series(c, target, k))
                .collect();
            if here == target {
                Pdn::series(rebuilt.into_iter().rev().collect())
            } else {
                Pdn::series(rebuilt)
            }
        }
        Pdn::Parallel(children) => Pdn::parallel(
            children
                .iter()
                .map(|c| reverse_nth_series(c, target, k))
                .collect(),
        ),
    }
}

/// Flips a series stack top-for-bottom inside one gate's PDN, keeping the
/// discharge set — which now protects the wrong junctions. Only flips that
/// are *detectable* (a new hazard, or a discharge junction that no longer
/// resolves) are returned; a flip that happens to leave the gate safe is
/// not a fault.
pub fn flip_pdn_junction(circuit: &DominoCircuit, seed: u64) -> Option<DominoCircuit> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut candidates: Vec<(GateId, usize)> = Vec::new();
    for (id, gate) in circuit.iter() {
        for s in 0..count_series(gate.pdn()) {
            candidates.push((id, s));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let start = rng.gen_range(0..candidates.len());
    for k in 0..candidates.len() {
        let (id, s) = candidates[(start + k) % candidates.len()];
        let mut counter = 0;
        let flipped = reverse_nth_series(circuit.gate(id).pdn(), s, &mut counter);
        if &flipped == circuit.gate(id).pdn() {
            continue; // palindromic stack: not a mutation at all
        }
        let mut mutated = circuit.clone();
        mutated.gate_mut(id).set_pdn_unchecked(flipped);
        if mutated.validate().is_err() || !hazard::check(&mutated).is_empty() {
            return Some(mutated);
        }
    }
    None
}

/// Rebuilds a PDN with the `target`-th transistor's signal replaced
/// (flatten-order numbering via `k`).
fn replace_signal(pdn: &Pdn, target: usize, with: Signal, k: &mut usize) -> Pdn {
    match pdn {
        Pdn::Transistor(s) => {
            let signal = if *k == target { with } else { *s };
            *k += 1;
            Pdn::transistor(signal)
        }
        Pdn::Series(children) => Pdn::series(
            children
                .iter()
                .map(|c| replace_signal(c, target, with, k))
                .collect(),
        ),
        Pdn::Parallel(children) => Pdn::parallel(
            children
                .iter()
                .map(|c| replace_signal(c, target, with, k))
                .collect(),
        ),
    }
}

/// Rewires one PDN transistor to a different signal — a wrong-wire fault
/// that keeps the circuit structurally valid but changes its function.
///
/// Returns the mutated circuit together with a **witness vector** on which
/// it disagrees with the original, so callers can demonstrate the fault is
/// caught by differential simulation (the audit's functional check) without
/// depending on random vectors happening to hit it.
pub fn retarget_fanin(circuit: &DominoCircuit, seed: u64) -> Option<(DominoCircuit, Vec<bool>)> {
    let arity = circuit.input_names().len();
    if arity == 0 {
        return None;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut candidates: Vec<(GateId, usize)> = Vec::new();
    for (id, gate) in circuit.iter() {
        for t in 0..gate.pdn().transistor_count() as usize {
            candidates.push((id, t));
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let start = rng.gen_range(0..candidates.len());
    for k in 0..candidates.len() {
        let (id, t) = candidates[(start + k) % candidates.len()];
        let old = circuit.gate(id).pdn().signals()[t];
        // Flip an input literal's phase; rewire a gate tap to an input.
        let with = match old {
            Signal::Input { index, phase } => Signal::Input {
                index,
                phase: phase.flipped(),
            },
            Signal::Gate(_) => Signal::input(rng.gen_range(0..arity)),
        };
        let mut counter = 0;
        let rewired = replace_signal(circuit.gate(id).pdn(), t, with, &mut counter);
        let mut mutated = circuit.clone();
        mutated.gate_mut(id).set_pdn_unchecked(rewired);
        if mutated.validate().is_err() {
            continue; // keep this mutator purely functional
        }
        if let Some(witness) = distinguishing_vector(circuit, &mutated, seed) {
            return Some((mutated, witness));
        }
    }
    None
}

/// Searches corner and seeded-random vectors for one on which the two
/// circuits disagree.
fn distinguishing_vector(
    original: &DominoCircuit,
    mutated: &DominoCircuit,
    seed: u64,
) -> Option<Vec<bool>> {
    let arity = original.input_names().len();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let mut vectors: Vec<Vec<bool>> = vec![vec![false; arity], vec![true; arity]];
    for _ in 0..62 {
        vectors.push((0..arity).map(|_| rng.gen()).collect());
    }
    vectors
        .into_iter()
        .find(|v| match (original.evaluate(v), mutated.evaluate(v)) {
            (Ok(a), Ok(b)) => a != b,
            _ => false,
        })
}

/// Removes **every** pre-discharge transistor — the "protection got lost in
/// handoff" fault. Returns `None` when the circuit had none to lose, or
/// when none of them were load-bearing (no hazard appears).
pub fn strip_protection(circuit: &DominoCircuit) -> Option<DominoCircuit> {
    let mut mutated = circuit.clone();
    let mut removed = 0;
    for id in 0..mutated.gate_count() {
        let gate = mutated.gate_mut(GateId::from_index(id));
        removed += gate.discharge().len();
        gate.set_discharge_unchecked(Vec::new());
    }
    if removed == 0 || hazard::check(&mutated).is_empty() {
        return None;
    }
    Some(mutated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_netlist::NetworkError;

    fn sample_network() -> Network {
        let mut n = Network::new("sample");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.and2(a, b);
        let g2 = n.xor2(g1, c);
        n.add_output("f", g2);
        n
    }

    #[test]
    fn network_mutators_always_yield_invalid_networks() {
        let n = sample_network();
        for seed in 0..20 {
            for (name, mutated) in [
                ("dangling_fanin", dangling_fanin(&n, seed)),
                ("forward_fanin", forward_fanin(&n, seed)),
                ("dangling_output", dangling_output(&n, seed)),
                ("break_topo_order", break_topo_order(&n, seed)),
                ("duplicate_input_name", duplicate_input_name(&n, seed)),
            ] {
                let m = mutated.unwrap_or_else(|| panic!("{name} applies to sample"));
                assert!(m.validate().is_err(), "{name} seed {seed} went undetected");
            }
        }
    }

    #[test]
    fn dangling_fanin_reports_the_right_error() {
        let n = sample_network();
        let m = dangling_fanin(&n, 7).unwrap();
        assert!(matches!(
            m.validate(),
            Err(NetworkError::DanglingFanin { .. })
        ));
    }

    #[test]
    fn mutators_are_deterministic_per_seed() {
        let n = sample_network();
        assert_eq!(dangling_fanin(&n, 3), dangling_fanin(&n, 3));
        assert_eq!(break_topo_order(&n, 3), break_topo_order(&n, 3));
    }

    #[test]
    fn mutators_skip_inapplicable_targets() {
        let mut empty = Network::new("empty");
        assert!(dangling_fanin(&empty, 0).is_none());
        assert!(dangling_output(&empty, 0).is_none());
        let _ = empty.add_input("only");
        assert!(duplicate_input_name(&empty, 0).is_none());
    }

    #[test]
    fn blif_mutators_change_the_bytes() {
        let blif = b".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n";
        for seed in 0..20 {
            let garbled = garble_blif(blif, seed).unwrap();
            assert_ne!(garbled, blif.to_vec());
            let truncated = truncate_blif(blif, seed).unwrap();
            assert!(truncated.len() < blif.len());
            assert!(drop_blif_line(blif, seed).is_some());
            assert!(swap_blif_lines(blif, seed).is_some());
        }
    }

    #[test]
    fn aiger_mutators_change_the_bytes() {
        let aag = b"aag 3 2 0 1 1\n2\n4\n6\n6 4 2\n";
        for seed in 0..20 {
            let truncated = truncate_aiger(aag, seed).unwrap();
            assert!(truncated.len() < aag.len());
            assert_ne!(garble_aiger(aag, seed).unwrap(), aag.to_vec());
            let perturbed = perturb_aiger_header(aag, seed).unwrap();
            assert_ne!(perturbed, aag.to_vec());
            // Only the header line is touched.
            let tail = |b: &[u8]| b[b.iter().position(|&c| c == b'\n').unwrap()..].to_vec();
            assert_eq!(tail(&perturbed), tail(aag));
        }
    }

    #[test]
    fn perturb_aiger_header_skips_headerless_streams() {
        assert!(perturb_aiger_header(b"no newline", 0).is_none());
        assert!(perturb_aiger_header(b"not aiger at all\nrest\n", 0).is_none());
    }

    #[test]
    fn circuit_mutators_on_the_paper_gate() {
        // (A+B+C)*D protected at the parallel/series junction (Fig. 2).
        let mut c = DominoCircuit::single_gate(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            Pdn::series(vec![
                Pdn::parallel(vec![
                    Pdn::transistor(Signal::input(0)),
                    Pdn::transistor(Signal::input(1)),
                    Pdn::transistor(Signal::input(2)),
                ]),
                Pdn::transistor(Signal::input(3)),
            ]),
        );
        c.gate_mut(GateId::from_index(0))
            .add_discharge(JunctionRef::new(vec![], 0));
        assert!(hazard::is_safe(&c));

        for seed in 0..20 {
            let dropped = drop_discharge(&c, seed).expect("the discharge is load-bearing");
            assert!(!hazard::is_safe(&dropped));

            let retargeted = retarget_discharge(&c, seed).expect("has discharge");
            assert!(retargeted.validate().is_err());

            let stripped = strip_protection(&c).expect("has protection");
            assert!(!hazard::check(&stripped).is_empty());

            let (rewired, witness) = retarget_fanin(&c, seed).expect("wrong-wire applies");
            assert!(rewired.validate().is_ok());
            assert_ne!(
                c.evaluate(&witness).unwrap(),
                rewired.evaluate(&witness).unwrap()
            );
        }
    }

    #[test]
    fn flip_pdn_junction_detectably_unprotects() {
        // D at the bottom is the PBE-prone orientation; the safe orientation
        // [D, (A+B+C)] needs no discharge. Flipping it back exposes the
        // committed junction with no protection present.
        let c = DominoCircuit::single_gate(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            Pdn::series(vec![
                Pdn::transistor(Signal::input(3)),
                Pdn::parallel(vec![
                    Pdn::transistor(Signal::input(0)),
                    Pdn::transistor(Signal::input(1)),
                    Pdn::transistor(Signal::input(2)),
                ]),
            ]),
        );
        assert!(hazard::is_safe(&c));
        for seed in 0..20 {
            let flipped = flip_pdn_junction(&c, seed).expect("flip is detectable");
            assert!(flipped.validate().is_err() || !hazard::is_safe(&flipped));
        }
    }
}
