use std::fmt;

use soi_netlist::{Network, NetworkError};

/// Phase of a primary-input literal in a unate network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The input as-is.
    Pos,
    /// The complemented input (realized by an inverter at the input
    /// boundary).
    Neg,
}

impl Phase {
    /// Applies the phase to a boolean value.
    pub fn apply(self, value: bool) -> bool {
        match self {
            Phase::Pos => value,
            Phase::Neg => !value,
        }
    }

    /// The opposite phase.
    pub fn flipped(self) -> Phase {
        match self {
            Phase::Pos => Phase::Neg,
            Phase::Neg => Phase::Pos,
        }
    }
}

/// A primary-input literal: input `index` in the given phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    /// Index into [`UnateNetwork::input_names`].
    pub input: usize,
    /// The phase.
    pub phase: Phase,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.phase {
            Phase::Pos => write!(f, "x{}", self.input),
            Phase::Neg => write!(f, "x{}'", self.input),
        }
    }
}

/// Identifier of a node in a [`UnateNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UId(pub(crate) u32);

impl UId {
    /// Creates an id from a raw index.
    pub fn from_index(index: usize) -> UId {
        UId(u32::try_from(index).expect("unate node index exceeds u32 range"))
    }

    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A signal inside a unate network: a node or a folded constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum USignal {
    /// A network node.
    Node(UId),
    /// A constant (arises from constant folding during conversion).
    Const(bool),
}

/// A node of a [`UnateNetwork`]: a literal leaf or a monotone 2-input gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UNode {
    /// A primary-input literal.
    Lit(Literal),
    /// Two-input AND.
    And(UId, UId),
    /// Two-input OR.
    Or(UId, UId),
}

impl UNode {
    /// The fanins of the node (empty for literals).
    pub fn fanins(&self) -> impl Iterator<Item = UId> {
        let pair = match *self {
            UNode::Lit(_) => [None, None],
            UNode::And(a, b) | UNode::Or(a, b) => [Some(a), Some(b)],
        };
        pair.into_iter().flatten()
    }

    /// Whether the node is a gate (AND or OR).
    pub fn is_gate(&self) -> bool {
        !matches!(self, UNode::Lit(_))
    }
}

/// A named output of a unate network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnateOutput {
    /// Port name (matches the original network's output name).
    pub name: String,
    /// The driving signal.
    pub signal: USignal,
    /// Whether an inverter sits at the output boundary (the unate network
    /// computes the complement of the original output).
    pub inverted: bool,
}

/// Structural statistics of a [`UnateNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnateStats {
    /// Number of literal leaves.
    pub literals: usize,
    /// Number of AND gates.
    pub and_gates: usize,
    /// Number of OR gates.
    pub or_gates: usize,
    /// Depth in gate levels (literals are level 0).
    pub depth: u32,
    /// Number of outputs carrying a boundary inverter.
    pub inverted_outputs: usize,
}

impl UnateStats {
    /// Total number of 2-input gates.
    pub fn gates(&self) -> usize {
        self.and_gates + self.or_gates
    }
}

/// One fanout-free cone of a [`ConePartition`]: a maximal set of nodes in
/// which every non-root node feeds exactly one consumer, itself in the
/// same unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConeUnit {
    nodes: Vec<UId>,
    deps: Vec<usize>,
}

impl ConeUnit {
    /// The unit's nodes in topological order (the root is last).
    pub fn nodes(&self) -> &[UId] {
        &self.nodes
    }

    /// Indices of the units whose roots this unit reads (sorted, deduped).
    /// Always strictly smaller than this unit's own index.
    pub fn deps(&self) -> &[usize] {
        &self.deps
    }

    /// The unit's root: its only node visible outside the unit.
    pub fn root(&self) -> UId {
        *self.nodes.last().expect("a unit is never empty")
    }
}

/// Canonical structural description of one fanout-free [`ConeUnit`] — the
/// basis of cone-level memoization in the mapper.
///
/// Two units receive the same [`sig`] exactly when their trees match
/// gate-for-gate under a root-first depth-first traversal, *modulo* the
/// identity and phase of primary-input literals at the leaves and the
/// identity of out-of-unit boundary fanins (only the *sharing pattern* of
/// boundary fanins is captured: `And(s, s)` and `And(s1, s2)` hash
/// differently). Operand order is deliberately **not** canonicalized —
/// the tuple DP treats AND operands asymmetrically (stack ordering
/// heuristics), so `And(a, b)` and `And(b, a)` may map differently and
/// must not collide.
///
/// [`sig`]: ConeShape::sig
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConeShape {
    /// 128-bit structural signature (two independently seeded 64-bit
    /// hashes of the canonical traversal token stream).
    pub sig: [u64; 2],
    /// The unit's nodes in canonical order: root-first depth-first
    /// preorder, first operand before second. Same length and content as
    /// [`ConeUnit::nodes`], reordered. Isomorphic units list corresponding
    /// nodes at corresponding positions.
    pub canon: Vec<UId>,
    /// Out-of-unit fanins in order of traversal occurrence; a boundary
    /// node read twice appears twice. Isomorphic units have occurrence
    /// lists related by a node bijection.
    pub boundary: Vec<UId>,
}

/// Reusable buffers for [`UnateNetwork::cone_shape_into`]: the computed
/// [`shape`](ShapeScratch::shape) plus the traversal stack. Shape
/// computation runs once per cone unit per mapping pass, so callers on
/// that path keep one of these per worker instead of allocating three
/// vectors per unit.
#[derive(Debug, Default)]
pub struct ShapeScratch {
    /// The most recently computed shape (vectors are reused in place).
    pub shape: ConeShape,
    stack: Vec<UId>,
}

/// Chained multiply-xorshift word mixer: cheap, order-sensitive, and —
/// doubled up with two seeds into a 128-bit signature — collision-safe
/// enough for structural keys that are additionally sanity-checked on
/// lookup.
struct Mix(u64);

impl Mix {
    #[inline]
    fn word(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 ^= self.0 >> 29;
    }
}

impl UnateNetwork {
    /// Computes the canonical structural shape of one cone unit of this
    /// network's [`cone_partition`](UnateNetwork::cone_partition).
    pub fn cone_shape(&self, unit: &ConeUnit) -> ConeShape {
        let mut scratch = ShapeScratch::default();
        self.cone_shape_into(unit, &mut scratch);
        scratch.shape
    }

    /// Allocation-free variant of [`cone_shape`](UnateNetwork::cone_shape):
    /// computes the shape into `scratch.shape`, reusing its vectors.
    pub fn cone_shape_into(&self, unit: &ConeUnit, scratch: &mut ShapeScratch) {
        // Membership test against the unit's (ascending) node list.
        let members = unit.nodes();
        let in_unit = |id: UId| members.binary_search(&id).is_ok();
        let ShapeScratch { shape, stack } = scratch;
        shape.canon.clear();
        shape.canon.reserve(members.len());
        shape.boundary.clear();
        // Two independently seeded mixers give a 128-bit signature, so
        // accidental collisions between non-isomorphic cones are not a
        // practical concern (the mapper additionally sanity-checks entry
        // shapes on lookup).
        let mut h1 = Mix(0x5049_4e45_434f_4e45); // domain tags: two distinct
        let mut h2 = Mix(0x434f_4e45_5349_4732); // seeds for the same stream
        let mut token = |tag: u8, aux: u32| {
            let word = u64::from(tag) << 32 | u64::from(aux);
            h1.word(word);
            h2.word(word);
        };
        // Explicit stack: cones can be chains thousands of nodes deep.
        stack.clear();
        stack.push(unit.root());
        while let Some(id) = stack.pop() {
            if !in_unit(id) {
                // Boundary fanin: record the occurrence and hash only its
                // sharing class (index of its first occurrence).
                let class = shape
                    .boundary
                    .iter()
                    .position(|&b| b == id)
                    .unwrap_or(shape.boundary.len());
                token(3, class as u32);
                shape.boundary.push(id);
                continue;
            }
            shape.canon.push(id);
            match self.node(id) {
                UNode::Lit(_) => token(0, 0),
                UNode::And(a, b) => {
                    token(1, 0);
                    stack.push(b);
                    stack.push(a);
                }
                UNode::Or(a, b) => {
                    token(2, 0);
                    stack.push(b);
                    stack.push(a);
                }
            }
        }
        debug_assert_eq!(
            shape.canon.len(),
            members.len(),
            "traversal covers the unit"
        );
        shape.sig = [h1.0, h2.0];
    }
}

/// A partition of a network's topological order into fanout-free cone
/// units plus a dependency-level schedule — see
/// [`UnateNetwork::cone_partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConePartition {
    units: Vec<ConeUnit>,
    levels: Vec<Vec<usize>>,
}

impl ConePartition {
    /// All units, ordered by their root's topological index.
    pub fn units(&self) -> &[ConeUnit] {
        &self.units
    }

    /// The unit with the given index.
    pub fn unit(&self, index: usize) -> &ConeUnit {
        &self.units[index]
    }

    /// Unit indices grouped by schedule level: units within one level are
    /// mutually independent, and depend only on units of earlier levels.
    pub fn levels(&self) -> &[Vec<usize>] {
        &self.levels
    }
}

/// An inverter-free network of 2-input AND/OR gates over primary-input
/// literals — the mapper's input representation.
///
/// Nodes are stored in topological order (fanins precede fanouts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnateNetwork {
    input_names: Vec<String>,
    nodes: Vec<UNode>,
    outputs: Vec<UnateOutput>,
}

impl UnateNetwork {
    /// Creates an empty unate network over the given primary inputs.
    pub fn new(input_names: Vec<String>) -> UnateNetwork {
        UnateNetwork {
            input_names,
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Names of the primary inputs of the *original* network.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: UId) -> UNode {
        self.nodes[id.index()]
    }

    /// Iterator over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (UId, UNode)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (UId::from_index(i), *n))
    }

    /// The output bindings.
    pub fn outputs(&self) -> &[UnateOutput] {
        &self.outputs
    }

    /// Adds a literal node.
    ///
    /// # Panics
    ///
    /// Panics if the literal's input index is out of range.
    pub fn add_literal(&mut self, literal: Literal) -> UId {
        assert!(
            literal.input < self.input_names.len(),
            "literal input {} out of range",
            literal.input
        );
        self.push(UNode::Lit(literal))
    }

    /// Adds an AND gate.
    ///
    /// # Panics
    ///
    /// Panics if a fanin id is not yet defined.
    pub fn add_and(&mut self, a: UId, b: UId) -> UId {
        self.check(a);
        self.check(b);
        self.push(UNode::And(a, b))
    }

    /// Adds an OR gate.
    ///
    /// # Panics
    ///
    /// Panics if a fanin id is not yet defined.
    pub fn add_or(&mut self, a: UId, b: UId) -> UId {
        self.check(a);
        self.check(b);
        self.push(UNode::Or(a, b))
    }

    /// Binds a named output.
    pub fn add_output(&mut self, name: impl Into<String>, signal: USignal, inverted: bool) {
        if let USignal::Node(id) = signal {
            self.check(id);
        }
        self.outputs.push(UnateOutput {
            name: name.into(),
            signal,
            inverted,
        });
    }

    fn check(&self, id: UId) {
        assert!(id.index() < self.nodes.len(), "node {id} not yet defined");
    }

    fn push(&mut self, node: UNode) -> UId {
        let id = UId::from_index(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Whether the network is inverter-free — trivially true by
    /// construction; checks that every node is a literal, AND or OR, and
    /// that every gate's fanins precede it.
    pub fn is_inverter_free(&self) -> bool {
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, n)| n.fanins().all(|f| f.index() < i))
    }

    /// Number of fanout edges per node (outputs count as one each).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            for fanin in node.fanins() {
                counts[fanin.index()] += 1;
            }
        }
        for out in &self.outputs {
            if let USignal::Node(id) = out.signal {
                counts[id.index()] += 1;
            }
        }
        counts
    }

    /// Structural statistics.
    pub fn stats(&self) -> UnateStats {
        let mut stats = UnateStats {
            inverted_outputs: self.outputs.iter().filter(|o| o.inverted).count(),
            ..UnateStats::default()
        };
        let mut levels = vec![0u32; self.nodes.len()];
        for (id, node) in self.iter() {
            match node {
                UNode::Lit(_) => stats.literals += 1,
                UNode::And(a, b) => {
                    stats.and_gates += 1;
                    levels[id.index()] = 1 + levels[a.index()].max(levels[b.index()]);
                }
                UNode::Or(a, b) => {
                    stats.or_gates += 1;
                    levels[id.index()] = 1 + levels[a.index()].max(levels[b.index()]);
                }
            }
        }
        stats.depth = self
            .outputs
            .iter()
            .filter_map(|o| match o.signal {
                USignal::Node(id) => Some(levels[id.index()]),
                USignal::Const(_) => None,
            })
            .max()
            .unwrap_or(0);
        stats
    }

    /// Evaluates the network on one primary-input vector.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InputArity`] if `values` has the wrong
    /// length.
    pub fn simulate(&self, values: &[bool]) -> Result<Vec<bool>, NetworkError> {
        if values.len() != self.input_names.len() {
            return Err(NetworkError::InputArity {
                expected: self.input_names.len(),
                got: values.len(),
            });
        }
        let mut state = vec![false; self.nodes.len()];
        for (id, node) in self.iter() {
            state[id.index()] = match node {
                UNode::Lit(l) => l.phase.apply(values[l.input]),
                UNode::And(a, b) => state[a.index()] && state[b.index()],
                UNode::Or(a, b) => state[a.index()] || state[b.index()],
            };
        }
        Ok(self
            .outputs
            .iter()
            .map(|o| {
                let v = match o.signal {
                    USignal::Node(id) => state[id.index()],
                    USignal::Const(c) => c,
                };
                v != o.inverted
            })
            .collect())
    }

    /// Partitions the topological order into fanout-free cone work units.
    ///
    /// Every node belongs to exactly one unit. A node whose single fanout
    /// edge goes to a gate joins that consumer's unit; nodes with multiple
    /// fanouts (or none, or whose only consumer is a primary output) root
    /// their own unit. Units therefore only depend on each other across
    /// multi-fanout boundaries, which makes each unit an independently
    /// solvable tree for any DP that joins at those boundaries.
    ///
    /// The returned partition also carries a level schedule: units in the
    /// same level have no dependencies among themselves and can be
    /// processed concurrently once all earlier levels are done.
    pub fn cone_partition(&self) -> ConePartition {
        let n = self.nodes.len();
        let fanout = self.fanout_counts();
        // The gate consuming each node, if any (last writer wins; only
        // consulted when the node has exactly one fanout edge, in which
        // case the writer is unique and is that edge).
        let mut gate_consumer: Vec<Option<UId>> = vec![None; n];
        for (id, node) in self.iter() {
            for fanin in node.fanins() {
                gate_consumer[fanin.index()] = Some(id);
            }
        }
        // Assign units in reverse topological order so a fanout-free node
        // can inherit its consumer's unit.
        let mut unit_of = vec![usize::MAX; n];
        let mut roots = 0usize;
        for i in (0..n).rev() {
            unit_of[i] = match gate_consumer[i] {
                Some(c) if fanout[i] == 1 => unit_of[c.index()],
                _ => {
                    roots += 1;
                    roots - 1
                }
            };
        }
        // Reverse discovery order numbered roots from the outputs down;
        // flip so unit ids ascend with their root's topological index.
        for u in &mut unit_of {
            *u = roots - 1 - *u;
        }
        let mut units: Vec<ConeUnit> = (0..roots)
            .map(|_| ConeUnit {
                nodes: Vec::new(),
                deps: Vec::new(),
            })
            .collect();
        for i in 0..n {
            units[unit_of[i]].nodes.push(UId::from_index(i));
        }
        for (id, node) in self.iter() {
            let u = unit_of[id.index()];
            for fanin in node.fanins() {
                let d = unit_of[fanin.index()];
                if d != u {
                    units[u].deps.push(d);
                }
            }
        }
        // A unit's dependencies are roots of earlier units, so dep < unit
        // always holds and levels can be computed in one forward pass.
        let mut level_of = vec![0usize; roots];
        let mut depth = 0usize;
        for (u, unit) in units.iter_mut().enumerate() {
            unit.deps.sort_unstable();
            unit.deps.dedup();
            let level = unit
                .deps
                .iter()
                .map(|&d| level_of[d] + 1)
                .max()
                .unwrap_or(0);
            level_of[u] = level;
            depth = depth.max(level + 1);
        }
        let mut levels: Vec<Vec<usize>> = vec![Vec::new(); depth];
        for (u, &level) in level_of.iter().enumerate() {
            levels[level].push(u);
        }
        ConePartition { units, levels }
    }

    /// Lowers the unate network back into a gate-level [`Network`] (literals
    /// become input-side inverters, boundary inversions become output-side
    /// inverters) for equivalence checking against the original.
    pub fn to_network(&self) -> Network {
        let mut n = Network::new("unate");
        let inputs: Vec<_> = self
            .input_names
            .iter()
            .map(|name| n.add_input(name.clone()))
            .collect();
        let mut neg_inputs: Vec<Option<soi_netlist::NodeId>> = vec![None; inputs.len()];
        let mut mapped = Vec::with_capacity(self.nodes.len());
        for (_, node) in self.iter() {
            let id = match node {
                UNode::Lit(l) => match l.phase {
                    Phase::Pos => inputs[l.input],
                    Phase::Neg => {
                        *neg_inputs[l.input].get_or_insert_with(|| n.inv(inputs[l.input]))
                    }
                },
                UNode::And(a, b) => n.and2(mapped[a.index()], mapped[b.index()]),
                UNode::Or(a, b) => n.or2(mapped[a.index()], mapped[b.index()]),
            };
            mapped.push(id);
        }
        for out in &self.outputs {
            let driver = match out.signal {
                USignal::Node(id) => mapped[id.index()],
                USignal::Const(c) => n.add_const(c),
            };
            let driver = if out.inverted { n.inv(driver) } else { driver };
            n.add_output(out.name.clone(), driver);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> UnateNetwork {
        // f = (a + b') * c
        let mut u = UnateNetwork::new(vec!["a".into(), "b".into(), "c".into()]);
        let a = u.add_literal(Literal {
            input: 0,
            phase: Phase::Pos,
        });
        let nb = u.add_literal(Literal {
            input: 1,
            phase: Phase::Neg,
        });
        let c = u.add_literal(Literal {
            input: 2,
            phase: Phase::Pos,
        });
        let o = u.add_or(a, nb);
        let f = u.add_and(o, c);
        u.add_output("f", USignal::Node(f), false);
        u
    }

    #[test]
    fn simulate_matches_function() {
        let u = small();
        for bits in 0..8u8 {
            let v = [bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
            let expect = (v[0] || !v[1]) && v[2];
            assert_eq!(u.simulate(&v).unwrap(), vec![expect], "{bits:03b}");
        }
    }

    #[test]
    fn stats_of_small() {
        let u = small();
        let s = u.stats();
        assert_eq!(s.literals, 3);
        assert_eq!(s.and_gates, 1);
        assert_eq!(s.or_gates, 1);
        assert_eq!(s.gates(), 2);
        assert_eq!(s.depth, 2);
    }

    #[test]
    fn to_network_is_equivalent() {
        let u = small();
        let n = u.to_network();
        for bits in 0..8u8 {
            let v = [bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
            assert_eq!(u.simulate(&v).unwrap(), n.simulate(&v).unwrap());
        }
    }

    #[test]
    fn inverted_output_flips() {
        let mut u = small();
        let f = UId::from_index(4);
        u.add_output("nf", USignal::Node(f), true);
        let out = u.simulate(&[true, false, true]).unwrap();
        assert_eq!(out[0], !out[1]);
    }

    #[test]
    fn const_output() {
        let mut u = UnateNetwork::new(vec!["a".into()]);
        u.add_output("one", USignal::Const(true), false);
        u.add_output("zero", USignal::Const(true), true);
        assert_eq!(u.simulate(&[false]).unwrap(), vec![true, false]);
        let n = u.to_network();
        assert_eq!(n.simulate(&[false]).unwrap(), vec![true, false]);
    }

    #[test]
    fn inverter_free_by_construction() {
        assert!(small().is_inverter_free());
    }

    #[test]
    fn fanout_counts() {
        let u = small();
        let counts = u.fanout_counts();
        assert_eq!(counts[3], 1); // or feeds and
        assert_eq!(counts[4], 1); // and feeds output
    }

    /// Checks the structural invariants every partition must satisfy.
    fn check_partition(u: &UnateNetwork) {
        let p = u.cone_partition();
        // Every node in exactly one unit, units in topo order.
        let mut seen = vec![false; u.len()];
        for unit in p.units() {
            let mut last = None;
            for &id in unit.nodes() {
                assert!(!seen[id.index()], "{id} in two units");
                seen[id.index()] = true;
                assert!(last.is_none_or(|l| l < id.index()));
                last = Some(id.index());
            }
        }
        assert!(seen.iter().all(|&s| s), "node missing from partition");
        // Deps point strictly backwards and land on unit roots.
        for (i, unit) in p.units().iter().enumerate() {
            for &d in unit.deps() {
                assert!(d < i, "unit {i} depends forward on {d}");
            }
        }
        // Levels cover all units; deps live in earlier levels.
        let mut level_of = vec![usize::MAX; p.units().len()];
        for (l, units) in p.levels().iter().enumerate() {
            for &un in units {
                level_of[un] = l;
            }
        }
        for (i, unit) in p.units().iter().enumerate() {
            assert_ne!(level_of[i], usize::MAX);
            for &d in unit.deps() {
                assert!(level_of[d] < level_of[i]);
            }
        }
    }

    #[test]
    fn cone_partition_of_tree_is_one_unit() {
        // `small` is a pure tree: every node has fanout 1 into a gate,
        // except the output root.
        let u = small();
        let p = u.cone_partition();
        check_partition(&u);
        assert_eq!(p.units().len(), 1);
        assert_eq!(p.unit(0).nodes().len(), 5);
        assert_eq!(p.unit(0).root(), UId::from_index(4));
        assert_eq!(p.levels().len(), 1);
    }

    #[test]
    fn cone_partition_splits_at_multi_fanout() {
        // shared = a & b feeds two consumers: three units, two levels.
        let mut u = UnateNetwork::new(vec!["a".into(), "b".into(), "c".into()]);
        let a = u.add_literal(Literal {
            input: 0,
            phase: Phase::Pos,
        });
        let b = u.add_literal(Literal {
            input: 1,
            phase: Phase::Pos,
        });
        let c = u.add_literal(Literal {
            input: 2,
            phase: Phase::Pos,
        });
        let shared = u.add_and(a, b);
        let f1 = u.add_or(shared, c);
        let f2 = u.add_and(shared, c);
        u.add_output("f1", USignal::Node(f1), false);
        u.add_output("f2", USignal::Node(f2), false);
        check_partition(&u);
        let p = u.cone_partition();
        // Units: {a, b, shared}, {c} (two consumers), {f1}, {f2}.
        assert_eq!(p.units().len(), 4);
        assert_eq!(p.levels().len(), 2);
        assert_eq!(p.levels()[1].len(), 2, "f1 and f2 run concurrently");
        let shared_unit = p
            .units()
            .iter()
            .find(|un| un.root() == shared)
            .expect("shared roots a unit");
        assert_eq!(shared_unit.nodes(), &[a, b, shared]);
    }

    #[test]
    fn cone_partition_output_consumer_is_a_root() {
        // A node driving only a primary output roots its own unit even
        // with fanout 1.
        let u = small();
        let p = u.cone_partition();
        assert_eq!(p.unit(p.units().len() - 1).root(), UId::from_index(4));
    }

    #[test]
    fn cone_partition_duplicate_fanin_is_a_boundary() {
        // And(a, a): a has two fanout edges, so it must root its own unit.
        let mut u = UnateNetwork::new(vec!["a".into()]);
        let a = u.add_literal(Literal {
            input: 0,
            phase: Phase::Pos,
        });
        let f = u.add_and(a, a);
        u.add_output("f", USignal::Node(f), false);
        check_partition(&u);
        let p = u.cone_partition();
        assert_eq!(p.units().len(), 2);
        assert_eq!(p.unit(0).nodes(), &[a]);
    }

    #[test]
    fn cone_shape_matches_isomorphic_cones() {
        // Two structurally identical trees over different inputs/phases
        // hash identically; a tree with swapped gate kinds does not.
        let mut u = UnateNetwork::new(vec!["a".into(), "b".into(), "c".into(), "d".into()]);
        let mk = |u: &mut UnateNetwork, i0: usize, p0: Phase, i1: usize| {
            let x = u.add_literal(Literal {
                input: i0,
                phase: p0,
            });
            let y = u.add_literal(Literal {
                input: i1,
                phase: Phase::Pos,
            });
            u.add_and(x, y)
        };
        let f = mk(&mut u, 0, Phase::Pos, 1);
        let g = mk(&mut u, 2, Phase::Neg, 3);
        let ha = u.add_literal(Literal {
            input: 0,
            phase: Phase::Pos,
        });
        let hb = u.add_literal(Literal {
            input: 1,
            phase: Phase::Pos,
        });
        let h = u.add_or(ha, hb);
        u.add_output("f", USignal::Node(f), false);
        u.add_output("g", USignal::Node(g), false);
        u.add_output("h", USignal::Node(h), false);
        let p = u.cone_partition();
        let shapes: Vec<ConeShape> = p.units().iter().map(|un| u.cone_shape(un)).collect();
        assert_eq!(shapes.len(), 3);
        assert_eq!(shapes[0].sig, shapes[1].sig, "isomorphic AND cones");
        assert_ne!(shapes[0].sig, shapes[2].sig, "AND vs OR cone");
        // Canonical orders are positionally corresponding.
        assert_eq!(shapes[0].canon.len(), shapes[1].canon.len());
        assert_eq!(shapes[0].canon[0], f);
        assert_eq!(shapes[1].canon[0], g);
    }

    #[test]
    fn cone_shape_distinguishes_boundary_sharing() {
        // And(s, s) vs And(s1, s2): same tree skeleton, different boundary
        // sharing pattern — must not collide.
        let mut u = UnateNetwork::new(vec!["a".into(), "b".into()]);
        let a = u.add_literal(Literal {
            input: 0,
            phase: Phase::Pos,
        });
        let b = u.add_literal(Literal {
            input: 1,
            phase: Phase::Pos,
        });
        let shared = u.add_and(a, a);
        let distinct = u.add_and(a, b);
        u.add_output("s", USignal::Node(shared), false);
        u.add_output("d", USignal::Node(distinct), false);
        u.add_output("a", USignal::Node(a), false);
        u.add_output("b", USignal::Node(b), false);
        let p = u.cone_partition();
        let shape_of = |root: UId| {
            let unit = p.units().iter().find(|un| un.root() == root).unwrap();
            u.cone_shape(unit)
        };
        let s = shape_of(shared);
        let d = shape_of(distinct);
        assert_ne!(s.sig, d.sig);
        assert_eq!(s.boundary, vec![a, a]);
        assert_eq!(d.boundary, vec![a, b]);
    }

    #[test]
    fn cone_shape_covers_every_unit_node_once() {
        let u = small();
        let p = u.cone_partition();
        let shape = u.cone_shape(p.unit(0));
        let mut canon = shape.canon.clone();
        canon.sort_unstable();
        assert_eq!(canon, p.unit(0).nodes());
        assert_eq!(shape.canon[0], p.unit(0).root(), "root comes first");
        assert!(shape.boundary.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_literal_panics() {
        let mut u = UnateNetwork::new(vec!["a".into()]);
        u.add_literal(Literal {
            input: 3,
            phase: Phase::Pos,
        });
    }
}
