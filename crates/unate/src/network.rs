use std::fmt;

use soi_netlist::{Network, NetworkError};

/// Phase of a primary-input literal in a unate network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The input as-is.
    Pos,
    /// The complemented input (realized by an inverter at the input
    /// boundary).
    Neg,
}

impl Phase {
    /// Applies the phase to a boolean value.
    pub fn apply(self, value: bool) -> bool {
        match self {
            Phase::Pos => value,
            Phase::Neg => !value,
        }
    }

    /// The opposite phase.
    pub fn flipped(self) -> Phase {
        match self {
            Phase::Pos => Phase::Neg,
            Phase::Neg => Phase::Pos,
        }
    }
}

/// A primary-input literal: input `index` in the given phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    /// Index into [`UnateNetwork::input_names`].
    pub input: usize,
    /// The phase.
    pub phase: Phase,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.phase {
            Phase::Pos => write!(f, "x{}", self.input),
            Phase::Neg => write!(f, "x{}'", self.input),
        }
    }
}

/// Identifier of a node in a [`UnateNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UId(pub(crate) u32);

impl UId {
    /// Creates an id from a raw index.
    pub fn from_index(index: usize) -> UId {
        UId(u32::try_from(index).expect("unate node index exceeds u32 range"))
    }

    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A signal inside a unate network: a node or a folded constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum USignal {
    /// A network node.
    Node(UId),
    /// A constant (arises from constant folding during conversion).
    Const(bool),
}

/// A node of a [`UnateNetwork`]: a literal leaf or a monotone 2-input gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UNode {
    /// A primary-input literal.
    Lit(Literal),
    /// Two-input AND.
    And(UId, UId),
    /// Two-input OR.
    Or(UId, UId),
}

impl UNode {
    /// The fanins of the node (empty for literals).
    pub fn fanins(&self) -> impl Iterator<Item = UId> {
        let pair = match *self {
            UNode::Lit(_) => [None, None],
            UNode::And(a, b) | UNode::Or(a, b) => [Some(a), Some(b)],
        };
        pair.into_iter().flatten()
    }

    /// Whether the node is a gate (AND or OR).
    pub fn is_gate(&self) -> bool {
        !matches!(self, UNode::Lit(_))
    }
}

/// A named output of a unate network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnateOutput {
    /// Port name (matches the original network's output name).
    pub name: String,
    /// The driving signal.
    pub signal: USignal,
    /// Whether an inverter sits at the output boundary (the unate network
    /// computes the complement of the original output).
    pub inverted: bool,
}

/// Structural statistics of a [`UnateNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnateStats {
    /// Number of literal leaves.
    pub literals: usize,
    /// Number of AND gates.
    pub and_gates: usize,
    /// Number of OR gates.
    pub or_gates: usize,
    /// Depth in gate levels (literals are level 0).
    pub depth: u32,
    /// Number of outputs carrying a boundary inverter.
    pub inverted_outputs: usize,
}

impl UnateStats {
    /// Total number of 2-input gates.
    pub fn gates(&self) -> usize {
        self.and_gates + self.or_gates
    }
}

/// An inverter-free network of 2-input AND/OR gates over primary-input
/// literals — the mapper's input representation.
///
/// Nodes are stored in topological order (fanins precede fanouts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnateNetwork {
    input_names: Vec<String>,
    nodes: Vec<UNode>,
    outputs: Vec<UnateOutput>,
}

impl UnateNetwork {
    /// Creates an empty unate network over the given primary inputs.
    pub fn new(input_names: Vec<String>) -> UnateNetwork {
        UnateNetwork {
            input_names,
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Names of the primary inputs of the *original* network.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: UId) -> UNode {
        self.nodes[id.index()]
    }

    /// Iterator over `(id, node)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (UId, UNode)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (UId::from_index(i), *n))
    }

    /// The output bindings.
    pub fn outputs(&self) -> &[UnateOutput] {
        &self.outputs
    }

    /// Adds a literal node.
    ///
    /// # Panics
    ///
    /// Panics if the literal's input index is out of range.
    pub fn add_literal(&mut self, literal: Literal) -> UId {
        assert!(
            literal.input < self.input_names.len(),
            "literal input {} out of range",
            literal.input
        );
        self.push(UNode::Lit(literal))
    }

    /// Adds an AND gate.
    ///
    /// # Panics
    ///
    /// Panics if a fanin id is not yet defined.
    pub fn add_and(&mut self, a: UId, b: UId) -> UId {
        self.check(a);
        self.check(b);
        self.push(UNode::And(a, b))
    }

    /// Adds an OR gate.
    ///
    /// # Panics
    ///
    /// Panics if a fanin id is not yet defined.
    pub fn add_or(&mut self, a: UId, b: UId) -> UId {
        self.check(a);
        self.check(b);
        self.push(UNode::Or(a, b))
    }

    /// Binds a named output.
    pub fn add_output(&mut self, name: impl Into<String>, signal: USignal, inverted: bool) {
        if let USignal::Node(id) = signal {
            self.check(id);
        }
        self.outputs.push(UnateOutput {
            name: name.into(),
            signal,
            inverted,
        });
    }

    fn check(&self, id: UId) {
        assert!(id.index() < self.nodes.len(), "node {id} not yet defined");
    }

    fn push(&mut self, node: UNode) -> UId {
        let id = UId::from_index(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Whether the network is inverter-free — trivially true by
    /// construction; checks that every node is a literal, AND or OR, and
    /// that every gate's fanins precede it.
    pub fn is_inverter_free(&self) -> bool {
        self.nodes
            .iter()
            .enumerate()
            .all(|(i, n)| n.fanins().all(|f| f.index() < i))
    }

    /// Number of fanout edges per node (outputs count as one each).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            for fanin in node.fanins() {
                counts[fanin.index()] += 1;
            }
        }
        for out in &self.outputs {
            if let USignal::Node(id) = out.signal {
                counts[id.index()] += 1;
            }
        }
        counts
    }

    /// Structural statistics.
    pub fn stats(&self) -> UnateStats {
        let mut stats = UnateStats {
            inverted_outputs: self.outputs.iter().filter(|o| o.inverted).count(),
            ..UnateStats::default()
        };
        let mut levels = vec![0u32; self.nodes.len()];
        for (id, node) in self.iter() {
            match node {
                UNode::Lit(_) => stats.literals += 1,
                UNode::And(a, b) => {
                    stats.and_gates += 1;
                    levels[id.index()] = 1 + levels[a.index()].max(levels[b.index()]);
                }
                UNode::Or(a, b) => {
                    stats.or_gates += 1;
                    levels[id.index()] = 1 + levels[a.index()].max(levels[b.index()]);
                }
            }
        }
        stats.depth = self
            .outputs
            .iter()
            .filter_map(|o| match o.signal {
                USignal::Node(id) => Some(levels[id.index()]),
                USignal::Const(_) => None,
            })
            .max()
            .unwrap_or(0);
        stats
    }

    /// Evaluates the network on one primary-input vector.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InputArity`] if `values` has the wrong
    /// length.
    pub fn simulate(&self, values: &[bool]) -> Result<Vec<bool>, NetworkError> {
        if values.len() != self.input_names.len() {
            return Err(NetworkError::InputArity {
                expected: self.input_names.len(),
                got: values.len(),
            });
        }
        let mut state = vec![false; self.nodes.len()];
        for (id, node) in self.iter() {
            state[id.index()] = match node {
                UNode::Lit(l) => l.phase.apply(values[l.input]),
                UNode::And(a, b) => state[a.index()] && state[b.index()],
                UNode::Or(a, b) => state[a.index()] || state[b.index()],
            };
        }
        Ok(self
            .outputs
            .iter()
            .map(|o| {
                let v = match o.signal {
                    USignal::Node(id) => state[id.index()],
                    USignal::Const(c) => c,
                };
                v != o.inverted
            })
            .collect())
    }

    /// Lowers the unate network back into a gate-level [`Network`] (literals
    /// become input-side inverters, boundary inversions become output-side
    /// inverters) for equivalence checking against the original.
    pub fn to_network(&self) -> Network {
        let mut n = Network::new("unate");
        let inputs: Vec<_> = self
            .input_names
            .iter()
            .map(|name| n.add_input(name.clone()))
            .collect();
        let mut neg_inputs: Vec<Option<soi_netlist::NodeId>> = vec![None; inputs.len()];
        let mut mapped = Vec::with_capacity(self.nodes.len());
        for (_, node) in self.iter() {
            let id = match node {
                UNode::Lit(l) => match l.phase {
                    Phase::Pos => inputs[l.input],
                    Phase::Neg => {
                        *neg_inputs[l.input].get_or_insert_with(|| n.inv(inputs[l.input]))
                    }
                },
                UNode::And(a, b) => n.and2(mapped[a.index()], mapped[b.index()]),
                UNode::Or(a, b) => n.or2(mapped[a.index()], mapped[b.index()]),
            };
            mapped.push(id);
        }
        for out in &self.outputs {
            let driver = match out.signal {
                USignal::Node(id) => mapped[id.index()],
                USignal::Const(c) => n.add_const(c),
            };
            let driver = if out.inverted { n.inv(driver) } else { driver };
            n.add_output(out.name.clone(), driver);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> UnateNetwork {
        // f = (a + b') * c
        let mut u = UnateNetwork::new(vec!["a".into(), "b".into(), "c".into()]);
        let a = u.add_literal(Literal {
            input: 0,
            phase: Phase::Pos,
        });
        let nb = u.add_literal(Literal {
            input: 1,
            phase: Phase::Neg,
        });
        let c = u.add_literal(Literal {
            input: 2,
            phase: Phase::Pos,
        });
        let o = u.add_or(a, nb);
        let f = u.add_and(o, c);
        u.add_output("f", USignal::Node(f), false);
        u
    }

    #[test]
    fn simulate_matches_function() {
        let u = small();
        for bits in 0..8u8 {
            let v = [bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
            let expect = (v[0] || !v[1]) && v[2];
            assert_eq!(u.simulate(&v).unwrap(), vec![expect], "{bits:03b}");
        }
    }

    #[test]
    fn stats_of_small() {
        let u = small();
        let s = u.stats();
        assert_eq!(s.literals, 3);
        assert_eq!(s.and_gates, 1);
        assert_eq!(s.or_gates, 1);
        assert_eq!(s.gates(), 2);
        assert_eq!(s.depth, 2);
    }

    #[test]
    fn to_network_is_equivalent() {
        let u = small();
        let n = u.to_network();
        for bits in 0..8u8 {
            let v = [bits & 1 == 1, bits & 2 == 2, bits & 4 == 4];
            assert_eq!(u.simulate(&v).unwrap(), n.simulate(&v).unwrap());
        }
    }

    #[test]
    fn inverted_output_flips() {
        let mut u = small();
        let f = UId::from_index(4);
        u.add_output("nf", USignal::Node(f), true);
        let out = u.simulate(&[true, false, true]).unwrap();
        assert_eq!(out[0], !out[1]);
    }

    #[test]
    fn const_output() {
        let mut u = UnateNetwork::new(vec!["a".into()]);
        u.add_output("one", USignal::Const(true), false);
        u.add_output("zero", USignal::Const(true), true);
        assert_eq!(u.simulate(&[false]).unwrap(), vec![true, false]);
        let n = u.to_network();
        assert_eq!(n.simulate(&[false]).unwrap(), vec![true, false]);
    }

    #[test]
    fn inverter_free_by_construction() {
        assert!(small().is_inverter_free());
    }

    #[test]
    fn fanout_counts() {
        let u = small();
        let counts = u.fanout_counts();
        assert_eq!(counts[3], 1); // or feeds and
        assert_eq!(counts[4], 1); // and feeds output
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_literal_panics() {
        let mut u = UnateNetwork::new(vec!["a".into()]);
        u.add_literal(Literal {
            input: 3,
            phase: Phase::Pos,
        });
    }
}
