//! # soi-unate
//!
//! Binate-to-unate network conversion — the front end of the domino mapping
//! flow (§IV of the paper).
//!
//! Domino logic is monotonic: gate outputs can only rise during evaluation,
//! so only *unate* (inverter-free) networks of AND/OR gates can be mapped.
//! This crate converts an arbitrary [`Network`](soi_netlist::Network) into a
//! [`UnateNetwork`] by the paper's bubble-pushing recipe: inverters are
//! pushed toward the primary inputs with De Morgan's laws, duplicating logic
//! where both phases of an internal signal are required. Inversions survive
//! only at the boundary, as input literals ([`Literal`]) and optional
//! output-side inverters.
//!
//! # Example
//!
//! ```rust
//! use soi_netlist::Network;
//! use soi_unate::{convert, Options};
//!
//! # fn main() -> Result<(), soi_unate::UnateError> {
//! // f = !(a & b) | c — binate in a and b.
//! let mut n = Network::new("t");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let c = n.add_input("c");
//! let g = n.nand2(a, b);
//! let f = n.or2(g, c);
//! n.add_output("f", f);
//!
//! let u = convert(&n, &Options::default())?;
//! assert!(u.is_inverter_free());
//! assert!(soi_unate::verify::equivalent(&n, &u, 16, 7)?);
//! # Ok(())
//! # }
//! ```

mod convert;
mod error;
mod network;
pub mod verify;

pub use convert::{convert, Options, OutputPhase};
pub use error::UnateError;
pub use network::{
    ConePartition, ConeShape, ConeUnit, Literal, Phase, ShapeScratch, UId, UNode, USignal,
    UnateNetwork, UnateOutput, UnateStats,
};
