//! The bubble-pushing conversion itself.
//!
//! This pass visits every `(node, phase)` pair of a 100k-gate network, so
//! its bookkeeping is deliberately cheap: the per-pair memo and the
//! literal cache are dense `Vec`s indexed by `node.index() * 2 + phase`
//! (the keyspace is contiguous by construction — no hashing at all), and
//! only the structural-hash table, whose `(op, lo, hi)` keyspace is
//! sparse, pays for a map — with the Fx hasher, not SipHash.

use soi_netlist::fx::FxHashMap;
use soi_netlist::{BinOp, Network, Node, NodeId, UnOp};

use crate::{Literal, Phase, UId, USignal, UnateError, UnateNetwork};

/// How to choose the phase implemented for each primary output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OutputPhase {
    /// Always build the positive phase (no boundary inverters). This is the
    /// paper's simple bubble-pushing scheme.
    #[default]
    Positive,
    /// For each output, build whichever phase creates fewer new nodes given
    /// what has already been built (a light-weight nod to the output-phase
    /// assignment of Puri et al., ICCAD'96). Boundary inverters are recorded
    /// on the outputs.
    Cheapest,
}

/// Conversion options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Options {
    /// Output phase policy.
    pub output_phase: OutputPhase,
}

/// Converts an arbitrary logic network into an inverter-free unate network
/// of 2-input AND/OR gates by pushing inverters to the primary inputs.
///
/// XOR/XNOR gates are decomposed into their AND/OR forms (which requires
/// both phases of their fanins); NAND/NOR push the bubble through via
/// De Morgan. Logic needed in both phases is duplicated, memoized per
/// `(node, phase)` so each original node expands to at most two unate nodes.
/// Constants are folded away.
///
/// # Errors
///
/// Returns [`UnateError::InvalidNetwork`] if `network` fails validation.
///
/// # Example
///
/// ```rust
/// use soi_netlist::Network;
/// use soi_unate::{convert, Options};
///
/// # fn main() -> Result<(), soi_unate::UnateError> {
/// let mut n = Network::new("t");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let x = n.xor2(a, b);
/// n.add_output("x", x);
/// let u = convert(&n, &Options::default())?;
/// // xor = a*b' + a'*b: 2 ANDs and 1 OR over 4 literals.
/// assert_eq!(u.stats().gates(), 3);
/// # Ok(())
/// # }
/// ```
pub fn convert(network: &Network, options: &Options) -> Result<UnateNetwork, UnateError> {
    network
        .validate()
        .map_err(|source| UnateError::InvalidNetwork { source })?;

    let input_names: Vec<String> = network
        .inputs()
        .iter()
        .map(|id| match network.node(*id) {
            Node::Input { name } => name.clone(),
            _ => unreachable!("input list points at input nodes"),
        })
        .collect();
    // Dense input-position table: `NodeId`s are contiguous indices, so a
    // `Vec` lookup replaces a map probe per input literal.
    let mut input_pos = vec![usize::MAX; network.len()];
    for (i, id) in network.inputs().iter().enumerate() {
        input_pos[id.index()] = i;
    }

    let mut builder = Builder {
        network,
        input_pos: &input_pos,
        out: UnateNetwork::new(input_names),
        memo: vec![None; network.len() * 2],
        hash: FxHashMap::default(),
        lit_cache: vec![None; network.inputs().len() * 2],
    };

    for port in network.outputs() {
        let (signal, inverted) = match options.output_phase {
            OutputPhase::Positive => (builder.build(port.driver, Phase::Pos), false),
            OutputPhase::Cheapest => {
                let pos_cost = builder.estimate(port.driver, Phase::Pos, &mut FxHashMap::default());
                let neg_cost = builder.estimate(port.driver, Phase::Neg, &mut FxHashMap::default());
                if neg_cost < pos_cost {
                    (builder.build(port.driver, Phase::Neg), true)
                } else {
                    (builder.build(port.driver, Phase::Pos), false)
                }
            }
        };
        builder.out.add_output(port.name.clone(), signal, inverted);
    }
    Ok(builder.out)
}

/// Dense slot for a `(node, phase)` pair: two slots per node.
#[inline]
fn slot(node: NodeId, phase: Phase) -> usize {
    node.index() * 2 + usize::from(phase == Phase::Neg)
}

struct Builder<'a> {
    network: &'a Network,
    /// Input position per node index (`usize::MAX` for non-inputs).
    input_pos: &'a [usize],
    out: UnateNetwork,
    /// `(original node, requested phase)` → produced signal, dense by
    /// [`slot`].
    memo: Vec<Option<USignal>>,
    /// Structural hashing of produced gates (sparse keyspace).
    hash: FxHashMap<(bool, UId, UId), UId>,
    /// Produced literal per `input * 2 + phase`.
    lit_cache: Vec<Option<UId>>,
}

impl Builder<'_> {
    fn literal(&mut self, literal: Literal) -> UId {
        let s = literal.input * 2 + usize::from(literal.phase == Phase::Neg);
        if let Some(id) = self.lit_cache[s] {
            return id;
        }
        let id = self.out.add_literal(literal);
        self.lit_cache[s] = Some(id);
        id
    }

    fn gate(&mut self, is_and: bool, a: USignal, b: USignal) -> USignal {
        match (a, b) {
            (USignal::Const(ca), USignal::Const(cb)) => {
                USignal::Const(if is_and { ca && cb } else { ca || cb })
            }
            (USignal::Const(c), USignal::Node(n)) | (USignal::Node(n), USignal::Const(c)) => {
                if is_and {
                    if c {
                        USignal::Node(n)
                    } else {
                        USignal::Const(false)
                    }
                } else if c {
                    USignal::Const(true)
                } else {
                    USignal::Node(n)
                }
            }
            (USignal::Node(na), USignal::Node(nb)) => {
                if na == nb {
                    return USignal::Node(na);
                }
                let (lo, hi) = if na <= nb { (na, nb) } else { (nb, na) };
                if let Some(&id) = self.hash.get(&(is_and, lo, hi)) {
                    return USignal::Node(id);
                }
                let id = if is_and {
                    self.out.add_and(lo, hi)
                } else {
                    self.out.add_or(lo, hi)
                };
                self.hash.insert((is_and, lo, hi), id);
                USignal::Node(id)
            }
        }
    }

    fn build(&mut self, node: NodeId, phase: Phase) -> USignal {
        if let Some(sig) = self.memo[slot(node, phase)] {
            return sig;
        }
        let sig = match self.network.node(node) {
            Node::Input { .. } => {
                let input = self.input_pos[node.index()];
                USignal::Node(self.literal(Literal { input, phase }))
            }
            Node::Const { value } => USignal::Const(phase.apply(*value)),
            Node::Unary { op, a } => match op {
                UnOp::Buf => self.build(*a, phase),
                UnOp::Inv => self.build(*a, phase.flipped()),
            },
            Node::Binary { op, a, b } => {
                let (a, b) = (*a, *b);
                match (op, phase) {
                    (BinOp::And, Phase::Pos) | (BinOp::Nand, Phase::Neg) => {
                        let x = self.build(a, Phase::Pos);
                        let y = self.build(b, Phase::Pos);
                        self.gate(true, x, y)
                    }
                    // De Morgan: !(a & b) = !a | !b
                    (BinOp::And, Phase::Neg) | (BinOp::Nand, Phase::Pos) => {
                        let x = self.build(a, Phase::Neg);
                        let y = self.build(b, Phase::Neg);
                        self.gate(false, x, y)
                    }
                    (BinOp::Or, Phase::Pos) | (BinOp::Nor, Phase::Neg) => {
                        let x = self.build(a, Phase::Pos);
                        let y = self.build(b, Phase::Pos);
                        self.gate(false, x, y)
                    }
                    // De Morgan: !(a | b) = !a & !b
                    (BinOp::Or, Phase::Neg) | (BinOp::Nor, Phase::Pos) => {
                        let x = self.build(a, Phase::Neg);
                        let y = self.build(b, Phase::Neg);
                        self.gate(true, x, y)
                    }
                    // xor = a*b' + a'*b ; xnor = a*b + a'*b'
                    (BinOp::Xor, Phase::Pos) | (BinOp::Xnor, Phase::Neg) => {
                        self.build_xorish(a, b, true)
                    }
                    (BinOp::Xor, Phase::Neg) | (BinOp::Xnor, Phase::Pos) => {
                        self.build_xorish(a, b, false)
                    }
                }
            }
        };
        self.memo[slot(node, phase)] = Some(sig);
        sig
    }

    fn build_xorish(&mut self, a: NodeId, b: NodeId, odd: bool) -> USignal {
        let ap = self.build(a, Phase::Pos);
        let an = self.build(a, Phase::Neg);
        let bp = self.build(b, Phase::Pos);
        let bn = self.build(b, Phase::Neg);
        let (t1, t2) = if odd {
            (self.gate(true, ap, bn), self.gate(true, an, bp))
        } else {
            (self.gate(true, ap, bp), self.gate(true, an, bn))
        };
        self.gate(false, t1, t2)
    }

    /// Counts how many *new* unate nodes building `(node, phase)` would
    /// create, given the current memo state. Used by
    /// [`OutputPhase::Cheapest`].
    fn estimate(
        &self,
        node: NodeId,
        phase: Phase,
        visiting: &mut FxHashMap<(NodeId, Phase), ()>,
    ) -> usize {
        if self.memo[slot(node, phase)].is_some() || visiting.contains_key(&(node, phase)) {
            return 0;
        }
        visiting.insert((node, phase), ());
        match self.network.node(node) {
            Node::Input { .. } => 1,
            Node::Const { .. } => 0,
            Node::Unary { op, a } => match op {
                UnOp::Buf => self.estimate(*a, phase, visiting),
                UnOp::Inv => self.estimate(*a, phase.flipped(), visiting),
            },
            Node::Binary { op, a, b } => {
                let (a, b) = (*a, *b);
                match (op, phase) {
                    (BinOp::And | BinOp::Or, Phase::Pos)
                    | (BinOp::Nand | BinOp::Nor, Phase::Neg) => {
                        1 + self.estimate(a, Phase::Pos, visiting)
                            + self.estimate(b, Phase::Pos, visiting)
                    }
                    (BinOp::And | BinOp::Or, Phase::Neg)
                    | (BinOp::Nand | BinOp::Nor, Phase::Pos) => {
                        1 + self.estimate(a, Phase::Neg, visiting)
                            + self.estimate(b, Phase::Neg, visiting)
                    }
                    (BinOp::Xor | BinOp::Xnor, _) => {
                        3 + self.estimate(a, Phase::Pos, visiting)
                            + self.estimate(a, Phase::Neg, visiting)
                            + self.estimate(b, Phase::Pos, visiting)
                            + self.estimate(b, Phase::Neg, visiting)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify, UNode};

    fn check(n: &Network) -> UnateNetwork {
        let u = convert(n, &Options::default()).unwrap();
        assert!(u.is_inverter_free());
        assert!(verify::equivalent(n, &u, 16, 99).unwrap());
        u
    }

    #[test]
    fn passthrough_and_or() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.and2(a, b);
        let g2 = n.or2(g1, c);
        n.add_output("f", g2);
        let u = check(&n);
        assert_eq!(u.stats().gates(), 2);
        // No negative literals needed.
        assert!(u
            .iter()
            .all(|(_, node)| !matches!(node, UNode::Lit(l) if l.phase == Phase::Neg)));
    }

    #[test]
    fn nand_pushes_bubble() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.nand2(a, b);
        n.add_output("f", g);
        let u = check(&n);
        // nand(a,b) = a' + b': one OR over two negative literals.
        let s = u.stats();
        assert_eq!(s.or_gates, 1);
        assert_eq!(s.and_gates, 0);
        assert_eq!(s.literals, 2);
    }

    #[test]
    fn xor_duplicates_both_phases() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.xor2(a, b);
        n.add_output("f", g);
        let u = check(&n);
        let s = u.stats();
        assert_eq!(s.and_gates, 2);
        assert_eq!(s.or_gates, 1);
        assert_eq!(s.literals, 4);
    }

    #[test]
    fn double_inversion_cancels() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.and2(a, b);
        let i1 = n.inv(g);
        let i2 = n.inv(i1);
        n.add_output("f", i2);
        let u = check(&n);
        assert_eq!(u.stats().gates(), 1);
    }

    #[test]
    fn shared_phase_logic_is_memoized() {
        // Two outputs requiring the same negative cone reuse it.
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g = n.and2(a, b);
        let ng = n.inv(g);
        let f1 = n.or2(ng, c);
        let f2 = n.and2(ng, c);
        n.add_output("f1", f1);
        n.add_output("f2", f2);
        let u = check(&n);
        // negative cone of g built once: or(a', b').
        assert_eq!(u.stats().or_gates, 2); // a'+b' and (a'+b')+c
    }

    #[test]
    fn constants_fold() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let one = n.add_const(true);
        let g = n.and2(a, one);
        let ng = n.inv(g);
        n.add_output("f", ng);
        let u = check(&n);
        // f = a' — a single literal, no gates.
        assert_eq!(u.stats().gates(), 0);
        assert_eq!(u.stats().literals, 1);
    }

    #[test]
    fn constant_output_folds_fully() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let na = n.inv(a);
        let g = n.and2(a, na);
        n.add_output("zero", g);
        let u = convert(&n, &Options::default()).unwrap();
        // a & a' is not folded by phase-pushing alone (it becomes a*a'
        // literal AND), but the network still evaluates correctly.
        assert!(verify::equivalent(&n, &u, 8, 5).unwrap());
    }

    #[test]
    fn cheapest_phase_uses_inverted_output() {
        // f = !(a & b & c & d): positive phase needs OR of 4 negative
        // literals (3 gates); negative phase is the AND cone (3 gates) —
        // a tie. g = !(a&b) | !(c&d) style asymmetries favour Cheapest.
        let mut n = Network::new("t");
        let inputs: Vec<_> = (0..4).map(|i| n.add_input(format!("i{i}"))).collect();
        let t1 = n.and2(inputs[0], inputs[1]);
        let t2 = n.and2(t1, inputs[2]);
        let t3 = n.and2(t2, inputs[3]);
        let f = n.inv(t3);
        n.add_output("f", f);
        // Also an output on the positive cone, built first.
        n.add_output("g", t3);

        let u = convert(
            &n,
            &Options {
                output_phase: OutputPhase::Cheapest,
            },
        )
        .unwrap();
        assert!(verify::equivalent(&n, &u, 16, 3).unwrap());
        // With the positive AND cone already built for `g`, output `f`
        // should reuse it through a boundary inverter.
        assert!(u.outputs().iter().any(|o| o.inverted));
        assert_eq!(u.stats().gates(), 3);
    }

    #[test]
    fn positive_phase_never_inverts_outputs() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let na = n.inv(a);
        n.add_output("f", na);
        let u = check(&n);
        assert!(u.outputs().iter().all(|o| !o.inverted));
    }

    #[test]
    fn big_random_network_roundtrips() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        let mut n = Network::new("rnd");
        let mut pool: Vec<NodeId> = (0..8).map(|i| n.add_input(format!("i{i}"))).collect();
        for _ in 0..200 {
            let a = pool[rng.gen_range(0..pool.len())];
            let b = pool[rng.gen_range(0..pool.len())];
            let id = match rng.gen_range(0..7) {
                0 => n.and2(a, b),
                1 => n.or2(a, b),
                2 => n.nand2(a, b),
                3 => n.nor2(a, b),
                4 => n.xor2(a, b),
                5 => n.xnor2(a, b),
                _ => n.inv(a),
            };
            pool.push(id);
        }
        for k in 0..6 {
            let driver = pool[pool.len() - 1 - k * 7];
            n.add_output(format!("o{k}"), driver);
        }
        check(&n);
    }
}
