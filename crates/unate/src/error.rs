use std::error::Error;
use std::fmt;

use soi_netlist::NetworkError;

/// Errors produced by unate conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UnateError {
    /// The input network failed validation.
    InvalidNetwork {
        /// The underlying network error.
        source: NetworkError,
    },
    /// A simulation step failed during verification.
    Simulation {
        /// The underlying network error.
        source: NetworkError,
    },
}

impl fmt::Display for UnateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnateError::InvalidNetwork { source } => {
                write!(f, "input network is invalid: {source}")
            }
            UnateError::Simulation { source } => {
                write!(f, "simulation failed during verification: {source}")
            }
        }
    }
}

impl Error for UnateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            UnateError::InvalidNetwork { source } | UnateError::Simulation { source } => {
                Some(source)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_is_exposed() {
        let e = UnateError::InvalidNetwork {
            source: NetworkError::NoOutputs,
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("invalid"));
    }
}
