//! Equivalence checking between a network and its unate conversion.

use soi_netlist::{sim, Network};

use crate::{UnateError, UnateNetwork};

/// Checks a unate network against the original on `rounds * 64` random
/// vectors plus the all-zeros/all-ones corners.
///
/// Returns `true` when every output agreed on every vector. Inputs are
/// matched positionally; boundary inverters recorded on the unate outputs
/// are honoured.
///
/// # Errors
///
/// Returns [`UnateError::Simulation`] if the two sides disagree on input
/// arity (a structural bug, not a functional mismatch).
///
/// # Example
///
/// ```rust
/// use soi_netlist::Network;
/// use soi_unate::{convert, verify, Options};
///
/// # fn main() -> Result<(), soi_unate::UnateError> {
/// let mut n = Network::new("t");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let g = n.nor2(a, b);
/// n.add_output("f", g);
/// let u = convert(&n, &Options::default())?;
/// assert!(verify::equivalent(&n, &u, 8, 1)?);
/// # Ok(())
/// # }
/// ```
pub fn equivalent(
    original: &Network,
    unate: &UnateNetwork,
    rounds: usize,
    seed: u64,
) -> Result<bool, UnateError> {
    let lowered = unate.to_network();
    sim::random_equivalent(original, &lowered, rounds, seed)
        .map_err(|source| UnateError::Simulation { source })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Literal, Phase, USignal};

    #[test]
    fn detects_mismatch() {
        let mut n = Network::new("and");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.and2(a, b);
        n.add_output("f", g);

        // A wrong "conversion": an OR instead of an AND.
        let mut u = UnateNetwork::new(vec!["a".into(), "b".into()]);
        let la = u.add_literal(Literal {
            input: 0,
            phase: Phase::Pos,
        });
        let lb = u.add_literal(Literal {
            input: 1,
            phase: Phase::Pos,
        });
        let o = u.add_or(la, lb);
        u.add_output("f", USignal::Node(o), false);

        assert!(!equivalent(&n, &u, 4, 9).unwrap());
    }

    #[test]
    fn arity_mismatch_is_error() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        n.add_output("f", a);
        let u = UnateNetwork::new(vec!["a".into(), "b".into()]);
        assert!(matches!(
            equivalent(&n, &u, 1, 0),
            Err(UnateError::Simulation { .. })
        ));
    }
}
