//! # soi-pbe
//!
//! Parasitic Bipolar Effect (PBE) analysis for SOI domino circuits.
//!
//! In partially-depleted SOI, the body of an nmos transistor floats. When a
//! device sits *off* with both source and drain high for a while, its body
//! charges up; if the source is then yanked low (by the evaluate clock or an
//! input), the body-source junction forward-biases and the lateral parasitic
//! bipolar transistor conducts — discharging the dynamic node of a domino
//! gate and producing a wrong `1` at its output (§III-B of the paper).
//!
//! This crate provides the complete toolbox around that effect:
//!
//! * [`points`] — the *potential discharge point* calculus over pull-down
//!   networks: which internal junctions can float high and must be tied low
//!   by pmos pre-discharge transistors (the paper's `p_dis`/`par_b`
//!   bookkeeping, applied to concrete structures);
//! * [`postprocess`] — the bulk-CMOS-style flow: insert discharge
//!   transistors into an already-mapped circuit (used by the `Domino_Map`
//!   baseline);
//! * [`rearrange`] — the `RS_Map` transformation: reorder series stacks to
//!   move parallel sections toward ground before inserting discharge
//!   transistors;
//! * [`hazard`] — a static checker that a circuit's discharge set actually
//!   covers every PBE-susceptible node;
//! * [`bodysim`] — a two-phase switch-level simulator with per-transistor
//!   floating-body state that *demonstrates* the mis-evaluation dynamically
//!   and validates that protected circuits do not exhibit it.
//!
//! # Example
//!
//! ```rust
//! use soi_domino_ir::{Pdn, Signal};
//! use soi_pbe::points;
//!
//! // (A*B + C): the junction between A and B is a potential discharge
//! // point (paper Fig. 4a).
//! let pdn = Pdn::parallel(vec![
//!     Pdn::series(vec![
//!         Pdn::transistor(Signal::input(0)),
//!         Pdn::transistor(Signal::input(1)),
//!     ]),
//!     Pdn::transistor(Signal::input(2)),
//! ]);
//! let analysis = points::analyze(&pdn);
//! assert_eq!(analysis.potential.len(), 1);
//! assert!(analysis.par_b);
//! assert!(analysis.committed.is_empty());
//! ```

pub mod bodysim;
mod error;
pub mod excite;
pub mod hazard;
pub mod points;
pub mod postprocess;
pub mod rearrange;

pub use error::PbeError;
pub use points::PointAnalysis;
