//! Discharge-transistor insertion as a post-processing step.
//!
//! This is the bulk-CMOS-style flow the paper argues against: map first
//! (PBE-blind), then walk every gate and attach a pmos pre-discharge
//! transistor to each junction that the point calculus marks *committed*.
//! Grounded-bottom potential points are absolved — every evaluate cycle
//! drains them through the foot.
//!
//! Both baselines (`Domino_Map` and `RS_Map`) finish with this pass; the
//! paper's own algorithm instead folds the count into the mapping cost and
//! produces circuits that need far fewer of these transistors.

use soi_domino_ir::DominoCircuit;

use crate::points;

/// Inserts the required pre-discharge transistors into every gate of the
/// circuit, replacing any existing discharge set. Returns the number of
/// transistors inserted.
///
/// # Example
///
/// ```rust
/// use soi_domino_ir::{DominoCircuit, Pdn, Signal};
/// use soi_pbe::postprocess;
///
/// // (A+B)*C with the parallel stack on top needs one discharge transistor.
/// let mut c = DominoCircuit::single_gate(
///     vec!["a".into(), "b".into(), "c".into()],
///     Pdn::series(vec![
///         Pdn::parallel(vec![
///             Pdn::transistor(Signal::input(0)),
///             Pdn::transistor(Signal::input(1)),
///         ]),
///         Pdn::transistor(Signal::input(2)),
///     ]),
/// );
/// let added = postprocess::insert_discharge(&mut c);
/// assert_eq!(added, 1);
/// assert_eq!(c.counts().discharge, 1);
/// ```
pub fn insert_discharge(circuit: &mut DominoCircuit) -> u32 {
    insert_discharge_traced(circuit, soi_trace::TraceHandle::off())
}

/// [`insert_discharge`] with an instrumentation handle: reports the total
/// inserted count through [`soi_trace::Counter::DischargesInserted`] so
/// observability tests can balance it against the circuit's accounting.
/// With `TraceHandle::off()` this is exactly `insert_discharge`.
pub fn insert_discharge_traced(circuit: &mut DominoCircuit, trace: soi_trace::TraceHandle) -> u32 {
    let mut added = 0;
    for idx in 0..circuit.gate_count() {
        let id = soi_domino_ir::GateId::from_index(idx);
        let analysis = points::analyze(circuit.gate(id).pdn());
        let set = analysis.grounded_discharge();
        added += set.len() as u32;
        circuit.gate_mut(id).set_discharge(set);
    }
    trace.count(soi_trace::Counter::DischargesInserted, u64::from(added));
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_domino_ir::{DominoGate, Pdn, Signal};

    fn t(i: usize) -> Pdn {
        Pdn::transistor(Signal::input(i))
    }

    #[test]
    fn multi_gate_insertion() {
        let mut c = DominoCircuit::new((0..6).map(|i| format!("i{i}")).collect());
        // gate 0: (a+b)*c — 1 committed point.
        let g0 = c.add_gate(DominoGate::footed(Pdn::series(vec![
            Pdn::parallel(vec![t(0), t(1)]),
            t(2),
        ])));
        // gate 1: pure parallel over gate 0's output and d — nothing.
        let _g1 = c.add_gate(DominoGate::footed(Pdn::parallel(vec![
            Pdn::transistor(Signal::Gate(g0)),
            t(3),
        ])));
        let added = insert_discharge(&mut c);
        assert_eq!(added, 1);
        assert_eq!(c.counts().discharge, 1);
        c.validate().unwrap();
    }

    #[test]
    fn insertion_is_idempotent() {
        let mut c = DominoCircuit::single_gate(
            (0..4).map(|i| format!("i{i}")).collect(),
            Pdn::series(vec![
                Pdn::parallel(vec![t(0), t(1)]),
                Pdn::parallel(vec![t(2), t(3)]),
            ]),
        );
        let first = insert_discharge(&mut c);
        let second = insert_discharge(&mut c);
        assert_eq!(first, second);
        assert_eq!(c.counts().discharge, first);
    }

    #[test]
    fn traced_insertion_reports_the_inserted_count() {
        let (rec, trace) = soi_trace::Recorder::install();
        let mut c = DominoCircuit::single_gate(
            (0..4).map(|i| format!("i{i}")).collect(),
            Pdn::series(vec![
                Pdn::parallel(vec![t(0), t(1)]),
                Pdn::parallel(vec![t(2), t(3)]),
            ]),
        );
        let added = insert_discharge_traced(&mut c, trace);
        assert_eq!(
            rec.counter(soi_trace::Counter::DischargesInserted),
            u64::from(added)
        );
        assert_eq!(u64::from(c.counts().discharge), u64::from(added));
    }

    #[test]
    fn function_is_unchanged() {
        let mut c = DominoCircuit::single_gate(
            (0..4).map(|i| format!("i{i}")).collect(),
            Pdn::series(vec![Pdn::parallel(vec![t(0), t(1)]), t(2), t(3)]),
        );
        let before: Vec<_> = (0..16u32)
            .map(|bits| {
                let v: Vec<bool> = (0..4).map(|k| bits & (1 << k) != 0).collect();
                c.evaluate(&v).unwrap()
            })
            .collect();
        insert_discharge(&mut c);
        for (bits, expect) in before.iter().enumerate() {
            let v: Vec<bool> = (0..4).map(|k| bits & (1 << k) != 0).collect();
            assert_eq!(&c.evaluate(&v).unwrap(), expect);
        }
    }
}
