//! Series-stack rearrangement — the `RS_Map` transformation (§VI-A).
//!
//! Reordering the elements of a series stack does not change its logic
//! function, but it changes which discharge points commit: everything above
//! the bottom element is never grounded. Moving the element with the most
//! potential discharge points (and a parallel bottom) to the ground side
//! converts committed points back into potential ones, which the grounded
//! gate bottom then absolves.
//!
//! The total number of PBE-relevant points in a chain is invariant under
//! permutation; only the committed/potential split moves (see the
//! `series_permutation_invariant` test in [`points`]), so it
//! suffices to pick the best *bottom* element — the relative order of the
//! rest is irrelevant and preserved for stability.

use soi_domino_ir::{DominoCircuit, Pdn};

use crate::points;

/// Rearranges every series stack in the PDN, moving parallel-bearing,
/// high-`p_dis` elements toward ground. `grounded` says whether the PDN's
/// bottom terminal is (eventually) connected to ground; for a complete gate
/// PDN it is `true`.
///
/// Junction references into the old tree are invalidated; run this *before*
/// [`postprocess::insert_discharge`](crate::postprocess::insert_discharge).
pub fn rearrange_pdn(pdn: &Pdn, grounded: bool) -> Pdn {
    match pdn {
        Pdn::Transistor(_) => pdn.clone(),
        Pdn::Parallel(children) => {
            // All branch bottoms share this node's bottom terminal.
            Pdn::parallel(
                children
                    .iter()
                    .map(|c| rearrange_pdn(c, grounded))
                    .collect(),
            )
        }
        Pdn::Series(children) => {
            // Recurse first: only the bottom position is grounded, but the
            // rearrangement below may move any child there, so children are
            // rearranged under their *final* grounding. Rearrange assuming
            // not-grounded first, pick the bottom, then redo the chosen
            // bottom child as grounded.
            let mut rearranged: Vec<Pdn> =
                children.iter().map(|c| rearrange_pdn(c, false)).collect();
            if grounded {
                let best = rearranged
                    .iter()
                    .enumerate()
                    .max_by_key(|(i, c)| {
                        let a = points::analyze(c);
                        // Score: points recovered by grounding this child.
                        // Ties keep the later (already lower) element to
                        // minimize churn.
                        (a.p_dis() + u32::from(a.par_b), *i)
                    })
                    .map(|(i, _)| i)
                    .expect("series has children");
                let chosen = rearranged.remove(best);
                let chosen = rearrange_pdn(&chosen, true);
                rearranged.push(chosen);
            }
            Pdn::series(rearranged)
        }
    }
}

/// Applies [`rearrange_pdn`] to every gate of the circuit, clearing any
/// existing discharge transistors (they refer to the old trees). Returns the
/// number of gates whose PDN changed.
pub fn rearrange_stacks(circuit: &mut DominoCircuit) -> u32 {
    let mut changed = 0;
    for idx in 0..circuit.gate_count() {
        let id = soi_domino_ir::GateId::from_index(idx);
        let gate = circuit.gate_mut(id);
        let new_pdn = rearrange_pdn(gate.pdn(), true);
        if new_pdn != *gate.pdn() {
            changed += 1;
        }
        let footed = gate.is_footed();
        let replacement = if footed {
            soi_domino_ir::DominoGate::footed(new_pdn)
        } else {
            soi_domino_ir::DominoGate::footless(new_pdn)
        };
        *gate = replacement;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postprocess;
    use soi_domino_ir::{DominoCircuit, Signal};

    fn t(i: usize) -> Pdn {
        Pdn::transistor(Signal::input(i))
    }

    /// Fig. 2(a): `(A+B+C) * D` → rearranged to `D * (A+B+C)`, removing the
    /// committed junction.
    #[test]
    fn moves_parallel_stack_to_ground() {
        let pdn = Pdn::series(vec![Pdn::parallel(vec![t(0), t(1), t(2)]), t(3)]);
        assert_eq!(points::analyze(&pdn).grounded_count(), 1);
        let better = rearrange_pdn(&pdn, true);
        assert_eq!(points::analyze(&better).grounded_count(), 0);
        // Function preserved.
        for bits in 0..16u32 {
            let v = |s: Signal| match s {
                Signal::Input { index, phase } => phase.apply(bits & (1 << index) != 0),
                Signal::Gate(_) => unreachable!(),
            };
            assert_eq!(pdn.conducts(&v), better.conducts(&v), "bits {bits:04b}");
        }
    }

    /// Fig. 5: `(A*B + C) * E` → the parallel stack (score 2) goes to the
    /// bottom, eliminating both committed discharges.
    #[test]
    fn fig5_chooses_high_pdis_bottom() {
        let stack = Pdn::parallel(vec![Pdn::series(vec![t(0), t(1)]), t(2)]);
        let pdn = Pdn::series(vec![stack, t(4)]);
        assert_eq!(points::analyze(&pdn).grounded_count(), 2);
        let better = rearrange_pdn(&pdn, true);
        assert_eq!(points::analyze(&better).grounded_count(), 0);
    }

    /// When not grounded, order is irrelevant and the tree is left alone.
    #[test]
    fn ungrounded_series_keeps_order() {
        let pdn = Pdn::series(vec![Pdn::parallel(vec![t(0), t(1)]), t(2)]);
        let same = rearrange_pdn(&pdn, false);
        assert_eq!(pdn, same);
    }

    /// Rearrangement is recursive: nested grounded series chains improve too.
    #[test]
    fn nested_chains_improve() {
        // ((A+B)*C) in parallel with D, all on top of E:
        // top-level chain: [par([ser([par(a,b), c]), d]), e]
        let inner = Pdn::series(vec![Pdn::parallel(vec![t(0), t(1)]), t(2)]);
        let pdn = Pdn::series(vec![Pdn::parallel(vec![inner, t(3)]), t(4)]);
        let before = points::analyze(&pdn).grounded_count();
        let better = rearrange_pdn(&pdn, true);
        let after = points::analyze(&better).grounded_count();
        assert!(after < before, "{after} !< {before}");
    }

    /// Never increases the grounded discharge count, on a corpus of shapes.
    #[test]
    fn never_worse() {
        let shapes = vec![
            Pdn::series(vec![t(0), t(1), t(2)]),
            Pdn::series(vec![
                Pdn::parallel(vec![t(0), t(1)]),
                Pdn::parallel(vec![t(2), t(3)]),
            ]),
            Pdn::series(vec![
                Pdn::parallel(vec![Pdn::series(vec![t(0), t(1)]), t(2)]),
                Pdn::parallel(vec![t(3), t(4)]),
                t(5),
            ]),
            Pdn::parallel(vec![
                Pdn::series(vec![Pdn::parallel(vec![t(0), t(1)]), t(2)]),
                Pdn::series(vec![t(3), Pdn::parallel(vec![t(4), t(5)])]),
            ]),
        ];
        for pdn in shapes {
            let before = points::analyze(&pdn).grounded_count();
            let after = points::analyze(&rearrange_pdn(&pdn, true)).grounded_count();
            assert!(after <= before, "worse on {pdn}");
        }
    }

    #[test]
    fn circuit_pass_counts_changes() {
        let mut c = DominoCircuit::new((0..5).map(|i| format!("i{i}")).collect());
        let g0 = c.add_gate(soi_domino_ir::DominoGate::footed(Pdn::series(vec![
            Pdn::parallel(vec![t(0), t(1)]),
            t(2),
        ])));
        let _g1 = c.add_gate(soi_domino_ir::DominoGate::footed(Pdn::series(vec![
            t(3),
            Pdn::transistor(Signal::Gate(g0)),
        ])));
        let changed = rearrange_stacks(&mut c);
        assert_eq!(changed, 1);
        let added = postprocess::insert_discharge(&mut c);
        assert_eq!(added, 0);
    }
}
