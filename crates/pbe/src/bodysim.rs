//! Two-phase switch-level simulation with floating-body state.
//!
//! This module *demonstrates* the parasitic bipolar effect dynamically, the
//! way §III-B of the paper describes it, instead of merely counting
//! susceptible nodes:
//!
//! * every clock cycle has a **precharge** phase (clk = 0: p-clock and
//!   pre-discharge pmos devices on, foot n-clock off) and an **evaluate**
//!   phase (clk = 1: the reverse);
//! * net voltages are resolved by conducting-path closure: ground drivers
//!   win, then actively driven high nets (the precharge device, or the
//!   keeper holding an undischarged dynamic node), and isolated nets float,
//!   retaining their charge;
//! * each PDN transistor carries a floating-body counter: sitting *off*
//!   with source and drain both **driven** high (a conducting path to a
//!   rail — floating charge is too small to feed body leakage) for
//!   [`BodySimConfig::charge_threshold`] phases charges the body. Gate
//!   switching dumps the body instantly (capacitive coupling); otherwise
//!   the body discharges gradually, one count per phase, through junction
//!   leakage — the timing-hysteresis memory the paper describes;
//! * during evaluate, an off transistor with a charged body whose source is
//!   low while its drain is high conducts through the lateral parasitic
//!   bipolar device — the simulator injects that conduction, iterates to a
//!   fixpoint, and reports a [`PbeEvent`]. If the dynamic node discharges
//!   where the boolean function says it should not, the cycle is flagged as
//!   **mis-evaluated**, and the wrong value propagates to downstream gates
//!   exactly as it would on silicon.
//!
//! The simulator is deliberately discrete (no currents, no capacitance
//! ratios): it encodes the paper's qualitative mechanism so that tests can
//! show `Domino_Map` output failing without discharge transistors and every
//! protected mapping running clean. See `DESIGN.md` §3 for the substitution
//! rationale.

use std::fmt;

use soi_domino_ir::{DominoCircuit, GateId, NetId, PdnGraph, Signal};

use crate::PbeError;

/// Configuration of the body-state simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BodySimConfig {
    /// Number of consecutive phases a device must sit off with source and
    /// drain high before its body counts as charged. The default (3) means
    /// "more than one full clock cycle", matching the paper's "over a
    /// sufficiently large period of time".
    pub charge_threshold: u32,
    /// Model the bipolar conduction. With `false` the simulator becomes an
    /// ideal two-phase domino simulator (useful as a reference).
    pub model_bipolar: bool,
}

impl Default for BodySimConfig {
    fn default() -> BodySimConfig {
        BodySimConfig {
            charge_threshold: 3,
            model_bipolar: true,
        }
    }
}

/// A parasitic-bipolar conduction event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbeEvent {
    /// Cycle in which the event fired.
    pub cycle: u64,
    /// Gate containing the device.
    pub gate: GateId,
    /// Index of the device within the gate's flattened PDN.
    pub transistor: usize,
}

impl fmt::Display for PbeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}: bipolar conduction in gate {} device {}",
            self.cycle, self.gate, self.transistor
        )
    }
}

/// Result of simulating one clock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleReport {
    /// The cycle index (starting at 0).
    pub cycle: u64,
    /// Circuit outputs as physically produced (PBE effects included).
    pub outputs: Vec<bool>,
    /// Circuit outputs of the ideal boolean evaluation.
    pub ideal_outputs: Vec<bool>,
    /// All bipolar conduction events this cycle.
    pub pbe_events: Vec<PbeEvent>,
    /// Number of precharge-phase contentions (a precharge path fighting a
    /// pre-discharge device) observed.
    pub contentions: u32,
}

impl CycleReport {
    /// Whether any output differed from the ideal evaluation.
    pub fn misevaluated(&self) -> bool {
        self.outputs != self.ideal_outputs
    }
}

#[derive(Debug, Clone)]
struct GateState {
    graph: PdnGraph,
    discharge_nets: Vec<NetId>,
    footed: bool,
    /// Current voltage per net (`true` = high).
    net_high: Vec<bool>,
    /// Whether the net was driven (connected to a rail) this phase, as
    /// opposed to floating on retained charge.
    net_driven: Vec<bool>,
    /// Per-device consecutive charging phases.
    body_count: Vec<u32>,
    body_charged: Vec<bool>,
    /// Previous gate-terminal value per device (for switch detection).
    prev_on: Vec<bool>,
    /// Current evaluate-phase output (physical).
    output: bool,
    /// Current evaluate-phase output (ideal).
    ideal_output: bool,
}

/// The simulator. Owns per-gate net and body state across cycles.
///
/// # Example
///
/// Reproduce §III-B: `(A+B+C)*D` without protection mis-evaluates.
///
/// ```rust
/// use soi_domino_ir::{DominoCircuit, Pdn, Signal};
/// use soi_pbe::bodysim::{BodySimConfig, BodySimulator};
///
/// # fn main() -> Result<(), soi_pbe::PbeError> {
/// let c = DominoCircuit::single_gate(
///     vec!["a".into(), "b".into(), "c".into(), "d".into()],
///     Pdn::series(vec![
///         Pdn::parallel(vec![
///             Pdn::transistor(Signal::input(0)),
///             Pdn::transistor(Signal::input(1)),
///             Pdn::transistor(Signal::input(2)),
///         ]),
///         Pdn::transistor(Signal::input(3)),
///     ]),
/// );
/// let mut sim = BodySimulator::new(&c, BodySimConfig::default())?;
/// // Hold A=1, D=0: node 1 charges high, bodies of B and C charge.
/// for _ in 0..3 {
///     sim.step(&[true, false, false, false])?;
/// }
/// // Drop A, then fire D: the parasitic devices discharge the dynamic node.
/// sim.step(&[false, false, false, false])?;
/// let report = sim.step(&[false, false, false, true])?;
/// assert!(!report.pbe_events.is_empty());
/// assert!(report.misevaluated());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BodySimulator<'c> {
    circuit: &'c DominoCircuit,
    cfg: BodySimConfig,
    gates: Vec<GateState>,
    cycle: u64,
    charged_phase_total: u64,
}

impl<'c> BodySimulator<'c> {
    /// Creates a simulator over the circuit. All nets start low and all
    /// bodies discharged (a cold power-up).
    ///
    /// # Errors
    ///
    /// Returns [`PbeError::BadDischargeJunction`] when a gate's
    /// pre-discharge transistor references a junction that does not exist in
    /// its pull-down network (a malformed circuit must not panic the
    /// simulator).
    pub fn new(
        circuit: &'c DominoCircuit,
        cfg: BodySimConfig,
    ) -> Result<BodySimulator<'c>, PbeError> {
        let mut gates = Vec::new();
        for (id, gate) in circuit.iter() {
            let graph = gate.pdn().flatten();
            let mut discharge_nets = Vec::with_capacity(gate.discharge().len());
            for j in gate.discharge() {
                let net = graph
                    .junction_net(j)
                    .ok_or_else(|| PbeError::BadDischargeJunction {
                        gate: id.index(),
                        junction: format!("{j:?}"),
                    })?;
                discharge_nets.push(net);
            }
            let nets = graph.net_count();
            let devices = graph.transistors.len();
            gates.push(GateState {
                graph,
                discharge_nets,
                footed: gate.is_footed(),
                net_high: vec![false; nets],
                net_driven: vec![false; nets],
                body_count: vec![0; devices],
                body_charged: vec![false; devices],
                prev_on: vec![false; devices],
                output: false,
                ideal_output: false,
            });
        }
        Ok(BodySimulator {
            circuit,
            cfg,
            gates,
            cycle: 0,
            charged_phase_total: 0,
        })
    }

    /// Runs one full clock cycle (precharge then evaluate) with the given
    /// primary-input values held throughout.
    ///
    /// # Errors
    ///
    /// Returns [`PbeError::InputArity`] if `inputs` has the wrong length.
    pub fn step(&mut self, inputs: &[bool]) -> Result<CycleReport, PbeError> {
        if inputs.len() != self.circuit.input_names().len() {
            return Err(PbeError::InputArity {
                expected: self.circuit.input_names().len(),
                got: inputs.len(),
            });
        }
        let mut contentions = 0;
        // ---- Precharge phase: all domino outputs are low. ----
        for idx in 0..self.gates.len() {
            let on: Vec<bool> = self.gates[idx]
                .graph
                .transistors
                .iter()
                .map(|t| match t.signal {
                    Signal::Input { index, phase } => phase.apply(inputs[index]),
                    Signal::Gate(_) => false,
                })
                .collect();
            contentions += self.resolve_precharge(idx, &on);
            self.update_bodies(idx, &on);
        }

        // ---- Evaluate phase: gates cascade in topological order. ----
        let mut events = Vec::new();
        for idx in 0..self.gates.len() {
            let (on, ideal_on): (Vec<bool>, Vec<bool>) = {
                let state = &self.gates[idx];
                let mut on = Vec::with_capacity(state.graph.transistors.len());
                let mut ideal = Vec::with_capacity(state.graph.transistors.len());
                for t in &state.graph.transistors {
                    match t.signal {
                        Signal::Input { index, phase } => {
                            let v = phase.apply(inputs[index]);
                            on.push(v);
                            ideal.push(v);
                        }
                        Signal::Gate(g) => {
                            on.push(self.gates[g.index()].output);
                            ideal.push(self.gates[g.index()].ideal_output);
                        }
                    }
                }
                (on, ideal)
            };
            let fired = self.resolve_evaluate(idx, &on);
            for dev in fired {
                events.push(PbeEvent {
                    cycle: self.cycle,
                    gate: GateId::from_index(idx),
                    transistor: dev,
                });
            }
            let state = &mut self.gates[idx];
            state.output = !state.net_high[PdnGraph::TOP.index()];
            // Ideal output via pure tree evaluation.
            let mut k = 0;
            let ideal = conducts_indexed(
                self.circuit.gate(GateId::from_index(idx)).pdn(),
                &ideal_on,
                &mut k,
            );
            state.ideal_output = ideal;
            let on_copy = on;
            self.update_bodies(idx, &on_copy);
        }

        let outputs = self
            .circuit
            .outputs()
            .iter()
            .map(|o| self.gates[o.gate.index()].output != o.inverted)
            .collect();
        let ideal_outputs = self
            .circuit
            .outputs()
            .iter()
            .map(|o| self.gates[o.gate.index()].ideal_output != o.inverted)
            .collect();
        let report = CycleReport {
            cycle: self.cycle,
            outputs,
            ideal_outputs,
            pbe_events: events,
            contentions,
        };
        self.cycle += 1;
        Ok(report)
    }

    /// Runs a sequence of cycles and returns all reports.
    ///
    /// # Errors
    ///
    /// Propagates the first [`PbeError`] from [`BodySimulator::step`].
    pub fn run(&mut self, sequence: &[Vec<bool>]) -> Result<Vec<CycleReport>, PbeError> {
        sequence.iter().map(|v| self.step(v)).collect()
    }

    /// Resolves precharge-phase net values. Returns contention count.
    fn resolve_precharge(&mut self, idx: usize, on: &[bool]) -> u32 {
        let state = &mut self.gates[idx];
        let nets = state.graph.net_count();
        let mut comp = components(&state.graph, on, nets);

        // Drivers: TOP high (p-clock), discharge nets low, foot low only for
        // footless gates (tied to ground).
        let mut comp_low = vec![false; nets];
        let mut comp_high = vec![false; nets];
        let top_c = comp[PdnGraph::TOP.index()];
        comp_high[top_c] = true;
        for net in &state.discharge_nets {
            comp_low[comp[net.index()]] = true;
        }
        if !state.footed {
            comp_low[comp[PdnGraph::FOOT.index()]] = true;
        }

        let mut contentions = 0;
        let prev = state.net_high.clone();
        for n in 0..nets {
            let c = comp[n];
            state.net_driven[n] = comp_low[c] || comp_high[c];
            state.net_high[n] = if comp_low[c] {
                if comp_high[c] {
                    contentions += 1;
                }
                false
            } else if comp_high[c] {
                true
            } else {
                prev[n]
            };
        }
        // Silence the unused-assignment lint on comp reuse.
        comp.clear();
        contentions
    }

    /// Resolves evaluate-phase net values, injecting bipolar conduction to a
    /// fixpoint. Returns the devices that fired.
    fn resolve_evaluate(&mut self, idx: usize, on: &[bool]) -> Vec<usize> {
        let mut fired = Vec::new();
        let mut conducting = on.to_vec();
        loop {
            let state = &mut self.gates[idx];
            let nets = state.graph.net_count();
            let comp = components(&state.graph, &conducting, nets);
            let mut comp_low = vec![false; nets];
            let mut comp_high = vec![false; nets];
            // Ground: the foot (n-clock on during evaluate, or footless tie).
            comp_low[comp[PdnGraph::FOOT.index()]] = true;
            // Keeper: holds TOP high unless grounded.
            let top_c = comp[PdnGraph::TOP.index()];
            if !comp_low[top_c] {
                comp_high[top_c] = true;
            }
            let prev = state.net_high.clone();
            for n in 0..nets {
                let c = comp[n];
                state.net_driven[n] = comp_low[c] || comp_high[c];
                state.net_high[n] = if comp_low[c] {
                    false
                } else if comp_high[c] {
                    true
                } else {
                    prev[n]
                };
            }
            if !self.cfg.model_bipolar {
                break;
            }
            // Find newly firing parasitic devices.
            let mut new_fire = Vec::new();
            for (dev, t) in state.graph.transistors.iter().enumerate() {
                if !conducting[dev]
                    && state.body_charged[dev]
                    && !state.net_high[t.lower.index()]
                    && state.net_high[t.upper.index()]
                {
                    new_fire.push(dev);
                }
            }
            if new_fire.is_empty() {
                break;
            }
            for &dev in &new_fire {
                conducting[dev] = true;
                // The bipolar action dumps the body charge.
                state.body_charged[dev] = false;
                state.body_count[dev] = 0;
            }
            fired.extend(new_fire);
        }
        fired
    }

    /// End-of-phase body bookkeeping.
    ///
    /// The body charges only while both junction terminals are *driven*
    /// high: sustained body leakage needs a DC path to a rail, and a
    /// floating node's stored charge is far too small (this is also what
    /// makes the paper's grounded-stack absolution valid). A gate switch
    /// dumps the body through capacitive coupling; otherwise the body
    /// discharges one count per phase — the hysteretic memory of §III-A.
    fn update_bodies(&mut self, idx: usize, on: &[bool]) {
        let cap = self.cfg.charge_threshold * 2;
        let state = &mut self.gates[idx];
        for (dev, t) in state.graph.transistors.iter().enumerate() {
            let switched = state.prev_on[dev] != on[dev];
            state.prev_on[dev] = on[dev];
            let charging = !on[dev]
                && state.net_high[t.upper.index()]
                && state.net_driven[t.upper.index()]
                && state.net_high[t.lower.index()]
                && state.net_driven[t.lower.index()];
            if switched || on[dev] {
                state.body_count[dev] = 0;
            } else if charging {
                state.body_count[dev] = (state.body_count[dev] + 1).min(cap);
            } else {
                state.body_count[dev] = state.body_count[dev].saturating_sub(1);
            }
            state.body_charged[dev] = state.body_count[dev] >= self.cfg.charge_threshold;
        }
        self.charged_phase_total += state.body_charged.iter().filter(|&&c| c).count() as u64;
    }

    /// Number of devices whose body is currently charged (introspection for
    /// tests and demos).
    pub fn charged_bodies(&self) -> usize {
        self.gates
            .iter()
            .map(|g| g.body_charged.iter().filter(|&&c| c).count())
            .sum()
    }

    /// Cumulative device-phases spent with a charged body since the
    /// simulation started — the *timing-hysteresis exposure* of §III-A:
    /// devices whose body floated high switch at a different speed than
    /// freshly-reset ones, so a mapping that keeps this number low has more
    /// predictable timing (one of the paper's stated side benefits).
    pub fn hysteresis_exposure(&self) -> u64 {
        self.charged_phase_total
    }
}

/// Union of nets through conducting devices; returns a component label per
/// net.
fn components(graph: &PdnGraph, conducting: &[bool], nets: usize) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..nets).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (dev, t) in graph.transistors.iter().enumerate() {
        if conducting[dev] {
            let a = find(&mut parent, t.upper.index());
            let b = find(&mut parent, t.lower.index());
            parent[a.max(b)] = a.min(b);
        }
    }
    (0..nets).map(|n| find(&mut parent, n)).collect()
}

/// Evaluates a PDN tree against a flat per-device conduction vector in tree
/// order (the same order as [`Pdn::flatten`]).
fn conducts_indexed(pdn: &soi_domino_ir::Pdn, on: &[bool], k: &mut usize) -> bool {
    match pdn {
        soi_domino_ir::Pdn::Transistor(_) => {
            let v = on[*k];
            *k += 1;
            v
        }
        soi_domino_ir::Pdn::Series(children) => {
            let mut all = true;
            for c in children {
                all &= conducts_indexed(c, on, k);
            }
            all
        }
        soi_domino_ir::Pdn::Parallel(children) => {
            let mut any = false;
            for c in children {
                any |= conducts_indexed(c, on, k);
            }
            any
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_domino_ir::{JunctionRef, Pdn};

    fn t(i: usize) -> Pdn {
        Pdn::transistor(Signal::input(i))
    }

    /// The paper's §III-B circuit: `(A+B+C)*D`, footed, unprotected.
    fn fig2a_circuit() -> DominoCircuit {
        DominoCircuit::single_gate(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            Pdn::series(vec![Pdn::parallel(vec![t(0), t(1), t(2)]), t(3)]),
        )
    }

    fn paper_scenario(sim: &mut BodySimulator<'_>) -> CycleReport {
        for _ in 0..3 {
            sim.step(&[true, false, false, false]).unwrap();
        }
        sim.step(&[false, false, false, false]).unwrap();
        sim.step(&[false, false, false, true]).unwrap()
    }

    #[test]
    fn unprotected_gate_misevaluates() {
        let c = fig2a_circuit();
        let mut sim = BodySimulator::new(&c, BodySimConfig::default()).expect("valid circuit");
        let report = paper_scenario(&mut sim);
        assert!(!report.pbe_events.is_empty());
        assert!(report.misevaluated());
        // The wrong output is a 1 where a 0 belongs.
        assert_eq!(report.outputs, vec![true]);
        assert_eq!(report.ideal_outputs, vec![false]);
    }

    #[test]
    fn dangling_discharge_junction_is_a_typed_error() {
        let mut c = fig2a_circuit();
        // Inject a pre-discharge transistor aimed at a junction path that
        // does not exist in the pull-down network.
        c.gate_mut(GateId::from_index(0))
            .set_discharge_unchecked(vec![JunctionRef::new(vec![7, 7], 3)]);
        let Err(err) = BodySimulator::new(&c, BodySimConfig::default()) else {
            panic!("a dangling discharge junction must be rejected");
        };
        match err {
            PbeError::BadDischargeJunction { gate, .. } => assert_eq!(gate, 0),
            other => panic!("expected BadDischargeJunction, got {other}"),
        }
    }

    #[test]
    fn discharge_transistor_prevents_failure() {
        let mut c = fig2a_circuit();
        c.gate_mut(GateId::from_index(0))
            .add_discharge(JunctionRef::new(vec![], 0));
        let mut sim = BodySimulator::new(&c, BodySimConfig::default()).expect("valid circuit");
        let report = paper_scenario(&mut sim);
        assert!(report.pbe_events.is_empty());
        assert!(!report.misevaluated());
    }

    #[test]
    fn reordered_stack_is_immune() {
        // D below the stack → sources of A,B,C sit at the foot; no charging.
        let c = DominoCircuit::single_gate(
            vec!["a".into(), "b".into(), "c".into(), "d".into()],
            Pdn::series(vec![t(3), Pdn::parallel(vec![t(0), t(1), t(2)])]),
        );
        let mut sim = BodySimulator::new(&c, BodySimConfig::default()).expect("valid circuit");
        let report = paper_scenario(&mut sim);
        assert!(report.pbe_events.is_empty());
        assert!(!report.misevaluated());
    }

    #[test]
    fn ideal_mode_never_fires() {
        let c = fig2a_circuit();
        let mut sim = BodySimulator::new(
            &c,
            BodySimConfig {
                model_bipolar: false,
                ..BodySimConfig::default()
            },
        )
        .expect("valid circuit");
        let report = paper_scenario(&mut sim);
        assert!(report.pbe_events.is_empty());
        assert!(!report.misevaluated());
    }

    #[test]
    fn bodies_charge_then_reset_on_switching() {
        let c = fig2a_circuit();
        let mut sim = BodySimulator::new(&c, BodySimConfig::default()).expect("valid circuit");
        for _ in 0..3 {
            sim.step(&[true, false, false, false]).unwrap();
        }
        assert!(sim.charged_bodies() >= 2); // B and C
                                            // Toggling B's input resets its body.
        sim.step(&[true, true, false, false]).unwrap();
        sim.step(&[true, false, false, false]).unwrap();
        // B was reset; C may remain charged.
        assert!(sim.charged_bodies() <= 2);
    }

    #[test]
    fn normal_operation_matches_ideal() {
        // Exercise the gate with benign vectors: no stale-high scenarios.
        let c = fig2a_circuit();
        let mut sim = BodySimulator::new(&c, BodySimConfig::default()).expect("valid circuit");
        let seq = [
            [false, false, false, false],
            [true, false, false, true],
            [false, true, false, true],
            [false, false, false, false],
            [true, true, true, true],
            [false, false, true, true],
        ];
        for v in seq {
            let r = sim.step(&v).unwrap();
            assert_eq!(r.outputs, r.ideal_outputs, "vector {v:?}");
        }
    }

    #[test]
    fn misevaluation_propagates_downstream() {
        // Gate 0 = (A+B+C)*D unprotected; gate 1 = gate0 * E.
        let mut c = DominoCircuit::new(["a", "b", "c", "d", "e"].map(String::from).to_vec());
        let g0 = c.add_gate(soi_domino_ir::DominoGate::footed(Pdn::series(vec![
            Pdn::parallel(vec![t(0), t(1), t(2)]),
            t(3),
        ])));
        let g1 = c.add_gate(soi_domino_ir::DominoGate::footed(Pdn::series(vec![
            t(4),
            Pdn::transistor(Signal::Gate(g0)),
        ])));
        c.add_output("f", g1);
        let mut sim = BodySimulator::new(&c, BodySimConfig::default()).expect("valid circuit");
        for _ in 0..3 {
            sim.step(&[true, false, false, false, true]).unwrap();
        }
        sim.step(&[false, false, false, false, true]).unwrap();
        let report = sim.step(&[false, false, false, true, true]).unwrap();
        assert!(report.misevaluated());
        assert_eq!(report.outputs, vec![true]);
    }

    #[test]
    fn arity_error() {
        let c = fig2a_circuit();
        let mut sim = BodySimulator::new(&c, BodySimConfig::default()).expect("valid circuit");
        assert!(matches!(
            sim.step(&[true]),
            Err(PbeError::InputArity { .. })
        ));
    }

    #[test]
    fn footless_second_level_gate_works() {
        // g0 footed at the PIs; g1 footless (fed only by g0): its PDN ties
        // straight to ground, so it evaluates correctly and its nodes are
        // drained every cycle.
        let mut c = DominoCircuit::new(vec!["a".into(), "b".into()]);
        let g0 = c.add_gate(soi_domino_ir::DominoGate::footed(Pdn::parallel(vec![
            t(0),
            t(1),
        ])));
        let g1 = c.add_gate(soi_domino_ir::DominoGate::footless(Pdn::transistor(
            Signal::Gate(g0),
        )));
        c.add_output("f", g1);
        let mut sim = BodySimulator::new(&c, BodySimConfig::default()).expect("valid circuit");
        for (a, b) in [(false, false), (true, false), (false, true), (true, true)] {
            let r = sim.step(&[a, b]).unwrap();
            assert_eq!(r.outputs, vec![a || b]);
            assert_eq!(r.outputs, r.ideal_outputs);
        }
    }

    #[test]
    fn hysteresis_exposure_accumulates_and_only_then() {
        let c = fig2a_circuit();
        let mut sim = BodySimulator::new(&c, BodySimConfig::default()).expect("valid circuit");
        // Benign toggling: nothing should charge.
        for i in 0..6 {
            sim.step(&[i % 2 == 0, false, false, true]).unwrap();
        }
        assert_eq!(sim.hysteresis_exposure(), 0);
        // Holding the §III-B pattern charges B and C, which then count
        // every phase.
        for _ in 0..4 {
            sim.step(&[true, false, false, false]).unwrap();
        }
        assert!(sim.hysteresis_exposure() > 0);
    }

    #[test]
    fn contention_is_counted() {
        // Discharge on node 1 of (A+B+C)*D with A held high during
        // precharge creates a precharge contention through A.
        let mut c = fig2a_circuit();
        c.gate_mut(GateId::from_index(0))
            .add_discharge(JunctionRef::new(vec![], 0));
        let mut sim = BodySimulator::new(&c, BodySimConfig::default()).expect("valid circuit");
        let r = sim.step(&[true, false, false, false]).unwrap();
        assert!(r.contentions > 0);
        // With A low there is no contention.
        let r2 = sim.step(&[false, false, false, false]).unwrap();
        assert_eq!(r2.contentions, 0);
    }
}
