//! Static PBE-safety checking.
//!
//! A mapped circuit is *PBE-safe* when every committed discharge point of
//! every gate carries a pre-discharge transistor. The body simulator
//! ([`bodysim`](crate::bodysim)) validates the same property dynamically;
//! this checker is the fast structural version used in tests and as a
//! post-mapping assertion.

use std::fmt;

use soi_domino_ir::{DominoCircuit, GateId, JunctionRef};

use crate::points;

/// A PBE hazard: a junction that can float high and later be yanked low,
/// with no pre-discharge transistor protecting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    /// The gate containing the junction.
    pub gate: GateId,
    /// The unprotected junction.
    pub junction: JunctionRef,
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gate {}: unprotected junction {}",
            self.gate, self.junction
        )
    }
}

/// Returns every hazard in the circuit (empty when PBE-safe).
///
/// # Example
///
/// ```rust
/// use soi_domino_ir::{DominoCircuit, Pdn, Signal};
/// use soi_pbe::{hazard, postprocess};
///
/// let mut c = DominoCircuit::single_gate(
///     vec!["a".into(), "b".into(), "c".into()],
///     Pdn::series(vec![
///         Pdn::parallel(vec![
///             Pdn::transistor(Signal::input(0)),
///             Pdn::transistor(Signal::input(1)),
///         ]),
///         Pdn::transistor(Signal::input(2)),
///     ]),
/// );
/// assert_eq!(hazard::check(&c).len(), 1);
/// postprocess::insert_discharge(&mut c);
/// assert!(hazard::is_safe(&c));
/// ```
pub fn check(circuit: &DominoCircuit) -> Vec<Hazard> {
    let mut hazards = Vec::new();
    for (id, gate) in circuit.iter() {
        let analysis = points::analyze(gate.pdn());
        for junction in analysis.committed {
            if !gate.discharge().contains(&junction) {
                hazards.push(Hazard { gate: id, junction });
            }
        }
    }
    hazards
}

/// Whether the circuit has no PBE hazards.
pub fn is_safe(circuit: &DominoCircuit) -> bool {
    check(circuit).is_empty()
}

/// Returns discharge transistors that protect nothing (attached to junctions
/// the analysis does not require) — useful to assert mappers are not
/// over-protecting.
pub fn redundant_discharge(circuit: &DominoCircuit) -> Vec<Hazard> {
    let mut redundant = Vec::new();
    for (id, gate) in circuit.iter() {
        let analysis = points::analyze(gate.pdn());
        for junction in gate.discharge() {
            if !analysis.committed.contains(junction) {
                redundant.push(Hazard {
                    gate: id,
                    junction: junction.clone(),
                });
            }
        }
    }
    redundant
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postprocess;
    use soi_domino_ir::{Pdn, Signal};

    fn t(i: usize) -> Pdn {
        Pdn::transistor(Signal::input(i))
    }

    fn risky_circuit() -> DominoCircuit {
        DominoCircuit::single_gate(
            (0..4).map(|i| format!("i{i}")).collect(),
            Pdn::series(vec![
                Pdn::parallel(vec![Pdn::series(vec![t(0), t(1)]), t(2)]),
                t(3),
            ]),
        )
    }

    #[test]
    fn detects_every_committed_point() {
        let c = risky_circuit();
        // (A*B + C) on top of D: A-B junction + stack bottom commit.
        assert_eq!(check(&c).len(), 2);
        assert!(!is_safe(&c));
    }

    #[test]
    fn postprocess_clears_hazards() {
        let mut c = risky_circuit();
        postprocess::insert_discharge(&mut c);
        assert!(is_safe(&c));
        assert!(redundant_discharge(&c).is_empty());
    }

    #[test]
    fn partial_protection_reports_remainder() {
        let mut c = risky_circuit();
        let needed = points::analyze(c.gate(GateId::from_index(0)).pdn()).committed;
        c.gate_mut(GateId::from_index(0))
            .set_discharge(vec![needed[0].clone()]);
        assert_eq!(check(&c).len(), 1);
    }

    #[test]
    fn over_protection_is_flagged() {
        let mut c = DominoCircuit::single_gate(
            (0..2).map(|i| format!("i{i}")).collect(),
            Pdn::series(vec![t(0), t(1)]),
        );
        // A pure series chain needs nothing; protecting it is redundant.
        c.gate_mut(GateId::from_index(0))
            .set_discharge(vec![soi_domino_ir::JunctionRef::new(vec![], 0)]);
        assert!(is_safe(&c));
        assert_eq!(redundant_discharge(&c).len(), 1);
    }

    #[test]
    fn safe_gate_passes() {
        let c = DominoCircuit::single_gate(
            (0..3).map(|i| format!("i{i}")).collect(),
            Pdn::parallel(vec![t(0), t(1), t(2)]),
        );
        assert!(is_safe(&c));
    }
}
