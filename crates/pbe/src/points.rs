//! Potential-discharge-point analysis over pull-down networks.
//!
//! This is the paper's `p_dis` / `par_b` calculus (§V) applied to concrete
//! [`Pdn`] trees. Two kinds of internal junctions matter:
//!
//! * **committed** points must carry a pre-discharge transistor no matter
//!   what: they sit inside or directly below structure that can never be
//!   connected to ground (everything above the bottom element of a series
//!   stack);
//! * **potential** points need one only if the structure's bottom is *not*
//!   eventually connected to ground — grounding the bottom lets every
//!   evaluate cycle drain them, so the paper absolves them.
//!
//! `par_b` records whether the structure's own bottom node is the shared
//! bottom of a parallel stack; that node is accounted by the *enclosing*
//! context (it becomes a committed junction when the structure is stacked on
//! top of something else).

use soi_domino_ir::{JunctionRef, Pdn};

/// Result of analysing a [`Pdn`] tree.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PointAnalysis {
    /// Junctions needing discharge iff the structure's bottom is never
    /// grounded (the paper's `p_dis` count, with concrete locations).
    pub potential: Vec<JunctionRef>,
    /// Junctions needing discharge regardless of grounding.
    pub committed: Vec<JunctionRef>,
    /// Whether the bottom node is a parallel-stack bottom (the paper's
    /// `par_b`).
    pub par_b: bool,
}

impl PointAnalysis {
    /// The paper's `p_dis` value.
    pub fn p_dis(&self) -> u32 {
        self.potential.len() as u32
    }

    /// Discharge transistors required if the structure is used with its
    /// bottom grounded (e.g. as a complete gate PDN): just the committed
    /// points.
    pub fn grounded_discharge(&self) -> Vec<JunctionRef> {
        self.committed.clone()
    }

    /// Consuming variant of
    /// [`grounded_discharge`](PointAnalysis::grounded_discharge) — hands
    /// over the committed list without cloning it (reconstruct attaches
    /// a discharge set to every SOI gate, so the clone was measurable).
    pub fn into_grounded_discharge(self) -> Vec<JunctionRef> {
        self.committed
    }

    /// Discharge count if the bottom is grounded.
    pub fn grounded_count(&self) -> u32 {
        self.committed.len() as u32
    }

    /// Discharge count if the bottom is *not* grounded: committed plus all
    /// potential points plus the parallel-stack bottom itself when present.
    ///
    /// (The parallel bottom is not a junction of this tree — in an enclosing
    /// series it becomes one — so only the count is meaningful here.)
    pub fn ungrounded_count(&self) -> u32 {
        self.committed.len() as u32 + self.p_dis() + u32::from(self.par_b)
    }
}

/// Analyses a pull-down network, returning its potential and committed
/// discharge points.
///
/// See the paper's Fig. 4 and Fig. 5; both worked examples are reproduced in
/// this module's tests.
pub fn analyze(pdn: &Pdn) -> PointAnalysis {
    let mut result = PointAnalysis::default();
    let mut path = Vec::new();
    let mut pool = Vec::new();
    result.par_b = analyze_into(
        pdn,
        &mut path,
        &mut result.potential,
        &mut result.committed,
        &mut pool,
    );
    result
}

/// Appends `pdn`'s potential and committed points directly to the caller's
/// sinks and returns its `par_b`. Subtrees write into the final lists
/// instead of building per-level `PointAnalysis` values that get merged
/// and dropped on the way up — reconstruct runs this for every
/// materialized SOI gate, and the per-level `Vec` churn dominated its
/// profile. The append order is exactly the old fold's concatenation
/// order, so the reported lists (and with them every discharge-set
/// rendering) are unchanged.
///
/// `pool` recycles the scratch buffers that hold a series top-child's
/// potential points on their way into `committed` (a top's potential
/// points cannot go to `potential` directly, but its committed points
/// can — and must keep ordering ahead of them).
fn analyze_into(
    pdn: &Pdn,
    path: &mut Vec<u32>,
    potential: &mut Vec<JunctionRef>,
    committed: &mut Vec<JunctionRef>,
    pool: &mut Vec<Vec<JunctionRef>>,
) -> bool {
    match pdn {
        Pdn::Transistor(_) => false,
        Pdn::Parallel(children) => {
            // Branch bottoms merge with the shared bottom node; each branch's
            // internal points remain potential, resolved by the context.
            // Each child's par_b is absorbed: the branch's parallel bottom
            // *is* this stack's bottom node.
            for (i, child) in children.iter().enumerate() {
                path.push(i as u32);
                analyze_into(child, path, potential, committed, pool);
                path.pop();
            }
            true
        }
        Pdn::Series(children) => {
            // Fold bottom-up. The bottom child keeps its potential points
            // and determines par_b; every child above is never grounded, so
            // its potential points commit, and the junction directly below
            // it commits too when it ends in a parallel stack (otherwise the
            // junction is a plain series point and stays potential).
            let last = children.len() - 1;
            path.push(last as u32);
            let par_b = analyze_into(&children[last], path, potential, committed, pool);
            path.pop();
            let mut scratch = pool.pop().unwrap_or_default();
            for i in (0..last).rev() {
                path.push(i as u32);
                let top_par_b = analyze_into(&children[i], path, &mut scratch, committed, pool);
                path.pop();
                committed.append(&mut scratch);
                let junction = JunctionRef::new(path.clone(), i as u32);
                if top_par_b {
                    committed.push(junction);
                } else {
                    potential.push(junction);
                }
            }
            pool.push(scratch);
            par_b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soi_domino_ir::Signal;

    fn t(i: usize) -> Pdn {
        Pdn::transistor(Signal::input(i))
    }

    /// Fig. 4(a): `A*B + C` — one potential point (the A-B junction),
    /// parallel bottom.
    #[test]
    fn fig4a_ab_or_c() {
        let pdn = Pdn::parallel(vec![Pdn::series(vec![t(0), t(1)]), t(2)]);
        let a = analyze(&pdn);
        assert_eq!(a.p_dis(), 1);
        assert!(a.par_b);
        assert!(a.committed.is_empty());
        assert_eq!(a.potential[0], JunctionRef::new(vec![0], 0));
        assert_eq!(a.grounded_count(), 0);
        // Ungrounded: the internal junction plus the stack bottom.
        assert_eq!(a.ungrounded_count(), 2);
    }

    /// Fig. 4(b): `(A*B + C) * (D*E + F)` — the top structure commits its
    /// internal junction and the junction between the two stacks; the bottom
    /// structure keeps one potential point and `par_b`.
    #[test]
    fn fig4b_two_stacks_in_series() {
        let top = Pdn::parallel(vec![Pdn::series(vec![t(0), t(1)]), t(2)]);
        let bottom = Pdn::parallel(vec![Pdn::series(vec![t(3), t(4)]), t(5)]);
        let pdn = Pdn::series(vec![top, bottom]);
        let a = analyze(&pdn);
        // Committed: A-B junction (inside top) + the inter-stack junction.
        assert_eq!(a.committed.len(), 2);
        assert!(a.committed.contains(&JunctionRef::new(vec![0, 0], 0)));
        assert!(a.committed.contains(&JunctionRef::new(vec![], 0)));
        // Potential: D-E junction inside the bottom stack.
        assert_eq!(a.p_dis(), 1);
        assert_eq!(a.potential[0], JunctionRef::new(vec![1, 0], 0));
        assert!(a.par_b);
        assert_eq!(a.grounded_count(), 2);
    }

    /// Fig. 5 left: `(A*B + C)` stacked on top of `E` — two immediate
    /// discharge transistors.
    #[test]
    fn fig5_stack_on_top() {
        let stack = Pdn::parallel(vec![Pdn::series(vec![t(0), t(1)]), t(2)]);
        let pdn = Pdn::series(vec![stack, t(4)]);
        let a = analyze(&pdn);
        assert_eq!(a.grounded_count(), 2);
        assert_eq!(a.p_dis(), 0);
        assert!(!a.par_b);
    }

    /// Fig. 5 right: `E` on top, parallel stack at the bottom — no immediate
    /// discharge, two potential points.
    #[test]
    fn fig5_stack_at_bottom() {
        let stack = Pdn::parallel(vec![Pdn::series(vec![t(0), t(1)]), t(2)]);
        let pdn = Pdn::series(vec![t(4), stack]);
        let a = analyze(&pdn);
        assert_eq!(a.grounded_count(), 0);
        assert_eq!(a.p_dis(), 2);
        assert!(a.par_b);
        // Ungrounded both potentials and the bottom commit: 3.
        assert_eq!(a.ungrounded_count(), 3);
    }

    /// A pure series chain has potential junctions but nothing committed —
    /// grounding the bottom absolves everything.
    #[test]
    fn pure_series_chain() {
        let pdn = Pdn::series(vec![t(0), t(1), t(2), t(3)]);
        let a = analyze(&pdn);
        assert_eq!(a.grounded_count(), 0);
        assert_eq!(a.p_dis(), 3);
        assert!(!a.par_b);
    }

    /// A single parallel stack connected to ground needs nothing.
    #[test]
    fn single_parallel_stack() {
        let pdn = Pdn::parallel(vec![t(0), t(1), t(2)]);
        let a = analyze(&pdn);
        assert_eq!(a.grounded_count(), 0);
        assert_eq!(a.p_dis(), 0);
        assert!(a.par_b);
        assert_eq!(a.ungrounded_count(), 1);
    }

    /// The paper's Fig. 2(a) example `(A+B+C)*D` with the stack on top:
    /// the junction below the stack commits.
    #[test]
    fn fig2a_needs_one_discharge() {
        let pdn = Pdn::series(vec![Pdn::parallel(vec![t(0), t(1), t(2)]), t(3)]);
        let a = analyze(&pdn);
        assert_eq!(a.grounded_count(), 1);
        assert_eq!(a.committed[0], JunctionRef::new(vec![], 0));
        assert_eq!(a.p_dis(), 0);
        assert!(!a.par_b);
    }

    /// Reordered Fig. 2(a): `D*(A+B+C)` with the stack at the bottom needs
    /// nothing when grounded — the reordering fix of §III-C item 4.
    #[test]
    fn fig2a_reordered_is_free() {
        let pdn = Pdn::series(vec![t(3), Pdn::parallel(vec![t(0), t(1), t(2)])]);
        let a = analyze(&pdn);
        assert_eq!(a.grounded_count(), 0);
        assert!(a.par_b);
    }

    /// Committed and potential points exactly partition the internal
    /// junction nets, under every permutation of a series chain — only the
    /// split between the two buckets moves.
    #[test]
    fn series_permutation_invariant() {
        let elems = [
            Pdn::parallel(vec![t(0), t(1)]),
            Pdn::series(vec![t(2), t(3)]),
            t(4),
        ];
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for p in perms {
            let pdn = Pdn::series(vec![
                elems[p[0]].clone(),
                elems[p[1]].clone(),
                elems[p[2]].clone(),
            ]);
            let a = analyze(&pdn);
            let junction_nets = pdn.flatten().junctions().count();
            assert_eq!(
                a.committed.len() + a.potential.len(),
                junction_nets,
                "perm {p:?}"
            );
        }
        // Grounded cost is minimized by putting the parallel stack at the
        // bottom (perm ending in element 0).
        let best = analyze(&Pdn::series(vec![
            elems[1].clone(),
            elems[2].clone(),
            elems[0].clone(),
        ]));
        let worst = analyze(&Pdn::series(vec![
            elems[0].clone(),
            elems[1].clone(),
            elems[2].clone(),
        ]));
        assert!(best.grounded_count() < worst.grounded_count());
    }

    /// Every reported junction must resolve to a net in the flattened graph.
    #[test]
    fn junctions_resolve() {
        let pdn = Pdn::series(vec![
            Pdn::parallel(vec![Pdn::series(vec![t(0), t(1)]), t(2)]),
            Pdn::parallel(vec![t(3), Pdn::series(vec![t(4), t(5), t(6)])]),
            t(7),
        ]);
        let a = analyze(&pdn);
        let graph = pdn.flatten();
        for j in a.committed.iter().chain(&a.potential) {
            assert!(graph.junction_net(j).is_some(), "unresolved {j}");
        }
        // No junction is reported twice across the two sets.
        let mut all: Vec<_> = a.committed.iter().chain(&a.potential).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), a.committed.len() + a.potential.len());
    }
}
