//! Excitability analysis — the paper's §VII future work, implemented.
//!
//! The mapping algorithms assume the worst case: every committed discharge
//! point *will* see the charge-then-yank input sequence that triggers the
//! parasitic bipolar effect. The paper closes by observing that "breakdown
//! will only occur for a particular sequence of input logic values" and
//! that using this could improve solutions. This module does exactly that:
//! given declared **input constraints** (mutually-exclusive signal groups
//! such as decoded one-hot selects, or inputs tied to a constant in mission
//! mode), it decides for each protected junction whether the charging
//! condition is *reachable* at all:
//!
//! > junction `J` is excitable iff some admissible input assignment
//! > connects `J` to the dynamic node through conducting devices without
//! > also connecting it to the foot (so it charges and holds high), and
//! > some admissible assignment later connects it to the foot (the yank).
//!
//! Junctions proven unexcitable can shed their pre-discharge transistor —
//! [`prune_discharge`] does so and reports the savings; everything is
//! conservative: when the gate has too many distinct input variables for
//! exhaustive enumeration, sampling may *find* a witness (keeping the
//! device is then clearly right), but absence of a sampled witness keeps
//! the device too.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use soi_domino_ir::{
    DominoCircuit, DominoGate, GateId, JunctionRef, NetId, PdnGraph, Phase, Signal,
};

/// Declared knowledge about the circuit's inputs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InputConstraints {
    /// Groups of primary inputs of which at most one is high at any time
    /// (decoded one-hot selects, grant lines, ...).
    mutex_groups: Vec<Vec<usize>>,
    /// Primary inputs tied to a constant value.
    fixed: Vec<(usize, bool)>,
}

impl InputConstraints {
    /// No knowledge: every assignment is admissible (the paper's worst
    /// case).
    pub fn none() -> InputConstraints {
        InputConstraints::default()
    }

    /// Declares that at most one of the given primary inputs is ever high.
    #[must_use]
    pub fn with_mutex(mut self, inputs: Vec<usize>) -> InputConstraints {
        self.mutex_groups.push(inputs);
        self
    }

    /// Declares a primary input tied to a constant.
    #[must_use]
    pub fn with_fixed(mut self, input: usize, value: bool) -> InputConstraints {
        self.fixed.push((input, value));
        self
    }

    /// Whether an assignment (a predicate over primary-input indices) is
    /// admissible.
    pub fn admits(&self, value_of: &impl Fn(usize) -> bool) -> bool {
        for (input, v) in &self.fixed {
            if value_of(*input) != *v {
                return false;
            }
        }
        for group in &self.mutex_groups {
            if group.iter().filter(|&&i| value_of(i)).count() > 1 {
                return false;
            }
        }
        true
    }

    /// Whether any constraints were declared.
    pub fn is_empty(&self) -> bool {
        self.mutex_groups.is_empty() && self.fixed.is_empty()
    }

    /// The declared mutual-exclusion groups (for alternative solvers that
    /// re-encode the constraints, such as the SAT formulation in
    /// `soi-cec`).
    pub fn mutex_groups(&self) -> &[Vec<usize>] {
        &self.mutex_groups
    }

    /// The declared constant-tied inputs.
    pub fn fixed(&self) -> &[(usize, bool)] {
        &self.fixed
    }
}

/// Analysis effort bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExciteConfig {
    /// Exhaustive enumeration up to this many distinct variables per gate;
    /// beyond it, random sampling.
    pub exact_limit: usize,
    /// Number of random samples when enumeration is out of reach.
    pub samples: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for ExciteConfig {
    fn default() -> ExciteConfig {
        ExciteConfig {
            exact_limit: 16,
            samples: 4096,
            seed: 0x50_1D,
        }
    }
}

/// Verdict for one junction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Excitability {
    /// A witness assignment pair exists: the discharge device is needed.
    Excitable,
    /// Exhaustively proven unreachable under the constraints: the device
    /// can be removed.
    ProvenSafe,
    /// Sampling found no witness, but the space was too large to prove
    /// absence — treated as excitable.
    Unknown,
}

/// The distinct variables controlling a gate's PDN: primary inputs (both
/// phases collapse onto one variable) and feeding gate outputs (treated as
/// free, unconstrained variables — conservative).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Var {
    Input(usize),
    Gate(GateId),
}

struct GateModel {
    graph: PdnGraph,
    vars: Vec<Var>,
    /// Per transistor: (variable index, negated?).
    terms: Vec<(usize, bool)>,
}

impl GateModel {
    fn new(gate: &DominoGate) -> GateModel {
        let graph = gate.pdn().flatten();
        let mut vars: Vec<Var> = Vec::new();
        let mut terms = Vec::with_capacity(graph.transistors.len());
        for t in &graph.transistors {
            let (var, negated) = match t.signal {
                Signal::Input { index, phase } => (Var::Input(index), phase == Phase::Neg),
                Signal::Gate(g) => (Var::Gate(g), false),
            };
            let idx = match vars.iter().position(|v| *v == var) {
                Some(i) => i,
                None => {
                    vars.push(var);
                    vars.len() - 1
                }
            };
            terms.push((idx, negated));
        }
        GateModel { graph, vars, terms }
    }

    fn admissible(&self, constraints: &InputConstraints, bits: u64) -> bool {
        // Only input variables are constrained; an input not appearing in
        // this gate is free, so mutex groups are checked over the
        // appearing subset (sound: absent members can be 0).
        constraints.admits(&|input| {
            self.vars
                .iter()
                .position(|v| *v == Var::Input(input))
                .is_some_and(|i| bits >> i & 1 == 1)
        })
    }

    /// Net components under an assignment; returns the component labels.
    fn components(&self, bits: u64) -> Vec<usize> {
        let nets = self.graph.net_count();
        let mut parent: Vec<usize> = (0..nets).collect();
        fn find(p: &mut [usize], mut x: usize) -> usize {
            while p[x] != x {
                p[x] = p[p[x]];
                x = p[x];
            }
            x
        }
        for (t, &(var, neg)) in self.graph.transistors.iter().zip(&self.terms) {
            let on = (bits >> var & 1 == 1) != neg;
            if on {
                let a = find(&mut parent, t.upper.index());
                let b = find(&mut parent, t.lower.index());
                parent[a.max(b)] = a.min(b);
            }
        }
        (0..nets).map(|n| find(&mut parent, n)).collect()
    }

    /// The charging condition: junction held high — connected to the
    /// dynamic node, not connected to the foot.
    fn charges(&self, bits: u64, net: NetId) -> bool {
        let comp = self.components(bits);
        comp[net.index()] == comp[PdnGraph::TOP.index()]
            && comp[net.index()] != comp[PdnGraph::FOOT.index()]
    }

    /// The yank condition: junction pulled to the foot.
    fn yanks(&self, bits: u64, net: NetId) -> bool {
        let comp = self.components(bits);
        comp[net.index()] == comp[PdnGraph::FOOT.index()]
    }
}

/// Decides whether a junction of a gate is excitable under the constraints.
///
/// # Panics
///
/// Panics if the junction does not exist in the gate's PDN.
pub fn junction_excitability(
    gate: &DominoGate,
    junction: &JunctionRef,
    constraints: &InputConstraints,
    config: &ExciteConfig,
) -> Excitability {
    let model = GateModel::new(gate);
    let net = model
        .graph
        .junction_net(junction)
        .expect("junction exists in this PDN");
    let nvars = model.vars.len();

    if nvars <= config.exact_limit {
        let mut can_charge = false;
        let mut can_yank = false;
        for bits in 0..(1u64 << nvars) {
            if !model.admissible(constraints, bits) {
                continue;
            }
            can_charge |= model.charges(bits, net);
            can_yank |= model.yanks(bits, net);
            if can_charge && can_yank {
                return Excitability::Excitable;
            }
        }
        Excitability::ProvenSafe
    } else {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let mut can_charge = false;
        let mut can_yank = false;
        for _ in 0..config.samples {
            let bits: u64 = rng.gen::<u64>() & ((1u64 << nvars.min(63)) - 1);
            if !model.admissible(constraints, bits) {
                continue;
            }
            can_charge |= model.charges(bits, net);
            can_yank |= model.yanks(bits, net);
            if can_charge && can_yank {
                return Excitability::Excitable;
            }
        }
        Excitability::Unknown
    }
}

/// Removes every pre-discharge transistor that protects a junction proven
/// unexcitable under the constraints. Returns the number removed.
///
/// With [`InputConstraints::none`] this is a no-op on well-formed circuits:
/// committed junctions are excitable in the unconstrained worst case.
///
/// # Example
///
/// ```rust
/// use soi_domino_ir::{DominoCircuit, Pdn, Signal};
/// use soi_pbe::excite::{prune_discharge, ExciteConfig, InputConstraints};
/// use soi_pbe::postprocess;
///
/// // s0 and s1 in series above a stack: with one-hot selects, the inner
/// // junction can never charge (s0·s1 is inadmissible).
/// let mut c = DominoCircuit::single_gate(
///     vec!["s0".into(), "s1".into(), "a".into(), "b".into()],
///     Pdn::series(vec![
///         Pdn::transistor(Signal::input(0)),
///         Pdn::transistor(Signal::input(1)),
///         Pdn::parallel(vec![
///             Pdn::transistor(Signal::input(2)),
///             Pdn::transistor(Signal::input(3)),
///         ]),
///         Pdn::transistor(Signal::input(2)),
///     ]),
/// );
/// postprocess::insert_discharge(&mut c);
/// let before = c.counts().discharge;
/// let removed = prune_discharge(
///     &mut c,
///     &InputConstraints::none().with_mutex(vec![0, 1]),
///     &ExciteConfig::default(),
/// );
/// assert!(removed > 0);
/// assert_eq!(c.counts().discharge, before - removed);
/// ```
pub fn prune_discharge(
    circuit: &mut DominoCircuit,
    constraints: &InputConstraints,
    config: &ExciteConfig,
) -> u32 {
    prune_discharge_traced(circuit, constraints, config, soi_trace::TraceHandle::off())
}

/// [`prune_discharge`] with an instrumentation handle: reports the number
/// of removed devices through [`soi_trace::Counter::DischargesPruned`].
/// With `TraceHandle::off()` this is exactly `prune_discharge`.
pub fn prune_discharge_traced(
    circuit: &mut DominoCircuit,
    constraints: &InputConstraints,
    config: &ExciteConfig,
    trace: soi_trace::TraceHandle,
) -> u32 {
    let mut removed = 0;
    for idx in 0..circuit.gate_count() {
        let id = GateId::from_index(idx);
        let keep: Vec<JunctionRef> = circuit
            .gate(id)
            .discharge()
            .iter()
            .filter(|j| {
                let verdict = junction_excitability(circuit.gate(id), j, constraints, config);
                verdict != Excitability::ProvenSafe
            })
            .cloned()
            .collect();
        removed += (circuit.gate(id).discharge().len() - keep.len()) as u32;
        circuit.gate_mut(id).set_discharge(keep);
    }
    trace.count(soi_trace::Counter::DischargesPruned, u64::from(removed));
    removed
}

/// Checks that every *unprotected* committed junction in the circuit is
/// provably unexcitable — the safety criterion for a pruned circuit
/// (replaces [`hazard::is_safe`](crate::hazard::is_safe), which assumes the
/// worst case).
pub fn verify_safe(
    circuit: &DominoCircuit,
    constraints: &InputConstraints,
    config: &ExciteConfig,
) -> bool {
    for (id, gate) in circuit.iter() {
        let analysis = crate::points::analyze(gate.pdn());
        for junction in analysis.committed {
            if gate.discharge().contains(&junction) {
                continue;
            }
            if junction_excitability(gate, &junction, constraints, config)
                != Excitability::ProvenSafe
            {
                let _ = id;
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postprocess;
    use soi_domino_ir::Pdn;

    fn t(i: usize) -> Pdn {
        Pdn::transistor(Signal::input(i))
    }

    /// `(A+B)*C` stack-on-top: the committed junction is excitable in the
    /// worst case (hold A, fire C).
    #[test]
    fn unconstrained_committed_point_is_excitable() {
        let gate = soi_domino_ir::DominoGate::footed(Pdn::series(vec![
            Pdn::parallel(vec![t(0), t(1)]),
            t(2),
        ]));
        let verdict = junction_excitability(
            &gate,
            &JunctionRef::new(vec![], 0),
            &InputConstraints::none(),
            &ExciteConfig::default(),
        );
        assert_eq!(verdict, Excitability::Excitable);
    }

    /// Two mutex signals in series guard the junction below them: it can
    /// never charge high.
    #[test]
    fn mutex_series_guard_is_proven_safe() {
        let gate = soi_domino_ir::DominoGate::footed(Pdn::series(vec![
            t(0),
            t(1),
            Pdn::parallel(vec![t(2), t(3)]),
            t(4),
        ]));
        // Junction below the parallel stack (index 2) is guarded by
        // s0·s1 which a mutex forbids.
        let constraints = InputConstraints::none().with_mutex(vec![0, 1]);
        let verdict = junction_excitability(
            &gate,
            &JunctionRef::new(vec![], 2),
            &constraints,
            &ExciteConfig::default(),
        );
        assert_eq!(verdict, Excitability::ProvenSafe);
        // Without the constraint it is excitable.
        let verdict = junction_excitability(
            &gate,
            &JunctionRef::new(vec![], 2),
            &InputConstraints::none(),
            &ExciteConfig::default(),
        );
        assert_eq!(verdict, Excitability::Excitable);
    }

    /// An input fixed low disconnects its whole region.
    #[test]
    fn fixed_input_disables_branch() {
        let gate = soi_domino_ir::DominoGate::footed(Pdn::series(vec![
            t(0),
            Pdn::parallel(vec![t(1), t(2)]),
            t(3),
        ]));
        // Junction 0 (below t0) charges only through t0; tie input 0 low.
        let constraints = InputConstraints::none().with_fixed(0, false);
        let verdict = junction_excitability(
            &gate,
            &JunctionRef::new(vec![], 0),
            &constraints,
            &ExciteConfig::default(),
        );
        assert_eq!(verdict, Excitability::ProvenSafe);
    }

    /// Pruning with no constraints removes nothing from a well-formed
    /// post-processed circuit.
    #[test]
    fn unconstrained_prune_is_noop() {
        let mut c = DominoCircuit::single_gate(
            (0..5).map(|i| format!("i{i}")).collect(),
            Pdn::series(vec![
                Pdn::parallel(vec![Pdn::series(vec![t(0), t(1)]), t(2)]),
                Pdn::parallel(vec![t(3), t(4)]),
            ]),
        );
        postprocess::insert_discharge(&mut c);
        let removed = prune_discharge(&mut c, &InputConstraints::none(), &ExciteConfig::default());
        assert_eq!(removed, 0);
    }

    /// End to end: insert, prune under constraints, verify safety under
    /// the same constraints.
    #[test]
    fn prune_then_verify() {
        let mut c = DominoCircuit::single_gate(
            (0..5).map(|i| format!("i{i}")).collect(),
            Pdn::series(vec![t(0), t(1), Pdn::parallel(vec![t(2), t(3)]), t(4)]),
        );
        postprocess::insert_discharge(&mut c);
        assert!(c.counts().discharge > 0);
        let constraints = InputConstraints::none().with_mutex(vec![0, 1]);
        let removed = prune_discharge(&mut c, &constraints, &ExciteConfig::default());
        assert!(removed > 0);
        assert!(verify_safe(&c, &constraints, &ExciteConfig::default()));
        // The worst-case checker now (rightly) complains.
        assert!(!crate::hazard::is_safe(&c));
        // And the unconstrained excitability checker does too.
        assert!(!verify_safe(
            &c,
            &InputConstraints::none(),
            &ExciteConfig::default()
        ));
    }

    /// Gate-output variables stay unconstrained even when constraints
    /// mention inputs of the same indices.
    #[test]
    fn gate_signals_are_free_variables() {
        let mut c = DominoCircuit::new((0..3).map(|i| format!("i{i}")).collect());
        let g0 = c.add_gate(soi_domino_ir::DominoGate::footed(Pdn::parallel(vec![
            t(0),
            t(1),
        ])));
        let pdn = Pdn::series(vec![
            Pdn::transistor(Signal::Gate(g0)),
            Pdn::parallel(vec![t(1), t(2)]),
            t(0),
        ]);
        let gate = soi_domino_ir::DominoGate::footed(pdn);
        // Junction 0 charges through the gate output, which no input
        // constraint can forbid; the yank path (i0 with one of i1/i2)
        // stays admissible under the mutex. (A mutex over all three
        // inputs would block the yank entirely and prove the point safe —
        // the analysis correctly reasons about both halves.)
        let constraints = InputConstraints::none().with_mutex(vec![1, 2]);
        let verdict = junction_excitability(
            &gate,
            &JunctionRef::new(vec![], 0),
            &constraints,
            &ExciteConfig::default(),
        );
        assert_eq!(verdict, Excitability::Excitable);
    }

    #[test]
    fn traced_prune_reports_the_removed_count() {
        let (rec, trace) = soi_trace::Recorder::install();
        let mut c = DominoCircuit::single_gate(
            (0..5).map(|i| format!("i{i}")).collect(),
            Pdn::series(vec![t(0), t(1), Pdn::parallel(vec![t(2), t(3)]), t(4)]),
        );
        postprocess::insert_discharge(&mut c);
        let constraints = InputConstraints::none().with_mutex(vec![0, 1]);
        let removed = prune_discharge_traced(&mut c, &constraints, &ExciteConfig::default(), trace);
        assert!(removed > 0);
        assert_eq!(
            rec.counter(soi_trace::Counter::DischargesPruned),
            u64::from(removed)
        );
    }

    #[test]
    fn admits_checks_both_kinds() {
        let c = InputConstraints::none()
            .with_mutex(vec![0, 1])
            .with_fixed(2, true);
        assert!(c.admits(&|i| i == 0 || i == 2));
        assert!(!c.admits(&|i| i == 0 || i == 1 || i == 2)); // mutex violated
        assert!(!c.admits(&|i| i == 0)); // fixed violated
        assert!(InputConstraints::none().is_empty());
        assert!(!c.is_empty());
    }
}
