use std::error::Error;
use std::fmt;

/// Errors produced by PBE analysis and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PbeError {
    /// A simulation vector had the wrong number of entries.
    InputArity {
        /// Number of primary inputs of the circuit.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A pre-discharge transistor references a junction that does not exist
    /// in its gate's pull-down network.
    BadDischargeJunction {
        /// Index of the offending gate.
        gate: usize,
        /// Rendering of the unresolvable junction reference.
        junction: String,
    },
}

impl fmt::Display for PbeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PbeError::InputArity { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            PbeError::BadDischargeJunction { gate, junction } => {
                write!(
                    f,
                    "gate {gate}: discharge junction {junction} does not resolve in the PDN"
                )
            }
        }
    }
}

impl Error for PbeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn assert_err<T: Error + Send + Sync>() {}
        assert_err::<PbeError>();
        let e = PbeError::InputArity {
            expected: 3,
            got: 1,
        };
        assert!(e.to_string().contains('3'));
    }
}
