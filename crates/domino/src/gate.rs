use std::fmt;

use crate::{JunctionRef, Pdn};

/// A domino gate: a pull-down network plus its peripheral transistors.
///
/// Peripheral devices and their transistor cost:
///
/// * precharge p-clock transistor — 1,
/// * output inverter — 2,
/// * keeper pmos — 1,
/// * foot n-clock transistor — 1 if the gate is *footed* (required when any
///   PDN transistor is driven by a primary input, which may be high during
///   precharge; gates fed exclusively by other domino gates may be footless),
/// * one pmos pre-discharge transistor per entry in `discharge`.
///
/// # Example
///
/// ```rust
/// use soi_domino_ir::{DominoGate, Pdn, Signal};
///
/// let pdn = Pdn::series(vec![
///     Pdn::transistor(Signal::input(0)),
///     Pdn::transistor(Signal::input(1)),
/// ]);
/// let gate = DominoGate::footed(pdn);
/// assert_eq!(gate.overhead_transistors(), 5);
/// assert_eq!(gate.logic_transistors(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DominoGate {
    pdn: Pdn,
    footed: bool,
    discharge: Vec<JunctionRef>,
}

impl DominoGate {
    /// Creates a footed gate (with an n-clock transistor) with no discharge
    /// transistors.
    pub fn footed(pdn: Pdn) -> DominoGate {
        DominoGate {
            pdn,
            footed: true,
            discharge: Vec::new(),
        }
    }

    /// Creates a footless gate (no n-clock transistor) with no discharge
    /// transistors.
    pub fn footless(pdn: Pdn) -> DominoGate {
        DominoGate {
            pdn,
            footed: false,
            discharge: Vec::new(),
        }
    }

    /// Creates a gate, choosing footedness by whether the PDN touches a
    /// primary input (the paper's Listing 2 rule).
    pub fn footed_if_primary(pdn: Pdn) -> DominoGate {
        let footed = pdn.touches_primary_input();
        DominoGate {
            pdn,
            footed,
            discharge: Vec::new(),
        }
    }

    /// The pull-down network.
    pub fn pdn(&self) -> &Pdn {
        &self.pdn
    }

    /// Whether the gate has a foot n-clock transistor.
    pub fn is_footed(&self) -> bool {
        self.footed
    }

    /// The junctions carrying pmos pre-discharge transistors.
    pub fn discharge(&self) -> &[JunctionRef] {
        &self.discharge
    }

    /// Attaches a pre-discharge transistor at the given junction.
    ///
    /// # Panics
    ///
    /// Panics if the junction does not exist in this gate's PDN, or if it
    /// already carries a discharge transistor (the paper adds at most one
    /// per node).
    pub fn add_discharge(&mut self, junction: JunctionRef) {
        assert!(
            self.pdn.flatten().junction_net(&junction).is_some(),
            "junction {junction} does not exist in this PDN"
        );
        assert!(
            !self.discharge.contains(&junction),
            "junction {junction} already has a discharge transistor"
        );
        self.discharge.push(junction);
    }

    /// Replaces the discharge set wholesale (used by analysis passes that
    /// compute the complete set at once).
    ///
    /// # Panics
    ///
    /// Panics if any junction does not exist or appears twice.
    pub fn set_discharge(&mut self, junctions: Vec<JunctionRef>) {
        let graph = self.pdn.flatten();
        for (i, j) in junctions.iter().enumerate() {
            assert!(
                graph.junction_net(j).is_some(),
                "junction {j} does not exist in this PDN"
            );
            assert!(
                !junctions[..i].contains(j),
                "junction {j} listed twice in discharge set"
            );
        }
        self.discharge = junctions;
    }

    /// Replaces the discharge set with no junction-resolution checking.
    ///
    /// Fault-injection hook for `soi-guard::inject`: the junctions may
    /// dangle or repeat. A gate touched by this method is untrusted until
    /// [`DominoCircuit::validate`](crate::DominoCircuit::validate) says
    /// otherwise.
    pub fn set_discharge_unchecked(&mut self, junctions: Vec<JunctionRef>) {
        self.discharge = junctions;
    }

    /// Replaces the pull-down network, keeping the existing discharge set
    /// and footing — which may no longer make sense for the new PDN.
    ///
    /// Fault-injection hook for `soi-guard::inject`; see
    /// [`DominoGate::set_discharge_unchecked`].
    pub fn set_pdn_unchecked(&mut self, pdn: Pdn) {
        self.pdn = pdn;
    }

    /// Number of transistors beyond the PDN: p-clock + inverter (2) +
    /// keeper + n-clock when footed.
    pub fn overhead_transistors(&self) -> u32 {
        4 + u32::from(self.footed)
    }

    /// `T_logic` contribution: PDN transistors plus overhead (everything
    /// except pre-discharge transistors).
    pub fn logic_transistors(&self) -> u32 {
        self.pdn.transistor_count() + self.overhead_transistors()
    }

    /// Number of pre-discharge transistors (`T_disch` contribution).
    pub fn discharge_transistors(&self) -> u32 {
        self.discharge.len() as u32
    }

    /// Clock-connected transistors: p-clock, the n-clock when footed, and
    /// all pre-discharge transistors (the paper's `T_clock` accounting).
    pub fn clock_transistors(&self) -> u32 {
        1 + u32::from(self.footed) + self.discharge_transistors()
    }
}

impl fmt::Display for DominoGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "domino{}[{}] disch={}",
            if self.footed { "(footed)" } else { "" },
            self.pdn,
            self.discharge.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Signal;

    fn two_high_pdn() -> Pdn {
        Pdn::series(vec![
            Pdn::transistor(Signal::input(0)),
            Pdn::transistor(Signal::input(1)),
        ])
    }

    #[test]
    fn footed_counts() {
        let g = DominoGate::footed(two_high_pdn());
        assert_eq!(g.logic_transistors(), 7);
        assert_eq!(g.clock_transistors(), 2);
        assert_eq!(g.discharge_transistors(), 0);
    }

    #[test]
    fn footless_counts() {
        let g = DominoGate::footless(two_high_pdn());
        assert_eq!(g.logic_transistors(), 6);
        assert_eq!(g.clock_transistors(), 1);
    }

    #[test]
    fn footed_if_primary_detects_gate_inputs() {
        let gate_fed = Pdn::transistor(Signal::Gate(crate::GateId::from_index(3)));
        assert!(!DominoGate::footed_if_primary(gate_fed).is_footed());
        assert!(DominoGate::footed_if_primary(two_high_pdn()).is_footed());
    }

    #[test]
    fn discharge_accounting() {
        let mut g = DominoGate::footed(two_high_pdn());
        g.add_discharge(JunctionRef::new(vec![], 0));
        assert_eq!(g.discharge_transistors(), 1);
        assert_eq!(g.clock_transistors(), 3);
        // logic count unchanged by discharge.
        assert_eq!(g.logic_transistors(), 7);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn discharge_requires_real_junction() {
        let mut g = DominoGate::footed(two_high_pdn());
        g.add_discharge(JunctionRef::new(vec![9], 0));
    }

    #[test]
    #[should_panic(expected = "already has")]
    fn duplicate_discharge_rejected() {
        let mut g = DominoGate::footed(two_high_pdn());
        g.add_discharge(JunctionRef::new(vec![], 0));
        g.add_discharge(JunctionRef::new(vec![], 0));
    }
}
