use std::error::Error;
use std::fmt;

use crate::GateId;

/// Errors produced by domino-circuit construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DominoError {
    /// An evaluation vector had the wrong number of entries.
    InputArity {
        /// Number of primary inputs of the circuit.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A gate references a signal that is out of range or non-topological.
    BadSignal {
        /// The offending gate.
        gate: GateId,
        /// Description of the problem.
        what: String,
    },
    /// An output binding refers to a nonexistent gate.
    BadOutput {
        /// Name of the output.
        name: String,
    },
}

impl fmt::Display for DominoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DominoError::InputArity { expected, got } => {
                write!(f, "expected {expected} input values, got {got}")
            }
            DominoError::BadSignal { gate, what } => write!(f, "gate {gate}: {what}"),
            DominoError::BadOutput { name } => {
                write!(f, "output `{name}` refers to a nonexistent gate")
            }
        }
    }
}

impl Error for DominoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_traits() {
        fn assert_send_sync<T: Send + Sync + Error>() {}
        assert_send_sync::<DominoError>();
        let e = DominoError::BadOutput { name: "f".into() };
        assert!(e.to_string().contains('f'));
    }
}
